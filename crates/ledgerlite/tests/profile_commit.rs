//! Manual profiling probe for the ForkBase backend commit path.
//! Run: cargo test --release -p ledgerlite --test profile_commit -- --ignored --nocapture

use bytes::Bytes;
use ledgerlite::{ForkBaseBackend, StateBackend};
use std::time::Instant;

#[test]
#[ignore]
fn commit_breakdown_at_scale() {
    let mut b = ForkBaseBackend::in_memory();
    let n_keys = 100_000usize;
    // Populate: 2000 blocks of 50 writes to build a big second-level map.
    let mut h = 0u64;
    let t = Instant::now();
    for block in 0..1000 {
        for i in 0..50 {
            let k = format!("user{:010}", (block * 50 + i) % n_keys);
            b.stage("kv", k.as_bytes(), Bytes::from(format!("v-{block}-{i}")));
        }
        b.commit(h);
        h += 1;
    }
    println!(
        "populate 1000 blocks: {:?} ({:?}/commit)",
        t.elapsed(),
        t.elapsed() / 1000
    );

    // Timed phase.
    let t = Instant::now();
    let rounds = 50;
    for block in 0..rounds {
        for i in 0..50 {
            let k = format!("user{:010}", (block * 7919 + i * 104729) % n_keys);
            b.stage("kv", k.as_bytes(), Bytes::from(format!("w-{block}-{i}")));
        }
        b.commit(h);
        h += 1;
    }
    println!("steady-state: {:?}/commit", t.elapsed() / rounds as u32);
}

#[test]
#[ignore]
fn commit_component_breakdown() {
    use forkbase_core::{ForkBase, Value};
    use forkbase_crypto::ChunkerConfig;
    let cfg = ChunkerConfig::with_leaf_bits(10);
    let db = ForkBase::with_store(std::sync::Arc::new(forkbase_chunk::MemStore::new()), cfg);

    // A 100K-entry map like the second-level state map.
    let map = db.new_map((0..100_000u32).map(|i| {
        (
            Bytes::from(format!("user{i:010}")),
            Bytes::copy_from_slice(&[0u8; 32]),
        )
    }));
    db.put("m", None, Value::Map(map)).unwrap();

    // 50 value-blob puts (fresh lineages).
    let t = Instant::now();
    let rounds = 20;
    for r in 0..rounds {
        for i in 0..50 {
            let k = Bytes::from(format!("s/kv/user{:010}", r * 50 + i));
            let blob = db.new_blob(format!("value-{r}-{i}").as_bytes());
            db.put_conflict(k, None, Value::Blob(blob)).unwrap();
        }
    }
    println!("50 value puts: {:?}", t.elapsed() / rounds);

    // 50-edit batched map update.
    let t = Instant::now();
    for r in 0..rounds {
        let map = db.get_value("m", None).unwrap().as_map().unwrap();
        let edits = (0..50u32).map(|i| {
            (
                Bytes::from(format!("user{:010}", (r * 7919 + i * 104729) % 100_000)),
                Some(Bytes::copy_from_slice(&[r as u8; 32])),
            )
        });
        let map = map.update(db.store(), db.cfg(), edits).unwrap();
        db.put("m", None, Value::Map(map)).unwrap();
    }
    println!("50-edit map update: {:?}", t.elapsed() / rounds);
}
