//! The ledger node: executes transactions against a state backend and
//! packs write transactions into hash-chained blocks.
//!
//! Mirrors Hyperledger's execution model (§5.1.1): reads hit storage
//! directly, writes buffer in memory, and a commit fires when the batch
//! reaches the block size `b`. Per-operation latencies are recorded so
//! the harness can report Fig. 9's percentiles and Fig. 11's CDFs.

use crate::backend::StateBackend;
use crate::types::{Block, Transaction, TxOp};
use forkbase_crypto::Digest;
use std::time::Instant;

/// Recorded operation latencies, in nanoseconds.
#[derive(Clone, Debug, Default)]
pub struct OpTimings {
    /// One sample per read operation.
    pub reads_ns: Vec<u64>,
    /// One sample per write operation.
    pub writes_ns: Vec<u64>,
    /// One sample per block commit.
    pub commits_ns: Vec<u64>,
}

impl OpTimings {
    /// The p-th percentile (0–100) of a sample set, in nanoseconds.
    pub fn percentile(samples: &[u64], p: f64) -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// A single ledger node over a pluggable state backend.
pub struct LedgerNode<B: StateBackend> {
    backend: B,
    block_size: usize,
    pending: Vec<Transaction>,
    chain: Vec<Digest>,
    timings: OpTimings,
    txns_committed: u64,
}

impl<B: StateBackend> LedgerNode<B> {
    /// A node packing `block_size` write transactions per block.
    pub fn new(backend: B, block_size: usize) -> Self {
        LedgerNode {
            backend,
            block_size,
            pending: Vec::new(),
            chain: Vec::new(),
            timings: OpTimings::default(),
            txns_committed: 0,
        }
    }

    /// Execute a transaction; commits a block when the batch fills.
    /// Returns the block hash if this submission sealed a block.
    pub fn submit(&mut self, txn: Transaction) -> Option<Digest> {
        for op in &txn.ops {
            match op {
                TxOp::Get(key) => {
                    let t = Instant::now();
                    let _ = self.backend.read(&txn.contract, key);
                    self.timings.reads_ns.push(t.elapsed().as_nanos() as u64);
                }
                TxOp::Put(key, value) => {
                    let t = Instant::now();
                    self.backend.stage(&txn.contract, key, value.clone());
                    self.timings.writes_ns.push(t.elapsed().as_nanos() as u64);
                }
            }
        }
        // Only state-updating transactions are stored in the block
        // (§5.1.1).
        if txn.is_write() {
            self.pending.push(txn);
        }
        if self.pending.len() >= self.block_size {
            Some(self.commit_block())
        } else {
            None
        }
    }

    /// Seal the pending batch into a block (no-op hash if empty).
    pub fn commit_block(&mut self) -> Digest {
        let height = self.chain.len() as u64;
        let prev_hash = self.chain.last().copied().unwrap_or(Digest::ZERO);
        let txns = std::mem::take(&mut self.pending);
        self.txns_committed += txns.len() as u64;

        let t = Instant::now();
        let state_ref = self.backend.commit(height);
        let block = Block::new(height, prev_hash, state_ref, txns);
        self.backend.store_block(&block);
        self.timings.commits_ns.push(t.elapsed().as_nanos() as u64);

        let hash = block.hash();
        self.chain.push(hash);
        hash
    }

    /// Force-commit any pending transactions (the block timer firing).
    pub fn flush(&mut self) -> Option<Digest> {
        (!self.pending.is_empty()).then(|| self.commit_block())
    }

    /// Chain length in blocks.
    pub fn height(&self) -> u64 {
        self.chain.len() as u64
    }

    /// Total transactions committed into blocks.
    pub fn txns_committed(&self) -> u64 {
        self.txns_committed
    }

    /// Recorded latencies.
    pub fn timings(&self) -> &OpTimings {
        &self.timings
    }

    /// Clear recorded latencies (between benchmark phases).
    pub fn reset_timings(&mut self) {
        self.timings = OpTimings::default();
    }

    /// Backend access (analytics queries, verification).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Backend access (read-only).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Re-load every block and verify the hash chain end to end.
    pub fn verify_chain(&self) -> bool {
        let mut blocks = Vec::with_capacity(self.chain.len());
        for h in 0..self.chain.len() as u64 {
            match self.backend.load_block(h) {
                Some(b) => blocks.push(b),
                None => return false,
            }
        }
        if Block::verify_chain(&blocks).is_some() {
            return false;
        }
        // Stored hashes must match recomputed ones.
        blocks.iter().zip(&self.chain).all(|(b, h)| b.hash() == *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb_backend::ForkBaseBackend;
    use crate::kv_backend::KvBackend;
    use crate::merkle::BucketTree;
    use bytes::Bytes;

    fn run_workload<B: StateBackend>(node: &mut LedgerNode<B>, n: usize) {
        for i in 0..n {
            if i % 2 == 0 {
                node.submit(Transaction::put(
                    "kv",
                    format!("key-{}", i % 50),
                    format!("val-{i}"),
                ));
            } else {
                node.submit(Transaction::get("kv", format!("key-{}", i % 50)));
            }
        }
        node.flush();
    }

    #[test]
    fn blocks_form_verified_chain_forkbase() {
        let mut node = LedgerNode::new(ForkBaseBackend::in_memory(), 10);
        run_workload(&mut node, 200);
        assert_eq!(node.height(), 10, "100 writes / 10 per block");
        assert_eq!(node.txns_committed(), 100);
        assert!(node.verify_chain());
    }

    #[test]
    fn blocks_form_verified_chain_kv() {
        let dir = std::env::temp_dir().join(format!("ledger-node-kv-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = rockslite::RocksLite::open(&dir).expect("open");
        let mut node = LedgerNode::new(KvBackend::new(kv, Box::new(BucketTree::new(64))), 10);
        run_workload(&mut node, 200);
        assert_eq!(node.height(), 10);
        assert!(node.verify_chain());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn committed_state_visible_across_blocks() {
        let mut node = LedgerNode::new(ForkBaseBackend::in_memory(), 5);
        for i in 0..5 {
            node.submit(Transaction::put("kv", "k", format!("v{i}")));
        }
        // Block sealed; the value is now committed and readable.
        assert_eq!(
            node.backend().read("kv", b"k"),
            Some(Bytes::from("v4")),
            "last write in the block wins"
        );
    }

    #[test]
    fn timings_recorded_per_op() {
        let mut node = LedgerNode::new(ForkBaseBackend::in_memory(), 50);
        run_workload(&mut node, 100);
        let t = node.timings();
        assert_eq!(t.writes_ns.len(), 50);
        assert_eq!(t.reads_ns.len(), 50);
        assert_eq!(t.commits_ns.len(), 1);
    }

    #[test]
    fn percentile_math() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(OpTimings::percentile(&samples, 95.0), 95);
        assert_eq!(OpTimings::percentile(&samples, 0.0), 1);
        assert_eq!(OpTimings::percentile(&samples, 100.0), 100);
        assert_eq!(OpTimings::percentile(&[], 95.0), 0);
    }

    #[test]
    fn read_only_txns_not_stored_in_blocks() {
        let mut node = LedgerNode::new(ForkBaseBackend::in_memory(), 2);
        node.submit(Transaction::get("kv", "a"));
        node.submit(Transaction::get("kv", "b"));
        node.submit(Transaction::get("kv", "c"));
        assert_eq!(node.height(), 0, "reads never seal blocks");
        node.submit(Transaction::put("kv", "a", "1"));
        node.submit(Transaction::put("kv", "b", "2"));
        assert_eq!(node.height(), 1);
        let block = node.backend().load_block(0).expect("stored");
        assert_eq!(block.txns.len(), 2, "only writes packed");
    }
}
