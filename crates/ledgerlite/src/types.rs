//! Blocks, transactions and the hash chain.

use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, get_varint, put_bytes, put_varint};
use forkbase_crypto::{hash_bytes, Digest};

/// One operation inside a key-value smart-contract transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxOp {
    /// Read a state key.
    Get(Bytes),
    /// Write a state key.
    Put(Bytes, Bytes),
}

/// A smart-contract invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Target contract id.
    pub contract: String,
    /// Operations, executed in order.
    pub ops: Vec<TxOp>,
}

impl Transaction {
    /// A single-op write transaction.
    pub fn put(contract: &str, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Transaction {
        Transaction {
            contract: contract.to_string(),
            ops: vec![TxOp::Put(key.into(), value.into())],
        }
    }

    /// A single-op read transaction.
    pub fn get(contract: &str, key: impl Into<Bytes>) -> Transaction {
        Transaction {
            contract: contract.to_string(),
            ops: vec![TxOp::Get(key.into())],
        }
    }

    /// True if the transaction writes state (only those are stored in
    /// blocks, §5.1.1).
    pub fn is_write(&self) -> bool {
        self.ops.iter().any(|op| matches!(op, TxOp::Put(..)))
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_bytes(out, self.contract.as_bytes());
        put_varint(out, self.ops.len() as u64);
        for op in &self.ops {
            match op {
                TxOp::Get(k) => {
                    out.push(0);
                    put_bytes(out, k);
                }
                TxOp::Put(k, v) => {
                    out.push(1);
                    put_bytes(out, k);
                    put_bytes(out, v);
                }
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<Transaction> {
        let contract = String::from_utf8(get_bytes(buf, pos)?.to_vec()).ok()?;
        let n = get_varint(buf, pos)? as usize;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = *buf.get(*pos)?;
            *pos += 1;
            ops.push(match tag {
                0 => TxOp::Get(Bytes::copy_from_slice(get_bytes(buf, pos)?)),
                1 => {
                    let k = Bytes::copy_from_slice(get_bytes(buf, pos)?);
                    let v = Bytes::copy_from_slice(get_bytes(buf, pos)?);
                    TxOp::Put(k, v)
                }
                _ => return None,
            });
        }
        Some(Transaction { contract, ops })
    }
}

/// Block header: everything the block hash commits to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height in the chain (0 = genesis).
    pub height: u64,
    /// Hash of the previous block (zero for genesis).
    pub prev_hash: Digest,
    /// Backend-specific state reference: the Merkle root (KV backends) or
    /// the first-level Map uid (ForkBase backend).
    pub state_ref: Bytes,
    /// Hash over the serialized transactions.
    pub txn_root: Digest,
}

/// A block: header plus the write transactions it packs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Packed transactions.
    pub txns: Vec<Transaction>,
}

impl Block {
    /// Assemble a block, computing the transaction root.
    pub fn new(height: u64, prev_hash: Digest, state_ref: Bytes, txns: Vec<Transaction>) -> Block {
        let mut txn_bytes = Vec::new();
        for t in &txns {
            t.encode_into(&mut txn_bytes);
        }
        Block {
            header: BlockHeader {
                height,
                prev_hash,
                state_ref,
                txn_root: hash_bytes(&txn_bytes),
            },
            txns,
        }
    }

    /// The block hash: SHA-256 over the encoded header.
    pub fn hash(&self) -> Digest {
        let mut buf = Vec::with_capacity(128);
        put_varint(&mut buf, self.header.height);
        buf.extend_from_slice(self.header.prev_hash.as_bytes());
        put_bytes(&mut buf, &self.header.state_ref);
        buf.extend_from_slice(self.header.txn_root.as_bytes());
        hash_bytes(&buf)
    }

    /// Serialize for persistence.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, self.header.height);
        out.extend_from_slice(self.header.prev_hash.as_bytes());
        put_bytes(&mut out, &self.header.state_ref);
        out.extend_from_slice(self.header.txn_root.as_bytes());
        put_varint(&mut out, self.txns.len() as u64);
        for t in &self.txns {
            t.encode_into(&mut out);
        }
        out
    }

    /// Deserialize.
    pub fn decode(buf: &[u8]) -> Option<Block> {
        let mut pos = 0usize;
        let height = get_varint(buf, &mut pos)?;
        let prev_hash = Digest::from_slice(buf.get(pos..pos + 32)?)?;
        pos += 32;
        let state_ref = Bytes::copy_from_slice(get_bytes(buf, &mut pos)?);
        let txn_root = Digest::from_slice(buf.get(pos..pos + 32)?)?;
        pos += 32;
        let n = get_varint(buf, &mut pos)? as usize;
        let mut txns = Vec::with_capacity(n);
        for _ in 0..n {
            txns.push(Transaction::decode(buf, &mut pos)?);
        }
        Some(Block {
            header: BlockHeader {
                height,
                prev_hash,
                state_ref,
                txn_root,
            },
            txns,
        })
    }

    /// Verify the chain linkage and txn root of `blocks` (ascending
    /// heights). Returns the first bad height, if any.
    pub fn verify_chain(blocks: &[Block]) -> Option<u64> {
        let mut prev = Digest::ZERO;
        for b in blocks {
            if b.header.prev_hash != prev {
                return Some(b.header.height);
            }
            let recomputed = Block::new(
                b.header.height,
                b.header.prev_hash,
                b.header.state_ref.clone(),
                b.txns.clone(),
            );
            if recomputed.header.txn_root != b.header.txn_root {
                return Some(b.header.height);
            }
            prev = b.hash();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_txns() -> Vec<Transaction> {
        vec![
            Transaction::put("kv", "k1", "v1"),
            Transaction::get("kv", "k2"),
            Transaction {
                contract: "kv".into(),
                ops: vec![
                    TxOp::Get(Bytes::from("a")),
                    TxOp::Put(Bytes::from("b"), Bytes::from("c")),
                ],
            },
        ]
    }

    #[test]
    fn block_encode_round_trip() {
        let block = Block::new(
            7,
            hash_bytes(b"prev"),
            Bytes::from("stateref"),
            sample_txns(),
        );
        let decoded = Block::decode(&block.encode()).expect("valid");
        assert_eq!(decoded, block);
        assert_eq!(decoded.hash(), block.hash());
    }

    #[test]
    fn hash_commits_to_header() {
        let a = Block::new(1, Digest::ZERO, Bytes::from("s"), sample_txns());
        let b = Block::new(2, Digest::ZERO, Bytes::from("s"), sample_txns());
        let c = Block::new(1, Digest::ZERO, Bytes::from("t"), sample_txns());
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn chain_verification() {
        let b0 = Block::new(0, Digest::ZERO, Bytes::from("s0"), vec![]);
        let b1 = Block::new(1, b0.hash(), Bytes::from("s1"), sample_txns());
        let b2 = Block::new(2, b1.hash(), Bytes::from("s2"), vec![]);
        assert_eq!(
            Block::verify_chain(&[b0.clone(), b1.clone(), b2.clone()]),
            None
        );

        // Tamper with the middle block's state: linkage breaks at 2.
        let mut forged = b1.clone();
        forged.header.state_ref = Bytes::from("evil");
        assert_eq!(
            Block::verify_chain(&[b0.clone(), forged, b2.clone()]),
            Some(2)
        );

        // Tamper with transactions: txn root mismatch at 1.
        let mut forged = b1.clone();
        forged.txns.push(Transaction::put("kv", "evil", "injected"));
        assert_eq!(Block::verify_chain(&[b0, forged, b2]), Some(1));
    }

    #[test]
    fn is_write_detects_puts() {
        assert!(Transaction::put("kv", "k", "v").is_write());
        assert!(!Transaction::get("kv", "k").is_write());
    }
}
