//! The Hyperledger trie: a nibble-wise Merkle trie over state keys.
//!
//! "The trie structure exhibits low amplification, but the latency is
//! higher than ForkBase because the structure is not balanced, therefore
//! it may require longer tree traversals during updates" (§6.2.2). Keys
//! with long shared prefixes (like `user00000123`) produce deep paths;
//! every update re-hashes one node per path nibble.

use super::MerkleTree;
use bytes::Bytes;
use forkbase_crypto::{hash_bytes, Digest, Sha256};

#[derive(Clone)]
struct Node {
    children: [Option<usize>; 16],
    value_hash: Option<Digest>,
    hash: Digest,
}

impl Node {
    fn new() -> Node {
        Node {
            children: [None; 16],
            value_hash: None,
            hash: Digest::ZERO,
        }
    }
}

/// A 16-ary Merkle trie keyed by key nibbles.
pub struct MerkleTrie {
    nodes: Vec<Node>,
    root: usize,
    hash_ops: u64,
}

impl Default for MerkleTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl MerkleTrie {
    /// Empty trie.
    pub fn new() -> MerkleTrie {
        MerkleTrie {
            nodes: vec![Node::new()],
            root: 0,
            hash_ops: 0,
        }
    }

    fn nibbles(key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        key.iter()
            .flat_map(|b| [(b >> 4) as usize, (b & 0xf) as usize])
    }

    /// Path depth for a key (diagnostics: the traversal length).
    pub fn depth_of(&self, key: &[u8]) -> usize {
        key.len() * 2
    }

    /// Number of allocated trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn rehash(&mut self, idx: usize) {
        let mut h = Sha256::new();
        for child in self.nodes[idx].children.iter().flatten() {
            h.update(self.nodes[*child].hash.as_bytes());
        }
        if let Some(vh) = &self.nodes[idx].value_hash {
            h.update(vh.as_bytes());
        }
        self.nodes[idx].hash = h.finalize();
        self.hash_ops += 1;
    }
}

impl MerkleTree for MerkleTrie {
    fn update_batch(&mut self, updates: &[(Bytes, Bytes)]) -> Digest {
        for (key, value) in updates {
            // Walk/create the path, remembering it for the re-hash pass.
            let mut path = vec![self.root];
            let mut cur = self.root;
            for nib in Self::nibbles(key) {
                let next = match self.nodes[cur].children[nib] {
                    Some(n) => n,
                    None => {
                        let n = self.nodes.len();
                        self.nodes.push(Node::new());
                        self.nodes[cur].children[nib] = Some(n);
                        n
                    }
                };
                path.push(next);
                cur = next;
            }
            self.nodes[cur].value_hash = Some(hash_bytes(value));
            self.hash_ops += 1;
            // Re-hash the full path bottom-up: one hash per nibble — the
            // "longer traversals" cost.
            for idx in path.into_iter().rev() {
                self.rehash(idx);
            }
        }
        self.root()
    }

    fn root(&self) -> Digest {
        self.nodes[self.root].hash
    }

    fn hash_ops(&self) -> u64 {
        self.hash_ops
    }

    fn name(&self) -> String {
        "trie".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(n: usize, tag: &str) -> Vec<(Bytes, Bytes)> {
        (0..n)
            .map(|i| {
                (
                    Bytes::from(format!("user{i:08}")),
                    Bytes::from(format!("{tag}-{i}")),
                )
            })
            .collect()
    }

    #[test]
    fn root_tracks_state() {
        let mut t = MerkleTrie::new();
        let r0 = t.root();
        let r1 = t.update_batch(&updates(10, "a"));
        assert_ne!(r0, r1);
        let r2 = t.update_batch(&[(Bytes::from("user00000003"), Bytes::from("changed"))]);
        assert_ne!(r1, r2);
    }

    #[test]
    fn same_state_same_root() {
        let mut a = MerkleTrie::new();
        let mut b = MerkleTrie::new();
        let ups = updates(50, "x");
        a.update_batch(&ups);
        // Reverse insertion order reaches the same state.
        let rev: Vec<_> = ups.iter().rev().cloned().collect();
        b.update_batch(&rev);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn update_cost_scales_with_key_depth() {
        let mut t = MerkleTrie::new();
        t.update_batch(&updates(100, "init"));
        let before = t.hash_ops();
        t.update_batch(&[(Bytes::from("user00000050"), Bytes::from("edit"))]);
        let cost = t.hash_ops() - before;
        // 12-byte key = 24 nibbles + root + value hash.
        assert!(cost >= 24, "one hash per path nibble, got {cost}");
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = MerkleTrie::new();
        t.update_batch(&updates(100, "v"));
        // Keys share the "user000000" prefix; far fewer nodes than
        // 100 × 24 nibbles.
        assert!(
            t.node_count() < 100 * 24 / 2,
            "prefix sharing expected, got {} nodes",
            t.node_count()
        );
    }

    #[test]
    fn idempotent_rewrite_keeps_root() {
        let mut t = MerkleTrie::new();
        t.update_batch(&updates(10, "v"));
        let r = t.root();
        t.update_batch(&updates(10, "v"));
        assert_eq!(t.root(), r);
    }
}
