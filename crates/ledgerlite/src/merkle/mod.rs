//! Merkle state-authentication structures of Hyperledger v0.6 (§6.2.2).
//!
//! Hyperledger offers two implementations: a **bucket tree** whose leaf
//! count is fixed at start-up (small bucket counts suffer severe write
//! amplification as state grows — Fig. 11), and a **trie** with low
//! amplification but unbalanced, longer traversals. ForkBase replaces
//! both with its Map objects, which re-balance dynamically.

pub mod bucket;
pub mod trie;

pub use bucket::BucketTree;
pub use trie::MerkleTrie;

use bytes::Bytes;
use forkbase_crypto::Digest;

/// A state-authentication structure: absorb a batch of key/value updates,
/// produce the new authenticated root.
pub trait MerkleTree: Send {
    /// Apply updates and return the new root hash.
    fn update_batch(&mut self, updates: &[(Bytes, Bytes)]) -> Digest;

    /// Current root hash.
    fn root(&self) -> Digest;

    /// Hash computations performed since construction (a proxy for the
    /// write-amplification the paper's Fig. 11 exposes).
    fn hash_ops(&self) -> u64;

    /// Descriptive name for benchmark output.
    fn name(&self) -> String;
}
