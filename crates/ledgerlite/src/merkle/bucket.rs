//! The Hyperledger bucket tree: a Merkle tree over a *fixed* number of
//! hash buckets.
//!
//! "The number of leaves is fixed and pre-determined at start-up time,
//! and the data key's hash determines its bucket number" (§6.2.2). When a
//! key changes, its whole bucket must be re-hashed — with few buckets and
//! many keys this write amplification grows without bound, which is why
//! "for any pre-defined number of buckets, the bucket tree is expected to
//! fail to scale beyond workloads of a certain size".

use super::MerkleTree;
use bytes::Bytes;
use forkbase_crypto::{hash_bytes, Digest, Sha256};
use std::collections::BTreeMap;

/// Bucket Merkle tree with configurable bucket count and fanout.
pub struct BucketTree {
    nb: usize,
    fanout: usize,
    /// Full bucket contents: key → value hash.
    buckets: Vec<BTreeMap<Bytes, Digest>>,
    /// levels[0] = bucket hashes; levels.last() = [root].
    levels: Vec<Vec<Digest>>,
    hash_ops: u64,
}

impl BucketTree {
    /// A tree with `nb` buckets (Hyperledger default fanout-alike of 16).
    pub fn new(nb: usize) -> BucketTree {
        Self::with_fanout(nb, 16)
    }

    /// A tree with explicit interior fanout.
    pub fn with_fanout(nb: usize, fanout: usize) -> BucketTree {
        assert!(nb >= 1 && fanout >= 2);
        let mut levels = Vec::new();
        let mut width = nb;
        levels.push(vec![Digest::ZERO; width]);
        while width > 1 {
            width = width.div_ceil(fanout);
            levels.push(vec![Digest::ZERO; width]);
        }
        BucketTree {
            nb,
            fanout,
            buckets: vec![BTreeMap::new(); nb],
            levels,
            hash_ops: 0,
        }
    }

    /// Which bucket a key belongs to.
    pub fn bucket_of(&self, key: &[u8]) -> usize {
        (hash_bytes(key).prefix_u64() % self.nb as u64) as usize
    }

    /// Keys currently in bucket `i` (the write-amplification factor).
    pub fn bucket_len(&self, i: usize) -> usize {
        self.buckets[i].len()
    }

    fn rehash_bucket(&mut self, i: usize) {
        // The whole bucket content is re-hashed — this is the write
        // amplification.
        let mut h = Sha256::new();
        for (k, vh) in &self.buckets[i] {
            h.update(k);
            h.update(vh.as_bytes());
        }
        self.levels[0][i] = h.finalize();
        self.hash_ops += 1 + self.buckets[i].len() as u64;
    }

    fn rehash_path(&mut self, bucket: usize) {
        let mut idx = bucket;
        for level in 1..self.levels.len() {
            let parent = idx / self.fanout;
            let start = parent * self.fanout;
            let end = (start + self.fanout).min(self.levels[level - 1].len());
            let mut h = Sha256::new();
            for child in &self.levels[level - 1][start..end] {
                h.update(child.as_bytes());
            }
            self.levels[level][parent] = h.finalize();
            self.hash_ops += 1;
            idx = parent;
        }
    }
}

impl MerkleTree for BucketTree {
    fn update_batch(&mut self, updates: &[(Bytes, Bytes)]) -> Digest {
        let mut dirty: Vec<usize> = Vec::new();
        for (key, value) in updates {
            let b = self.bucket_of(key);
            self.buckets[b].insert(key.clone(), hash_bytes(value));
            self.hash_ops += 1; // value hash
            dirty.push(b);
        }
        dirty.sort_unstable();
        dirty.dedup();
        for b in &dirty {
            self.rehash_bucket(*b);
        }
        for b in dirty {
            self.rehash_path(b);
        }
        self.root()
    }

    fn root(&self) -> Digest {
        *self
            .levels
            .last()
            .and_then(|l| l.first())
            .expect("root level exists")
    }

    fn hash_ops(&self) -> u64 {
        self.hash_ops
    }

    fn name(&self) -> String {
        format!("bucket-{}", self.nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(n: usize, tag: &str) -> Vec<(Bytes, Bytes)> {
        (0..n)
            .map(|i| {
                (
                    Bytes::from(format!("key-{i:05}")),
                    Bytes::from(format!("{tag}-{i}")),
                )
            })
            .collect()
    }

    #[test]
    fn root_changes_with_updates() {
        let mut t = BucketTree::new(64);
        let r0 = t.root();
        let r1 = t.update_batch(&updates(10, "a"));
        assert_ne!(r0, r1);
        let r2 = t.update_batch(&updates(10, "b"));
        assert_ne!(r1, r2);
    }

    #[test]
    fn same_state_same_root() {
        let mut a = BucketTree::new(64);
        let mut b = BucketTree::new(64);
        a.update_batch(&updates(100, "x"));
        // Same final state reached in two batches.
        b.update_batch(&updates(50, "x"));
        let second: Vec<_> = updates(100, "x")[50..].to_vec();
        b.update_batch(&second);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn different_bucket_counts_differ_in_amplification() {
        // With 4 buckets and 4000 keys, each update re-hashes ~1000
        // entries; with 4096 buckets, ~1. This is the Fig. 11 effect.
        let mut small = BucketTree::new(4);
        let mut large = BucketTree::new(4096);
        small.update_batch(&updates(4000, "init"));
        large.update_batch(&updates(4000, "init"));
        let (s0, l0) = (small.hash_ops(), large.hash_ops());

        let single = updates(1, "edit");
        small.update_batch(&single);
        large.update_batch(&single);
        let s_cost = small.hash_ops() - s0;
        let l_cost = large.hash_ops() - l0;
        assert!(
            s_cost > l_cost * 20,
            "few buckets amplify writes: {s_cost} vs {l_cost}"
        );
    }

    #[test]
    fn idempotent_rewrite_keeps_root() {
        let mut t = BucketTree::new(16);
        t.update_batch(&updates(20, "v"));
        let r = t.root();
        t.update_batch(&updates(20, "v"));
        assert_eq!(t.root(), r);
    }

    #[test]
    fn single_bucket_tree_works() {
        let mut t = BucketTree::new(1);
        let r1 = t.update_batch(&updates(5, "a"));
        assert_ne!(r1, Digest::ZERO);
    }
}
