//! The state-backend abstraction the ledger runs on.

use crate::types::Block;
use bytes::Bytes;

/// A plain key-value store a [`crate::KvBackend`] can sit on — either
/// [`rockslite::RocksLite`] (the "Rocksdb" configuration) or ForkBase used
/// as a pure KV store (the "ForkBase-KV" configuration).
pub trait KvAdapter: Send + Sync {
    /// Read a key.
    fn kv_get(&self, key: &[u8]) -> Option<Bytes>;

    /// Write a key.
    fn kv_put(&self, key: &[u8], value: &[u8]);

    /// Label for benchmark output.
    fn label(&self) -> String;
}

impl KvAdapter for rockslite::RocksLite {
    fn kv_get(&self, key: &[u8]) -> Option<Bytes> {
        self.get(key).expect("rockslite io")
    }

    fn kv_put(&self, key: &[u8], value: &[u8]) {
        self.put(key, value).expect("rockslite io");
    }

    fn label(&self) -> String {
        "Rocksdb".to_string()
    }
}

/// What the ledger node needs from a state implementation: execution-time
/// reads/buffered writes, block commits, persistence, and the two
/// analytical queries of §6.2.3.
pub trait StateBackend: Send {
    /// Read the *committed* value of a state key (writes are buffered
    /// until commit, per Hyperledger's execution model, §5.1.1).
    fn read(&self, contract: &str, key: &[u8]) -> Option<Bytes>;

    /// Buffer a write; visible after the next commit.
    fn stage(&mut self, contract: &str, key: &[u8], value: Bytes);

    /// Commit all staged writes as block `height`'s state transition;
    /// returns the state reference embedded in the block header (Merkle
    /// root for KV backends, state-Map uid for the ForkBase backend).
    fn commit(&mut self, height: u64) -> Bytes;

    /// Persist a block.
    fn store_block(&mut self, block: &Block);

    /// Load a block by height.
    fn load_block(&self, height: u64) -> Option<Block>;

    /// State scan: the full value history of a key, newest first.
    fn state_scan(&mut self, contract: &str, key: &[u8]) -> Vec<Bytes>;

    /// Block scan: all of a contract's key/value states as of `height`.
    fn block_scan(&mut self, contract: &str, height: u64) -> Vec<(Bytes, Bytes)>;

    /// Label for benchmark output.
    fn label(&self) -> String;
}
