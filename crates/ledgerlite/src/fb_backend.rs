//! The native ForkBase port of Hyperledger's data structures
//! (Figure 7(b)).
//!
//! The Merkle tree and state delta are replaced by ForkBase objects:
//!
//! * each state value lives in its own fork-on-conflict lineage of Blob
//!   FObjects (`s/<contract>/<key>`) — its uid chain *is* the value
//!   history;
//! * a second-level `Map` per contract maps data key → latest value-blob
//!   uid (`m/<contract>`);
//! * a first-level `Map` maps contract id → second-level map uid
//!   (`ledger/state`); the uid of this map's FObject replaces the state
//!   hash in the block header.
//!
//! Benefits reproduced from the paper: tamper evidence comes for free
//! (uids are hash-chained), the commit writes only changed chunks, and
//! both analytical queries follow version pointers instead of scanning
//! the chain.

use crate::backend::StateBackend;
use crate::types::Block;
use bytes::Bytes;
use forkbase_core::{FbError, ForkBase, Value, WriteBatch};
use forkbase_crypto::fx::FxHashMap;
use forkbase_crypto::Digest;
use std::collections::BTreeMap;

fn value_key(contract: &str, key: &[u8]) -> Bytes {
    let mut k = Vec::with_capacity(2 + contract.len() + 1 + key.len());
    k.extend_from_slice(b"s/");
    k.extend_from_slice(contract.as_bytes());
    k.push(0);
    k.extend_from_slice(key);
    Bytes::from(k)
}

fn map_key(contract: &str) -> Bytes {
    Bytes::from(format!("m/{contract}"))
}

const STATE_KEY: &[u8] = b"ledger/state";

fn block_key(height: u64) -> Bytes {
    Bytes::from(format!("block/{height:016}"))
}

/// Hyperledger state natively on ForkBase.
pub struct ForkBaseBackend {
    db: ForkBase,
    staged: BTreeMap<(String, Bytes), Bytes>,
    /// Latest value-FObject uid per state key (the branch-table view).
    latest_value: FxHashMap<(String, Bytes), Digest>,
    /// Latest second-level map FObject uid per contract.
    latest_map: FxHashMap<String, Digest>,
    /// Latest first-level map FObject uid.
    latest_state: Option<Digest>,
}

impl ForkBaseBackend {
    /// Over a fresh in-memory ForkBase, with a ledger-tuned chunking
    /// configuration: state-map entries are tiny (key + 32-byte uid), so
    /// smaller leaf chunks cut the per-commit write amplification — the
    /// paper's "it is beneficial to configure type-specific chunk sizes"
    /// (§4.3.3).
    pub fn in_memory() -> Self {
        let cfg = forkbase_crypto::ChunkerConfig::with_leaf_bits(10);
        Self::new(ForkBase::with_store(
            std::sync::Arc::new(forkbase_chunk::MemStore::new()),
            cfg,
        ))
    }

    /// Over a durable ForkBase in directory `path` (segmented
    /// [`LogStore`](forkbase_chunk::LogStore)), with the same
    /// ledger-tuned chunking as [`in_memory`](Self::in_memory). The
    /// default group-commit durability batches fsyncs across a block's
    /// writes; pass [`Durability::Always`](forkbase_chunk::Durability)
    /// to fsync every chunk. Reads go through the engine's default
    /// sharded chunk cache — block verification re-reads hot state-map
    /// chunks constantly, so the ledger picks the read tier up for free.
    pub fn open_durable(path: impl AsRef<std::path::Path>) -> forkbase_core::Result<Self> {
        Self::open_durable_with(path, forkbase_chunk::Durability::default())
    }

    /// [`open_durable`](Self::open_durable) with an explicit durability
    /// policy.
    pub fn open_durable_with(
        path: impl AsRef<std::path::Path>,
        durability: forkbase_chunk::Durability,
    ) -> forkbase_core::Result<Self> {
        let cfg = forkbase_crypto::ChunkerConfig::with_leaf_bits(10);
        Ok(Self::new(ForkBase::open_with(
            path,
            cfg,
            durability,
            forkbase_chunk::CacheConfig::default(),
            forkbase_core::HotTierConfig::default(),
        )?))
    }

    /// Over an existing ForkBase instance.
    pub fn new(db: ForkBase) -> Self {
        ForkBaseBackend {
            db,
            staged: BTreeMap::new(),
            latest_value: FxHashMap::default(),
            latest_map: FxHashMap::default(),
            latest_state: None,
        }
    }

    /// The underlying engine (for verification in tests/benches).
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    /// Latest state reference (first-level map uid).
    pub fn state_uid(&self) -> Option<Digest> {
        self.latest_state
    }

    fn read_blob_version(&self, key: &Bytes, uid: Digest) -> Option<Bytes> {
        let obj = self.db.get_version(key.clone(), uid).ok()?;
        let blob = obj.value(self.db.store()).ok()?.as_blob().ok()?;
        blob.read_all(self.db.store()).map(Bytes::from)
    }
}

impl StateBackend for ForkBaseBackend {
    fn read(&self, contract: &str, key: &[u8]) -> Option<Bytes> {
        let ck = (contract.to_string(), Bytes::copy_from_slice(key));
        let uid = *self.latest_value.get(&ck)?;
        self.read_blob_version(&value_key(contract, key), uid)
    }

    fn stage(&mut self, contract: &str, key: &[u8], value: Bytes) {
        self.staged
            .insert((contract.to_string(), Bytes::copy_from_slice(key)), value);
    }

    fn commit(&mut self, height: u64) -> Bytes {
        let _ = height;
        let staged = std::mem::take(&mut self.staged);
        // Group per contract for the second-level map updates.
        let mut per_contract: BTreeMap<String, Vec<(Bytes, Digest)>> = BTreeMap::new();

        // Value-level versions for the whole block go through one
        // batched FoC round: every blob is encoded up front and the
        // store sees a single `put_many` instead of per-value commits.
        let mut pending: Vec<(String, Bytes)> = Vec::with_capacity(staged.len());
        let entries: Vec<(Bytes, Option<Digest>, Value)> = staged
            .into_iter()
            .map(|((contract, key), value)| {
                let vk = value_key(&contract, &key);
                let base = self
                    .latest_value
                    .get(&(contract.clone(), key.clone()))
                    .copied();
                let blob = self.db.new_blob_bytes(value);
                pending.push((contract, key));
                (vk, base, Value::Blob(blob))
            })
            .collect();
        let uids = self.db.put_conflict_many(entries).expect("value commits");
        for ((contract, key), uid) in pending.into_iter().zip(uids) {
            self.latest_value
                .insert((contract.clone(), key.clone()), uid);
            per_contract.entry(contract).or_default().push((key, uid));
        }

        // Second-level maps: key -> value uid. All of a contract's state
        // writes for the block land in one WriteBatch, applied as a
        // single multi-range splice over the contract map.
        let mut first_batch = WriteBatch::new();
        for (contract, entries) in per_contract {
            let mk = map_key(&contract);
            let prev_uid = self.latest_map.get(&contract).copied();
            let map = match prev_uid {
                Some(uid) => self
                    .db
                    .get_version(mk.clone(), uid)
                    .and_then(|o| o.value(self.db.store()))
                    .and_then(|v| v.as_map())
                    .expect("previous map intact"),
                None => self.db.new_map(std::iter::empty::<(Bytes, Bytes)>()),
            };
            let mut batch = WriteBatch::with_capacity(entries.len());
            for (key, uid) in entries {
                batch.put(key, Bytes::copy_from_slice(uid.as_bytes()));
            }
            let map = map
                .apply(self.db.store(), self.db.cfg(), batch)
                .expect("contract map chunk missing");
            let map_uid = self
                .db
                .put_conflict(mk, prev_uid, Value::Map(map))
                .expect("map commit");
            self.latest_map.insert(contract.clone(), map_uid);
            first_batch.put(
                Bytes::from(contract),
                Bytes::copy_from_slice(map_uid.as_bytes()),
            );
        }

        // First-level map: contract -> map uid, again one batch splice.
        let prev_state = self.latest_state;
        let first = match prev_state {
            Some(uid) => self
                .db
                .get_version(Bytes::from_static(STATE_KEY), uid)
                .and_then(|o| o.value(self.db.store()))
                .and_then(|v| v.as_map())
                .expect("previous state map intact"),
            None => self.db.new_map(std::iter::empty::<(Bytes, Bytes)>()),
        };
        let first = first
            .apply(self.db.store(), self.db.cfg(), first_batch)
            .expect("state map chunk missing");
        let state_uid = self
            .db
            .put_conflict(Bytes::from_static(STATE_KEY), prev_state, Value::Map(first))
            .expect("state commit");
        self.latest_state = Some(state_uid);
        Bytes::copy_from_slice(state_uid.as_bytes())
    }

    fn store_block(&mut self, block: &Block) {
        let blob = self.db.new_blob_bytes(block.encode());
        self.db
            .put(block_key(block.header.height), None, Value::Blob(blob))
            .expect("block commit");
    }

    fn load_block(&self, height: u64) -> Option<Block> {
        let obj = self.db.get(block_key(height), None).ok()?;
        let blob = obj.value(self.db.store()).ok()?.as_blob().ok()?;
        Block::decode(&blob.read_all(self.db.store())?)
    }

    fn state_scan(&mut self, contract: &str, key: &[u8]) -> Vec<Bytes> {
        // "For state scan query, we simply follow the version number …
        // From there, we follow base version to retrieve the previous
        // values" — no chain scan, no index build.
        let ck = (contract.to_string(), Bytes::copy_from_slice(key));
        let Some(mut uid) = self.latest_value.get(&ck).copied() else {
            return Vec::new();
        };
        let vk = value_key(contract, key);
        let mut out = Vec::new();
        while let Ok(obj) = self.db.get_version(vk.clone(), uid) {
            if let Some(v) = self.read_blob_version(&vk, uid) {
                out.push(v);
            }
            match obj.base() {
                Some(base) => uid = base,
                None => break,
            }
        }
        out
    }

    fn block_scan(&mut self, contract: &str, height: u64) -> Vec<(Bytes, Bytes)> {
        // Follow the state reference in the requested block through the
        // two map levels.
        let Some(block) = self.load_block(height) else {
            return Vec::new();
        };
        let Some(state_uid) = Digest::from_slice(&block.header.state_ref) else {
            return Vec::new();
        };
        let first = self
            .db
            .get_version(Bytes::from_static(STATE_KEY), state_uid)
            .and_then(|o| o.value(self.db.store()))
            .and_then(|v| v.as_map());
        let Ok(first) = first else {
            return Vec::new();
        };
        let Some(map_uid_bytes) = first.get(self.db.store(), contract.as_bytes()) else {
            return Vec::new();
        };
        let Some(map_uid) = Digest::from_slice(&map_uid_bytes) else {
            return Vec::new();
        };
        let second = self
            .db
            .get_version(map_key(contract), map_uid)
            .and_then(|o| o.value(self.db.store()))
            .and_then(|v| v.as_map());
        let Ok(second) = second else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (key, value_uid_bytes) in second.iter(self.db.store()) {
            let Some(value_uid) = Digest::from_slice(&value_uid_bytes) else {
                continue;
            };
            let vk = value_key(contract, &key);
            if let Some(v) = self.read_blob_version(&vk, value_uid) {
                out.push((key, v));
            }
        }
        out
    }

    fn label(&self) -> String {
        "ForkBase".to_string()
    }
}

/// Verify the tamper evidence of the whole committed state: every value
/// lineage from the current state map down to genesis.
pub fn verify_state(backend: &ForkBaseBackend) -> Result<usize, FbError> {
    let Some(state_uid) = backend.state_uid() else {
        return Ok(0);
    };
    let report = forkbase_core::verify_history(backend.db().store(), state_uid)?;
    Ok(report.verified_versions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Transaction;

    fn commit_block(
        backend: &mut ForkBaseBackend,
        h: u64,
        prev: Digest,
        writes: &[(&str, &str)],
    ) -> Block {
        let txns: Vec<Transaction> = writes
            .iter()
            .map(|(k, v)| Transaction::put("kv", k.to_string(), v.to_string()))
            .collect();
        for t in &txns {
            for op in &t.ops {
                if let crate::types::TxOp::Put(k, v) = op {
                    backend.stage(&t.contract, k, v.clone());
                }
            }
        }
        let state_ref = backend.commit(h);
        let block = Block::new(h, prev, state_ref, txns);
        backend.store_block(&block);
        block
    }

    #[test]
    fn durable_ledger_blocks_survive_restart() {
        let dir = std::env::temp_dir().join(format!(
            "ledgerlite-durable-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let (hash0, hash1) = {
            let mut b =
                ForkBaseBackend::open_durable_with(&dir, forkbase_chunk::Durability::Always)
                    .expect("open");
            let blk0 = commit_block(&mut b, 0, Digest::ZERO, &[("a", "1"), ("b", "2")]);
            let blk1 = commit_block(&mut b, 1, blk0.hash(), &[("a", "3")]);
            b.db().commit_checkpoint().expect("checkpoint");
            (blk0.hash(), blk1.hash())
        }; // ledger node restarts here

        let b = ForkBaseBackend::open_durable(&dir).expect("reopen");
        let blk0 = b.load_block(0).expect("block 0 durable");
        let blk1 = b.load_block(1).expect("block 1 durable");
        assert_eq!(blk0.hash(), hash0);
        assert_eq!(blk1.hash(), hash1);
        assert!(
            Block::verify_chain(&[blk0, blk1]).is_none(),
            "hash chain intact after restart"
        );
        drop(b);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn staged_then_committed_reads() {
        let mut b = ForkBaseBackend::in_memory();
        b.stage("kv", b"k", Bytes::from("v1"));
        assert_eq!(b.read("kv", b"k"), None);
        b.commit(0);
        assert_eq!(b.read("kv", b"k"), Some(Bytes::from("v1")));
        b.stage("kv", b"k", Bytes::from("v2"));
        b.commit(1);
        assert_eq!(b.read("kv", b"k"), Some(Bytes::from("v2")));
    }

    #[test]
    fn state_scan_follows_version_chain() {
        let mut b = ForkBaseBackend::in_memory();
        let mut prev = Digest::ZERO;
        for h in 0..6u64 {
            let v = format!("value-{h}");
            let block = commit_block(&mut b, h, prev, &[("hot", &v)]);
            prev = block.hash();
        }
        let history = b.state_scan("kv", b"hot");
        assert_eq!(history.len(), 6);
        assert_eq!(history[0].as_ref(), b"value-5", "newest first");
        assert_eq!(history[5].as_ref(), b"value-0");
        assert_eq!(b.state_scan("kv", b"missing"), Vec::<Bytes>::new());
    }

    #[test]
    fn block_scan_reads_historical_state() {
        let mut b = ForkBaseBackend::in_memory();
        let mut prev = Digest::ZERO;
        let b0 = commit_block(&mut b, 0, prev, &[("a", "a0"), ("b", "b0")]);
        prev = b0.hash();
        let b1 = commit_block(&mut b, 1, prev, &[("a", "a1"), ("c", "c1")]);
        prev = b1.hash();
        commit_block(&mut b, 2, prev, &[("a", "a2")]);

        let at_0 = b.block_scan("kv", 0);
        assert_eq!(at_0.len(), 2);
        assert!(at_0.contains(&(Bytes::from("a"), Bytes::from("a0"))));

        let at_1 = b.block_scan("kv", 1);
        assert_eq!(at_1.len(), 3);
        assert!(at_1.contains(&(Bytes::from("a"), Bytes::from("a1"))));
        assert!(
            at_1.contains(&(Bytes::from("b"), Bytes::from("b0"))),
            "b carried forward"
        );

        let at_2 = b.block_scan("kv", 2);
        assert!(at_2.contains(&(Bytes::from("a"), Bytes::from("a2"))));
        assert_eq!(at_2.len(), 3);
    }

    #[test]
    fn state_is_tamper_evident() {
        let mut b = ForkBaseBackend::in_memory();
        let mut prev = Digest::ZERO;
        for h in 0..3u64 {
            let block = commit_block(&mut b, h, prev, &[("k", "v"), ("k2", "w")]);
            prev = block.hash();
        }
        let versions = verify_state(&b).expect("verifies");
        assert!(versions >= 3, "state map history verified: {versions}");
    }

    #[test]
    fn multiple_contracts_isolated() {
        let mut b = ForkBaseBackend::in_memory();
        b.stage("alpha", b"k", Bytes::from("from-alpha"));
        b.stage("beta", b"k", Bytes::from("from-beta"));
        b.commit(0);
        assert_eq!(b.read("alpha", b"k"), Some(Bytes::from("from-alpha")));
        assert_eq!(b.read("beta", b"k"), Some(Bytes::from("from-beta")));
    }
}
