//! An Ethereum-ish account-state backend over the engine's hot tier.
//!
//! Where [`ForkBaseBackend`](crate::ForkBaseBackend) reproduces the
//! paper's Hyperledger port (per-value Blob lineages under a two-level
//! Map), this backend follows the forkless-database design the Sonic
//! papers argue for: **latest state lives in a flat hash-shaped index**
//! (`ForkBase::hot_get`/`hot_put_many`) and the authenticated POS-Tree
//! is demoted to a sidecar maintained behind it.
//!
//! * all account state is one ForkBase `Map` under `eth/state`, with
//!   subkey `<contract> \0 <key>` — reads and per-block mutations run at
//!   hot-tier (hash-map) speed, never touching the tree;
//! * `commit(height)` enqueues the block's writes as one batch, then
//!   publishes (`flush_hot`) so the block header carries the *committed*
//!   state-Map uid — the tamper-evident state root. Publication cost is
//!   paid once per block, amortized over the block's writes;
//! * the two analytical queries walk the committed version chain exactly
//!   like the native backend, proving the sidecar stays a full ForkBase
//!   citizen: history, block-scan and `verify_history` all still work.
//!
//! The loss window of the hot tier never shows up here: a block is only
//! reported committed after `flush_hot` returns, so a crash can lose at
//! most the current (uncommitted) block — the same guarantee every
//! write-ahead ledger gives.

use crate::backend::StateBackend;
use crate::types::Block;
use bytes::Bytes;
use forkbase_core::{FbError, ForkBase, HotTierConfig, Value};
use forkbase_crypto::Digest;
use std::collections::BTreeMap;

/// The single tree key holding the flat account state.
const STATE_KEY: &[u8] = b"eth/state";

fn subkey(contract: &str, key: &[u8]) -> Bytes {
    let mut k = Vec::with_capacity(contract.len() + 1 + key.len());
    k.extend_from_slice(contract.as_bytes());
    k.push(0);
    k.extend_from_slice(key);
    Bytes::from(k)
}

fn block_key(height: u64) -> Bytes {
    Bytes::from(format!("block/{height:016}"))
}

/// Ledger state on the flat hot tier, POS-Tree as authentication
/// sidecar.
pub struct HotStateBackend {
    db: ForkBase,
    staged: BTreeMap<(String, Bytes), Bytes>,
    /// Committed state-Map uid as of the last block boundary.
    latest_state: Option<Digest>,
}

impl HotStateBackend {
    /// Over a fresh in-memory ForkBase with the hot tier on and the
    /// same ledger-tuned chunking as the native backend.
    pub fn in_memory() -> Self {
        let cfg = forkbase_crypto::ChunkerConfig::with_leaf_bits(10);
        Self::new(ForkBase::with_store_hot(
            std::sync::Arc::new(forkbase_chunk::MemStore::new()),
            cfg,
            HotTierConfig::on(),
        ))
    }

    /// Over a durable ForkBase in directory `path`, hot tier on.
    pub fn open_durable(path: impl AsRef<std::path::Path>) -> forkbase_core::Result<Self> {
        Self::open_durable_with(
            path,
            forkbase_chunk::Durability::default(),
            HotTierConfig::on(),
        )
    }

    /// [`open_durable`](Self::open_durable) with explicit durability and
    /// hot-tier policies. The committed state root is restored from the
    /// checkpointed branch head; the hot tier itself restarts cold —
    /// reads fall through to the tree until writes re-warm it.
    pub fn open_durable_with(
        path: impl AsRef<std::path::Path>,
        durability: forkbase_chunk::Durability,
        hot: HotTierConfig,
    ) -> forkbase_core::Result<Self> {
        let cfg = forkbase_crypto::ChunkerConfig::with_leaf_bits(10);
        Ok(Self::new(ForkBase::open_with(
            path,
            cfg,
            durability,
            forkbase_chunk::CacheConfig::default(),
            hot,
        )?))
    }

    /// Over an existing ForkBase handle (hot tier on or off — with it
    /// off every backend operation degrades to the synchronous tree
    /// path, which the equivalence tests exploit).
    pub fn new(db: ForkBase) -> Self {
        let latest_state = db.head(Bytes::from_static(STATE_KEY), None).ok();
        HotStateBackend {
            db,
            staged: BTreeMap::new(),
            latest_state,
        }
    }

    /// The underlying engine handle.
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    /// Committed state root (state-Map FObject uid) as of the last
    /// block boundary.
    pub fn state_uid(&self) -> Option<Digest> {
        self.latest_state
    }

    fn map_at(&self, uid: Digest) -> Option<forkbase_core::Map> {
        self.db
            .get_version(Bytes::from_static(STATE_KEY), uid)
            .and_then(|o| o.value(self.db.store()))
            .and_then(|v| v.as_map())
            .ok()
    }
}

impl StateBackend for HotStateBackend {
    fn read(&self, contract: &str, key: &[u8]) -> Option<Bytes> {
        // Committed reads at hash-map speed; cold subkeys (e.g. right
        // after a durable reopen) fall through to the tree inside
        // `hot_get`.
        self.db
            .hot_get(Bytes::from_static(STATE_KEY), &subkey(contract, key))
            .expect("hot tier healthy")
    }

    fn stage(&mut self, contract: &str, key: &[u8], value: Bytes) {
        self.staged
            .insert((contract.to_string(), Bytes::copy_from_slice(key)), value);
    }

    fn commit(&mut self, height: u64) -> Bytes {
        let _ = height;
        let staged = std::mem::take(&mut self.staged);
        if !staged.is_empty() {
            let entries: Vec<(Bytes, Option<Bytes>)> = staged
                .into_iter()
                .map(|((contract, key), value)| (subkey(&contract, &key), Some(value)))
                .collect();
            // One enqueue for the whole block, then publish: the block
            // boundary is where the flat tier and the authenticated
            // sidecar are forced to agree.
            self.db
                .hot_put_many(Bytes::from_static(STATE_KEY), entries)
                .expect("block writes accepted");
            self.db.flush_hot().expect("state root published");
            self.latest_state = self.db.head(Bytes::from_static(STATE_KEY), None).ok();
        }
        match self.latest_state {
            Some(uid) => Bytes::copy_from_slice(uid.as_bytes()),
            None => Bytes::copy_from_slice(Digest::ZERO.as_bytes()),
        }
    }

    fn store_block(&mut self, block: &Block) {
        let blob = self.db.new_blob_bytes(block.encode());
        self.db
            .put(block_key(block.header.height), None, Value::Blob(blob))
            .expect("block commit");
    }

    fn load_block(&self, height: u64) -> Option<Block> {
        let obj = self.db.get(block_key(height), None).ok()?;
        let blob = obj.value(self.db.store()).ok()?.as_blob().ok()?;
        Block::decode(&blob.read_all(self.db.store())?)
    }

    fn state_scan(&mut self, contract: &str, key: &[u8]) -> Vec<Bytes> {
        // Walk the committed state-Map version chain, newest first. The
        // flat tier holds only *latest* state; history is exactly what
        // the sidecar is for. Consecutive versions where this subkey
        // didn't change carry the same value, so dedupe adjacently to
        // recover the per-write history.
        let sk = subkey(contract, key);
        let mut out: Vec<Bytes> = Vec::new();
        let mut cursor = self.latest_state;
        while let Some(uid) = cursor {
            let Ok(obj) = self.db.get_version(Bytes::from_static(STATE_KEY), uid) else {
                break;
            };
            if let Some(map) = self.map_at(uid) {
                if let Some(v) = map.get(self.db.store(), &sk) {
                    if out.last() != Some(&v) {
                        out.push(v);
                    }
                }
            }
            cursor = obj.base();
        }
        out
    }

    fn block_scan(&mut self, contract: &str, height: u64) -> Vec<(Bytes, Bytes)> {
        // The block header's state ref is a state-Map uid; a contract's
        // entries are one contiguous subkey range, so the scan is a
        // seek + prefix walk over the committed map.
        let Some(block) = self.load_block(height) else {
            return Vec::new();
        };
        let Some(state_uid) = Digest::from_slice(&block.header.state_ref) else {
            return Vec::new();
        };
        let Some(map) = self.map_at(state_uid) else {
            return Vec::new();
        };
        let prefix = subkey(contract, b"");
        let mut out = Vec::new();
        for (k, v) in map.iter_from(self.db.store(), &prefix) {
            if !k.starts_with(&prefix) {
                break;
            }
            out.push((k.slice(prefix.len()..), v));
        }
        out
    }

    fn label(&self) -> String {
        "ForkBase-Hot".to_string()
    }
}

/// Verify the tamper evidence of the committed state root: the full
/// state-Map version chain down to genesis, every chunk re-hashed.
pub fn verify_hot_state(backend: &HotStateBackend) -> Result<usize, FbError> {
    let Some(state_uid) = backend.state_uid() else {
        return Ok(0);
    };
    let report = forkbase_core::verify_history(backend.db().store(), state_uid)?;
    Ok(report.verified_versions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Transaction;

    fn commit_block(
        backend: &mut HotStateBackend,
        h: u64,
        prev: Digest,
        writes: &[(&str, &str)],
    ) -> Block {
        let txns: Vec<Transaction> = writes
            .iter()
            .map(|(k, v)| Transaction::put("kv", k.to_string(), v.to_string()))
            .collect();
        for t in &txns {
            for op in &t.ops {
                if let crate::types::TxOp::Put(k, v) = op {
                    backend.stage(&t.contract, k, v.clone());
                }
            }
        }
        let state_ref = backend.commit(h);
        let block = Block::new(h, prev, state_ref, txns);
        backend.store_block(&block);
        block
    }

    #[test]
    fn staged_then_committed_reads() {
        let mut b = HotStateBackend::in_memory();
        b.stage("kv", b"k", Bytes::from("v1"));
        assert_eq!(b.read("kv", b"k"), None, "writes buffered until commit");
        b.commit(0);
        assert_eq!(b.read("kv", b"k"), Some(Bytes::from("v1")));
        b.stage("kv", b"k", Bytes::from("v2"));
        b.commit(1);
        assert_eq!(b.read("kv", b"k"), Some(Bytes::from("v2")));
    }

    #[test]
    fn state_scan_follows_version_chain() {
        let mut b = HotStateBackend::in_memory();
        let mut prev = Digest::ZERO;
        for h in 0..6u64 {
            let v = format!("value-{h}");
            let block = commit_block(&mut b, h, prev, &[("acct", &v)]);
            prev = block.hash();
        }
        let history = b.state_scan("kv", b"acct");
        assert_eq!(history.len(), 6);
        assert_eq!(history[0].as_ref(), b"value-5", "newest first");
        assert_eq!(history[5].as_ref(), b"value-0");
        assert_eq!(b.state_scan("kv", b"missing"), Vec::<Bytes>::new());
    }

    #[test]
    fn block_scan_reads_historical_state() {
        let mut b = HotStateBackend::in_memory();
        let mut prev = Digest::ZERO;
        let b0 = commit_block(&mut b, 0, prev, &[("a", "a0"), ("b", "b0")]);
        prev = b0.hash();
        let b1 = commit_block(&mut b, 1, prev, &[("a", "a1"), ("c", "c1")]);
        prev = b1.hash();
        commit_block(&mut b, 2, prev, &[("a", "a2")]);

        let at_0 = b.block_scan("kv", 0);
        assert_eq!(at_0.len(), 2);
        assert!(at_0.contains(&(Bytes::from("a"), Bytes::from("a0"))));

        let at_1 = b.block_scan("kv", 1);
        assert_eq!(at_1.len(), 3);
        assert!(at_1.contains(&(Bytes::from("a"), Bytes::from("a1"))));
        assert!(
            at_1.contains(&(Bytes::from("b"), Bytes::from("b0"))),
            "b carried forward"
        );

        let at_2 = b.block_scan("kv", 2);
        assert!(at_2.contains(&(Bytes::from("a"), Bytes::from("a2"))));
        assert_eq!(at_2.len(), 3);
    }

    #[test]
    fn state_root_is_tamper_evident() {
        let mut b = HotStateBackend::in_memory();
        let mut prev = Digest::ZERO;
        for h in 0..3u64 {
            let block = commit_block(&mut b, h, prev, &[("k", "v"), ("k2", "w")]);
            prev = block.hash();
        }
        let versions = verify_hot_state(&b).expect("verifies");
        assert!(versions >= 3, "state root history verified: {versions}");
    }

    #[test]
    fn hot_and_native_backends_agree_on_committed_state() {
        // Same block sequence into both designs: reads and block scans
        // must agree even though the storage layouts differ entirely.
        let mut hot = HotStateBackend::in_memory();
        let mut native = crate::ForkBaseBackend::in_memory();
        let writes: [&[(&str, &str)]; 3] = [
            &[("a", "a0"), ("b", "b0")],
            &[("a", "a1"), ("c", "c1")],
            &[("b", "b2")],
        ];
        let (mut ph, mut pn) = (Digest::ZERO, Digest::ZERO);
        for (h, ws) in writes.iter().enumerate() {
            ph = commit_block(&mut hot, h as u64, ph, ws).hash();
            let txns: Vec<Transaction> = ws
                .iter()
                .map(|(k, v)| Transaction::put("kv", k.to_string(), v.to_string()))
                .collect();
            for t in &txns {
                for op in &t.ops {
                    if let crate::types::TxOp::Put(k, v) = op {
                        native.stage(&t.contract, k, v.clone());
                    }
                }
            }
            let sr = native.commit(h as u64);
            let blk = Block::new(h as u64, pn, sr, txns);
            native.store_block(&blk);
            pn = blk.hash();
        }
        for k in [b"a".as_ref(), b"b", b"c", b"zz"] {
            assert_eq!(hot.read("kv", k), native.read("kv", k), "key {k:?}");
        }
        for h in 0..3u64 {
            let mut hs = hot.block_scan("kv", h);
            let mut ns = native.block_scan("kv", h);
            hs.sort();
            ns.sort();
            assert_eq!(hs, ns, "block scan at height {h}");
        }
    }

    #[test]
    fn durable_ledger_restores_state_root_and_reads_cold() {
        let dir = std::env::temp_dir().join(format!(
            "ledgerlite-hot-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let (hash0, state_uid) = {
            let mut b = HotStateBackend::open_durable_with(
                &dir,
                forkbase_chunk::Durability::Always,
                HotTierConfig::on(),
            )
            .expect("open");
            let blk0 = commit_block(&mut b, 0, Digest::ZERO, &[("a", "1"), ("b", "2")]);
            let blk1 = commit_block(&mut b, 1, blk0.hash(), &[("a", "3")]);
            b.db().commit_checkpoint().expect("checkpoint");
            let _ = blk1;
            (blk0.hash(), b.state_uid().expect("committed root"))
        }; // node restarts here; hot tier restarts cold

        let b = HotStateBackend::open_durable(&dir).expect("reopen");
        assert_eq!(b.state_uid(), Some(state_uid), "state root restored");
        assert_eq!(b.load_block(0).expect("block 0").hash(), hash0);
        // Cold read: nothing is in the hot tier yet, so this falls
        // through to the committed tree.
        assert_eq!(b.read("kv", b"a"), Some(Bytes::from("3")));
        assert_eq!(b.read("kv", b"b"), Some(Bytes::from("2")));
        drop(b);
        std::fs::remove_dir_all(dir).ok();
    }
}
