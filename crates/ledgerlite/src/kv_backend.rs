//! The Hyperledger v0.6 state design (Figure 7(a)) over a plain KV store:
//! current state entries, a Merkle tree for authentication, and per-block
//! *state deltas* holding old values.
//!
//! Analytical queries have no index: a state scan or block scan must
//! first parse every block and delta in the chain to build one in memory
//! ("we implemented both queries in Hyperledger by adding a pre-processing
//! step that parses all the internal structures of all the blocks and
//! constructs an in-memory index", §5.1.2).

use crate::backend::{KvAdapter, StateBackend};
use crate::merkle::MerkleTree;
use crate::types::Block;
use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, get_varint, put_bytes, put_varint};
use forkbase_core::{ForkBase, Value};
use forkbase_crypto::fx::FxHashMap;
use std::collections::BTreeMap;

/// ForkBase used as a *pure* key-value store — the paper's "ForkBase-KV"
/// configuration. Every value is stored as a Blob object on the default
/// branch, so the storage layer hashes and chunks content that the
/// application layer has already hashed for its Merkle tree ("overhead
/// from doing hash computation both inside and outside of the storage
/// layer", §6.2.1).
pub struct ForkBaseKvAdapter {
    db: ForkBase,
}

impl ForkBaseKvAdapter {
    /// Wrap a ForkBase instance.
    pub fn new(db: ForkBase) -> Self {
        ForkBaseKvAdapter { db }
    }
}

impl KvAdapter for ForkBaseKvAdapter {
    fn kv_get(&self, key: &[u8]) -> Option<Bytes> {
        let obj = self.db.get(Bytes::copy_from_slice(key), None).ok()?;
        let blob = obj.value(self.db.store()).ok()?.as_blob().ok()?;
        blob.read_all(self.db.store()).map(Bytes::from)
    }

    fn kv_put(&self, key: &[u8], value: &[u8]) {
        let blob = self.db.new_blob(value);
        self.db
            .put(Bytes::copy_from_slice(key), None, Value::Blob(blob))
            .expect("forkbase put");
    }

    fn label(&self) -> String {
        "ForkBase-KV".to_string()
    }
}

/// One entry of a state delta: `(contract, key, old value)`.
type DeltaEntry = (String, Bytes, Option<Bytes>);

fn encode_delta(entries: &[DeltaEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, entries.len() as u64);
    for (contract, key, old) in entries {
        put_bytes(&mut out, contract.as_bytes());
        put_bytes(&mut out, key);
        match old {
            Some(v) => {
                out.push(1);
                put_bytes(&mut out, v);
            }
            None => out.push(0),
        }
    }
    out
}

fn decode_delta(buf: &[u8]) -> Option<Vec<DeltaEntry>> {
    let mut pos = 0usize;
    let n = get_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let contract = String::from_utf8(get_bytes(buf, &mut pos)?.to_vec()).ok()?;
        let key = Bytes::copy_from_slice(get_bytes(buf, &mut pos)?);
        let tag = *buf.get(pos)?;
        pos += 1;
        let old = match tag {
            1 => Some(Bytes::copy_from_slice(get_bytes(buf, &mut pos)?)),
            _ => None,
        };
        out.push((contract, key, old));
    }
    Some(out)
}

fn state_key(contract: &str, key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + contract.len() + 1 + key.len());
    k.extend_from_slice(b"s:");
    k.extend_from_slice(contract.as_bytes());
    k.push(0);
    k.extend_from_slice(key);
    k
}

fn delta_key(height: u64) -> Vec<u8> {
    format!("delta:{height:016}").into_bytes()
}

fn block_key(height: u64) -> Vec<u8> {
    format!("block:{height:016}").into_bytes()
}

/// The lazily built analytics index: per (contract, key), the value at
/// each height where it changed, ascending.
struct ScanIndex {
    history: FxHashMap<(String, Bytes), Vec<(u64, Bytes)>>,
    built_at_height: u64,
}

/// Hyperledger-style state over any [`KvAdapter`].
pub struct KvBackend<K: KvAdapter> {
    kv: K,
    merkle: Box<dyn MerkleTree>,
    staged: BTreeMap<(String, Bytes), Bytes>,
    height: u64,
    index: Option<ScanIndex>,
}

impl<K: KvAdapter> KvBackend<K> {
    /// Assemble over a KV store and a Merkle tree implementation.
    pub fn new(kv: K, merkle: Box<dyn MerkleTree>) -> Self {
        KvBackend {
            kv,
            merkle,
            staged: BTreeMap::new(),
            height: 0,
            index: None,
        }
    }

    /// The Merkle structure (for Fig. 11 instrumentation).
    pub fn merkle(&self) -> &dyn MerkleTree {
        self.merkle.as_ref()
    }

    /// Pre-processing pass: parse every block + delta into an in-memory
    /// history index. This is the dominant cost of the first analytical
    /// query on the KV backends (Fig. 12).
    fn ensure_index(&mut self) {
        if self
            .index
            .as_ref()
            .map(|i| i.built_at_height == self.height)
            .unwrap_or(false)
        {
            return;
        }
        let mut history: FxHashMap<(String, Bytes), Vec<(u64, Bytes)>> = FxHashMap::default();
        // Walk the whole chain: each block's transactions carry the new
        // values; deltas carry the old ones (used to seed keys whose first
        // change predates the scan window — here all values come from
        // txns, deltas validate the parse).
        for h in 0..self.height {
            let Some(block) = self.load_block(h) else {
                continue;
            };
            // Parse the delta too, as real Hyperledger pre-processing
            // must (it holds the authoritative old values).
            let _delta = self.kv.kv_get(&delta_key(h)).and_then(|d| decode_delta(&d));
            for txn in &block.txns {
                for op in &txn.ops {
                    if let crate::types::TxOp::Put(k, v) = op {
                        let versions = history
                            .entry((txn.contract.clone(), k.clone()))
                            .or_default();
                        // Within one block the last write wins (writes are
                        // buffered and the commit stores the final value),
                        // so the committed history has one entry per block.
                        match versions.last_mut() {
                            Some((prev_h, prev_v)) if *prev_h == h => *prev_v = v.clone(),
                            _ => versions.push((h, v.clone())),
                        }
                    }
                }
            }
        }
        self.index = Some(ScanIndex {
            history,
            built_at_height: self.height,
        });
    }
}

impl<K: KvAdapter> StateBackend for KvBackend<K> {
    fn read(&self, contract: &str, key: &[u8]) -> Option<Bytes> {
        self.kv.kv_get(&state_key(contract, key))
    }

    fn stage(&mut self, contract: &str, key: &[u8], value: Bytes) {
        self.staged
            .insert((contract.to_string(), Bytes::copy_from_slice(key)), value);
    }

    fn commit(&mut self, height: u64) -> Bytes {
        // 1. Collect deltas (old values) and Merkle updates.
        let mut delta: Vec<DeltaEntry> = Vec::with_capacity(self.staged.len());
        let mut merkle_updates: Vec<(Bytes, Bytes)> = Vec::with_capacity(self.staged.len());
        for ((contract, key), value) in &self.staged {
            let sk = state_key(contract, key);
            delta.push((contract.clone(), key.clone(), self.kv.kv_get(&sk)));
            let mut composite = Vec::with_capacity(contract.len() + 1 + key.len());
            composite.extend_from_slice(contract.as_bytes());
            composite.push(0);
            composite.extend_from_slice(key);
            merkle_updates.push((Bytes::from(composite), value.clone()));
        }

        // 2. New Merkle tree root.
        let root = self.merkle.update_batch(&merkle_updates);

        // 3. Persist delta, then the new state values.
        self.kv.kv_put(&delta_key(height), &encode_delta(&delta));
        let staged = std::mem::take(&mut self.staged);
        for ((contract, key), value) in staged {
            self.kv.kv_put(&state_key(&contract, &key), &value);
        }

        self.height = height + 1;
        self.index = None;
        Bytes::copy_from_slice(root.as_bytes())
    }

    fn store_block(&mut self, block: &Block) {
        self.kv
            .kv_put(&block_key(block.header.height), &block.encode());
        self.height = self.height.max(block.header.height + 1);
    }

    fn load_block(&self, height: u64) -> Option<Block> {
        Block::decode(&self.kv.kv_get(&block_key(height))?)
    }

    fn state_scan(&mut self, contract: &str, key: &[u8]) -> Vec<Bytes> {
        self.ensure_index();
        let index = self.index.as_ref().expect("just built");
        match index
            .history
            .get(&(contract.to_string(), Bytes::copy_from_slice(key)))
        {
            Some(versions) => versions.iter().rev().map(|(_, v)| v.clone()).collect(),
            None => Vec::new(),
        }
    }

    fn block_scan(&mut self, contract: &str, height: u64) -> Vec<(Bytes, Bytes)> {
        self.ensure_index();
        let index = self.index.as_ref().expect("just built");
        let mut out = Vec::new();
        for ((c, key), versions) in &index.history {
            if c != contract {
                continue;
            }
            // Latest value at or before `height`.
            let at = versions.partition_point(|(h, _)| *h <= height);
            if at > 0 {
                out.push((key.clone(), versions[at - 1].1.clone()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn label(&self) -> String {
        format!("{}({})", self.kv.label(), self.merkle.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle::BucketTree;
    use crate::types::Transaction;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "ledgerlite-kvb-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn rocks_backend(tag: &str) -> (KvBackend<rockslite::RocksLite>, PathBuf) {
        let dir = temp_dir(tag);
        let kv = rockslite::RocksLite::open(&dir).expect("open");
        (KvBackend::new(kv, Box::new(BucketTree::new(64))), dir)
    }

    #[test]
    fn staged_writes_invisible_until_commit() {
        let (mut b, dir) = rocks_backend("stage");
        b.stage("kv", b"k", Bytes::from("v1"));
        assert_eq!(b.read("kv", b"k"), None, "buffered, not committed");
        b.commit(0);
        assert_eq!(b.read("kv", b"k"), Some(Bytes::from("v1")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn commit_changes_state_ref() {
        let (mut b, dir) = rocks_backend("root");
        b.stage("kv", b"k", Bytes::from("v1"));
        let r1 = b.commit(0);
        b.stage("kv", b"k", Bytes::from("v2"));
        let r2 = b.commit(1);
        assert_ne!(r1, r2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn delta_round_trip() {
        let entries: Vec<DeltaEntry> = vec![
            ("kv".into(), Bytes::from("a"), Some(Bytes::from("old"))),
            ("kv".into(), Bytes::from("b"), None),
        ];
        assert_eq!(decode_delta(&encode_delta(&entries)), Some(entries));
    }

    #[test]
    fn blocks_persist() {
        let (mut b, dir) = rocks_backend("blocks");
        let block = Block::new(
            0,
            forkbase_crypto::Digest::ZERO,
            Bytes::from("ref"),
            vec![Transaction::put("kv", "k", "v")],
        );
        b.store_block(&block);
        assert_eq!(b.load_block(0), Some(block));
        assert_eq!(b.load_block(1), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scans_via_preprocessing_index() {
        let (mut b, dir) = rocks_backend("scan");
        let mut prev = forkbase_crypto::Digest::ZERO;
        for h in 0..5u64 {
            let txns = vec![
                Transaction::put("kv", "hot", format!("hot-{h}")),
                Transaction::put("kv", format!("key-{h}"), format!("val-{h}")),
            ];
            for t in &txns {
                for op in &t.ops {
                    if let crate::types::TxOp::Put(k, v) = op {
                        b.stage(&t.contract, k, v.clone());
                    }
                }
            }
            let state_ref = b.commit(h);
            let block = Block::new(h, prev, state_ref, txns);
            prev = block.hash();
            b.store_block(&block);
        }

        let history = b.state_scan("kv", b"hot");
        assert_eq!(history.len(), 5);
        assert_eq!(history[0].as_ref(), b"hot-4", "newest first");
        assert_eq!(history[4].as_ref(), b"hot-0");

        let at_2 = b.block_scan("kv", 2);
        // keys: hot, key-0, key-1, key-2
        assert_eq!(at_2.len(), 4);
        let hot = at_2
            .iter()
            .find(|(k, _)| k.as_ref() == b"hot")
            .expect("hot");
        assert_eq!(hot.1.as_ref(), b"hot-2");

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn forkbase_kv_adapter_round_trip() {
        let adapter = ForkBaseKvAdapter::new(ForkBase::in_memory());
        adapter.kv_put(b"key", b"value bytes");
        assert_eq!(adapter.kv_get(b"key"), Some(Bytes::from("value bytes")));
        adapter.kv_put(b"key", b"updated");
        assert_eq!(adapter.kv_get(b"key"), Some(Bytes::from("updated")));
        assert_eq!(adapter.kv_get(b"missing"), None);
    }
}
