//! **ledgerlite** — a blockchain platform with the data structures of
//! Hyperledger v0.6 (Figure 7(a) of the ForkBase paper) and the ForkBase
//! port of them (Figure 7(b)).
//!
//! The ledger is a hash chain of blocks over a key-value smart-contract
//! state. Three interchangeable state backends reproduce the paper's
//! three systems under test (§6.2):
//!
//! * [`KvBackend`] over [`rockslite`] — the original design: current
//!   state, Merkle tree (bucket tree or trie) and per-block state deltas
//!   all stored in an LSM KV store ("Rocksdb" in the figures);
//! * [`KvBackend`] over [`ForkBaseKvAdapter`] — the same design with
//!   ForkBase used as a *pure* key-value store ("ForkBase-KV": hash
//!   computation happens both inside and outside the storage layer);
//! * [`ForkBaseBackend`] — the native port: Merkle tree and state delta
//!   replaced by two levels of ForkBase `Map` objects whose uids are
//!   tamper-evident state references, making state-scan and block-scan
//!   queries index-backed instead of full-chain scans ("ForkBase").

pub mod backend;
pub mod fb_backend;
pub mod hot_backend;
pub mod kv_backend;
pub mod merkle;
pub mod node;
pub mod types;

pub use backend::{KvAdapter, StateBackend};
pub use fb_backend::ForkBaseBackend;
pub use hot_backend::{verify_hot_state, HotStateBackend};
pub use kv_backend::{ForkBaseKvAdapter, KvBackend};
pub use merkle::{BucketTree, MerkleTree, MerkleTrie};
pub use node::{LedgerNode, OpTimings};
pub use types::{Block, BlockHeader, Transaction, TxOp};
