//! Property tests: rockslite behaves like a `BTreeMap` under arbitrary
//! operation sequences, across flushes, compactions and reopens.

use bytes::Bytes;
use proptest::prelude::*;
use rockslite::{Options, RocksLite};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "rockslite-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Small limits so flush/compaction trigger constantly.
fn tiny_opts() -> Options {
    Options {
        memtable_bytes: 512,
        l0_compaction_trigger: 2,
        ..Options::default()
    }
}

#[derive(Clone, Debug)]
enum DbOp {
    Put(String, String),
    Del(String),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        4 => ("[a-d]{1,4}", "[a-z]{0,16}").prop_map(|(k, v)| DbOp::Put(k, v)),
        2 => "[a-d]{1,4}".prop_map(DbOp::Del),
        1 => Just(DbOp::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let dir = temp_dir("model");
        let db = RocksLite::open_with(&dir, tiny_opts()).expect("open");
        let mut model: BTreeMap<String, String> = BTreeMap::new();

        for op in &ops {
            match op {
                DbOp::Put(k, v) => {
                    db.put(k.as_bytes(), v.as_bytes()).expect("put");
                    model.insert(k.clone(), v.clone());
                }
                DbOp::Del(k) => {
                    db.delete(k.as_bytes()).expect("del");
                    model.remove(k);
                }
                DbOp::Flush => db.flush().expect("flush"),
            }
        }

        // Point lookups agree.
        for k in model.keys() {
            let got = db.get(k.as_bytes()).expect("get");
            prop_assert_eq!(got.as_deref(), model.get(k).map(|v| v.as_bytes()));
        }
        // Scans agree (sorted, tombstones elided).
        let scanned: Vec<(Bytes, Bytes)> = db.scan_all().expect("scan");
        let expected: Vec<(Bytes, Bytes)> = model
            .iter()
            .map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone())))
            .collect();
        prop_assert_eq!(scanned, expected);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn survives_reopen(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let dir = temp_dir("reopen");
        let mut model: BTreeMap<String, String> = BTreeMap::new();
        {
            let db = RocksLite::open_with(&dir, tiny_opts()).expect("open");
            for op in &ops {
                match op {
                    DbOp::Put(k, v) => {
                        db.put(k.as_bytes(), v.as_bytes()).expect("put");
                        model.insert(k.clone(), v.clone());
                    }
                    DbOp::Del(k) => {
                        db.delete(k.as_bytes()).expect("del");
                        model.remove(k);
                    }
                    DbOp::Flush => db.flush().expect("flush"),
                }
            }
            // No explicit flush at the end: the WAL must carry the tail.
        }
        let db = RocksLite::open_with(&dir, tiny_opts()).expect("reopen");
        for k in model.keys() {
            let got = db.get(k.as_bytes()).expect("get");
            prop_assert_eq!(got.as_deref(), model.get(k).map(|v| v.as_bytes()));
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
