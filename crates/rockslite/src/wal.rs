//! Write-ahead log: every mutation is appended here before entering the
//! memtable, so an unflushed memtable survives a crash.
//!
//! Record: `[crc32-like check u32][klen u32][vtag u8][vlen u32][key][value]`.
//! The check is an FxHash of the record body truncated to 32 bits — enough
//! to detect torn tails, which are truncated on replay.

use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

fn checksum(body: &[u8]) -> u32 {
    let mut h = forkbase_crypto::fx::FxHasher::default();
    h.write(body);
    h.finish() as u32
}

/// Append-only mutation log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl Wal {
    /// Open (creating if missing) and return the log plus all intact
    /// records recovered from it.
    #[allow(clippy::type_complexity)]
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Wal, Vec<(Bytes, Option<Bytes>)>)> {
        let path = path.as_ref().to_path_buf();
        let mut existing = Vec::new();
        if path.exists() {
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            let mut valid_end = 0usize;
            while buf.len() - pos >= 13 {
                let check = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4"));
                let klen =
                    u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4")) as usize;
                let vtag = buf[pos + 8];
                let vlen =
                    u32::from_le_bytes(buf[pos + 9..pos + 13].try_into().expect("4")) as usize;
                let body_len = klen + if vtag == 1 { vlen } else { 0 };
                if buf.len() - pos < 13 + body_len {
                    break; // torn tail
                }
                let body = &buf[pos + 4..pos + 13 + body_len];
                if checksum(body) != check {
                    break;
                }
                let key = Bytes::copy_from_slice(&buf[pos + 13..pos + 13 + klen]);
                let value = if vtag == 1 {
                    Some(Bytes::copy_from_slice(
                        &buf[pos + 13 + klen..pos + 13 + body_len],
                    ))
                } else {
                    None
                };
                existing.push((key, value));
                pos += 13 + body_len;
                valid_end = pos;
            }
            if valid_end < buf.len() {
                // Drop the torn tail.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_end as u64)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Wal {
                path,
                writer: BufWriter::new(file),
            },
            existing,
        ))
    }

    fn encode_record(out: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
        let klen = key.len() as u32;
        let (vtag, vlen, vbytes): (u8, u32, &[u8]) = match value {
            Some(v) => (1, v.len() as u32, v),
            None => (0, 0, &[]),
        };
        let body_start = out.len() + 4;
        out.extend_from_slice(&[0u8; 4]); // checksum placeholder
        out.extend_from_slice(&klen.to_le_bytes());
        out.push(vtag);
        out.extend_from_slice(&vlen.to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(vbytes);
        let check = checksum(&out[body_start..]);
        out[body_start - 4..body_start].copy_from_slice(&check.to_le_bytes());
    }

    /// Append one mutation.
    pub fn append(&mut self, key: &[u8], value: Option<&[u8]>) -> std::io::Result<()> {
        let mut record = Vec::with_capacity(13 + key.len() + value.map_or(0, <[u8]>::len));
        Self::encode_record(&mut record, key, value);
        self.writer.write_all(&record)
    }

    /// Append a whole batch of mutations as one buffered write. Record
    /// framing is identical to per-record [`append`](Self::append) calls
    /// — replay cannot tell the difference — but the batch is encoded
    /// into a single buffer and handed to the writer once.
    pub fn append_batch(&mut self, batch: &[(Bytes, Option<Bytes>)]) -> std::io::Result<()> {
        let total: usize = batch
            .iter()
            .map(|(k, v)| 13 + k.len() + v.as_ref().map_or(0, |v| v.len()))
            .sum();
        let mut buf = Vec::with_capacity(total);
        for (key, value) in batch {
            Self::encode_record(&mut buf, key, value.as_deref());
        }
        self.writer.write_all(&buf)
    }

    /// Flush buffered appends.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Flush and fsync: the appended records survive a power loss, not
    /// just a process crash.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }

    /// Truncate after a successful memtable flush.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let f = OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(0)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "rockslite-wal-{tag}-{}-{}.log",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn replay_recovers_records() {
        let path = temp("replay");
        {
            let (mut wal, existing) = Wal::open(&path).expect("open");
            assert!(existing.is_empty());
            wal.append(b"k1", Some(b"v1")).expect("append");
            wal.append(b"k2", None).expect("append");
            wal.flush().expect("flush");
        }
        let (_, recovered) = Wal::open(&path).expect("reopen");
        assert_eq!(
            recovered,
            vec![
                (Bytes::from("k1"), Some(Bytes::from("v1"))),
                (Bytes::from("k2"), None),
            ]
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_truncated() {
        let path = temp("torn");
        {
            let (mut wal, _) = Wal::open(&path).expect("open");
            wal.append(b"good", Some(b"record")).expect("append");
            wal.flush().expect("flush");
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("raw");
            f.write_all(&[1, 2, 3, 4, 5]).expect("garbage");
        }
        let (mut wal, recovered) = Wal::open(&path).expect("recover");
        assert_eq!(recovered.len(), 1);
        // Appendable after recovery.
        wal.append(b"after", Some(b"crash")).expect("append");
        wal.flush().expect("flush");
        drop(wal);
        let (_, recovered) = Wal::open(&path).expect("reopen");
        assert_eq!(recovered.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn batch_append_replays_like_single_appends() {
        let path_a = temp("batch-a");
        let path_b = temp("batch-b");
        let batch: Vec<(Bytes, Option<Bytes>)> = vec![
            (Bytes::from("k1"), Some(Bytes::from("v1"))),
            (Bytes::from("k2"), None),
            (Bytes::from("k3"), Some(Bytes::from(vec![7u8; 300]))),
        ];
        {
            let (mut wal, _) = Wal::open(&path_a).expect("open");
            wal.append_batch(&batch).expect("batch");
            wal.flush().expect("flush");
        }
        {
            let (mut wal, _) = Wal::open(&path_b).expect("open");
            for (k, v) in &batch {
                wal.append(k, v.as_deref()).expect("append");
            }
            wal.flush().expect("flush");
        }
        assert_eq!(
            std::fs::read(&path_a).expect("a"),
            std::fs::read(&path_b).expect("b"),
            "identical framing"
        );
        let (_, recovered) = Wal::open(&path_a).expect("reopen");
        assert_eq!(recovered, batch);
        std::fs::remove_file(path_a).ok();
        std::fs::remove_file(path_b).ok();
    }

    #[test]
    fn reset_empties_log() {
        let path = temp("reset");
        let (mut wal, _) = Wal::open(&path).expect("open");
        wal.append(b"k", Some(b"v")).expect("append");
        wal.reset().expect("reset");
        wal.append(b"k2", Some(b"v2")).expect("append");
        wal.flush().expect("flush");
        drop(wal);
        let (_, recovered) = Wal::open(&path).expect("reopen");
        assert_eq!(
            recovered,
            vec![(Bytes::from("k2"), Some(Bytes::from("v2")))]
        );
        std::fs::remove_file(path).ok();
    }
}
