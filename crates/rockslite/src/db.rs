//! The LSM database: memtable + WAL → L0 tables → compacted L1 run.

use crate::memtable::MemTable;
use crate::sstable::SsTable;
use crate::wal::Wal;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct Options {
    /// Flush the memtable when it exceeds this size.
    pub memtable_bytes: usize,
    /// Compact L0 into L1 when this many L0 tables accumulate.
    pub l0_compaction_trigger: usize,
    /// fsync the WAL after every `put`/`delete`/`write_batch` (RocksDB's
    /// `WriteOptions::sync`). Off by default: the WAL still survives a
    /// process crash (buffered writes reach the OS), but a power loss
    /// may drop the unsynced tail.
    pub sync_writes: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_bytes: 4 << 20, // 4 MB
            l0_compaction_trigger: 4,
            sync_writes: false,
        }
    }
}

/// Observable state, for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbStats {
    /// Entries in the active memtable.
    pub memtable_entries: usize,
    /// Number of level-0 tables.
    pub l0_tables: usize,
    /// Whether a level-1 run exists.
    pub has_l1: bool,
    /// Flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Total data bytes across all tables.
    pub table_bytes: u64,
}

struct Inner {
    memtable: MemTable,
    wal: Wal,
    /// Newest first.
    l0: Vec<SsTable>,
    l1: Option<SsTable>,
    next_file: u64,
}

/// A from-scratch LSM-tree key-value store.
pub struct RocksLite {
    dir: PathBuf,
    opts: Options,
    inner: Mutex<Inner>,
    flushes: AtomicU64,
    compactions: AtomicU64,
}

impl RocksLite {
    /// Open (or create) a database in `dir`, replaying the WAL and
    /// reloading existing tables.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<RocksLite> {
        Self::open_with(dir, Options::default())
    }

    /// Open with explicit options.
    pub fn open_with(dir: impl AsRef<Path>, opts: Options) -> std::io::Result<RocksLite> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // Reload tables: names are `l0-<seq>.sst` / `l1-<seq>.sst`.
        let mut l0_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut l1_files: Vec<(u64, PathBuf)> = Vec::new();
        let mut next_file = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let parse = |prefix: &str| -> Option<u64> {
                name.strip_prefix(prefix)?
                    .strip_suffix(".sst")?
                    .parse()
                    .ok()
            };
            if let Some(seq) = parse("l0-") {
                next_file = next_file.max(seq + 1);
                l0_files.push((seq, path));
            } else if let Some(seq) = parse("l1-") {
                next_file = next_file.max(seq + 1);
                l1_files.push((seq, path));
            }
        }
        l0_files.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq)); // newest first
        l1_files.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
        let l0 = l0_files
            .into_iter()
            .map(|(_, p)| SsTable::open(p))
            .collect::<std::io::Result<Vec<_>>>()?;
        // Only the newest L1 run is live; older ones are leftovers from an
        // interrupted compaction.
        let mut l1 = None;
        for (i, (_, path)) in l1_files.iter().enumerate() {
            if i == 0 {
                l1 = Some(SsTable::open(path)?);
            } else {
                std::fs::remove_file(path).ok();
            }
        }

        let (wal, recovered) = Wal::open(dir.join("wal.log"))?;
        let mut memtable = MemTable::new();
        for (k, v) in recovered {
            memtable.insert(k, v);
        }

        Ok(RocksLite {
            dir,
            opts,
            inner: Mutex::new(Inner {
                memtable,
                wal,
                l0,
                l1,
                next_file,
            }),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        })
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        self.write(key, Some(value))
    }

    /// Delete a key (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> std::io::Result<()> {
        self.write(key, None)
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        inner.wal.append(key, value)?;
        if self.opts.sync_writes {
            inner.wal.sync()?;
        }
        inner.memtable.insert(
            Bytes::copy_from_slice(key),
            value.map(Bytes::copy_from_slice),
        );
        if inner.memtable.approx_bytes() >= self.opts.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Apply a batch atomically w.r.t. readers (single lock hold), like
    /// RocksDB's WriteBatch. The whole batch is encoded into one WAL
    /// write instead of one append per key.
    pub fn write_batch(&self, batch: &[(Bytes, Option<Bytes>)]) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        inner.wal.append_batch(batch)?;
        if self.opts.sync_writes {
            inner.wal.sync()?;
        }
        for (k, v) in batch {
            inner.memtable.insert(k.clone(), v.clone());
        }
        if inner.memtable.approx_bytes() >= self.opts.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Point lookup: memtable, then L0 newest→oldest, then L1 — the
    /// multi-level read path whose cost the paper's Fig. 9(a) reflects.
    pub fn get(&self, key: &[u8]) -> std::io::Result<Option<Bytes>> {
        let inner = self.inner.lock();
        if let Some(entry) = inner.memtable.get(key) {
            return Ok(entry.clone());
        }
        for table in &inner.l0 {
            if let Some(entry) = table.get(key)? {
                return Ok(entry);
            }
        }
        if let Some(l1) = &inner.l1 {
            if let Some(entry) = l1.get(key)? {
                return Ok(entry);
            }
        }
        Ok(None)
    }

    /// Force the memtable to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let memtable = std::mem::take(&mut inner.memtable);
        let entries = memtable.into_sorted();
        let seq = inner.next_file;
        inner.next_file += 1;
        let path = self.dir.join(format!("l0-{seq}.sst"));
        let table = SsTable::write(&path, &entries)?;
        inner.l0.insert(0, table); // newest first
        inner.wal.reset()?;
        self.flushes.fetch_add(1, Ordering::Relaxed);

        if inner.l0.len() >= self.opts.l0_compaction_trigger {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    /// Merge all L0 tables and the L1 run into a new L1 run, dropping
    /// shadowed values and tombstones.
    fn compact_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        // Oldest data first so newer levels overwrite.
        if let Some(l1) = &inner.l1 {
            for (k, v) in l1.scan_all()? {
                merged.insert(k, v);
            }
        }
        for table in inner.l0.iter().rev() {
            for (k, v) in table.scan_all()? {
                merged.insert(k, v);
            }
        }
        // Bottom level: tombstones can be dropped entirely.
        let live: Vec<(Bytes, Option<Bytes>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();

        let old_files: Vec<PathBuf> = inner
            .l0
            .iter()
            .map(|t| t.path().to_path_buf())
            .chain(inner.l1.iter().map(|t| t.path().to_path_buf()))
            .collect();

        if live.is_empty() {
            inner.l0.clear();
            inner.l1 = None;
        } else {
            let seq = inner.next_file;
            inner.next_file += 1;
            let path = self.dir.join(format!("l1-{seq}.sst"));
            let table = SsTable::write(&path, &live)?;
            inner.l0.clear();
            inner.l1 = Some(table);
        }
        for f in old_files {
            std::fs::remove_file(f).ok();
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Full sorted scan across all levels (latest value per key,
    /// tombstones elided).
    pub fn scan_all(&self) -> std::io::Result<Vec<(Bytes, Bytes)>> {
        let inner = self.inner.lock();
        let mut merged: BTreeMap<Bytes, Option<Bytes>> = BTreeMap::new();
        if let Some(l1) = &inner.l1 {
            for (k, v) in l1.scan_all()? {
                merged.insert(k, v);
            }
        }
        for table in inner.l0.iter().rev() {
            for (k, v) in table.scan_all()? {
                merged.insert(k, v);
            }
        }
        for (k, v) in inner.memtable.iter() {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Stats snapshot.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.lock();
        DbStats {
            memtable_entries: inner.memtable.len(),
            l0_tables: inner.l0.len(),
            has_l1: inner.l1.is_some(),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            table_bytes: inner.l0.iter().map(|t| t.data_bytes()).sum::<u64>()
                + inner.l1.as_ref().map(|t| t.data_bytes()).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: TestCounter = TestCounter::new(0);
        std::env::temp_dir().join(format!(
            "rockslite-db-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn small_opts() -> Options {
        Options {
            memtable_bytes: 4096,
            l0_compaction_trigger: 3,
            ..Options::default()
        }
    }

    #[test]
    fn sync_writes_survive_unflushed_drop() {
        let dir = temp_dir("syncw");
        {
            let db = RocksLite::open_with(
                &dir,
                Options {
                    sync_writes: true,
                    ..Options::default()
                },
            )
            .expect("open");
            // No flush(): sync_writes must make every put durable on its
            // own.
            db.put(b"k1", b"v1").expect("put");
            db.write_batch(&[
                (Bytes::from("k2"), Some(Bytes::from("v2"))),
                (Bytes::from("k1"), None),
            ])
            .expect("batch");
        }
        let db = RocksLite::open(&dir).expect("reopen");
        assert_eq!(db.get(b"k1").expect("get"), None, "tombstone replayed");
        assert_eq!(db.get(b"k2").expect("get"), Some(Bytes::from("v2")));
        drop(db);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn put_get_delete() {
        let dir = temp_dir("basic");
        let db = RocksLite::open(&dir).expect("open");
        db.put(b"k1", b"v1").expect("put");
        assert_eq!(db.get(b"k1").expect("get"), Some(Bytes::from("v1")));
        db.put(b"k1", b"v2").expect("put");
        assert_eq!(db.get(b"k1").expect("get"), Some(Bytes::from("v2")));
        db.delete(b"k1").expect("del");
        assert_eq!(db.get(b"k1").expect("get"), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reads_across_flush_and_compaction() {
        let dir = temp_dir("levels");
        let db = RocksLite::open_with(&dir, small_opts()).expect("open");
        for i in 0..2000u32 {
            db.put(
                format!("key-{i:05}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .expect("put");
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "memtable flushed");
        assert!(stats.compactions > 0, "compaction ran");
        for i in (0..2000u32).step_by(97) {
            assert_eq!(
                db.get(format!("key-{i:05}").as_bytes()).expect("get"),
                Some(Bytes::from(format!("value-{i}"))),
                "key {i}"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn tombstones_shadow_lower_levels() {
        let dir = temp_dir("tomb");
        let db = RocksLite::open_with(&dir, small_opts()).expect("open");
        db.put(b"victim", b"alive").expect("put");
        db.flush().expect("flush"); // value now in a table
        db.delete(b"victim").expect("del"); // tombstone in memtable
        assert_eq!(db.get(b"victim").expect("get"), None);
        db.flush().expect("flush"); // tombstone in newer table
        assert_eq!(db.get(b"victim").expect("get"), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_from_wal() {
        let dir = temp_dir("recover");
        {
            let db = RocksLite::open(&dir).expect("open");
            db.put(b"durable", b"yes").expect("put");
            db.put(b"gone", b"soon").expect("put");
            db.delete(b"gone").expect("del");
            // Dropped without flush: WAL only.
        }
        let db = RocksLite::open(&dir).expect("reopen");
        assert_eq!(db.get(b"durable").expect("get"), Some(Bytes::from("yes")));
        assert_eq!(db.get(b"gone").expect("get"), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_from_tables() {
        let dir = temp_dir("recover2");
        {
            let db = RocksLite::open_with(&dir, small_opts()).expect("open");
            for i in 0..1000u32 {
                db.put(format!("k{i:04}").as_bytes(), b"v").expect("put");
            }
            db.flush().expect("flush");
        }
        let db = RocksLite::open_with(&dir, small_opts()).expect("reopen");
        for i in (0..1000u32).step_by(111) {
            assert!(db
                .get(format!("k{i:04}").as_bytes())
                .expect("get")
                .is_some());
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scan_all_merges_levels() {
        let dir = temp_dir("scan");
        let db = RocksLite::open_with(&dir, small_opts()).expect("open");
        for i in 0..500u32 {
            db.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                .expect("put");
        }
        db.delete(b"k0100").expect("del");
        let all = db.scan_all().expect("scan");
        assert_eq!(all.len(), 499);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique");
        assert!(!all.iter().any(|(k, _)| k.as_ref() == b"k0100"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn write_batch_is_atomic_snapshot() {
        let dir = temp_dir("batch");
        let db = RocksLite::open(&dir).expect("open");
        let batch: Vec<(Bytes, Option<Bytes>)> = (0..100)
            .map(|i| {
                (
                    Bytes::from(format!("b{i:03}")),
                    Some(Bytes::from(format!("v{i}"))),
                )
            })
            .collect();
        db.write_batch(&batch).expect("batch");
        assert_eq!(db.get(b"b000").expect("get"), Some(Bytes::from("v0")));
        assert_eq!(db.get(b"b099").expect("get"), Some(Bytes::from("v99")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn model_check_against_btreemap() {
        let dir = temp_dir("model");
        let db = RocksLite::open_with(&dir, small_opts()).expect("open");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut state = 99u64;
        for _ in 0..3000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = format!("key-{:03}", (state >> 33) % 250);
            let op = (state >> 20) % 10;
            if op < 7 {
                let v = format!("val-{state}");
                model.insert(k.as_bytes().to_vec(), v.as_bytes().to_vec());
                db.put(k.as_bytes(), v.as_bytes()).expect("put");
            } else {
                model.remove(k.as_bytes());
                db.delete(k.as_bytes()).expect("del");
            }
        }
        for i in 0..250 {
            let k = format!("key-{i:03}");
            let got = db.get(k.as_bytes()).expect("get").map(|b| b.to_vec());
            assert_eq!(got, model.get(k.as_bytes()).cloned(), "key {k}");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
