//! The in-memory write buffer.
//!
//! A sorted map of key → entry, where an entry is either a value or a
//! tombstone (needed so deletes shadow older values in lower levels until
//! compaction drops them).

use bytes::Bytes;
use std::collections::BTreeMap;

/// `None` = tombstone.
pub type Entry = Option<Bytes>;

/// Sorted in-memory buffer; flushed to an SSTable when full.
#[derive(Default)]
pub struct MemTable {
    map: BTreeMap<Bytes, Entry>,
    approx_bytes: usize,
}

impl MemTable {
    /// Empty memtable.
    pub fn new() -> MemTable {
        MemTable::default()
    }

    /// Insert a value or tombstone.
    pub fn insert(&mut self, key: Bytes, value: Entry) {
        let add = key.len() + value.as_ref().map(|v| v.len()).unwrap_or(0) + 16;
        if let Some(old) = self.map.insert(key, value) {
            self.approx_bytes = self
                .approx_bytes
                .saturating_sub(old.map(|v| v.len()).unwrap_or(0));
        }
        self.approx_bytes += add;
    }

    /// Look up a key. Outer `None` = not in this memtable; inner `None` =
    /// tombstone.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Rough memory footprint, used for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Entry)> {
        self.map.iter()
    }

    /// Drain into a sorted entry list for flushing.
    pub fn into_sorted(self) -> Vec<(Bytes, Entry)> {
        self.map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut mt = MemTable::new();
        mt.insert(Bytes::from("a"), Some(Bytes::from("1")));
        mt.insert(Bytes::from("a"), Some(Bytes::from("2")));
        assert_eq!(mt.get(b"a"), Some(&Some(Bytes::from("2"))));
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn tombstones_are_entries() {
        let mut mt = MemTable::new();
        mt.insert(Bytes::from("a"), Some(Bytes::from("1")));
        mt.insert(Bytes::from("a"), None);
        assert_eq!(mt.get(b"a"), Some(&None), "tombstone visible");
        assert_eq!(mt.get(b"b"), None, "absent key distinct from tombstone");
    }

    #[test]
    fn iteration_is_sorted() {
        let mut mt = MemTable::new();
        for k in ["delta", "alpha", "charlie", "bravo"] {
            mt.insert(Bytes::from(k), Some(Bytes::from("x")));
        }
        let keys: Vec<_> = mt.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut mt = MemTable::new();
        let before = mt.approx_bytes();
        mt.insert(Bytes::from("key"), Some(Bytes::from(vec![0u8; 100])));
        assert!(mt.approx_bytes() > before + 100);
    }
}
