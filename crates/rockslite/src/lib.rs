//! **rockslite** — a compact log-structured merge-tree (LSM) key-value
//! store, built from scratch as the RocksDB/LevelDB stand-in for the
//! ForkBase paper's blockchain baseline (§6.2).
//!
//! Hyperledger v0.6 stores its state, Merkle trees and state deltas in
//! RocksDB; the paper's comparison hinges on two LSM behaviours that this
//! crate preserves faithfully:
//!
//! * **multi-level reads** — a Get may probe the memtable, several L0
//!   tables and the L1 run ("stores data in multiple levels … and requires
//!   traversing them to retrieve the key", §6.2.1), and
//! * **fast batched writes** — writes hit the WAL and memtable only, with
//!   background-style flush/compaction amortizing the sort.
//!
//! Architecture: a mutable memtable (skip-list stand-in: `BTreeMap`)
//! guarded by a WAL; immutable SSTables with bloom filters and sparse
//! indexes at level 0 (overlapping, newest first); a single sorted run at
//! level 1 produced by merging compaction.
//!
//! ```
//! let dir = std::env::temp_dir().join(format!("rockslite-doc-{}", std::process::id()));
//! let db = rockslite::RocksLite::open(&dir).unwrap();
//! db.put(b"k1", b"v1").unwrap();
//! assert_eq!(db.get(b"k1").unwrap().as_deref(), Some(&b"v1"[..]));
//! db.delete(b"k1").unwrap();
//! assert_eq!(db.get(b"k1").unwrap(), None);
//! # std::fs::remove_dir_all(dir).ok();
//! ```

pub mod bloom;
pub mod db;
pub mod memtable;
pub mod sstable;
pub mod wal;

pub use db::{DbStats, Options, RocksLite};
