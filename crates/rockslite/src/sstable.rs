//! Immutable sorted-string tables.
//!
//! File layout:
//! ```text
//! [data block:  ([klen u32][vtag u8][vlen u32][key][value])* ]
//! [index block: ([klen u32][key][offset u64])*  — every Nth key ]
//! [bloom block]
//! [footer: index_off u64, index_len u64, bloom_off u64, bloom_len u64,
//!          count u64, magic u32]
//! ```
//! The sparse index and bloom filter are held in memory; point lookups
//! read one data region from disk.

use crate::bloom::Bloom;
use bytes::Bytes;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x55_71_AB_1E; // "SsTable"
const INDEX_EVERY: usize = 16;

/// A written, immutable table.
pub struct SsTable {
    path: PathBuf,
    /// Sparse index: (first key of region, file offset).
    index: Vec<(Bytes, u64)>,
    bloom: Bloom,
    /// Offset where the data blocks end (= index block start).
    data_end: u64,
    /// Entry count.
    pub count: u64,
    /// Smallest and largest key (inclusive) — used for level placement.
    pub key_range: (Bytes, Bytes),
}

impl SsTable {
    /// Write a new table from sorted entries (`None` value = tombstone).
    pub fn write(
        path: impl AsRef<Path>,
        entries: &[(Bytes, Option<Bytes>)],
    ) -> std::io::Result<SsTable> {
        assert!(!entries.is_empty(), "SSTables are never empty");
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "sorted unique keys"
        );
        let path = path.as_ref().to_path_buf();
        let mut w = BufWriter::new(File::create(&path)?);

        let mut bloom = Bloom::new(entries.len(), 10);
        let mut index: Vec<(Bytes, u64)> = Vec::new();
        let mut offset = 0u64;
        for (i, (key, value)) in entries.iter().enumerate() {
            if i % INDEX_EVERY == 0 {
                index.push((key.clone(), offset));
            }
            bloom.insert(key);
            let (vtag, vbytes): (u8, &[u8]) = match value {
                Some(v) => (1, v),
                None => (0, &[]),
            };
            w.write_all(&(key.len() as u32).to_le_bytes())?;
            w.write_all(&[vtag])?;
            w.write_all(&(vbytes.len() as u32).to_le_bytes())?;
            w.write_all(key)?;
            w.write_all(vbytes)?;
            offset += 9 + key.len() as u64 + vbytes.len() as u64;
        }
        let data_end = offset;

        // Index block.
        let index_off = data_end;
        let mut index_len = 0u64;
        for (key, off) in &index {
            w.write_all(&(key.len() as u32).to_le_bytes())?;
            w.write_all(key)?;
            w.write_all(&off.to_le_bytes())?;
            index_len += 4 + key.len() as u64 + 8;
        }

        // Bloom block.
        let bloom_bytes = bloom.encode();
        let bloom_off = index_off + index_len;
        w.write_all(&bloom_bytes)?;

        // Footer.
        w.write_all(&index_off.to_le_bytes())?;
        w.write_all(&index_len.to_le_bytes())?;
        w.write_all(&bloom_off.to_le_bytes())?;
        w.write_all(&(bloom_bytes.len() as u64).to_le_bytes())?;
        w.write_all(&(entries.len() as u64).to_le_bytes())?;
        w.write_all(&MAGIC.to_le_bytes())?;
        w.flush()?;
        w.get_ref().sync_data()?;

        Ok(SsTable {
            path,
            index,
            bloom,
            data_end,
            count: entries.len() as u64,
            key_range: (entries[0].0.clone(), entries[entries.len() - 1].0.clone()),
        })
    }

    /// Open an existing table, loading index and bloom into memory.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<SsTable> {
        let path = path.as_ref().to_path_buf();
        let mut f = File::open(&path)?;
        let file_len = f.metadata()?.len();
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        if file_len < 44 {
            return Err(bad("file too small"));
        }
        f.seek(SeekFrom::Start(file_len - 44))?;
        let mut footer = [0u8; 44];
        f.read_exact(&mut footer)?;
        if u32::from_le_bytes(footer[40..44].try_into().expect("4")) != MAGIC {
            return Err(bad("bad magic"));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().expect("8"));
        let index_len = u64::from_le_bytes(footer[8..16].try_into().expect("8"));
        let bloom_off = u64::from_le_bytes(footer[16..24].try_into().expect("8"));
        let bloom_len = u64::from_le_bytes(footer[24..32].try_into().expect("8"));
        let count = u64::from_le_bytes(footer[32..40].try_into().expect("8"));

        f.seek(SeekFrom::Start(index_off))?;
        let mut index_buf = vec![0u8; index_len as usize];
        f.read_exact(&mut index_buf)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < index_buf.len() {
            if index_buf.len() - pos < 4 {
                return Err(bad("truncated index"));
            }
            let klen = u32::from_le_bytes(index_buf[pos..pos + 4].try_into().expect("4")) as usize;
            pos += 4;
            if index_buf.len() - pos < klen + 8 {
                return Err(bad("truncated index entry"));
            }
            let key = Bytes::copy_from_slice(&index_buf[pos..pos + klen]);
            pos += klen;
            let off = u64::from_le_bytes(index_buf[pos..pos + 8].try_into().expect("8"));
            pos += 8;
            index.push((key, off));
        }

        f.seek(SeekFrom::Start(bloom_off))?;
        let mut bloom_buf = vec![0u8; bloom_len as usize];
        f.read_exact(&mut bloom_buf)?;
        let bloom = Bloom::decode(&bloom_buf).ok_or_else(|| bad("bad bloom block"))?;

        // Recover the key range from first/last data entries.
        let entries = read_region(&mut f, 0, index_off)?;
        let key_range = match (entries.first(), entries.last()) {
            (Some(first), Some(last)) => (first.0.clone(), last.0.clone()),
            _ => return Err(bad("empty table")),
        };

        Ok(SsTable {
            path,
            index,
            bloom,
            data_end: index_off,
            count,
            key_range,
        })
    }

    /// Point lookup. Outer `None` = not present in this table; inner
    /// `None` = tombstone.
    #[allow(clippy::option_option)]
    pub fn get(&self, key: &[u8]) -> std::io::Result<Option<Option<Bytes>>> {
        if key < self.key_range.0.as_ref() || key > self.key_range.1.as_ref() {
            return Ok(None);
        }
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Last index entry with first_key <= key.
        let slot = match self.index.partition_point(|(k, _)| k.as_ref() <= key) {
            0 => return Ok(None),
            n => n - 1,
        };
        let start = self.index[slot].1;
        let end = self
            .index
            .get(slot + 1)
            .map(|(_, off)| *off)
            .unwrap_or(self.data_end);
        let mut f = File::open(&self.path)?;
        let entries = read_region(&mut f, start, end)?;
        for (k, v) in entries {
            match k.as_ref().cmp(key) {
                std::cmp::Ordering::Equal => return Ok(Some(v)),
                std::cmp::Ordering::Greater => return Ok(None),
                std::cmp::Ordering::Less => {}
            }
        }
        Ok(None)
    }

    /// Read every entry (for compaction / full scans), in key order.
    pub fn scan_all(&self) -> std::io::Result<Vec<(Bytes, Option<Bytes>)>> {
        let mut f = File::open(&self.path)?;
        read_region(&mut f, 0, self.data_end)
    }

    /// Backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Size of the data section in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_end
    }
}

fn read_region(f: &mut File, start: u64, end: u64) -> std::io::Result<Vec<(Bytes, Option<Bytes>)>> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    f.seek(SeekFrom::Start(start))?;
    let mut buf = vec![0u8; (end - start) as usize];
    f.read_exact(&mut buf)?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        if buf.len() - pos < 9 {
            return Err(bad("truncated entry header"));
        }
        let klen = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4")) as usize;
        let vtag = buf[pos + 4];
        let vlen = u32::from_le_bytes(buf[pos + 5..pos + 9].try_into().expect("4")) as usize;
        pos += 9;
        let body = klen + if vtag == 1 { vlen } else { 0 };
        if buf.len() - pos < body {
            return Err(bad("truncated entry body"));
        }
        let key = Bytes::copy_from_slice(&buf[pos..pos + klen]);
        let value = if vtag == 1 {
            Some(Bytes::copy_from_slice(&buf[pos + klen..pos + body]))
        } else {
            None
        };
        out.push((key, value));
        pos += body;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "rockslite-sst-{tag}-{}-{}.sst",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn entries(n: usize) -> Vec<(Bytes, Option<Bytes>)> {
        (0..n)
            .map(|i| {
                let v = if i % 7 == 3 {
                    None // sprinkle tombstones
                } else {
                    Some(Bytes::from(format!("value-{i}")))
                };
                (Bytes::from(format!("key-{i:06}")), v)
            })
            .collect()
    }

    #[test]
    fn write_then_get() {
        let path = temp("get");
        let data = entries(500);
        let table = SsTable::write(&path, &data).expect("write");
        for (k, v) in &data {
            assert_eq!(table.get(k).expect("io").as_ref(), Some(v), "key {k:?}");
        }
        assert_eq!(table.get(b"missing").expect("io"), None);
        assert_eq!(table.get(b"key-999999").expect("io"), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_round_trip() {
        let path = temp("open");
        let data = entries(200);
        {
            SsTable::write(&path, &data).expect("write");
        }
        let table = SsTable::open(&path).expect("open");
        assert_eq!(table.count, 200);
        assert_eq!(table.key_range.0.as_ref(), b"key-000000");
        for (k, v) in data.iter().step_by(17) {
            assert_eq!(table.get(k).expect("io").as_ref(), Some(v));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_all_returns_everything_sorted() {
        let path = temp("scan");
        let data = entries(300);
        let table = SsTable::write(&path, &data).expect("write");
        let scanned = table.scan_all().expect("scan");
        assert_eq!(scanned, data);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn single_entry_table() {
        let path = temp("single");
        let data = vec![(Bytes::from("only"), Some(Bytes::from("one")))];
        let table = SsTable::write(&path, &data).expect("write");
        assert_eq!(
            table.get(b"only").expect("io"),
            Some(Some(Bytes::from("one")))
        );
        assert_eq!(table.get(b"a").expect("io"), None);
        assert_eq!(table.get(b"z").expect("io"), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_rejects_corrupt_file() {
        let path = temp("corrupt");
        std::fs::write(&path, b"not an sstable").expect("write");
        assert!(SsTable::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
