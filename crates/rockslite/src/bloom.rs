//! Bloom filter for SSTable point-lookup short-circuiting.

use std::hash::Hasher;

/// A classic Bloom filter with double hashing (Kirsch–Mitzenmacher).
#[derive(Clone, Debug)]
pub struct Bloom {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
}

impl Bloom {
    /// Size the filter for `n` expected keys at ~`bits_per_key` bits each
    /// (10 bits/key ≈ 1% false-positive rate).
    pub fn new(n: usize, bits_per_key: usize) -> Bloom {
        let n_bits = ((n.max(1) * bits_per_key) as u64)
            .next_multiple_of(64)
            .max(64);
        // Optimal k = ln2 · bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 8);
        Bloom {
            bits: vec![0u64; (n_bits / 64) as usize],
            n_bits,
            k,
        }
    }

    fn hashes(key: &[u8]) -> (u64, u64) {
        let mut h1 = forkbase_crypto::fx::FxHasher::default();
        h1.write(key);
        let a = h1.finish();
        // Derive an independent second hash by mixing.
        let mut z = a.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (a, z ^ (z >> 31))
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Membership test: false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.k {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.n_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialize: `[k u32][n_bits u64][words…]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.n_bits.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Bloom> {
        if buf.len() < 12 {
            return None;
        }
        let k = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let n_bits = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let words = (n_bits / 64) as usize;
        if buf.len() != 12 + words * 8 || k == 0 || n_bits % 64 != 0 {
            return None;
        }
        let bits = buf[12..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Some(Bloom { bits, n_bits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = Bloom::new(1000, 10);
        for i in 0..1000u32 {
            bloom.insert(format!("key-{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(bloom.may_contain(format!("key-{i}").as_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bloom = Bloom::new(10_000, 10);
        for i in 0..10_000u32 {
            bloom.insert(format!("present-{i}").as_bytes());
        }
        let fp = (0..10_000u32)
            .filter(|i| bloom.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        assert!(fp < 300, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn encode_round_trip() {
        let mut bloom = Bloom::new(100, 10);
        for i in 0..100u32 {
            bloom.insert(&i.to_le_bytes());
        }
        let decoded = Bloom::decode(&bloom.encode()).expect("valid");
        for i in 0..100u32 {
            assert!(decoded.may_contain(&i.to_le_bytes()));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Bloom::decode(&[]).is_none());
        assert!(Bloom::decode(&[1, 2, 3]).is_none());
        let mut good = Bloom::new(10, 10).encode();
        good.pop();
        assert!(Bloom::decode(&good).is_none());
    }
}
