//! Synthetic relational dataset generation (§6.4).
//!
//! The paper's collaborative-analytics dataset: 5M records of ~180 bytes
//! loaded from CSV — a 12-byte primary key, two integer fields, and
//! textual fields of variable length. We generate the same shape at a
//! configurable scale.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// 12-byte primary key, e.g. `pk-00001234`.
    pub pk: String,
    /// First integer field.
    pub qty: i64,
    /// Second integer field.
    pub price: i64,
    /// Variable-length textual field.
    pub descr: String,
    /// Second textual field.
    pub region: String,
}

impl Record {
    /// CSV line (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.pk, self.qty, self.price, self.descr, self.region
        )
    }

    /// Parse a CSV line produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(line: &str) -> Option<Record> {
        let mut parts = line.splitn(5, ',');
        Some(Record {
            pk: parts.next()?.to_string(),
            qty: parts.next()?.parse().ok()?,
            price: parts.next()?.parse().ok()?,
            descr: parts.next()?.to_string(),
            region: parts.next()?.to_string(),
        })
    }

    /// Row encoding used by the storage layers: the CSV body as bytes.
    pub fn encode(&self) -> Bytes {
        Bytes::from(self.to_csv())
    }
}

/// Deterministic dataset generator.
pub struct DatasetGen {
    rng: StdRng,
}

impl DatasetGen {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> DatasetGen {
        DatasetGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn text(&mut self, min: usize, max: usize) -> String {
        const FRAGMENTS: &[&str] = &[
            "acme", "widget", "gadget", "prime", "ultra", "mega", "eco", "smart", "pro", "basic",
            "deluxe", "classic",
        ];
        let target = self.rng.gen_range(min..=max);
        let mut s = String::with_capacity(target + 8);
        while s.len() < target {
            s.push_str(FRAGMENTS[self.rng.gen_range(0..FRAGMENTS.len())]);
            s.push('-');
        }
        s.truncate(target);
        s
    }

    /// The primary key for row index `i` (12 bytes, zero padded, sorted
    /// order == row order).
    pub fn pk(i: usize) -> String {
        format!("pk-{i:09}")
    }

    /// Generate record `i`.
    pub fn record(&mut self, i: usize) -> Record {
        Record {
            pk: Self::pk(i),
            qty: self.rng.gen_range(0..1000),
            price: self.rng.gen_range(1..100_000),
            descr: self.text(60, 120),
            region: self.text(10, 30),
        }
    }

    /// Generate `n` records in primary-key order.
    pub fn records(&mut self, n: usize) -> Vec<Record> {
        (0..n).map(|i| self.record(i)).collect()
    }

    /// Whole dataset as a CSV string with a header line.
    pub fn to_csv(records: &[Record]) -> String {
        let mut out = String::from("pk,qty,price,descr,region\n");
        for r in records {
            out.push_str(&r.to_csv());
            out.push('\n');
        }
        out
    }

    /// Parse a CSV produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(csv: &str) -> Vec<Record> {
        csv.lines().skip(1).filter_map(Record::from_csv).collect()
    }

    /// Pick `count` distinct record indices to modify, and a mutation for
    /// each (changes the price field and the description).
    /// Modify a contiguous run of `count` records starting at a random
    /// offset — the update pattern of a batch transformation (data
    /// cleansing / enrichment passes touch ranges, not random points).
    /// Contiguous updates are also the pattern where chunk-level
    /// deduplication shines: the space increment approaches the raw size
    /// of the changed records instead of a whole chunk per record.
    pub fn modifications_range(&mut self, n_records: usize, count: usize) -> Vec<(usize, Record)> {
        let count = count.min(n_records);
        let start = if count == n_records {
            0
        } else {
            self.rng.gen_range(0..n_records - count)
        };
        (start..start + count)
            .map(|i| {
                let mut rec = self.record(i);
                rec.price = self.rng.gen_range(100_000..200_000);
                rec.descr = self.text(60, 120);
                (i, rec)
            })
            .collect()
    }

    pub fn modifications(&mut self, n_records: usize, count: usize) -> Vec<(usize, Record)> {
        let mut indices: Vec<usize> = (0..n_records).collect();
        // Partial Fisher–Yates for the first `count` positions.
        for i in 0..count.min(n_records) {
            let j = self.rng.gen_range(i..n_records);
            indices.swap(i, j);
        }
        indices.truncate(count.min(n_records));
        indices
            .into_iter()
            .map(|i| {
                let mut rec = self.record(i);
                rec.price = self.rng.gen_range(100_000..200_000);
                rec.descr = self.text(60, 120);
                (i, rec)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_shape_matches_paper() {
        let mut g = DatasetGen::new(1);
        let recs = g.records(200);
        let avg: usize = recs.iter().map(|r| r.to_csv().len()).sum::<usize>() / recs.len();
        assert!(
            (120..240).contains(&avg),
            "average record ~180 bytes, got {avg}"
        );
        assert_eq!(recs[5].pk.len(), 12, "12-byte primary key");
    }

    #[test]
    fn csv_round_trip() {
        let mut g = DatasetGen::new(2);
        let recs = g.records(50);
        let csv = DatasetGen::to_csv(&recs);
        let back = DatasetGen::from_csv(&csv);
        assert_eq!(back, recs);
    }

    #[test]
    fn pks_are_sorted() {
        let pks: Vec<String> = (0..1000).map(DatasetGen::pk).collect();
        let mut sorted = pks.clone();
        sorted.sort();
        assert_eq!(pks, sorted);
    }

    #[test]
    fn modifications_touch_distinct_records() {
        let mut g = DatasetGen::new(3);
        let mods = g.modifications(1000, 100);
        assert_eq!(mods.len(), 100);
        let idx: std::collections::HashSet<_> = mods.iter().map(|(i, _)| *i).collect();
        assert_eq!(idx.len(), 100, "no duplicates");
        for (i, rec) in &mods {
            assert_eq!(rec.pk, DatasetGen::pk(*i), "pk preserved");
            assert!(rec.price >= 100_000, "modification visible");
        }
    }

    #[test]
    fn deterministic() {
        let a = DatasetGen::new(9).records(20);
        let b = DatasetGen::new(9).records(20);
        assert_eq!(a, b);
    }
}
