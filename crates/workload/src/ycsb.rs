//! YCSB-style key-value operations, mirroring what Blockbench feeds the
//! Hyperledger key-value smart contract (§6.2: "Transactions for this
//! contract are generated based on YCSB workloads. We varied the number
//! of keys, the number and ratio of read and write operations").

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the current value of a key.
    Read(Bytes),
    /// Write a new value to a key.
    Write(Bytes, Bytes),
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> &Bytes {
        match self {
            Op::Read(k) => k,
            Op::Write(k, _) => k,
        }
    }
}

/// Workload shape.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Size of the key space.
    pub n_keys: usize,
    /// Fraction of reads (`r` in the paper; `w = 1 - r`).
    pub read_ratio: f64,
    /// Bytes per written value.
    pub value_size: usize,
    /// Zipf exponent for key selection (0 = uniform).
    pub zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            n_keys: 10_000,
            read_ratio: 0.5,
            value_size: 100,
            zipf: 0.0,
            seed: 42,
        }
    }
}

/// Deterministic YCSB operation stream.
pub struct YcsbGen {
    cfg: YcsbConfig,
    rng: StdRng,
    zipf: Option<crate::zipf::Zipf>,
    counter: u64,
}

impl YcsbGen {
    /// A generator for `cfg`.
    pub fn new(cfg: YcsbConfig) -> YcsbGen {
        let zipf = (cfg.zipf > 0.0).then(|| crate::zipf::Zipf::new(cfg.n_keys, cfg.zipf));
        YcsbGen {
            rng: StdRng::seed_from_u64(cfg.seed),
            zipf,
            cfg,
            counter: 0,
        }
    }

    /// The canonical key string for an index.
    pub fn key(idx: usize) -> Bytes {
        Bytes::from(format!("user{idx:010}"))
    }

    fn pick_key(&mut self) -> Bytes {
        let idx = match &self.zipf {
            Some(z) => z.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.cfg.n_keys),
        };
        Self::key(idx)
    }

    /// A value payload; embeds a counter so successive writes differ.
    pub fn value(&mut self) -> Bytes {
        self.counter += 1;
        let mut v = Vec::with_capacity(self.cfg.value_size);
        v.extend_from_slice(format!("v{:016}-", self.counter).as_bytes());
        while v.len() < self.cfg.value_size {
            v.push(b'a' + (self.rng.gen_range(0..26u8)));
        }
        v.truncate(self.cfg.value_size);
        Bytes::from(v)
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        if self.rng.gen_bool(self.cfg.read_ratio) {
            Op::Read(self.pick_key())
        } else {
            let key = self.pick_key();
            let value = self.value();
            Op::Write(key, value)
        }
    }

    /// A batch of `n` operations (one "transaction" worth of ops, or a
    /// block's worth of transactions — caller's choice of granularity).
    pub fn batch(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }

    /// Write-only load phase touching every key once.
    pub fn load_phase(&mut self) -> Vec<Op> {
        (0..self.cfg.n_keys)
            .map(|i| {
                let v = self.value();
                Op::Write(Self::key(i), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = YcsbGen::new(YcsbConfig::default());
        let mut b = YcsbGen::new(YcsbConfig::default());
        assert_eq!(a.batch(100), b.batch(100));
    }

    #[test]
    fn read_ratio_respected() {
        let mut g = YcsbGen::new(YcsbConfig {
            read_ratio: 0.8,
            ..Default::default()
        });
        let reads = g
            .batch(10_000)
            .iter()
            .filter(|op| matches!(op, Op::Read(_)))
            .count();
        assert!((7500..8500).contains(&reads), "got {reads} reads");
    }

    #[test]
    fn values_have_requested_size() {
        let mut g = YcsbGen::new(YcsbConfig {
            read_ratio: 0.0,
            value_size: 237,
            ..Default::default()
        });
        for op in g.batch(50) {
            match op {
                Op::Write(_, v) => assert_eq!(v.len(), 237),
                Op::Read(_) => panic!("write-only workload"),
            }
        }
    }

    #[test]
    fn load_phase_covers_key_space() {
        let mut g = YcsbGen::new(YcsbConfig {
            n_keys: 100,
            ..Default::default()
        });
        let ops = g.load_phase();
        assert_eq!(ops.len(), 100);
        let keys: std::collections::HashSet<_> = ops.iter().map(|o| o.key().clone()).collect();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn successive_writes_differ() {
        let mut g = YcsbGen::new(YcsbConfig {
            read_ratio: 0.0,
            n_keys: 1,
            ..Default::default()
        });
        let ops = g.batch(2);
        match (&ops[0], &ops[1]) {
            (Op::Write(_, v1), Op::Write(_, v2)) => assert_ne!(v1, v2),
            _ => panic!("write-only workload"),
        }
    }
}
