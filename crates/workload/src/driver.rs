//! Closed-loop multi-worker benchmark driver, transport-agnostic.
//!
//! The paper's write-scaling experiments (§6.1) drive one closed loop
//! per client: each worker issues its next operation as soon as the
//! previous one completes, so aggregate throughput reflects engine
//! concurrency rather than open-loop queueing. The driver records one
//! latency sample per operation and reports throughput plus latency
//! percentiles across all workers.
//!
//! [`run_closed_loop_with`] is the general form: each worker owns a
//! *client* built by a caller-supplied factory — a TCP connection, a
//! cluster handle, or nothing at all — so the same driver measures
//! in-process calls and real wire protocols. Client construction
//! (dialing, handshakes) happens before a start barrier and is excluded
//! from the measured window. [`run_closed_loop`] is the clientless
//! shorthand the in-process benches use.

use std::sync::Barrier;
use std::time::Instant;

/// Aggregate result of one closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct DriverReport {
    /// Number of client threads.
    pub threads: usize,
    /// Operations completed across all threads.
    pub total_ops: u64,
    /// Wall-clock for the whole run.
    pub elapsed_ns: u64,
    /// Aggregate throughput.
    pub ops_per_sec: f64,
    /// Median per-op latency.
    pub p50_ns: u64,
    /// 95th-percentile per-op latency.
    pub p95_ns: u64,
    /// 99th-percentile per-op latency.
    pub p99_ns: u64,
    /// Worst per-op latency.
    pub max_ns: u64,
}

impl DriverReport {
    /// Mean ns per operation (what the bench JSON reports per iter).
    pub fn ns_per_op(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        self.elapsed_ns as f64 / self.total_ops as f64
    }
}

/// Run `ops_per_thread` operations on each of `threads` closed loops.
///
/// `op(thread, i)` executes the `i`-th operation of loop `thread`; it
/// must be safe to call concurrently from all loops (the engine under
/// test provides its own synchronization). Latencies are measured per
/// operation and merged across threads for the percentile report.
pub fn run_closed_loop<F>(threads: usize, ops_per_thread: usize, op: F) -> DriverReport
where
    F: Fn(usize, usize) + Sync,
{
    run_closed_loop_with(threads, ops_per_thread, |_| (), |(), t, i| op(t, i))
}

/// Run `ops_per_worker` operations on each of `workers` closed loops,
/// each loop owning a client built by `build`.
///
/// `build(worker)` runs on the worker's own thread (so e.g. dials
/// proceed concurrently); every worker then parks on a barrier, and the
/// measured window opens only once all clients exist — connection setup
/// never pollutes throughput or latency numbers. `op(&mut client,
/// worker, i)` executes the `i`-th operation of loop `worker`.
pub fn run_closed_loop_with<C, B, F>(
    workers: usize,
    ops_per_worker: usize,
    build: B,
    op: F,
) -> DriverReport
where
    C: Send,
    B: Fn(usize) -> C + Sync,
    F: Fn(&mut C, usize, usize) + Sync,
{
    assert!(workers > 0, "at least one driver worker");
    let barrier = Barrier::new(workers + 1);
    let mut lats: Vec<u64> = Vec::new();
    let mut elapsed_ns = 1u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let (op, build, barrier) = (&op, &build, &barrier);
                s.spawn(move || {
                    let mut client = build(t);
                    barrier.wait();
                    let mut lats = Vec::with_capacity(ops_per_worker);
                    for i in 0..ops_per_worker {
                        let t0 = Instant::now();
                        op(&mut client, t, i);
                        lats.push(t0.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        lats = handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver worker panicked"))
            .collect();
        elapsed_ns = (start.elapsed().as_nanos() as u64).max(1);
    });
    lats.sort_unstable();
    let total_ops = lats.len() as u64;
    let pct = |p: f64| -> u64 {
        if lats.is_empty() {
            return 0;
        }
        let idx = ((lats.len() - 1) as f64 * p).round() as usize;
        lats[idx]
    };
    DriverReport {
        threads: workers,
        total_ops,
        elapsed_ns,
        ops_per_sec: total_ops as f64 * 1e9 / elapsed_ns as f64,
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        p99_ns: pct(0.99),
        max_ns: lats.last().copied().unwrap_or(0),
    }
}

/// Partition `n_items` items into exactly `workers` contiguous index
/// ranges, as even as possible (sizes differ by at most one).
///
/// When `workers > n_items` the tail ranges are **empty** — callers
/// handing each closed-loop worker a slice of a preloaded key set must
/// tolerate that (an empty slice means the worker issues no keyed ops),
/// rather than dividing by a per-worker count of zero or indexing past
/// the end. The ranges tile `0..n_items` in order with no gaps.
pub fn per_worker_slices(n_items: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    assert!(workers > 0, "at least one worker");
    let base = n_items / workers;
    let extra = n_items % workers; // first `extra` workers get one more
    let mut start = 0;
    (0..workers)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn per_worker_slices_tile_without_gaps() {
        for (n, w) in [(10, 3), (3, 8), (0, 4), (7, 7), (1, 1), (100, 9)] {
            let slices = per_worker_slices(n, w);
            assert_eq!(slices.len(), w, "exactly one range per worker");
            let mut next = 0;
            for r in &slices {
                assert_eq!(r.start, next, "contiguous");
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, n, "ranges cover all items");
            let sizes: Vec<usize> = slices.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "even split: {sizes:?}");
        }
    }

    #[test]
    fn more_workers_than_items_yields_empty_tails() {
        let slices = per_worker_slices(2, 5);
        assert_eq!(slices.iter().filter(|r| !r.is_empty()).count(), 2);
        assert_eq!(slices.iter().filter(|r| r.is_empty()).count(), 3);
    }

    #[test]
    fn runs_every_op_exactly_once() {
        let counter = AtomicU64::new(0);
        let report = run_closed_loop(4, 250, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(report.total_ops, 1000);
        assert_eq!(report.threads, 4);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.p50_ns <= report.p95_ns);
        assert!(report.p95_ns <= report.p99_ns);
        assert!(report.p99_ns <= report.max_ns);
    }

    #[test]
    fn thread_and_op_indices_cover_the_grid() {
        let seen = AtomicU64::new(0);
        run_closed_loop(2, 32, |t, i| {
            // Each (t, i) pair sets a distinct bit.
            seen.fetch_or(1 << (t * 32 + i), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn factory_builds_one_owned_client_per_worker() {
        let built = AtomicU64::new(0);
        let report = run_closed_loop_with(
            3,
            10,
            |t| {
                built.fetch_add(1, Ordering::Relaxed);
                (t, 0usize) // (identity, per-client op counter)
            },
            |client, t, i| {
                assert_eq!(client.0, t, "worker got its own client");
                assert_eq!(client.1, i, "client state persists across ops");
                client.1 += 1;
            },
        );
        assert_eq!(built.load(Ordering::Relaxed), 3, "one build per worker");
        assert_eq!(report.total_ops, 30);
    }

    #[test]
    fn single_thread_is_sequential() {
        let order = std::sync::Mutex::new(Vec::new());
        run_closed_loop(1, 5, |_, i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
