//! Closed-loop multi-threaded benchmark driver.
//!
//! The paper's write-scaling experiments (§6.1) drive one closed loop
//! per client thread: each thread issues its next operation as soon as
//! the previous one completes, so aggregate throughput reflects engine
//! concurrency rather than open-loop queueing. The driver records one
//! latency sample per operation and reports throughput plus latency
//! percentiles across all threads.

use std::time::Instant;

/// Aggregate result of one closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct DriverReport {
    /// Number of client threads.
    pub threads: usize,
    /// Operations completed across all threads.
    pub total_ops: u64,
    /// Wall-clock for the whole run.
    pub elapsed_ns: u64,
    /// Aggregate throughput.
    pub ops_per_sec: f64,
    /// Median per-op latency.
    pub p50_ns: u64,
    /// 95th-percentile per-op latency.
    pub p95_ns: u64,
    /// 99th-percentile per-op latency.
    pub p99_ns: u64,
    /// Worst per-op latency.
    pub max_ns: u64,
}

impl DriverReport {
    /// Mean ns per operation (what the bench JSON reports per iter).
    pub fn ns_per_op(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        self.elapsed_ns as f64 / self.total_ops as f64
    }
}

/// Run `ops_per_thread` operations on each of `threads` closed loops.
///
/// `op(thread, i)` executes the `i`-th operation of loop `thread`; it
/// must be safe to call concurrently from all loops (the engine under
/// test provides its own synchronization). Latencies are measured per
/// operation and merged across threads for the percentile report.
pub fn run_closed_loop<F>(threads: usize, ops_per_thread: usize, op: F) -> DriverReport
where
    F: Fn(usize, usize) + Sync,
{
    assert!(threads > 0, "at least one driver thread");
    let start = Instant::now();
    let mut lats: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let op = &op;
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(ops_per_thread);
                    for i in 0..ops_per_thread {
                        let t0 = Instant::now();
                        op(t, i);
                        lats.push(t0.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread panicked"))
            .collect()
    });
    let elapsed_ns = (start.elapsed().as_nanos() as u64).max(1);
    lats.sort_unstable();
    let total_ops = lats.len() as u64;
    let pct = |p: f64| -> u64 {
        if lats.is_empty() {
            return 0;
        }
        let idx = ((lats.len() - 1) as f64 * p).round() as usize;
        lats[idx]
    };
    DriverReport {
        threads,
        total_ops,
        elapsed_ns,
        ops_per_sec: total_ops as f64 * 1e9 / elapsed_ns as f64,
        p50_ns: pct(0.50),
        p95_ns: pct(0.95),
        p99_ns: pct(0.99),
        max_ns: lats.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_op_exactly_once() {
        let counter = AtomicU64::new(0);
        let report = run_closed_loop(4, 250, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(report.total_ops, 1000);
        assert_eq!(report.threads, 4);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.p50_ns <= report.p95_ns);
        assert!(report.p95_ns <= report.p99_ns);
        assert!(report.p99_ns <= report.max_ns);
    }

    #[test]
    fn thread_and_op_indices_cover_the_grid() {
        let seen = AtomicU64::new(0);
        run_closed_loop(2, 32, |t, i| {
            // Each (t, i) pair sets a distinct bit.
            seen.fetch_or(1 << (t * 32 + i), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn single_thread_is_sequential() {
        let order = std::sync::Mutex::new(Vec::new());
        run_closed_loop(1, 5, |_, i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }
}
