//! Wiki page content and edit-stream generation (§6.3).
//!
//! The paper's wiki experiment: 32 clients edit 3200 pages whose initial
//! size is 15 KB; each request loads a page, edits or appends text, and
//! uploads the revision. `xU` denotes the ratio of in-place updates to
//! insertions (100U = all edits in place).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a single edit does to a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditKind {
    /// Replace `len` bytes at `at` with same-length new text.
    InPlace {
        /// Byte offset of the replaced region.
        at: usize,
        /// New text (replaces an equal number of bytes).
        text: String,
    },
    /// Insert new text at `at` (page grows).
    Insert {
        /// Byte offset of the insertion.
        at: usize,
        /// Inserted text.
        text: String,
    },
}

/// Deterministic page/edit generator.
pub struct PageEditGen {
    rng: StdRng,
    /// Probability that an edit is in-place (vs. insertion).
    update_ratio: f64,
    /// Size of the edited/inserted span.
    edit_size: usize,
}

impl PageEditGen {
    /// `update_ratio` ∈ \[0,1\]: 1.0 = 100U (all in-place).
    pub fn new(seed: u64, update_ratio: f64, edit_size: usize) -> PageEditGen {
        PageEditGen {
            rng: StdRng::seed_from_u64(seed),
            update_ratio,
            edit_size,
        }
    }

    fn words(&mut self, len: usize) -> String {
        const WORDS: &[&str] = &[
            "storage", "engine", "version", "branch", "merge", "fork", "chunk", "tree", "tamper",
            "evidence", "ledger", "index", "pattern", "hash", "block", "commit",
        ];
        let mut s = String::with_capacity(len + 8);
        while s.len() < len {
            s.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
            s.push(' ');
        }
        s.truncate(len);
        s
    }

    /// An initial page body of `size` bytes.
    pub fn initial_page(&mut self, size: usize) -> String {
        self.words(size)
    }

    /// One edit against a page of `page_len` bytes.
    pub fn next_edit(&mut self, page_len: usize) -> EditKind {
        let text = self.words(self.edit_size);
        if self.rng.gen_bool(self.update_ratio) && page_len >= self.edit_size {
            let at = self.rng.gen_range(0..=page_len - self.edit_size);
            EditKind::InPlace { at, text }
        } else {
            let at = self.rng.gen_range(0..=page_len);
            EditKind::Insert { at, text }
        }
    }

    /// Apply an edit to a page string (the reference semantics both wiki
    /// backends must follow).
    pub fn apply(page: &mut String, edit: &EditKind) {
        match edit {
            EditKind::InPlace { at, text } => {
                page.replace_range(*at..*at + text.len(), text);
            }
            EditKind::Insert { at, text } => {
                page.insert_str(*at, text);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_page_size() {
        let mut g = PageEditGen::new(1, 1.0, 64);
        assert_eq!(g.initial_page(15 * 1024).len(), 15 * 1024);
    }

    #[test]
    fn in_place_preserves_length() {
        let mut g = PageEditGen::new(2, 1.0, 64);
        let mut page = g.initial_page(4096);
        for _ in 0..50 {
            let edit = g.next_edit(page.len());
            assert!(
                matches!(edit, EditKind::InPlace { .. }),
                "100U is all in-place"
            );
            PageEditGen::apply(&mut page, &edit);
            assert_eq!(page.len(), 4096);
        }
    }

    #[test]
    fn insert_grows_page() {
        let mut g = PageEditGen::new(3, 0.0, 64);
        let mut page = g.initial_page(1024);
        for i in 1..=20 {
            let edit = g.next_edit(page.len());
            assert!(matches!(edit, EditKind::Insert { .. }), "0U is all inserts");
            PageEditGen::apply(&mut page, &edit);
            assert_eq!(page.len(), 1024 + i * 64);
        }
    }

    #[test]
    fn mixed_ratio_roughly_respected() {
        let mut g = PageEditGen::new(4, 0.8, 16);
        let inplace = (0..5000)
            .filter(|_| matches!(g.next_edit(10_000), EditKind::InPlace { .. }))
            .count();
        assert!(
            (3700..4300).contains(&inplace),
            "got {inplace} in-place of 5000"
        );
    }

    #[test]
    fn deterministic() {
        let mut a = PageEditGen::new(7, 0.9, 32);
        let mut b = PageEditGen::new(7, 0.9, 32);
        for _ in 0..100 {
            assert_eq!(a.next_edit(5000), b.next_edit(5000));
        }
    }
}
