//! Zipf-distributed sampling over `{0, …, n-1}` (rank 0 most popular),
//! used for the skewed wiki workload of Fig. 15 (zipf = 0.5).

use rand::Rng;

/// Inverse-CDF zipf sampler with a precomputed cumulative table.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` items with exponent `s` (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "need at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8000..12000).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_positive() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[10] * 5,
            "rank 0 dominates: {}",
            counts[0]
        );
        assert!(counts[0] > counts[99] * 20);
    }

    #[test]
    fn all_ranks_in_range() {
        let zipf = Zipf::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 5);
        }
    }
}
