//! # chainstore — block-chain storage on the ForkBase version DAG
//!
//! The paper's headline claim is that *one* engine serves
//! blockchain-shaped workloads — append-only history, fork tracking,
//! pruning — while beating purpose-built stores. This crate is that
//! scenario, modeled on jormungandr's `chain-storage` surface
//! (`put_block` / `get_block` / iterate / prune), mapped onto ForkBase
//! primitives instead of a bespoke on-disk format:
//!
//! * **a block is an FObject version** of one key (`chain/blocks`): its
//!   body is a [`Blob`](forkbase_pos::Blob) (chunked, deduplicated,
//!   tamper-evident), its application header fields ride the FObject
//!   `context`, its parent link is the version's `bases` entry, and its
//!   height is the version `depth`. The block id **is** the meta-chunk
//!   cid, so headers are content-addressed and parent-linked for free —
//!   the uid hash chain of §3.2 is exactly a block-header hash chain;
//! * **chain tips are fork-on-conflict heads** (§3.3.2): appending a
//!   block retires its parent from the UB-table and surfaces the child,
//!   so [`tips`](ChainStore::tips) is `list_untagged_branches` and a
//!   side chain is nothing more than a second head — no tip bookkeeping
//!   of our own;
//! * **long-history reads ride the batched read path**:
//!   [`follow_parents`](ChainStore::follow_parents) and
//!   [`iter_range`](ChainStore::iter_range) are the level-batched
//!   derivation-graph walk (one `get_many` per BFS frontier, PR 6), and
//!   block bodies fetch all covering leaves in one batched round;
//! * **pruning is head retirement + GC**:
//!   [`prune_side_chains`](ChainStore::prune_side_chains) retires every
//!   tip not retained and lets
//!   [`gc::compact_in_place`]
//!   reclaim the side chains' exclusive chunks — anything reachable
//!   from a retained tip (shared ancestors included) survives by
//!   construction, because liveness is computed from the heads;
//! * **tip state can ride the hot tier** (PR 9): the
//!   [`state_put`](ChainStore::state_put)/[`state_get`](ChainStore::state_get)
//!   surface keeps latest chain state (account balances, UTXO sets,
//!   `"tip"` pointers) in the flat hot-state index at hash-map speed
//!   when [`ChainConfig::hot`] is enabled, falling back to synchronous
//!   POS-Tree map commits when it is not.
//!
//! Durable instances ([`ChainStore::open`]) get the full PR-4/5 stack:
//! group-commit log segments, checkpoint/HEAD auto-restore (tips
//! survive a reopen via the branch snapshot), and the sharded chunk
//! cache in front of reads.
//!
//! ```
//! use chainstore::ChainStore;
//!
//! let chain = ChainStore::in_memory();
//! let g = chain.append_block(None, b"genesis", "slot-0").unwrap();
//! let a1 = chain.append_block(Some(g), b"block a1", "slot-1").unwrap();
//! let b1 = chain.append_block(Some(g), b"block b1", "slot-1'").unwrap();
//! assert_eq!(chain.tips().len(), 2, "a fork: two tips");
//!
//! // Walk a1's ancestry (batched get_many under the hood).
//! let chain_a = chain.follow_parents(a1, 10).unwrap();
//! assert_eq!(chain_a.len(), 2);
//! assert_eq!(chain_a[1].id, g);
//!
//! // Drop the b-side chain; a1's history is untouched.
//! let report = chain.prune_side_chains(&[a1]).unwrap();
//! assert_eq!(report.tips_retired, 1);
//! assert_eq!(chain.tips(), vec![a1]);
//! assert_eq!(chain.body(b1).is_ok(), true, "in-memory: no GC ran yet");
//! ```

use bytes::Bytes;
use forkbase_chunk::{CacheConfig, Durability};
use forkbase_core::{gc, FbError, ForkBase, GcReport, HotTierConfig, Result, Value};
use forkbase_crypto::{ChunkerConfig, Digest};
use std::path::Path;

/// A block identifier: the cid of the block's meta chunk, which hashes
/// the body's tree root, the parent link, the height and the header
/// metadata — a content-addressed block header.
pub type BlockId = Digest;

/// The key whose version DAG is the block DAG.
const BLOCKS_KEY: &str = "chain/blocks";
/// The key holding latest chain state (the hot-tier-fronted surface).
const STATE_KEY: &str = "chain/state";

/// How to open a [`ChainStore`].
#[derive(Clone, Debug, Default)]
pub struct ChainConfig {
    /// Chunking parameters for block bodies.
    pub chunker: ChunkerConfig,
    /// Commit durability of the backing log (durable opens only).
    pub durability: Durability,
    /// Read-tier chunk cache sizing.
    pub cache: CacheConfig,
    /// Hot-state tier for the [`state_get`](ChainStore::state_get) /
    /// [`state_put`](ChainStore::state_put) surface. Disabled by
    /// default; enable for hash-map-speed tip state with a bounded
    /// publish window.
    pub hot: HotTierConfig,
}

/// A decoded block header (everything but the body bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Content-addressed id (meta-chunk cid).
    pub id: BlockId,
    /// Parent link (`None` for a genesis block).
    pub parent: Option<BlockId>,
    /// Distance from the lineage's genesis block.
    pub height: u64,
    /// Application header fields, verbatim (the FObject context).
    pub meta: Bytes,
    /// Body size in bytes (logical blob length).
    pub body_len: u64,
}

/// A full block: header plus materialized body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The body bytes.
    pub body: Vec<u8>,
}

/// What [`ChainStore::prune_side_chains`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Tips retired from the UB-table.
    pub tips_retired: usize,
    /// The compaction report when the instance is durable (`None` for
    /// in-memory instances, whose unreachable chunks are reclaimed by a
    /// caller-driven [`gc::compact_into`] instead).
    pub gc: Option<GcReport>,
}

/// A block store on a [`ForkBase`] instance. See the crate docs for the
/// mapping onto engine primitives.
pub struct ChainStore {
    db: ForkBase,
}

impl ChainStore {
    /// In-memory instance (no durability, no hot tier).
    pub fn in_memory() -> ChainStore {
        ChainStore {
            db: ForkBase::in_memory(),
        }
    }

    /// In-memory instance with the hot-state tier enabled for the
    /// `state_*` surface.
    pub fn in_memory_hot(hot: HotTierConfig) -> ChainStore {
        ChainStore {
            db: ForkBase::in_memory_hot(hot),
        }
    }

    /// Open (or create) a durable instance with default configuration.
    /// Reopening restores every tip recorded by the last
    /// [`checkpoint`](Self::checkpoint).
    pub fn open(path: impl AsRef<Path>) -> Result<ChainStore> {
        Self::open_with(path, ChainConfig::default())
    }

    /// [`open`](Self::open) with explicit chunking, durability, cache
    /// and hot-tier configuration.
    pub fn open_with(path: impl AsRef<Path>, cfg: ChainConfig) -> Result<ChainStore> {
        let db = ForkBase::open_with(path, cfg.chunker, cfg.durability, cfg.cache, cfg.hot)?;
        Ok(ChainStore { db })
    }

    /// Wrap an existing handle (shares its store, branches and tiers).
    pub fn from_db(db: ForkBase) -> ChainStore {
        ChainStore { db }
    }

    /// The underlying engine handle — escape hatch for checkpointing
    /// policy, stats, GC, or co-hosting other keys next to the chain.
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    // ---- Append ----------------------------------------------------------

    /// Append one block. `parent = None` starts a new lineage (genesis).
    /// The body lands as a chunked, deduplicated Blob; `meta` carries
    /// application header fields into the FObject context, so the
    /// returned id commits to body, parent, height and metadata alike.
    pub fn append_block(
        &self,
        parent: Option<BlockId>,
        body: &[u8],
        meta: impl Into<Bytes>,
    ) -> Result<BlockId> {
        let blob = self.db.new_blob(body);
        self.db
            .put_conflict_with_context(BLOCKS_KEY, parent, Value::Blob(blob), meta)
    }

    /// Append a run of blocks as one parent-linked chain — block *i+1*'s
    /// parent is block *i*, the first links to `parent`. The whole
    /// batch's meta chunks land with a single group-commit round
    /// ([`Engine::append_chain`](forkbase_core::Engine::append_chain)),
    /// so bulk sync pays one fsync wait per batch instead of per block.
    /// Returns ids in block order.
    pub fn append_batch(
        &self,
        parent: Option<BlockId>,
        blocks: impl IntoIterator<Item = (Vec<u8>, Bytes)>,
    ) -> Result<Vec<BlockId>> {
        let items: Vec<(Value, Bytes)> = blocks
            .into_iter()
            .map(|(body, meta)| (Value::Blob(self.db.new_blob_bytes(body)), meta))
            .collect();
        self.db.append_chain(BLOCKS_KEY, parent, items)
    }

    // ---- Read ------------------------------------------------------------

    /// The header of `id`. Fails with
    /// [`FbError::VersionNotFound`] for unknown ids and with
    /// [`FbError::Corrupt`] when the stored chunk does not hash to `id`.
    pub fn header(&self, id: BlockId) -> Result<BlockHeader> {
        let obj = self.db.get_version(BLOCKS_KEY, id)?;
        let blob = obj.value(self.db.store())?.as_blob()?;
        Ok(BlockHeader {
            id,
            parent: obj.base(),
            height: obj.depth,
            meta: obj.context,
            body_len: blob.len(self.db.store()),
        })
    }

    /// The body bytes of `id`. All covering tree leaves are fetched in
    /// one batched `get_many` round.
    pub fn body(&self, id: BlockId) -> Result<Vec<u8>> {
        let obj = self.db.get_version(BLOCKS_KEY, id)?;
        let blob = obj.value(self.db.store())?.as_blob()?;
        blob.read_all(self.db.store()).ok_or(FbError::KeyNotFound)
    }

    /// Header plus body.
    pub fn block(&self, id: BlockId) -> Result<Block> {
        let obj = self.db.get_version(BLOCKS_KEY, id)?;
        let blob = obj.value(self.db.store())?.as_blob()?;
        let body = blob.read_all(self.db.store()).ok_or(FbError::KeyNotFound)?;
        Ok(Block {
            header: BlockHeader {
                id,
                parent: obj.base(),
                height: obj.depth,
                meta: obj.context,
                body_len: body.len() as u64,
            },
            body,
        })
    }

    /// Every current chain tip. One entry means no fork; an empty store
    /// has no tips.
    pub fn tips(&self) -> Vec<BlockId> {
        self.db
            .list_untagged_branches(BLOCKS_KEY)
            .unwrap_or_default()
    }

    /// The longest-chain tip: maximum height, ties broken by smallest
    /// id for determinism. `None` for an empty store.
    pub fn best_tip(&self) -> Result<Option<BlockId>> {
        let mut best: Option<(u64, BlockId)> = None;
        for tip in self.tips() {
            let h = self.db.get_version(BLOCKS_KEY, tip)?.depth;
            best = match best {
                Some((bh, bid)) if (bh, std::cmp::Reverse(bid)) >= (h, std::cmp::Reverse(tip)) => {
                    Some((bh, bid))
                }
                _ => Some((h, tip)),
            };
        }
        Ok(best.map(|(_, id)| id))
    }

    /// Walk parent links from `from` (inclusive), newest first, for at
    /// most `max_blocks` headers. The walk is level-batched: each hop
    /// fetches its meta chunk through `get_many`, so a durable or
    /// remote store answers a long history in batched rounds rather
    /// than one round trip per block.
    pub fn follow_parents(&self, from: BlockId, max_blocks: usize) -> Result<Vec<BlockHeader>> {
        if max_blocks == 0 {
            return Ok(Vec::new());
        }
        let tracked = self
            .db
            .track_version(BLOCKS_KEY, from, 0, (max_blocks - 1) as u64)?;
        tracked
            .into_iter()
            .map(|tv| {
                let blob = tv.object.value(self.db.store())?.as_blob()?;
                Ok(BlockHeader {
                    id: tv.uid,
                    parent: tv.object.base(),
                    height: tv.object.depth,
                    meta: tv.object.context,
                    body_len: blob.len(self.db.store()),
                })
            })
            .collect()
    }

    /// Headers of the blocks on `tip`'s chain whose height lies in
    /// `[lo_height, hi_height]`, ascending by height. `hi_height` is
    /// clamped to the tip's own height; an empty range yields an empty
    /// vec.
    pub fn iter_range(
        &self,
        tip: BlockId,
        lo_height: u64,
        hi_height: u64,
    ) -> Result<Vec<BlockHeader>> {
        let tip_height = self.db.get_version(BLOCKS_KEY, tip)?.depth;
        let hi = hi_height.min(tip_height);
        if lo_height > hi {
            return Ok(Vec::new());
        }
        // Heights map 1:1 onto walk distances on a single-parent chain:
        // height h sits tip_height - h hops from the tip.
        let mut headers =
            self.follow_parents_range(tip, tip_height - hi, tip_height - lo_height)?;
        headers.reverse();
        Ok(headers)
    }

    fn follow_parents_range(
        &self,
        from: BlockId,
        min_dist: u64,
        max_dist: u64,
    ) -> Result<Vec<BlockHeader>> {
        let tracked = self
            .db
            .track_version(BLOCKS_KEY, from, min_dist, max_dist)?;
        tracked
            .into_iter()
            .map(|tv| {
                let blob = tv.object.value(self.db.store())?.as_blob()?;
                Ok(BlockHeader {
                    id: tv.uid,
                    parent: tv.object.base(),
                    height: tv.object.depth,
                    meta: tv.object.context,
                    body_len: blob.len(self.db.store()),
                })
            })
            .collect()
    }

    // ---- Prune & durability ----------------------------------------------

    /// Checkpoint the branch tables (tips included) into the store and
    /// make it the recovery point — after this, [`open`](Self::open) of
    /// the same directory restores every tip. Durable instances only.
    pub fn checkpoint(&self) -> Result<Digest> {
        self.db.commit_checkpoint()
    }

    /// Retire every tip **not** in `retain` and, on a durable instance,
    /// compact the store in place so the retired side chains' exclusive
    /// chunks are reclaimed from disk. Every chunk reachable from a
    /// retained tip — including ancestors shared with pruned side
    /// chains — survives by construction: the GC live set is computed
    /// from the remaining heads, and history links keep shared prefixes
    /// alive.
    ///
    /// On durable instances this runs an offline-style repack
    /// (checkpoint → live walk → segment rewrite): quiesce concurrent
    /// writers first, exactly as for
    /// [`gc::compact_in_place`]. In-memory instances only retire tips
    /// (`gc: None`); reclaim by copying into a fresh store with
    /// [`gc::compact_into`] if needed.
    pub fn prune_side_chains(&self, retain: &[BlockId]) -> Result<PruneReport> {
        let doomed: Vec<BlockId> = self
            .tips()
            .into_iter()
            .filter(|t| !retain.contains(t))
            .collect();
        if doomed.is_empty() {
            return Ok(PruneReport::default());
        }
        let tips_retired = self.db.retire_untagged_heads(BLOCKS_KEY, &doomed)?;
        let gc = if self.db.durable_store().is_some() {
            Some(gc::compact_in_place(&self.db)?)
        } else {
            None
        };
        Ok(PruneReport { tips_retired, gc })
    }

    // ---- Tip state (hot-tier front) ---------------------------------------

    /// Latest chain-state value for `subkey` (e.g. an account balance or
    /// the canonical `"tip"` pointer). Served from the flat hot-state
    /// index when the tier is on; a committed POS-Tree map read
    /// otherwise.
    pub fn state_get(&self, subkey: &[u8]) -> Result<Option<Bytes>> {
        self.db.hot_get(STATE_KEY, subkey)
    }

    /// Write one chain-state entry. With the hot tier on this is a flat
    /// index write drained to the tree by the background publisher;
    /// with the tier off it is a synchronous one-edit map commit.
    pub fn state_put(&self, subkey: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        self.db.hot_put(STATE_KEY, subkey, value)
    }

    /// Batched [`state_put`](Self::state_put); `None` values delete.
    pub fn state_put_many(
        &self,
        entries: impl IntoIterator<Item = (Bytes, Option<Bytes>)>,
    ) -> Result<()> {
        self.db.hot_put_many(STATE_KEY, entries)
    }

    /// Publish pending hot-state edits into the committed tree (and
    /// checkpoint on durable instances). The commit barrier to call at
    /// block boundaries before trusting [`checkpoint`](Self::checkpoint)
    /// to cover state written through the hot tier.
    pub fn flush_state(&self) -> Result<()> {
        self.db.flush_hot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(i: u64) -> Vec<u8> {
        format!("block body {i} {}", "x".repeat(64)).into_bytes()
    }

    #[test]
    fn append_and_read_linear_chain() {
        let chain = ChainStore::in_memory();
        let mut parent = None;
        let mut ids = Vec::new();
        for i in 0..10u64 {
            let id = chain
                .append_block(parent, &body(i), format!("meta-{i}"))
                .expect("append");
            ids.push(id);
            parent = Some(id);
        }
        assert_eq!(chain.tips(), vec![ids[9]], "single tip, no fork");

        let h = chain.header(ids[4]).expect("header");
        assert_eq!(h.height, 4);
        assert_eq!(h.parent, Some(ids[3]));
        assert_eq!(h.meta, Bytes::from("meta-4"));
        assert_eq!(h.body_len as usize, body(4).len());
        assert_eq!(chain.body(ids[4]).expect("body"), body(4));

        let walked = chain.follow_parents(ids[9], 100).expect("walk");
        assert_eq!(walked.len(), 10);
        for (back, h) in walked.iter().enumerate() {
            assert_eq!(h.id, ids[9 - back]);
            assert_eq!(h.height, (9 - back) as u64);
        }
    }

    #[test]
    fn append_batch_matches_sequential() {
        let one = ChainStore::in_memory();
        let many = ChainStore::in_memory();
        let g1 = one.append_block(None, &body(0), "g").expect("genesis");
        let g2 = many.append_block(None, &body(0), "g").expect("genesis");
        assert_eq!(g1, g2, "content addressing: same genesis, same id");

        let mut parent = Some(g1);
        let mut seq_ids = Vec::new();
        for i in 1..=20u64 {
            let id = one
                .append_block(parent, &body(i), format!("m{i}"))
                .expect("append");
            seq_ids.push(id);
            parent = Some(id);
        }
        let batch_ids = many
            .append_batch(
                Some(g2),
                (1..=20u64).map(|i| (body(i), Bytes::from(format!("m{i}")))),
            )
            .expect("batch");
        assert_eq!(batch_ids, seq_ids, "batched chain is uid-identical");
        assert_eq!(many.tips(), vec![batch_ids[19]]);
    }

    #[test]
    fn forks_make_tips_and_best_tip_prefers_height() {
        let chain = ChainStore::in_memory();
        let g = chain.append_block(None, &body(0), "g").expect("g");
        let a1 = chain.append_block(Some(g), &body(1), "a1").expect("a1");
        let a2 = chain.append_block(Some(a1), &body(2), "a2").expect("a2");
        let b1 = chain.append_block(Some(g), &body(3), "b1").expect("b1");

        let mut tips = chain.tips();
        tips.sort();
        let mut expect = vec![a2, b1];
        expect.sort();
        assert_eq!(tips, expect);
        assert_eq!(chain.best_tip().expect("best"), Some(a2), "a2 is higher");
    }

    #[test]
    fn iter_range_is_ascending_and_clamped() {
        let chain = ChainStore::in_memory();
        let mut parent = None;
        let mut ids = Vec::new();
        for i in 0..8u64 {
            let id = chain.append_block(parent, &body(i), "").expect("append");
            ids.push(id);
            parent = Some(id);
        }
        let r = chain.iter_range(ids[7], 2, 5).expect("range");
        assert_eq!(
            r.iter().map(|h| h.id).collect::<Vec<_>>(),
            ids[2..=5].to_vec()
        );
        let clamped = chain.iter_range(ids[7], 6, 100).expect("range");
        assert_eq!(clamped.len(), 2, "clamped to tip height");
        assert!(chain.iter_range(ids[7], 5, 2).expect("range").is_empty());
    }

    #[test]
    fn prune_retires_tips_in_memory() {
        let chain = ChainStore::in_memory();
        let g = chain.append_block(None, &body(0), "g").expect("g");
        let a1 = chain.append_block(Some(g), &body(1), "a1").expect("a1");
        let _b1 = chain.append_block(Some(g), &body(2), "b1").expect("b1");
        let _c1 = chain.append_block(Some(g), &body(3), "c1").expect("c1");

        let report = chain.prune_side_chains(&[a1]).expect("prune");
        assert_eq!(report.tips_retired, 2);
        assert_eq!(report.gc, None, "in-memory: no compaction");
        assert_eq!(chain.tips(), vec![a1]);
        // Retained chain fully readable.
        assert_eq!(chain.body(a1).expect("body"), body(1));
        assert_eq!(chain.body(g).expect("body"), body(0));
    }

    #[test]
    fn state_surface_works_with_tier_off_and_on() {
        for chain in [
            ChainStore::in_memory(),
            ChainStore::in_memory_hot(HotTierConfig::on()),
        ] {
            let g = chain.append_block(None, &body(0), "g").expect("g");
            chain.state_put("tip", g.as_bytes().to_vec()).expect("put");
            chain.state_put("balance/alice", "100").expect("put");
            assert_eq!(
                chain.state_get(b"tip").expect("get"),
                Some(Bytes::copy_from_slice(g.as_bytes()))
            );
            chain.flush_state().expect("flush");
            assert_eq!(
                chain.state_get(b"balance/alice").expect("get"),
                Some(Bytes::from("100"))
            );
        }
    }

    #[test]
    fn unknown_block_errors() {
        let chain = ChainStore::in_memory();
        chain.append_block(None, &body(0), "").expect("g");
        let bogus = forkbase_crypto::hash_bytes(b"no such block");
        assert!(chain.header(bogus).is_err());
        assert!(chain.body(bogus).is_err());
        assert!(chain.follow_parents(bogus, 5).is_err());
    }
}
