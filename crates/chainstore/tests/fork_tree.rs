//! Property tests on the chain scenario: arbitrary fork trees round-trip
//! through append/read/walk across a durable reopen, and pruning never
//! reclaims a chunk reachable from a retained tip.

use chainstore::{BlockId, ChainStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh scratch directory (removed by the caller when done).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "chainstore-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Decode a raw draw into a fork tree: node 0 is a genesis; each later
/// node is either a fresh genesis (1 in 8) or a child of an earlier node.
fn decode_tree(draws: &[u64]) -> Vec<Option<usize>> {
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(draws.len() + 1);
    parents.push(None);
    for (i, d) in draws.iter().enumerate() {
        let i = i + 1;
        if d % 8 == 0 {
            parents.push(None);
        } else {
            parents.push(Some((d / 8) as usize % i));
        }
    }
    parents
}

/// Unique per-node body (index-salted so no two nodes share a uid).
fn body(i: usize) -> Vec<u8> {
    format!("node {i} body {}", "ab".repeat(24 + i % 7)).into_bytes()
}

fn meta(i: usize) -> String {
    format!("meta-{i}")
}

/// Append the decoded tree, returning each node's id.
fn build(chain: &ChainStore, parents: &[Option<usize>]) -> Vec<BlockId> {
    let mut ids: Vec<BlockId> = Vec::with_capacity(parents.len());
    for (i, p) in parents.iter().enumerate() {
        let id = chain
            .append_block(p.map(|j| ids[j]), &body(i), meta(i))
            .expect("append");
        ids.push(id);
    }
    ids
}

/// Model tips: nodes nobody links to as parent.
fn model_tips(parents: &[Option<usize>], ids: &[BlockId]) -> Vec<BlockId> {
    let mut has_child = vec![false; parents.len()];
    for p in parents.iter().flatten() {
        has_child[*p] = true;
    }
    let mut tips: Vec<BlockId> = ids
        .iter()
        .zip(&has_child)
        .filter(|(_, c)| !**c)
        .map(|(id, _)| *id)
        .collect();
    tips.sort();
    tips
}

/// The root-ward path from node `i` (inclusive), as model indices.
fn model_path(parents: &[Option<usize>], mut i: usize) -> Vec<usize> {
    let mut path = vec![i];
    while let Some(p) = parents[i] {
        path.push(p);
        i = p;
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary fork trees round-trip: every header and body reads back
    /// exactly, tips match the model, and `follow_parents` reproduces
    /// each tip's root-ward path — all again after a checkpoint +
    /// durable reopen.
    #[test]
    fn fork_trees_round_trip_across_durable_reopen(
        draws in prop::collection::vec(any::<u64>(), 0..36)
    ) {
        let parents = decode_tree(&draws);
        let dir = scratch("roundtrip");
        let ids = {
            let chain = ChainStore::open(&dir).expect("open");
            let ids = build(&chain, &parents);
            chain.checkpoint().expect("checkpoint");
            ids
        };

        let chain = ChainStore::open(&dir).expect("reopen");
        let mut tips = chain.tips();
        tips.sort();
        prop_assert_eq!(tips, model_tips(&parents, &ids), "tips survive reopen");

        let mut heights = vec![0u64; parents.len()];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                heights[i] = heights[*p] + 1;
            }
            let h = chain.header(ids[i]).expect("header");
            prop_assert_eq!(h.id, ids[i]);
            prop_assert_eq!(h.parent, p.map(|j| ids[j]));
            prop_assert_eq!(h.height, heights[i]);
            prop_assert_eq!(h.meta.as_ref(), meta(i).as_bytes());
            prop_assert_eq!(h.body_len as usize, body(i).len());
            prop_assert_eq!(chain.body(ids[i]).expect("body"), body(i));
        }

        for (i, p) in parents.iter().enumerate() {
            // Tip or not, a walk from any node reproduces its path.
            let _ = p;
            let walked = chain
                .follow_parents(ids[i], parents.len() + 1)
                .expect("walk");
            let want: Vec<BlockId> =
                model_path(&parents, i).into_iter().map(|j| ids[j]).collect();
            let got: Vec<BlockId> = walked.iter().map(|h| h.id).collect();
            prop_assert_eq!(got, want, "root-ward walk from node {}", i);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Pruning with an arbitrary retained subset of tips never reclaims
    /// a chunk reachable from a retained tip: every retained chain still
    /// reads back byte-exact (headers and bodies) after the in-place GC,
    /// while the retired tips' own blocks are gone from disk.
    #[test]
    fn prune_never_reclaims_retained_chains(
        draws in prop::collection::vec(any::<u64>(), 4..32),
        keep_bits in any::<u64>(),
    ) {
        let parents = decode_tree(&draws);
        let dir = scratch("prune");
        let chain = ChainStore::open(&dir).expect("open");
        let ids = build(&chain, &parents);

        let tips = model_tips(&parents, &ids);
        // Retain a non-empty subset (bit i of the draw keeps tip i;
        // tip 0 is always kept so the live set is never empty).
        let retained: Vec<BlockId> = tips
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == 0 || keep_bits >> (i % 64) & 1 == 1)
            .map(|(_, id)| *id)
            .collect();
        let doomed: Vec<BlockId> = tips
            .iter()
            .filter(|t| !retained.contains(t))
            .copied()
            .collect();

        let report = chain.prune_side_chains(&retained).expect("prune");
        prop_assert_eq!(report.tips_retired, doomed.len());
        prop_assert_eq!(report.gc.is_some(), !doomed.is_empty(),
            "durable prune compacts exactly when something was retired");

        let mut left = chain.tips();
        left.sort();
        let mut want = retained.clone();
        want.sort();
        prop_assert_eq!(left, want, "only retained tips remain");

        // Everything reachable from a retained tip is intact.
        let idx_of = |id: &BlockId| ids.iter().position(|x| x == id).expect("known");
        for tip in &retained {
            for j in model_path(&parents, idx_of(tip)) {
                let h = chain.header(ids[j]).expect("retained chain header");
                prop_assert_eq!(h.meta.as_ref(), meta(j).as_bytes());
                prop_assert_eq!(chain.body(ids[j]).expect("retained chain body"), body(j));
            }
        }
        // A retired tip's own meta chunk is exclusive to it, so the GC
        // reclaimed it from disk.
        for tip in &doomed {
            prop_assert!(chain.header(*tip).is_err(), "retired tip reclaimed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
