//! Property-based tests pinning the POS-Tree's core invariants:
//!
//! 1. **History independence** — identical content gives identical root
//!    cids, no matter how the tree was produced (one-shot build,
//!    incremental edits, splices, merges).
//! 2. **Model equivalence** — Map behaves like `BTreeMap`, List like
//!    `Vec`, Blob like `Vec<u8>` under arbitrary operation sequences.
//! 3. **Diff soundness** — applying `diff(a, b)` to `a` as edits yields a
//!    tree with root `b`.

use bytes::Bytes;
use forkbase_chunk::MemStore;
use forkbase_crypto::ChunkerConfig;
use forkbase_pos::tree::{Blob, List, Map};
use forkbase_pos::types::TreeType;
use forkbase_pos::{sorted_diff, ChunkStore};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Small chunks so even modest inputs span multiple leaves and levels.
fn cfg() -> ChunkerConfig {
    let mut cfg = ChunkerConfig::with_leaf_bits(6);
    cfg.index_bits = 3;
    cfg
}

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-f]{1,6}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_matches_btreemap_model(
        initial in prop::collection::vec((key_strategy(), "[a-z]{0,12}"), 0..60),
        batches in prop::collection::vec(
            prop::collection::vec((key_strategy(), prop::option::of("[a-z]{0,12}")), 1..10),
            0..6
        ),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let mut model: BTreeMap<String, String> = initial.iter().cloned().collect();
        let mut map = Map::build(&store, &cfg, initial.iter().map(|(k, v)| (k.clone(), v.clone())));

        for batch in &batches {
            for (k, v) in batch {
                match v {
                    Some(v) => { model.insert(k.clone(), v.clone()); }
                    None => { model.remove(k); }
                }
            }
            map = map
                .update(&store, &cfg, batch.iter().map(|(k, v)| {
                    (Bytes::from(k.clone()), v.clone().map(Bytes::from))
                }))
                .expect("update");

            // Model equivalence after every batch.
            prop_assert_eq!(map.len(&store), model.len() as u64);
            let items: Vec<(Bytes, Bytes)> = map.iter(&store).collect();
            let expected: Vec<(Bytes, Bytes)> = model
                .iter()
                .map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone())))
                .collect();
            prop_assert_eq!(items, expected);
        }

        // History independence: incremental result == one-shot build.
        let rebuilt = Map::build(&store, &cfg, model.iter().map(|(k, v)| (k.clone(), v.clone())));
        prop_assert_eq!(map.root(), rebuilt.root());
    }

    #[test]
    fn map_point_lookup_matches_model(
        pairs in prop::collection::vec((key_strategy(), "[a-z]{0,8}"), 1..80),
        probes in prop::collection::vec(key_strategy(), 1..20),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let model: BTreeMap<String, String> = pairs.iter().cloned().collect();
        let map = Map::build(&store, &cfg, pairs.iter().map(|(k, v)| (k.clone(), v.clone())));
        for probe in &probes {
            let got = map.get(&store, probe.as_bytes()).map(|b| b.to_vec());
            let want = model.get(probe).map(|v| v.as_bytes().to_vec());
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn blob_splice_matches_vec_model(
        data in prop::collection::vec(any::<u8>(), 0..4000),
        ops in prop::collection::vec(
            (any::<u16>(), any::<u8>(), prop::collection::vec(any::<u8>(), 0..200)),
            0..5
        ),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let mut model = data.clone();
        let mut blob = Blob::build(&store, &cfg, &data);

        for (start, remove, insert) in &ops {
            let s = (*start as usize) % (model.len() + 1);
            let r = (*remove as usize).min(model.len() - s);
            model.splice(s..s + r, insert.iter().copied());
            blob = blob
                .splice(&store, &cfg, s as u64, r as u64, insert)
                .expect("splice");
            prop_assert_eq!(blob.len(&store), model.len() as u64);
        }
        prop_assert_eq!(blob.read_all(&store).expect("read"), model.clone());

        // History independence.
        let rebuilt = Blob::build(&store, &cfg, &model);
        prop_assert_eq!(blob.root(), rebuilt.root());
    }

    #[test]
    fn blob_read_range_matches_model(
        data in prop::collection::vec(any::<u8>(), 1..3000),
        ranges in prop::collection::vec((any::<u16>(), any::<u16>()), 1..8),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let blob = Blob::build(&store, &cfg, &data);
        for (start, len) in &ranges {
            let s = (*start as usize) % data.len();
            let l = (*len as usize) % 500;
            let expected = &data[s..(s + l).min(data.len())];
            prop_assert_eq!(
                blob.read_range(&store, s as u64, l as u64).expect("read"),
                expected
            );
        }
    }

    #[test]
    fn list_splice_matches_vec_model(
        elems in prop::collection::vec("[a-z]{0,10}", 0..200),
        ops in prop::collection::vec(
            (any::<u16>(), any::<u8>(), prop::collection::vec("[a-z]{0,10}", 0..10)),
            0..5
        ),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let mut model = elems.clone();
        let mut list = List::build(&store, &cfg, elems.iter().cloned());

        for (start, remove, insert) in &ops {
            let s = (*start as usize) % (model.len() + 1);
            let r = (*remove as usize).min(model.len() - s);
            model.splice(s..s + r, insert.iter().cloned());
            list = list
                .splice(&store, &cfg, s as u64, r as u64, insert.iter().cloned())
                .expect("splice");
        }
        let got: Vec<String> = list
            .iter(&store)
            .map(|b| String::from_utf8(b.to_vec()).expect("utf8"))
            .collect();
        prop_assert_eq!(&got, &model);

        let rebuilt = List::build(&store, &cfg, model.iter().cloned());
        prop_assert_eq!(list.root(), rebuilt.root());
    }

    #[test]
    fn diff_apply_round_trip(
        a in prop::collection::vec((key_strategy(), "[a-z]{0,8}"), 0..60),
        b in prop::collection::vec((key_strategy(), "[a-z]{0,8}"), 0..60),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let map_a = Map::build(&store, &cfg, a.iter().map(|(k, v)| (k.clone(), v.clone())));
        let map_b = Map::build(&store, &cfg, b.iter().map(|(k, v)| (k.clone(), v.clone())));

        let diff = sorted_diff(&store, TreeType::Map, map_a.root(), map_b.root()).expect("diff");
        // Apply the diff to A as edits; must land exactly on B.
        let edits = diff.into_iter().map(|e| (e.key, e.right));
        let patched = map_a.update(&store, &cfg, edits).expect("update");
        prop_assert_eq!(patched.root(), map_b.root());
    }

    #[test]
    fn chunk_dedup_bounds_storage(
        data in prop::collection::vec(any::<u8>(), 500..3000),
    ) {
        // Building the same object twice must not store new chunks.
        let store = MemStore::new();
        let cfg = cfg();
        Blob::build(&store, &cfg, &data);
        let chunks_before = store.stats().stored_chunks;
        Blob::build(&store, &cfg, &data);
        prop_assert_eq!(store.stats().stored_chunks, chunks_before);
    }

    #[test]
    fn update_order_independence(
        base in prop::collection::vec((key_strategy(), "[a-z]{0,8}"), 0..40),
        edits in prop::collection::vec((key_strategy(), prop::option::of("[a-z]{0,8}")), 1..12),
    ) {
        // Applying an edit batch at once == applying its (deduped) edits
        // one at a time in key order.
        let store = MemStore::new();
        let cfg = cfg();
        let map = Map::build(&store, &cfg, base.iter().map(|(k, v)| (k.clone(), v.clone())));

        // Dedup edits last-wins, like the batch API does.
        let mut deduped: BTreeMap<String, Option<String>> = BTreeMap::new();
        for (k, v) in &edits {
            deduped.insert(k.clone(), v.clone());
        }

        let batch = map
            .update(&store, &cfg, deduped.iter().map(|(k, v)| {
                (Bytes::from(k.clone()), v.clone().map(Bytes::from))
            }))
            .expect("update");

        let mut one_by_one = map;
        for (k, v) in &deduped {
            one_by_one = one_by_one
                .update(&store, &cfg, [(Bytes::from(k.clone()), v.clone().map(Bytes::from))])
                .expect("update");
        }
        prop_assert_eq!(batch.root(), one_by_one.root());
    }
}
