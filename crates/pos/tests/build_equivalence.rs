//! Equivalence proptests for the run-scanning from-scratch build path.
//!
//! `build_items`/`build_blob_bytes` pre-encode the input and drive the
//! slice-level boundary scanner over it, assembling leaves as zero-copy
//! ropes. These tests pin that the result is **bit-identical** (same root
//! cid, hence same chunks) to the retained element-at-a-time path
//! (`build_items_itemwise`/`build_blob_itemwise`) for all four chunkable
//! types, across chunker configurations small enough to force multi-leaf,
//! multi-level trees.

use bytes::Bytes;
use forkbase_chunk::MemStore;
use forkbase_crypto::ChunkerConfig;
use forkbase_pos::builder::{
    build_blob_bytes, build_blob_itemwise, build_items, build_items_itemwise,
};
use forkbase_pos::leaf::Item;
use forkbase_pos::types::TreeType;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Small chunks so even modest inputs span multiple leaves and levels.
fn cfg() -> ChunkerConfig {
    let mut cfg = ChunkerConfig::with_leaf_bits(6);
    cfg.index_bits = 3;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_run_scan_equals_itemwise(
        pairs in prop::collection::vec(("[a-f]{1,8}", "[a-z]{0,24}"), 0..120),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let sorted: BTreeMap<String, String> = pairs.iter().cloned().collect();
        let items: Vec<Item> = sorted
            .iter()
            .map(|(k, v)| Item::map(k.clone(), v.clone()))
            .collect();
        let run_scan = build_items(&store, &cfg, TreeType::Map, items.clone());
        let itemwise = build_items_itemwise(&store, &cfg, TreeType::Map, items);
        prop_assert_eq!(run_scan, itemwise);
    }

    #[test]
    fn set_run_scan_equals_itemwise(
        keys in prop::collection::vec("[a-h]{1,10}", 0..150),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let sorted: BTreeSet<String> = keys.iter().cloned().collect();
        let items: Vec<Item> = sorted.iter().map(|k| Item::set(k.clone())).collect();
        let run_scan = build_items(&store, &cfg, TreeType::Set, items.clone());
        let itemwise = build_items_itemwise(&store, &cfg, TreeType::Set, items);
        prop_assert_eq!(run_scan, itemwise);
    }

    #[test]
    fn list_run_scan_equals_itemwise(
        elems in prop::collection::vec("[a-z]{0,16}", 0..150),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let items: Vec<Item> = elems.iter().map(|e| Item::list(e.clone())).collect();
        let run_scan = build_items(&store, &cfg, TreeType::List, items.clone());
        let itemwise = build_items_itemwise(&store, &cfg, TreeType::List, items);
        prop_assert_eq!(run_scan, itemwise);
    }

    #[test]
    fn blob_zero_copy_equals_copy_path(
        data in prop::collection::vec(any::<u8>(), 0..6000),
        cuts in prop::collection::vec(any::<u16>(), 0..6),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let shared = build_blob_bytes(&store, &cfg, Bytes::from(data.clone()));
        let copied = build_blob_itemwise(&store, &cfg, &data);
        prop_assert_eq!(shared, copied);

        // Feeding the same content as arbitrarily segmented blob items
        // must also agree: segmentation never changes boundaries.
        let mut positions: Vec<usize> = cuts
            .iter()
            .map(|c| (*c as usize) % (data.len() + 1))
            .collect();
        positions.sort_unstable();
        positions.dedup();
        let mut items: Vec<Item> = Vec::new();
        let mut prev = 0usize;
        for p in positions.into_iter().chain([data.len()]) {
            items.push(Item::list(Bytes::copy_from_slice(&data[prev..p])));
            prev = p;
        }
        let segmented = build_items(&store, &cfg, TreeType::Blob, items.clone());
        prop_assert_eq!(segmented, copied);
        let segmented_itemwise = build_items_itemwise(&store, &cfg, TreeType::Blob, items);
        prop_assert_eq!(segmented_itemwise, copied);
    }

    #[test]
    fn default_config_map_equivalence(
        pairs in prop::collection::vec(("[a-p]{1,12}", "[a-z]{0,40}"), 0..80),
    ) {
        // The paper-default 4 KB leaves: most content lands in one leaf,
        // exercising the single-leaf / flush-ended path.
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let sorted: BTreeMap<String, String> = pairs.iter().cloned().collect();
        let items: Vec<Item> = sorted
            .iter()
            .map(|(k, v)| Item::map(k.clone(), v.clone()))
            .collect();
        let run_scan = build_items(&store, &cfg, TreeType::Map, items.clone());
        let itemwise = build_items_itemwise(&store, &cfg, TreeType::Map, items);
        prop_assert_eq!(run_scan, itemwise);
    }
}
