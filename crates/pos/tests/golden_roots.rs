//! Golden root cids captured from the seed implementation, before the
//! chunking/hashing hot path was devirtualized and block-vectorized.
//! These pin the whole pipeline end to end: rolling-hash boundaries,
//! leaf/index encoding, and SHA-256 cids. If any layer's output drifts,
//! every stored object's identity silently changes — this test makes
//! that loud.

use forkbase_chunk::MemStore;
use forkbase_crypto::{ChunkerConfig, RollingKind};
use forkbase_pos::tree::{Blob, Map};

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

#[test]
fn golden_blob_roots() {
    for (bits, kind, seed, len, expect) in [
        (
            12u32,
            RollingKind::CyclicPoly,
            1u64,
            300_000usize,
            "854984d9858e092db45655d95b768e282d0f0fc536a4c60afc3e8a4fef640b94",
        ),
        (
            8,
            RollingKind::CyclicPoly,
            2,
            100_000,
            "c93e57fdb75359b7d3722bda073caefe054c53ef87f839c7d358d46ddeb9238c",
        ),
        (
            10,
            RollingKind::RabinKarp,
            3,
            150_000,
            "2a3233cd8f326e712c7668f9240c46171f4ecdad1edc4a0d2016c64800dd5494",
        ),
        (
            9,
            RollingKind::MovingSum,
            4,
            120_000,
            "fcd4feffe2911019ae296e9c015a91fa63e1296aa1cae7b28a87d6c6646e2d93",
        ),
    ] {
        let store = MemStore::new();
        let mut cfg = ChunkerConfig::with_leaf_bits(bits);
        cfg.rolling = kind;
        let data = pseudo_random(len, seed);
        let blob = Blob::build(&store, &cfg, &data);
        assert_eq!(
            blob.root().to_hex(),
            expect,
            "blob root drifted: bits={bits} kind={kind:?}"
        );
    }
}

#[test]
fn golden_map_root() {
    let store = MemStore::new();
    let cfg = ChunkerConfig::with_leaf_bits(7);
    let map = Map::build(
        &store,
        &cfg,
        (0..5000).map(|i| (format!("k{i:06}"), format!("v-{i}"))),
    );
    assert_eq!(
        map.root().to_hex(),
        "cbfa7a412addc8ae8d1985d6fabfb95265fcd761b9ff238ef539cf98d7b5b132"
    );
}
