//! Golden root cids captured from the seed implementation, before the
//! chunking/hashing hot path was devirtualized and block-vectorized.
//! These pin the whole pipeline end to end: rolling-hash boundaries,
//! leaf/index encoding, and SHA-256 cids. If any layer's output drifts,
//! every stored object's identity silently changes — this test makes
//! that loud.

use forkbase_chunk::MemStore;
use forkbase_crypto::{ChunkerConfig, RollingKind};
use forkbase_pos::tree::{Blob, List, Map, Set};

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

#[test]
fn golden_blob_roots() {
    for (bits, kind, seed, len, expect) in [
        (
            12u32,
            RollingKind::CyclicPoly,
            1u64,
            300_000usize,
            "854984d9858e092db45655d95b768e282d0f0fc536a4c60afc3e8a4fef640b94",
        ),
        (
            8,
            RollingKind::CyclicPoly,
            2,
            100_000,
            "c93e57fdb75359b7d3722bda073caefe054c53ef87f839c7d358d46ddeb9238c",
        ),
        (
            10,
            RollingKind::RabinKarp,
            3,
            150_000,
            "2a3233cd8f326e712c7668f9240c46171f4ecdad1edc4a0d2016c64800dd5494",
        ),
        (
            9,
            RollingKind::MovingSum,
            4,
            120_000,
            "fcd4feffe2911019ae296e9c015a91fa63e1296aa1cae7b28a87d6c6646e2d93",
        ),
    ] {
        let store = MemStore::new();
        let mut cfg = ChunkerConfig::with_leaf_bits(bits);
        cfg.rolling = kind;
        let data = pseudo_random(len, seed);
        let blob = Blob::build(&store, &cfg, &data);
        assert_eq!(
            blob.root().to_hex(),
            expect,
            "blob root drifted: bits={bits} kind={kind:?}"
        );
    }
}

#[test]
fn golden_map_root() {
    let store = MemStore::new();
    let cfg = ChunkerConfig::with_leaf_bits(7);
    let map = Map::build(
        &store,
        &cfg,
        (0..5000).map(|i| (format!("k{i:06}"), format!("v-{i}"))),
    );
    assert_eq!(
        map.root().to_hex(),
        "cbfa7a412addc8ae8d1985d6fabfb95265fcd761b9ff238ef539cf98d7b5b132"
    );
}

/// From-scratch Set/List pins, captured from the element-at-a-time build
/// path before from-scratch builds were routed through the run-scanning
/// encoder — together with the Blob/Map pins above, all four chunkable
/// types' full build pipelines (encoding, boundaries, cids) are nailed
/// down.
#[test]
fn golden_set_and_list_roots() {
    let store = MemStore::new();
    let cfg = ChunkerConfig::with_leaf_bits(7);
    let set = Set::build(&store, &cfg, (0..4000).map(|i| format!("member-{i:05}")));
    assert_eq!(
        set.root().to_hex(),
        "d07e3893310636a24f2c4f87a44cb90199a2654d4e0bdb3a2ba010e55659b332"
    );
    let list = List::build(
        &store,
        &cfg,
        (0..4000).map(|i| format!("list-element-{i:05}")),
    );
    assert_eq!(
        list.root().to_hex(),
        "233226312b764d7e6848fd3c77dd034af849b4bfad8d38f7f2fc98f06bfb8470"
    );

    let cfg2 = ChunkerConfig::with_leaf_bits(9);
    let set2 = Set::build(&store, &cfg2, (0..20_000).map(|i| format!("s{i:07}")));
    assert_eq!(
        set2.root().to_hex(),
        "e0843cb95aa6a591a45292975138e7eadb52f4aadac706193be653a37fa7da5a"
    );
    let list2 = List::build(&store, &cfg2, (0..20_000).map(|i| format!("v{i:07}")));
    assert_eq!(
        list2.root().to_hex(),
        "c4dbbc8922bb837541b77c806b737b32fa1422db373cc72dc880be8b389a294c"
    );
}
