//! Batch-equivalence proptests: applying a [`WriteBatch`] in one
//! multi-range splice is **bit-identical** (same root cid) to folding the
//! same edits through sequential `put`/`del` calls — including duplicate
//! keys (last buffered edit wins) and deletes interleaved with puts.
//!
//! Sequential folding must also collapse duplicates last-wins for the
//! comparison to be meaningful, which is exactly what replaying edits in
//! buffer order does: a later edit on the same key overwrites the earlier
//! one's effect.

use forkbase_chunk::MemStore;
use forkbase_crypto::ChunkerConfig;
use forkbase_pos::tree::{Map, Set};
use forkbase_pos::WriteBatch;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Small chunks so even modest inputs span multiple leaves and levels.
fn cfg() -> ChunkerConfig {
    let mut cfg = ChunkerConfig::with_leaf_bits(6);
    cfg.index_bits = 3;
    cfg
}

fn key_strategy() -> impl Strategy<Value = String> {
    // A narrow key space on purpose: duplicate keys and delete-then-put
    // interleavings show up in almost every generated batch.
    "[a-d]{1,4}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_batch_equals_sequential_fold(
        initial in prop::collection::vec((key_strategy(), "[a-z]{0,10}"), 0..50),
        script in prop::collection::vec(
            (key_strategy(), prop::option::of("[a-z]{0,10}")),
            1..40
        ),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let base = Map::build(&store, &cfg, initial.iter().map(|(k, v)| (k.clone(), v.clone())));

        // One WriteBatch, one splice.
        let mut wb = WriteBatch::new();
        for (k, v) in &script {
            match v {
                Some(v) => { wb.put(k.clone(), v.clone()); }
                None => { wb.delete(k.clone()); }
            }
        }
        let batched = base.apply(&store, &cfg, wb).expect("apply");

        // The same edits folded through sequential point writes, in
        // buffer order — later duplicates overwrite earlier ones.
        let mut sequential = base;
        for (k, v) in &script {
            sequential = match v {
                Some(v) => sequential.put(&store, &cfg, k.clone(), v.clone()).expect("put"),
                None => sequential.del(&store, &cfg, k.clone()).expect("del"),
            };
        }
        prop_assert_eq!(batched.root(), sequential.root());

        // And both agree with the model.
        let mut model: BTreeMap<String, String> = initial.iter().cloned().collect();
        for (k, v) in &script {
            match v {
                Some(v) => { model.insert(k.clone(), v.clone()); }
                None => { model.remove(k); }
            }
        }
        let rebuilt = Map::build(&store, &cfg, model.iter().map(|(k, v)| (k.clone(), v.clone())));
        prop_assert_eq!(batched.root(), rebuilt.root());
    }

    #[test]
    fn map_duplicate_keys_last_wins(
        key in key_strategy(),
        values in prop::collection::vec(prop::option::of("[a-z]{0,10}"), 2..8),
        base in prop::collection::vec((key_strategy(), "[a-z]{0,8}"), 0..30),
    ) {
        // Every edit in the batch hits the SAME key; only the last one
        // may survive.
        let store = MemStore::new();
        let cfg = cfg();
        let map = Map::build(&store, &cfg, base.iter().map(|(k, v)| (k.clone(), v.clone())));

        let mut wb = WriteBatch::new();
        for v in &values {
            match v {
                Some(v) => { wb.put(key.clone(), v.clone()); }
                None => { wb.delete(key.clone()); }
            }
        }
        let batched = map.apply(&store, &cfg, wb).expect("apply");

        let last = values.last().expect("non-empty");
        let expected = match last {
            Some(v) => map.put(&store, &cfg, key.clone(), v.clone()).expect("put"),
            None => map.del(&store, &cfg, key.clone()).expect("del"),
        };
        prop_assert_eq!(batched.root(), expected.root());
        prop_assert_eq!(
            batched.get(&store, key.as_bytes()).map(|b| b.to_vec()),
            last.clone().map(String::into_bytes)
        );
    }

    #[test]
    fn set_batch_equals_sequential_fold(
        initial in prop::collection::vec(key_strategy(), 0..40),
        script in prop::collection::vec((key_strategy(), any::<bool>()), 1..30),
    ) {
        let store = MemStore::new();
        let cfg = cfg();
        let base = Set::build(&store, &cfg, initial.iter().cloned());

        let mut wb = WriteBatch::new();
        for (k, insert) in &script {
            if *insert {
                wb.insert(k.clone());
            } else {
                wb.delete(k.clone());
            }
        }
        let batched = base.apply(&store, &cfg, wb).expect("apply");

        let mut sequential = base;
        for (k, insert) in &script {
            sequential = if *insert {
                sequential.insert(&store, &cfg, k.clone()).expect("insert")
            } else {
                sequential.remove(&store, &cfg, k.clone()).expect("remove")
            };
        }
        prop_assert_eq!(batched.root(), sequential.root());
    }

    #[test]
    fn large_spread_batch_equals_rebuild(
        seed in any::<u64>(),
        edits in 1usize..400,
    ) {
        // Batches striding across a larger map: the multi-range splice
        // must reuse the untouched regions and still land bit-identically
        // on the from-scratch build.
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let n = 3000u64;
        let items: Vec<(String, String)> =
            (0..n).map(|i| (format!("k{i:06}"), format!("v{i}"))).collect();
        let map = Map::build(&store, &cfg, items.iter().map(|(k, v)| (k.clone(), v.clone())));

        let mut model: BTreeMap<String, String> = items.into_iter().collect();
        let mut wb = WriteBatch::new();
        let mut state = seed | 1;
        for e in 0..edits {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = format!("k{:06}", (state >> 33) % (n + 50)); // some misses
            if state.is_multiple_of(3) {
                wb.delete(key.clone());
                model.remove(&key);
            } else {
                let val = format!("edit-{e}");
                wb.put(key.clone(), val.clone());
                model.insert(key, val);
            }
        }
        let batched = map.apply(&store, &cfg, wb).expect("apply");
        let rebuilt = Map::build(&store, &cfg, model.iter().map(|(k, v)| (k.clone(), v.clone())));
        prop_assert_eq!(batched.root(), rebuilt.root());
    }
}
