//! Leaf-chunk payload encodings for the four chunkable types.
//!
//! * `Blob` — raw bytes (an element is one byte).
//! * `List` — repeated length-prefixed values.
//! * `Set`  — repeated length-prefixed keys, sorted.
//! * `Map`  — repeated length-prefixed `(key, value)` pairs, sorted by key.
//!
//! Elements never span chunks (§4.3.2): the builder checks for a boundary
//! only after a whole element has been fed.

use crate::types::TreeType;
use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, put_bytes};

/// One element of a chunkable object.
///
/// The `key`/`value` roles per type: List uses only `value`; Set uses only
/// `key`; Map uses both; Blob elements are handled as raw bytes and never
/// materialized as `Item`s on the fast path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// Ordering key (Set, Map).
    pub key: Bytes,
    /// Payload value (List, Map).
    pub value: Bytes,
}

impl Item {
    /// A List element.
    pub fn list(value: impl Into<Bytes>) -> Item {
        Item {
            key: Bytes::new(),
            value: value.into(),
        }
    }

    /// A Set element.
    pub fn set(key: impl Into<Bytes>) -> Item {
        Item {
            key: key.into(),
            value: Bytes::new(),
        }
    }

    /// A Map entry.
    pub fn map(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Item {
        Item {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Serialized size of this item in a leaf of type `ty`.
    pub fn encoded_len(&self, ty: TreeType) -> usize {
        let var = |len: usize| forkbase_chunk::codec::varint_len(len as u64) + len;
        match ty {
            TreeType::Blob => self.value.len(),
            TreeType::List => var(self.value.len()),
            TreeType::Set => var(self.key.len()),
            TreeType::Map => var(self.key.len()) + var(self.value.len()),
        }
    }
}

/// Append the encoding of `item` for tree type `ty` to `out`.
pub fn encode_item(ty: TreeType, item: &Item, out: &mut Vec<u8>) {
    match ty {
        TreeType::Blob => out.extend_from_slice(&item.value),
        TreeType::List => put_bytes(out, &item.value),
        TreeType::Set => put_bytes(out, &item.key),
        TreeType::Map => {
            put_bytes(out, &item.key);
            put_bytes(out, &item.value);
        }
    }
}

/// Decode all items of a leaf payload. For `Blob` this produces one item
/// per byte — use the raw payload instead on hot paths.
pub fn decode_items(ty: TreeType, payload: &[u8]) -> Option<Vec<Item>> {
    let mut items = Vec::new();
    match ty {
        TreeType::Blob => {
            items.reserve(payload.len());
            for &b in payload {
                items.push(Item {
                    key: Bytes::new(),
                    value: Bytes::copy_from_slice(&[b]),
                });
            }
        }
        TreeType::List => {
            let mut pos = 0;
            while pos < payload.len() {
                let v = get_bytes(payload, &mut pos)?;
                items.push(Item::list(Bytes::copy_from_slice(v)));
            }
        }
        TreeType::Set => {
            let mut pos = 0;
            while pos < payload.len() {
                let k = get_bytes(payload, &mut pos)?;
                items.push(Item::set(Bytes::copy_from_slice(k)));
            }
        }
        TreeType::Map => {
            let mut pos = 0;
            while pos < payload.len() {
                let k = Bytes::copy_from_slice(get_bytes(payload, &mut pos)?);
                let v = Bytes::copy_from_slice(get_bytes(payload, &mut pos)?);
                items.push(Item { key: k, value: v });
            }
        }
    }
    Some(items)
}

/// Decode all items of a leaf payload, borrowing key/value bytes from the
/// shared `payload` buffer (no per-item allocation). The update hot path
/// uses this; results are equal to [`decode_items`].
pub fn decode_items_shared(ty: TreeType, payload: &Bytes) -> Option<Vec<Item>> {
    let buf: &[u8] = payload;
    let mut items = Vec::new();
    // `get_bytes` returns a subslice of `buf`; re-derive its offsets to
    // take zero-copy `Bytes` slices of the shared buffer.
    let range_of = |sub: &[u8]| -> (usize, usize) {
        let start = sub.as_ptr() as usize - buf.as_ptr() as usize;
        (start, start + sub.len())
    };
    match ty {
        TreeType::Blob => {
            items.reserve(buf.len());
            for i in 0..buf.len() {
                items.push(Item {
                    key: Bytes::new(),
                    value: payload.slice(i..i + 1),
                });
            }
        }
        TreeType::List => {
            let mut pos = 0;
            while pos < buf.len() {
                let (s, e) = range_of(get_bytes(buf, &mut pos)?);
                items.push(Item::list(payload.slice(s..e)));
            }
        }
        TreeType::Set => {
            let mut pos = 0;
            while pos < buf.len() {
                let (s, e) = range_of(get_bytes(buf, &mut pos)?);
                items.push(Item::set(payload.slice(s..e)));
            }
        }
        TreeType::Map => {
            let mut pos = 0;
            while pos < buf.len() {
                let (ks, ke) = range_of(get_bytes(buf, &mut pos)?);
                let (vs, ve) = range_of(get_bytes(buf, &mut pos)?);
                items.push(Item {
                    key: payload.slice(ks..ke),
                    value: payload.slice(vs..ve),
                });
            }
        }
    }
    Some(items)
}

/// One element of a leaf payload as byte ranges into that payload —
/// nothing is materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawItem {
    /// The item's full encoded bytes: `payload[span.0..span.1]`.
    pub span: (usize, usize),
    /// The key bytes within the payload (empty range for List).
    pub key: (usize, usize),
}

/// Streaming decoder over an item-leaf payload (List/Set/Map) yielding
/// byte spans instead of materialized [`Item`]s. The update hot path
/// walks old leaves with this: untouched elements are compared by key
/// slice and copied verbatim, with no per-item allocation or `Bytes`
/// refcount traffic (cf. [`decode_items_shared`]).
pub struct RawItemCursor<'a> {
    ty: TreeType,
    data: &'a [u8],
    pos: usize,
    corrupt: bool,
}

impl<'a> RawItemCursor<'a> {
    /// Walk `data`, a leaf payload of type `ty` (not Blob — blob leaves
    /// are raw bytes).
    pub fn new(ty: TreeType, data: &'a [u8]) -> RawItemCursor<'a> {
        debug_assert!(ty != TreeType::Blob, "blob leaves are raw bytes");
        RawItemCursor {
            ty,
            data,
            pos: 0,
            corrupt: false,
        }
    }

    /// Next element, or `None` at the end of the payload. A `None` can
    /// also mean truncated/corrupt data — check
    /// [`finished_clean`](Self::finished_clean).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<RawItem> {
        if self.pos >= self.data.len() || self.corrupt {
            return None;
        }
        let start = self.pos;
        let mut pos = self.pos;
        let Some(first) = get_bytes(self.data, &mut pos) else {
            self.corrupt = true;
            return None;
        };
        let fs = first.as_ptr() as usize - self.data.as_ptr() as usize;
        let key = match self.ty {
            TreeType::List => (0, 0),
            _ => (fs, fs + first.len()),
        };
        if self.ty == TreeType::Map && get_bytes(self.data, &mut pos).is_none() {
            self.corrupt = true;
            return None;
        }
        self.pos = pos;
        Some(RawItem {
            span: (start, pos),
            key,
        })
    }

    /// True once the whole payload has decoded without error.
    pub fn finished_clean(&self) -> bool {
        !self.corrupt && self.pos == self.data.len()
    }
}

/// Number of elements in a leaf payload without materializing them.
pub fn count_items(ty: TreeType, payload: &[u8]) -> Option<u64> {
    match ty {
        TreeType::Blob => Some(payload.len() as u64),
        _ => {
            let mut n = 0u64;
            let mut pos = 0;
            while pos < payload.len() {
                get_bytes(payload, &mut pos)?;
                if ty == TreeType::Map {
                    get_bytes(payload, &mut pos)?;
                }
                n += 1;
            }
            Some(n)
        }
    }
}

/// The largest (= last) key of a sorted leaf payload, if any.
pub fn last_key(ty: TreeType, payload: &[u8]) -> Option<Bytes> {
    debug_assert!(ty.is_sorted());
    let mut pos = 0;
    let mut last: Option<&[u8]> = None;
    while pos < payload.len() {
        let k = get_bytes(payload, &mut pos)?;
        if ty == TreeType::Map {
            get_bytes(payload, &mut pos)?;
        }
        last = Some(k);
    }
    last.map(Bytes::copy_from_slice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let items = vec![
            Item::map("a", "1"),
            Item::map("b", ""),
            Item::map("cc", "333"),
        ];
        let mut payload = Vec::new();
        for i in &items {
            encode_item(TreeType::Map, i, &mut payload);
        }
        assert_eq!(decode_items(TreeType::Map, &payload), Some(items.clone()));
        assert_eq!(count_items(TreeType::Map, &payload), Some(3));
        assert_eq!(last_key(TreeType::Map, &payload), Some(Bytes::from("cc")));
        let total: usize = items.iter().map(|i| i.encoded_len(TreeType::Map)).sum();
        assert_eq!(total, payload.len());
    }

    #[test]
    fn list_round_trip() {
        let items = vec![Item::list("one"), Item::list(""), Item::list("three")];
        let mut payload = Vec::new();
        for i in &items {
            encode_item(TreeType::List, i, &mut payload);
        }
        assert_eq!(decode_items(TreeType::List, &payload), Some(items));
        assert_eq!(count_items(TreeType::List, &payload), Some(3));
    }

    #[test]
    fn set_round_trip() {
        let items = vec![Item::set("alpha"), Item::set("beta")];
        let mut payload = Vec::new();
        for i in &items {
            encode_item(TreeType::Set, i, &mut payload);
        }
        assert_eq!(decode_items(TreeType::Set, &payload), Some(items));
        assert_eq!(last_key(TreeType::Set, &payload), Some(Bytes::from("beta")));
    }

    #[test]
    fn blob_counts_bytes() {
        assert_eq!(count_items(TreeType::Blob, b"hello"), Some(5));
        assert_eq!(count_items(TreeType::Blob, b""), Some(0));
    }

    #[test]
    fn corrupt_payload_rejected() {
        // Length prefix claims more bytes than present.
        let payload = [5u8, b'a', b'b'];
        assert_eq!(decode_items(TreeType::List, &payload), None);
        assert_eq!(count_items(TreeType::List, &payload), None);
    }

    #[test]
    fn raw_cursor_matches_decode() {
        for ty in [TreeType::List, TreeType::Set, TreeType::Map] {
            let items = vec![
                Item {
                    key: Bytes::from("k-one"),
                    value: Bytes::from("value one"),
                },
                Item {
                    key: Bytes::from(""),
                    value: Bytes::from(""),
                },
                Item {
                    key: Bytes::from("k-three"),
                    value: Bytes::from(vec![9u8; 300]),
                },
            ];
            let mut payload = Vec::new();
            for i in &items {
                encode_item(ty, i, &mut payload);
            }
            let decoded = decode_items(ty, &payload).expect("decode");
            let mut cursor = RawItemCursor::new(ty, &payload);
            let mut at = 0usize;
            let mut got = 0usize;
            while let Some(raw) = cursor.next() {
                assert_eq!(raw.span.0, at, "spans tile the payload");
                let key = &payload[raw.key.0..raw.key.1];
                if ty != TreeType::List {
                    assert_eq!(key, decoded[got].key.as_ref());
                }
                // Re-encoding the decoded item reproduces the span bytes.
                let mut re = Vec::new();
                encode_item(ty, &decoded[got], &mut re);
                assert_eq!(&payload[raw.span.0..raw.span.1], &re[..]);
                at = raw.span.1;
                got += 1;
            }
            assert_eq!(got, items.len());
            assert!(cursor.finished_clean());
        }
    }

    #[test]
    fn raw_cursor_flags_corruption() {
        let payload = [5u8, b'a', b'b'];
        let mut cursor = RawItemCursor::new(TreeType::List, &payload);
        assert!(cursor.next().is_none());
        assert!(!cursor.finished_clean());
    }
}
