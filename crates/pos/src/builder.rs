//! Bottom-up POS-Tree construction — Algorithm 1 of the paper.
//!
//! [`LeafBuilder`] streams elements into leaf chunks, cutting where the
//! rolling-hash pattern fires (or at the forced `α·2^q` cap). The emitted
//! leaf entries then pass through [`build_from_entries`], which builds the
//! index levels using the cid-based pattern P′ until a single root remains.
//!
//! # Copy-free leaf assembly
//!
//! A pending leaf is a **rope**: a list of `Bytes` spans. Content adopted
//! from an existing buffer — an encoded input run during a from-scratch
//! build ([`append_encoded_run`](LeafBuilder::append_encoded_run)), an old
//! leaf's untouched region during a splice
//! ([`append_blob_shared`](LeafBuilder::append_blob_shared)) — enters the
//! rope as a zero-copy slice of that buffer. Only freshly encoded
//! elements pass through a small stitch buffer. The ropes are handed to
//! [`Chunk::new_batch_ropes`], which hashes straight over the spans, so a
//! leaf whose content is one borrowed run is never copied at all.
//!
//! The builder also supports the two operations the splice-based update
//! path needs (§4.3.3 "only affected nodes are reconstructed"):
//! * [`LeafBuilder::push_reused`] — adopt an existing leaf wholesale
//!   (copy-on-write: the chunk is shared with the previous version), and
//! * [`LeafBuilder::seed`] — warm the rolling window with the bytes that
//!   precede the rebuild point, so boundary decisions match a from-scratch
//!   build exactly.

use crate::entry::{encode_index_payload, IndexEntry};
use crate::leaf::{encode_item, Item, RawItem};
use crate::types::TreeType;
use bytes::Bytes;
use forkbase_chunk::codec::varint_len;
use forkbase_chunk::{Chunk, ChunkStore};
use forkbase_crypto::{ChunkerConfig, LeafChunker};

/// A leaf the builder has settled on but not necessarily hashed yet.
///
/// Reused leaves arrive with their entry (cid included) ready; fresh
/// leaves carry only their payload rope — their cids are independent of
/// each other, so [`LeafBuilder::finish`] computes them all in one batch
/// (parallel on multi-core hosts) instead of once per cut.
enum PendingLeaf {
    Reused(IndexEntry),
    Fresh {
        rope: Vec<Bytes>,
        count: u64,
        key: Bytes,
    },
}

/// Where the pending leaf's last key currently lives. Keys inside the
/// open stitch buffer are tracked as plain offsets (no `Bytes` refcount
/// per item); they are resolved to a zero-copy slice when the stitch
/// segment freezes.
enum LastKey {
    None,
    /// Byte range within the open stitch buffer.
    Stitch(usize, usize),
    /// Already-frozen bytes (a slice of a rope span).
    Frozen(Bytes),
}

/// Streaming builder for the leaf level of a POS-Tree.
pub struct LeafBuilder<'s> {
    store: &'s dyn ChunkStore,
    ty: TreeType,
    chunker: LeafChunker,
    /// Frozen rope spans of the pending (uncut) leaf, in content order.
    spans: Vec<Bytes>,
    /// Open segment receiving freshly encoded elements; frozen into
    /// `spans` when a borrowed span arrives or the leaf cuts.
    stitch: Vec<u8>,
    /// Total encoded bytes pending (spans + stitch).
    pending_len: usize,
    count: u64,
    last_key: LastKey,
    entries: Vec<PendingLeaf>,
}

impl<'s> LeafBuilder<'s> {
    /// Start building leaves of type `ty` into `store`.
    pub fn new(store: &'s dyn ChunkStore, cfg: &ChunkerConfig, ty: TreeType) -> Self {
        LeafBuilder {
            store,
            ty,
            chunker: LeafChunker::new(cfg),
            spans: Vec::new(),
            stitch: Vec::new(),
            pending_len: 0,
            count: 0,
            last_key: LastKey::None,
            entries: Vec::new(),
        }
    }

    /// True when no partial leaf is pending, i.e. the last fed byte ended a
    /// chunk (or nothing has been fed).
    pub fn aligned(&self) -> bool {
        self.pending_len == 0
    }

    /// Encoded bytes in the pending (uncut) leaf.
    pub fn pending_bytes(&self) -> usize {
        self.pending_len
    }

    /// Freeze the open stitch segment into a rope span, resolving a
    /// stitch-relative key to a zero-copy slice of the frozen bytes.
    fn freeze_stitch(&mut self) {
        if self.stitch.is_empty() {
            return;
        }
        let frozen = Bytes::from(std::mem::take(&mut self.stitch));
        if let LastKey::Stitch(s, e) = self.last_key {
            self.last_key = LastKey::Frozen(frozen.slice(s..e));
        }
        self.spans.push(frozen);
    }

    /// Append a borrowed span to the pending leaf's rope.
    fn push_span(&mut self, span: Bytes) {
        self.freeze_stitch();
        self.pending_len += span.len();
        self.spans.push(span);
    }

    /// Warm the rolling window with the `bytes` that immediately precede
    /// the position the builder will continue from. Must be called while
    /// [`aligned`](Self::aligned); pass the last `window` bytes (or fewer
    /// if the object is shorter) of the preceding encoded content.
    pub fn seed(&mut self, bytes: &[u8]) {
        debug_assert!(self.aligned(), "seed only between chunks");
        self.chunker.reset();
        self.chunker.feed(bytes);
        self.chunker.cut();
    }

    /// Adopt an existing leaf without re-reading it (structural sharing).
    /// Must be called while aligned; after one or more reuses, call
    /// [`seed`](Self::seed) before feeding fresh elements again.
    pub fn push_reused(&mut self, entry: IndexEntry) {
        debug_assert!(self.aligned(), "reuse only between chunks");
        self.entries.push(PendingLeaf::Reused(entry));
    }

    /// Append one element (List/Set/Map trees). For sorted types the caller
    /// must append in non-decreasing key order.
    pub fn append_item(&mut self, item: &Item) {
        debug_assert!(self.ty != TreeType::Blob, "use append_blob for Blob trees");
        let start = self.stitch.len();
        encode_item(self.ty, item, &mut self.stitch);
        self.chunker.feed(&self.stitch[start..]);
        self.pending_len += self.stitch.len() - start;
        self.count += 1;
        if self.ty.is_sorted() {
            debug_assert!(
                self.pending_last_key() <= &item.key[..],
                "sorted builder fed out of order"
            );
            // The key's bytes sit right behind its length varint in the
            // encoding just written.
            let koff = start + varint_len(item.key.len() as u64);
            self.last_key = LastKey::Stitch(koff, koff + item.key.len());
        }
        if self.chunker.boundary() {
            self.cut();
        }
    }

    /// Append a run of elements that are **already encoded** for this tree
    /// type, adopted as zero-copy slices of `src` (an old leaf payload
    /// during a splice, or the pre-encoded input buffer of a from-scratch
    /// build). `items` are the run's elements in order, as spans into
    /// `src` (contiguous — each span starts where the previous one ended).
    ///
    /// Bit-identical to decoding every element and calling
    /// [`append_item`](Self::append_item), but the whole run goes through the slice-level
    /// boundary scanner ([`LeafChunker::feed_bytewise`]) instead of one
    /// `feed` per element: a pattern hit inside element `j` is mapped to
    /// `j`'s end (elements never span chunks) and the scan resumes after
    /// the cut. For the ~22-byte elements of a metadata map this is ~5×
    /// less chunker overhead — the difference between paying per *byte*
    /// and paying per *element*. The adopted bytes enter the leaf rope as
    /// slices of `src`; they are not copied.
    pub fn append_encoded_run(&mut self, src: &Bytes, items: &[RawItem]) {
        debug_assert!(self.ty != TreeType::Blob, "use append_blob for Blob trees");
        let run_end = match items.last() {
            Some(last) => last.span.1,
            None => return,
        };
        let buf: &[u8] = src;
        let mut i = 0usize;
        while i < items.len() {
            let start = items[i].span.0;
            match self.chunker.feed_bytewise(&buf[start..run_end]) {
                Some(n) => {
                    // Boundary (pattern or size cap) after `n` bytes:
                    // extend it to the end of the element containing it
                    // and cut there, exactly like the per-element path.
                    let p = start + n;
                    let j = i + items[i..].partition_point(|r| r.span.1 < p);
                    let item = &items[j];
                    self.chunker.feed(&buf[p..item.span.1]);
                    self.push_span(src.slice(start..item.span.1));
                    self.count += (j - i + 1) as u64;
                    if self.ty.is_sorted() {
                        self.last_key = LastKey::Frozen(src.slice(item.key.0..item.key.1));
                    }
                    self.cut();
                    i = j + 1;
                }
                None => {
                    // No boundary in the rest of the run: adopt it whole.
                    let item = items[items.len() - 1];
                    self.push_span(src.slice(start..run_end));
                    self.count += (items.len() - i) as u64;
                    if self.ty.is_sorted() {
                        self.last_key = LastKey::Frozen(src.slice(item.key.0..item.key.1));
                    }
                    i = items.len();
                }
            }
        }
    }

    /// The pending leaf's current last key (empty when nothing pending).
    fn pending_last_key(&self) -> &[u8] {
        match &self.last_key {
            LastKey::None => &[],
            LastKey::Stitch(s, e) => &self.stitch[*s..*e],
            LastKey::Frozen(b) => b,
        }
    }

    /// Append raw bytes to a Blob tree; every byte is an element, so a
    /// boundary can fall on any byte. The chunker scans `data` slice-at-a-
    /// time ([`LeafChunker::feed_bytewise`]) and reports the exact cut
    /// position, so the whole input is processed by block instead of one
    /// `feed` call per byte. The bytes are copied through the stitch
    /// buffer — use [`append_blob_shared`](Self::append_blob_shared) when
    /// the source is already a shared buffer.
    pub fn append_blob(&mut self, data: &[u8]) {
        debug_assert!(self.ty == TreeType::Blob);
        let mut off = 0usize;
        while off < data.len() {
            let hit = self.chunker.feed_bytewise(&data[off..]);
            let n = hit.unwrap_or(data.len() - off);
            self.stitch.extend_from_slice(&data[off..off + n]);
            self.pending_len += n;
            self.count += n as u64;
            off += n;
            if hit.is_some() {
                self.cut();
            }
        }
    }

    /// [`append_blob`](Self::append_blob), but the consumed bytes enter
    /// the leaf ropes as zero-copy slices of `data` — a whole-blob build
    /// from a shared buffer, or the untouched regions of an old leaf
    /// during a splice, never copy their payload bytes.
    pub fn append_blob_shared(&mut self, data: &Bytes) {
        debug_assert!(self.ty == TreeType::Blob);
        let buf: &[u8] = data;
        let mut off = 0usize;
        while off < buf.len() {
            let hit = self.chunker.feed_bytewise(&buf[off..]);
            let n = hit.unwrap_or(buf.len() - off);
            self.push_span(data.slice(off..off + n));
            self.count += n as u64;
            off += n;
            if hit.is_some() {
                self.cut();
            }
        }
    }

    /// Flush the pending leaf (if any), hash and store every fresh leaf,
    /// and return the leaf entry list. Fresh-leaf cids are computed as one
    /// batch straight over the payload ropes ([`Chunk::new_batch_ropes`],
    /// parallel on multi-core hosts): a build or batched update that
    /// produced many leaves pays for hashing fan-out once instead of
    /// hashing serially, and single-span leaves are never re-materialized.
    pub fn finish(mut self) -> Vec<IndexEntry> {
        if self.pending_len > 0 {
            self.cut();
        }
        let ropes: Vec<Vec<Bytes>> = self
            .entries
            .iter_mut()
            .filter_map(|p| match p {
                PendingLeaf::Fresh { rope, .. } => Some(std::mem::take(rope)),
                PendingLeaf::Reused(_) => None,
            })
            .collect();
        let mut chunks = Chunk::new_batch_ropes(self.ty.leaf_chunk(), ropes).into_iter();
        self.entries
            .into_iter()
            .map(|p| match p {
                PendingLeaf::Reused(entry) => entry,
                PendingLeaf::Fresh { count, key, .. } => {
                    let chunk = chunks.next().expect("one chunk per fresh leaf");
                    let cid = chunk.cid();
                    self.store.put(chunk);
                    IndexEntry { cid, count, key }
                }
            })
            .collect()
    }

    fn cut(&mut self) {
        self.freeze_stitch();
        let rope = std::mem::take(&mut self.spans);
        let key = match std::mem::replace(&mut self.last_key, LastKey::None) {
            LastKey::Frozen(b) => b,
            // freeze_stitch resolved any stitch-relative key above.
            LastKey::Stitch(..) => unreachable!("stitch key resolved at freeze"),
            LastKey::None => Bytes::new(),
        };
        self.entries.push(PendingLeaf::Fresh {
            rope,
            count: self.count,
            key,
        });
        self.count = 0;
        self.pending_len = 0;
        self.chunker.cut();
    }
}

/// Build the index levels over `entries` (Algorithm 1's outer loop) and
/// return the root cid. An empty entry list produces the canonical empty
/// leaf chunk for the type.
pub fn build_from_entries(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    entries: Vec<IndexEntry>,
) -> forkbase_crypto::Digest {
    build_from_entries_reusing(store, cfg, ty, entries, None)
}

/// One index chunk of the previous tree version: its children (by cid)
/// and the already-computed entry that points at it.
struct OldGroup {
    children: Vec<forkbase_crypto::Digest>,
    entry: IndexEntry,
    /// True if the group ended at a P′ pattern or the fanout cap — i.e. a
    /// from-scratch build over the same children is guaranteed to cut in
    /// the same place. A flush-ended (final) group can only be adopted
    /// when it is final in the new sequence too.
    closed: bool,
}

/// Per level (1 = parents of leaves), old groups keyed by their first
/// child's cid.
type OldGroups = Vec<forkbase_crypto::fx::FxHashMap<forkbase_crypto::Digest, Vec<OldGroup>>>;

/// Collect every index chunk of the tree at `root`, grouped by level, for
/// structural reuse during an update.
fn collect_old_groups(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    root: forkbase_crypto::Digest,
) -> Option<OldGroups> {
    let chunk = store.get(&root)?;
    if !chunk.ty().is_index() {
        return Some(Vec::new());
    }
    let max_fanout = cfg.max_index_fanout();
    let mut levels: OldGroups = Vec::new();
    let mut stack = vec![(root, chunk)];
    while let Some((cid, chunk)) = stack.pop() {
        let (level, children) =
            crate::entry::decode_index_payload_shared(chunk.payload(), ty.is_sorted())?;
        let lvl = level as usize;
        if levels.len() < lvl {
            levels.resize_with(lvl, Default::default);
        }
        let last = children.last()?;
        let closed = cfg.index_boundary(&last.cid) || children.len() >= max_fanout;
        let entry = IndexEntry {
            cid,
            count: children.iter().map(|e| e.count).sum(),
            key: last.key.clone(),
        };
        if level > 1 {
            for c in &children {
                let child = store.get(&c.cid)?;
                stack.push((c.cid, child));
            }
        }
        let first = children.first()?.cid;
        levels[lvl - 1].entry(first).or_default().push(OldGroup {
            children: children.into_iter().map(|e| e.cid).collect(),
            entry,
            closed,
        });
    }
    Some(levels)
}

/// Build index levels, adopting any old-tree index chunk whose children
/// are unchanged instead of re-encoding and re-hashing it (§4.3.3: "only
/// affected nodes are reconstructed"). Group boundaries are pure
/// functions of the child cid sequence, so an adopted chunk is
/// bit-identical to what a fresh build would produce — the update paths'
/// splice-equals-rebuild tests pin this down.
pub(crate) fn build_from_entries_reusing(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    mut entries: Vec<IndexEntry>,
    old_root: Option<forkbase_crypto::Digest>,
) -> forkbase_crypto::Digest {
    if entries.is_empty() {
        let chunk = Chunk::new(ty.leaf_chunk(), Bytes::new());
        let cid = chunk.cid();
        store.put(chunk);
        return cid;
    }
    let old_levels = old_root
        .and_then(|r| collect_old_groups(store, cfg, ty, r))
        .unwrap_or_default();
    let max_fanout = cfg.max_index_fanout();
    let mut level = 1u64;
    while entries.len() > 1 {
        let old = old_levels.get(level as usize - 1);
        let mut next = Vec::new();
        let mut i = 0usize;
        while i < entries.len() {
            // At a group start: try to adopt an old group wholesale.
            if let Some(groups) = old.and_then(|m| m.get(&entries[i].cid)) {
                if let Some(g) = groups.iter().find(|g| {
                    let k = g.children.len();
                    (g.closed || i + k == entries.len())
                        && i + k <= entries.len()
                        && g.children
                            .iter()
                            .zip(&entries[i..i + k])
                            .all(|(c, e)| *c == e.cid)
                }) {
                    next.push(g.entry.clone());
                    i += g.children.len();
                    continue;
                }
            }
            // Fresh group: push entries until the P′ pattern or the cap.
            let mut group: Vec<IndexEntry> = Vec::new();
            while i < entries.len() {
                let e = entries[i].clone();
                i += 1;
                let cut = cfg.index_boundary(&e.cid);
                group.push(e);
                if cut || group.len() >= max_fanout {
                    break;
                }
            }
            next.push(emit_index(store, ty, level, &mut group));
        }
        entries = next;
        level += 1;
    }
    entries.pop().expect("non-empty").cid
}

fn emit_index(
    store: &dyn ChunkStore,
    ty: TreeType,
    level: u64,
    group: &mut Vec<IndexEntry>,
) -> IndexEntry {
    let payload = encode_index_payload(level, group, ty.is_sorted());
    let chunk = Chunk::new(ty.index_chunk(), payload);
    let cid = chunk.cid();
    store.put(chunk);
    let count = group.iter().map(|e| e.count).sum();
    let key = group.last().map(|e| e.key.clone()).unwrap_or_default();
    group.clear();
    IndexEntry { cid, count, key }
}

/// Build a complete tree from an element stream.
///
/// The whole input is pre-encoded into one contiguous buffer (for sorted
/// types the caller supplies elements in key order, exactly as
/// [`LeafBuilder::append_item`] requires), then the buffer is run through
/// the slice-level boundary scanner as a **single encoded run**
/// ([`LeafBuilder::append_encoded_run`]): boundary detection pays per
/// byte instead of per element, and every leaf payload is a zero-copy
/// slice of the encode buffer. Bit-identical to the retained
/// element-at-a-time path ([`build_items_itemwise`]) — the
/// `build_equivalence` proptests pin that down.
pub fn build_items(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    items: impl IntoIterator<Item = Item>,
) -> forkbase_crypto::Digest {
    if ty == TreeType::Blob {
        // Blob "items" are byte runs; concatenate and take the blob path.
        let mut buf = Vec::new();
        for item in items {
            buf.extend_from_slice(&item.value);
        }
        return build_blob_bytes(store, cfg, Bytes::from(buf));
    }
    let mut buf = Vec::new();
    let mut raw: Vec<RawItem> = Vec::new();
    #[cfg(debug_assertions)]
    let mut prev_key = Bytes::new();
    for item in items {
        #[cfg(debug_assertions)]
        if ty.is_sorted() {
            debug_assert!(prev_key <= item.key, "sorted build fed out of order");
            prev_key = item.key.clone();
        }
        let start = buf.len();
        encode_item(ty, &item, &mut buf);
        let koff = start + varint_len(item.key.len() as u64);
        raw.push(RawItem {
            span: (start, buf.len()),
            key: if ty.is_sorted() {
                (koff, koff + item.key.len())
            } else {
                (0, 0)
            },
        });
    }
    let src = Bytes::from(buf);
    let mut lb = LeafBuilder::new(store, cfg, ty);
    lb.append_encoded_run(&src, &raw);
    build_from_entries(store, cfg, ty, lb.finish())
}

/// The retained element-at-a-time build path: one chunker feed per
/// element, payloads copied through the stitch buffer. This is the
/// provably-unchanged baseline the run-scanning path
/// ([`build_items`]) is benchmarked and equivalence-tested against.
pub fn build_items_itemwise(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    items: impl IntoIterator<Item = Item>,
) -> forkbase_crypto::Digest {
    let mut lb = LeafBuilder::new(store, cfg, ty);
    if ty == TreeType::Blob {
        for item in items {
            lb.append_blob(&item.value);
        }
    } else {
        for item in items {
            lb.append_item(&item);
        }
    }
    let entries = lb.finish();
    build_from_entries(store, cfg, ty, entries)
}

/// Build a Blob tree from raw bytes.
///
/// The borrowed input is copied into a shared buffer once up front and
/// then takes the zero-copy path — prefer [`build_blob_bytes`] when the
/// caller already owns a `Bytes`.
pub fn build_blob(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    data: &[u8],
) -> forkbase_crypto::Digest {
    build_blob_bytes(store, cfg, Bytes::copy_from_slice(data))
}

/// Build a Blob tree from a shared buffer. Every leaf payload is a
/// zero-copy slice of `data`, and the two byte-level passes of the build
/// both run parallel on multi-core hosts: the boundary scan through
/// [`split_positions_parallel`](forkbase_crypto::split_positions_parallel)
/// (pattern hits are independent of cut positions because the rolling
/// window never resets at a cut) and the leaf cids as one rope batch.
///
/// Memory tradeoff: stored leaves alias `data`'s allocation. For fresh
/// content the slices sum to the buffer, so nothing extra is pinned; a
/// *highly deduplicated* build (most chunks already in the store) can
/// leave a few retained leaves pinning the whole input buffer until a GC
/// compaction, which unshares payloads ([`Chunk::unshared`]).
pub fn build_blob_bytes(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    data: Bytes,
) -> forkbase_crypto::Digest {
    let cuts = forkbase_crypto::split_positions_parallel(&data, cfg);
    let ropes: Vec<Vec<Bytes>> = {
        let mut prev = 0usize;
        cuts.iter()
            .map(|&c| {
                let span = data.slice(prev..c);
                prev = c;
                vec![span]
            })
            .collect()
    };
    let mut prev = 0usize;
    let entries: Vec<IndexEntry> = Chunk::new_batch_ropes(TreeType::Blob.leaf_chunk(), ropes)
        .into_iter()
        .zip(&cuts)
        .map(|(chunk, &c)| {
            let cid = chunk.cid();
            store.put(chunk);
            let count = (c - prev) as u64;
            prev = c;
            IndexEntry {
                cid,
                count,
                key: Bytes::new(),
            }
        })
        .collect();
    build_from_entries(store, cfg, TreeType::Blob, entries)
}

/// The retained copy-through-the-stitch-buffer Blob build — the baseline
/// [`build_blob_bytes`] is benchmarked and equivalence-tested against.
pub fn build_blob_itemwise(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    data: &[u8],
) -> forkbase_crypto::Digest {
    let mut lb = LeafBuilder::new(store, cfg, TreeType::Blob);
    lb.append_blob(data);
    build_from_entries(store, cfg, TreeType::Blob, lb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_chunk::MemStore;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn identical_content_identical_root() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let data = pseudo_random(100_000, 1);
        let r1 = build_blob(&store, &cfg, &data);
        let r2 = build_blob(&store, &cfg, &data);
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_content_different_root() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let data = pseudo_random(50_000, 2);
        let mut edited = data.clone();
        edited[25_000] ^= 1;
        assert_ne!(
            build_blob(&store, &cfg, &data),
            build_blob(&store, &cfg, &edited)
        );
    }

    #[test]
    fn empty_blob_builds_canonical_root() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let r1 = build_blob(&store, &cfg, b"");
        let r2 = build_items(&store, &cfg, TreeType::Blob, std::iter::empty());
        assert_eq!(r1, r2);
        assert!(store.contains(&r1));
    }

    #[test]
    fn small_object_is_single_leaf() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_blob(&store, &cfg, b"tiny");
        let chunk = store.get(&root).expect("stored");
        assert_eq!(chunk.ty(), forkbase_chunk::ChunkType::Blob);
        assert_eq!(chunk.payload().as_ref(), b"tiny");
    }

    #[test]
    fn large_object_builds_index_levels() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8); // small chunks → deep tree
        let data = pseudo_random(200_000, 3);
        let root = build_blob(&store, &cfg, &data);
        let chunk = store.get(&root).expect("stored");
        assert!(chunk.ty().is_index(), "root should be an index node");
    }

    #[test]
    fn shared_prefix_shares_chunks() {
        let store_a = MemStore::new();
        let store_b = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let base = pseudo_random(100_000, 4);
        let mut appended = base.clone();
        appended.extend_from_slice(&pseudo_random(1000, 5));

        build_blob(&store_a, &cfg, &base);
        let before = store_a.stats().stored_chunks;
        build_blob(&store_a, &cfg, &appended);
        let added = store_a.stats().stored_chunks - before;

        build_blob(&store_b, &cfg, &appended);
        let solo = store_b.stats().stored_chunks;

        // Appending re-uses almost all leaf chunks: only the tail leaf,
        // the new data, and the index spine change.
        assert!(
            added < solo / 4,
            "append stored {added} new chunks vs {solo} for a fresh build"
        );
    }

    #[test]
    fn map_build_sorted_items() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let items: Vec<Item> = (0..1000)
            .map(|i| Item::map(format!("key{i:05}"), format!("value{i}")))
            .collect();
        let r1 = build_items(&store, &cfg, TreeType::Map, items.clone());
        let r2 = build_items(&store, &cfg, TreeType::Map, items);
        assert_eq!(r1, r2);
    }

    #[test]
    fn leaf_sizes_respect_cap() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let data = pseudo_random(300_000, 9);
        let mut lb = LeafBuilder::new(&store, &cfg, TreeType::Blob);
        lb.append_blob(&data);
        let entries = lb.finish();
        for e in &entries {
            let chunk = store.get(&e.cid).expect("stored");
            assert!(chunk.len() <= cfg.max_leaf_size());
        }
        let total: u64 = entries.iter().map(|e| e.count).sum();
        assert_eq!(total, data.len() as u64);
    }
}
