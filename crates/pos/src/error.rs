//! Error type for tree operations that read existing chunks.
//!
//! Update paths walk the previous version of a tree; a chunk that is
//! absent from the store (or fails to decode) means the store is corrupt
//! or incomplete. Callers must see that as an error, not a panic.

use forkbase_crypto::Digest;
use std::fmt;

/// A tree operation failed because the stored tree could not be read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// A chunk reachable from `root` is missing from the store or failed
    /// to decode — the tree is corrupt or the store incomplete.
    MissingChunk {
        /// Root of the tree being read when the missing chunk was hit.
        root: Digest,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::MissingChunk { root } => write!(
                f,
                "missing or corrupt chunk while reading tree {}",
                root.short_hex()
            ),
        }
    }
}

impl std::error::Error for TreeError {}

/// Result alias for fallible tree operations.
pub type TreeResult<T> = Result<T, TreeError>;
