//! Index-node entries.
//!
//! Each entry references one child chunk: its cid, the number of elements
//! in the child's subtree (bytes for Blob), and — for sorted types — the
//! largest key in the subtree (the split key guiding lookups, §4.3.1).
//!
//! The paper stores counts only in UIndex entries; we keep them in SIndex
//! entries too, which adds O(log n) positional access and O(1) `len()` to
//! sorted types at a few bytes per entry. This is a strict superset of the
//! paper's structure and does not affect any measured behaviour.

use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, get_varint, put_bytes, put_varint};
use forkbase_crypto::Digest;

/// One index entry: `(child cid, subtree element count, split key)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Content identifier of the child chunk.
    pub cid: Digest,
    /// Elements in the child's subtree (bytes for Blob trees).
    pub count: u64,
    /// Largest key in the child's subtree; empty for unsorted types.
    pub key: Bytes,
}

impl IndexEntry {
    /// Entry for an unsorted child.
    pub fn unsorted(cid: Digest, count: u64) -> Self {
        IndexEntry {
            cid,
            count,
            key: Bytes::new(),
        }
    }

    /// Entry for a sorted child with split key `key`.
    pub fn sorted(cid: Digest, count: u64, key: impl Into<Bytes>) -> Self {
        IndexEntry {
            cid,
            count,
            key: key.into(),
        }
    }

    /// Serialize into an index-chunk payload.
    pub fn encode_into(&self, out: &mut Vec<u8>, sorted: bool) {
        out.extend_from_slice(self.cid.as_bytes());
        put_varint(out, self.count);
        if sorted {
            put_bytes(out, &self.key);
        }
    }

    /// Deserialize from an index-chunk payload.
    pub fn decode(buf: &[u8], pos: &mut usize, sorted: bool) -> Option<IndexEntry> {
        if buf.len() < *pos + Digest::LEN {
            return None;
        }
        let cid = Digest::from_slice(&buf[*pos..*pos + Digest::LEN])?;
        *pos += Digest::LEN;
        let count = get_varint(buf, pos)?;
        let key = if sorted {
            Bytes::copy_from_slice(get_bytes(buf, pos)?)
        } else {
            Bytes::new()
        };
        Some(IndexEntry { cid, count, key })
    }
}

/// Encode an index-chunk payload: `[level][entry]*` where `level` is the
/// height of this node (1 = children are leaves). The level byte lets a
/// reader find the leaf-entry level without fetching leaf chunks.
pub fn encode_index_payload(level: u64, entries: &[IndexEntry], sorted: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * (Digest::LEN + 10) + 2);
    put_varint(&mut out, level);
    for e in entries {
        e.encode_into(&mut out, sorted);
    }
    out
}

/// Decode an index-chunk payload; returns `(level, entries)`.
pub fn decode_index_payload(buf: &[u8], sorted: bool) -> Option<(u64, Vec<IndexEntry>)> {
    let mut pos = 0;
    let level = get_varint(buf, &mut pos)?;
    let mut entries = Vec::new();
    while pos < buf.len() {
        entries.push(IndexEntry::decode(buf, &mut pos, sorted)?);
    }
    Some((level, entries))
}

/// Decode an index-chunk payload with split keys borrowed from the shared
/// `payload` buffer (no per-entry allocation). Equal results to
/// [`decode_index_payload`]; used on scan/update hot paths where trees
/// have thousands of entries.
pub fn decode_index_payload_shared(
    payload: &Bytes,
    sorted: bool,
) -> Option<(u64, Vec<IndexEntry>)> {
    let buf: &[u8] = payload;
    let mut pos = 0;
    let level = get_varint(buf, &mut pos)?;
    let mut entries = Vec::new();
    while pos < buf.len() {
        if buf.len() < pos + Digest::LEN {
            return None;
        }
        let cid = Digest::from_slice(&buf[pos..pos + Digest::LEN])?;
        pos += Digest::LEN;
        let count = get_varint(buf, &mut pos)?;
        let key = if sorted {
            let sub = get_bytes(buf, &mut pos)?;
            let start = sub.as_ptr() as usize - buf.as_ptr() as usize;
            payload.slice(start..start + sub.len())
        } else {
            Bytes::new()
        };
        entries.push(IndexEntry { cid, count, key });
    }
    Some((level, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::hash_bytes;

    #[test]
    fn unsorted_round_trip() {
        let entries = vec![
            IndexEntry::unsorted(hash_bytes(b"a"), 100),
            IndexEntry::unsorted(hash_bytes(b"b"), 3),
        ];
        let payload = encode_index_payload(1, &entries, false);
        let (level, decoded) = decode_index_payload(&payload, false).expect("valid");
        assert_eq!(level, 1);
        assert_eq!(decoded, entries);
    }

    #[test]
    fn sorted_round_trip() {
        let entries = vec![
            IndexEntry::sorted(hash_bytes(b"x"), 10, &b"key-199"[..]),
            IndexEntry::sorted(hash_bytes(b"y"), 20, &b"key-999"[..]),
            IndexEntry::sorted(hash_bytes(b"z"), 1, &b""[..]),
        ];
        let payload = encode_index_payload(3, &entries, true);
        let (level, decoded) = decode_index_payload(&payload, true).expect("valid");
        assert_eq!(level, 3);
        assert_eq!(decoded, entries);
    }

    #[test]
    fn decode_rejects_truncation() {
        let entries = vec![IndexEntry::unsorted(hash_bytes(b"a"), 7)];
        let mut payload = encode_index_payload(1, &entries, false);
        payload.truncate(payload.len() - 1);
        assert!(decode_index_payload(&payload, false).is_none());
    }

    #[test]
    fn empty_payload_decodes_to_no_entries() {
        let payload = encode_index_payload(2, &[], true);
        let (level, decoded) = decode_index_payload(&payload, true).expect("valid");
        assert_eq!(level, 2);
        assert!(decoded.is_empty());
    }
}
