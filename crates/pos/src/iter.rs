//! Streaming iteration over POS-Tree elements.
//!
//! The iterator fetches one leaf chunk at a time through the store, so
//! "the actual data is fetched gradually on demand" (§3.4) and any caching
//! layer underneath sees chunk-granular accesses.

use crate::entry::{decode_index_payload, IndexEntry};
use crate::leaf::{decode_items, Item};
use crate::types::TreeType;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::Digest;

/// Depth-first iterator over all items of a tree, in order.
pub struct ItemIter<'s> {
    store: &'s dyn ChunkStore,
    ty: TreeType,
    /// Index-node frames: (entries, next child index).
    stack: Vec<(Vec<IndexEntry>, usize)>,
    leaf_items: std::vec::IntoIter<Item>,
}

impl<'s> ItemIter<'s> {
    /// Iterate the whole tree from its first element.
    pub fn new(store: &'s dyn ChunkStore, root: Digest, ty: TreeType) -> Option<Self> {
        let chunk = store.get(&root)?;
        let mut it = ItemIter {
            store,
            ty,
            stack: Vec::new(),
            leaf_items: Vec::new().into_iter(),
        };
        if chunk.ty().is_index() {
            let (_, entries) = decode_index_payload(chunk.payload(), ty.is_sorted())?;
            it.stack.push((entries, 0));
        } else {
            it.leaf_items = decode_items(ty, chunk.payload())?.into_iter();
        }
        Some(it)
    }

    /// Iterate a sorted tree starting from the first item with
    /// `item.key >= key`.
    pub fn seek(store: &'s dyn ChunkStore, root: Digest, ty: TreeType, key: &[u8]) -> Option<Self> {
        debug_assert!(ty.is_sorted());
        let mut it = ItemIter {
            store,
            ty,
            stack: Vec::new(),
            leaf_items: Vec::new().into_iter(),
        };
        let mut cid = root;
        loop {
            let chunk = store.get(&cid)?;
            if chunk.ty().is_index() {
                let (_, entries) = decode_index_payload(chunk.payload(), true)?;
                let idx = entries.partition_point(|e| e.key.as_ref() < key);
                if idx == entries.len() {
                    // Key is beyond this subtree; iterator is exhausted.
                    return Some(it);
                }
                cid = entries[idx].cid;
                it.stack.push((entries, idx + 1));
            } else {
                let items = decode_items(ty, chunk.payload())?;
                let skip = items.partition_point(|i| i.key.as_ref() < key);
                let mut iter = items.into_iter();
                for _ in 0..skip {
                    iter.next();
                }
                it.leaf_items = iter;
                return Some(it);
            }
        }
    }

    /// Advance to the next leaf; returns false when exhausted or on a
    /// storage error (missing chunk).
    fn advance_leaf(&mut self) -> bool {
        loop {
            let Some((entries, idx)) = self.stack.last_mut() else {
                return false;
            };
            if *idx >= entries.len() {
                self.stack.pop();
                continue;
            }
            let cid = entries[*idx].cid;
            *idx += 1;
            let Some(chunk) = self.store.get(&cid) else {
                return false;
            };
            if chunk.ty().is_index() {
                let Some((_, child)) = decode_index_payload(chunk.payload(), self.ty.is_sorted())
                else {
                    return false;
                };
                self.stack.push((child, 0));
            } else {
                let Some(items) = decode_items(self.ty, chunk.payload()) else {
                    return false;
                };
                self.leaf_items = items.into_iter();
                return true;
            }
        }
    }
}

impl Iterator for ItemIter<'_> {
    type Item = Item;

    fn next(&mut self) -> Option<Item> {
        loop {
            if let Some(item) = self.leaf_items.next() {
                return Some(item);
            }
            if !self.advance_leaf() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_items;
    use forkbase_chunk::MemStore;
    use forkbase_crypto::ChunkerConfig;

    fn build_map(store: &MemStore, n: usize) -> Digest {
        let cfg = ChunkerConfig::with_leaf_bits(7);
        let items: Vec<Item> = (0..n)
            .map(|i| Item::map(format!("k{i:06}"), format!("v{i}")))
            .collect();
        build_items(store, &cfg, TreeType::Map, items)
    }

    #[test]
    fn iterates_all_in_order() {
        let store = MemStore::new();
        let root = build_map(&store, 2000);
        let keys: Vec<_> = ItemIter::new(&store, root, TreeType::Map)
            .expect("iter")
            .map(|i| i.key)
            .collect();
        assert_eq!(keys.len(), 2000);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "iteration order is key order");
    }

    #[test]
    fn seek_starts_at_key() {
        let store = MemStore::new();
        let root = build_map(&store, 1000);
        let it = ItemIter::seek(&store, root, TreeType::Map, b"k000500").expect("iter");
        let items: Vec<_> = it.collect();
        assert_eq!(items.len(), 500);
        assert_eq!(items[0].key.as_ref(), b"k000500");
    }

    #[test]
    fn seek_between_keys() {
        let store = MemStore::new();
        let root = build_map(&store, 100);
        // "k000050x" sorts after k000050, before k000051.
        let it = ItemIter::seek(&store, root, TreeType::Map, b"k000050x").expect("iter");
        let first = it.take(1).next().expect("non-empty");
        assert_eq!(first.key.as_ref(), b"k000051");
    }

    #[test]
    fn seek_past_end_is_empty() {
        let store = MemStore::new();
        let root = build_map(&store, 100);
        let it = ItemIter::seek(&store, root, TreeType::Map, b"zzz").expect("iter");
        assert_eq!(it.count(), 0);
    }

    #[test]
    fn empty_tree_iterates_nothing() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_items(&store, &cfg, TreeType::Map, std::iter::empty());
        let it = ItemIter::new(&store, root, TreeType::Map).expect("iter");
        assert_eq!(it.count(), 0);
    }

    #[test]
    fn list_iteration_preserves_order() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(7);
        let items: Vec<Item> = (0..777).map(|i| Item::list(format!("item-{i}"))).collect();
        let root = build_items(&store, &cfg, TreeType::List, items.clone());
        let out: Vec<_> = ItemIter::new(&store, root, TreeType::List)
            .expect("iter")
            .collect();
        assert_eq!(out, items);
    }
}
