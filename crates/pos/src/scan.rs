//! Tree walking: leaf-entry collection, counting, and point lookups.

use crate::entry::{decode_index_payload, decode_index_payload_shared, IndexEntry};
use crate::leaf::{count_items, decode_items, last_key};
use crate::types::TreeType;
use bytes::Bytes;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::Digest;

/// A flattened view of a tree's leaf level.
#[derive(Clone, Debug)]
pub struct TreeScan {
    /// One entry per leaf chunk, in order.
    pub leaf_entries: Vec<IndexEntry>,
    /// Tree height: 0 = root is a leaf.
    pub height: u64,
}

impl TreeScan {
    /// Total element count (bytes for Blob).
    pub fn total_count(&self) -> u64 {
        self.leaf_entries.iter().map(|e| e.count).sum()
    }

    /// Index of the leaf containing element position `pos` (for unsorted
    /// trees), or `None` if `pos` is past the end.
    pub fn leaf_of_pos(&self, pos: u64) -> Option<(usize, u64)> {
        let mut cum = 0u64;
        for (i, e) in self.leaf_entries.iter().enumerate() {
            if pos < cum + e.count {
                return Some((i, cum));
            }
            cum += e.count;
        }
        None
    }

    /// Index of the first leaf whose key range can contain `key` (sorted
    /// trees): the first leaf with `last_key >= key`. Returns
    /// `leaf_entries.len()` if `key` is beyond every leaf.
    pub fn leaf_of_key(&self, key: &[u8]) -> usize {
        self.leaf_entries.partition_point(|e| e.key.as_ref() < key)
    }

    /// Cumulative element offset of leaf `idx`.
    pub fn leaf_offset(&self, idx: usize) -> u64 {
        self.leaf_entries[..idx].iter().map(|e| e.count).sum()
    }
}

/// Walk the tree from `root` and collect the leaf entries. Only index
/// chunks are fetched; leaves are not touched (their entries carry all the
/// metadata needed).
pub fn scan_tree(store: &dyn ChunkStore, root: Digest, ty: TreeType) -> Option<TreeScan> {
    let chunk = store.get(&root)?;
    if !chunk.ty().is_index() {
        // Root is a single leaf: synthesize its entry.
        let count = count_items(ty, chunk.payload())?;
        let key = if ty.is_sorted() {
            last_key(ty, chunk.payload()).unwrap_or_default()
        } else {
            Bytes::new()
        };
        return Some(TreeScan {
            leaf_entries: vec![IndexEntry {
                cid: root,
                count,
                key,
            }],
            height: 0,
        });
    }

    let (root_level, root_entries) = decode_index_payload_shared(chunk.payload(), ty.is_sorted())?;
    let mut leaf_entries = Vec::new();
    // Depth-first, left to right. Stack holds (level, entries, next index).
    let mut stack = vec![(root_level, root_entries, 0usize)];
    while let Some((level, entries, idx)) = stack.pop() {
        if idx >= entries.len() {
            continue;
        }
        if level == 1 {
            // Children are leaves: adopt the whole entry list at once.
            leaf_entries.extend(entries.into_iter().skip(idx));
            continue;
        }
        let child_cid = entries[idx].cid;
        stack.push((level, entries, idx + 1));
        let child = store.get(&child_cid)?;
        let (child_level, child_entries) =
            decode_index_payload_shared(child.payload(), ty.is_sorted())?;
        debug_assert_eq!(child_level, level - 1);
        stack.push((child_level, child_entries, 0));
    }
    Some(TreeScan {
        leaf_entries,
        height: root_level,
    })
}

/// Total element count by reading only the root chunk.
pub fn total_count(store: &dyn ChunkStore, root: Digest, ty: TreeType) -> Option<u64> {
    let chunk = store.get(&root)?;
    if chunk.ty().is_index() {
        let (_, entries) = decode_index_payload(chunk.payload(), ty.is_sorted())?;
        Some(entries.iter().map(|e| e.count).sum())
    } else {
        count_items(ty, chunk.payload())
    }
}

/// Point lookup by key in a sorted tree. Fetches one chunk per level —
/// "only the relevant nodes are fetched instead of the entire tree"
/// (§4.3.1).
pub fn get_by_key(
    store: &dyn ChunkStore,
    root: Digest,
    ty: TreeType,
    key: &[u8],
) -> Option<crate::leaf::Item> {
    debug_assert!(ty.is_sorted());
    let mut cid = root;
    loop {
        let chunk = store.get(&cid)?;
        if chunk.ty().is_index() {
            let (_, entries) = decode_index_payload(chunk.payload(), true)?;
            let idx = entries.partition_point(|e| e.key.as_ref() < key);
            if idx == entries.len() {
                return None; // key beyond every subtree
            }
            cid = entries[idx].cid;
        } else {
            let items = decode_items(ty, chunk.payload())?;
            return items
                .binary_search_by(|i| i.key.as_ref().cmp(key))
                .ok()
                .map(|i| items[i].clone());
        }
    }
}

/// Point lookup by element position (any tree type). Descends via subtree
/// counts.
pub fn get_by_pos(
    store: &dyn ChunkStore,
    root: Digest,
    ty: TreeType,
    mut pos: u64,
) -> Option<crate::leaf::Item> {
    let mut cid = root;
    loop {
        let chunk = store.get(&cid)?;
        if chunk.ty().is_index() {
            let (_, entries) = decode_index_payload(chunk.payload(), ty.is_sorted())?;
            let mut found = None;
            for e in &entries {
                if pos < e.count {
                    found = Some(e.cid);
                    break;
                }
                pos -= e.count;
            }
            cid = found?;
        } else {
            let items = decode_items(ty, chunk.payload())?;
            return items.get(pos as usize).cloned();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_blob, build_items};
    use crate::leaf::Item;
    use forkbase_chunk::MemStore;
    use forkbase_crypto::ChunkerConfig;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn scan_counts_match() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let data = pseudo_random(50_000, 11);
        let root = build_blob(&store, &cfg, &data);
        let scan = scan_tree(&store, root, TreeType::Blob).expect("scan");
        assert_eq!(scan.total_count(), data.len() as u64);
        assert_eq!(
            total_count(&store, root, TreeType::Blob),
            Some(data.len() as u64)
        );
        assert!(scan.leaf_entries.len() > 10, "should have many leaves");
    }

    #[test]
    fn get_by_key_finds_all() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let items: Vec<Item> = (0..2000)
            .map(|i| Item::map(format!("k{i:06}"), format!("v{i}")))
            .collect();
        let root = build_items(&store, &cfg, TreeType::Map, items.clone());
        for i in (0..2000).step_by(97) {
            let key = format!("k{i:06}");
            let item = get_by_key(&store, root, TreeType::Map, key.as_bytes()).expect("present");
            assert_eq!(item.value.as_ref(), format!("v{i}").as_bytes());
        }
        assert!(get_by_key(&store, root, TreeType::Map, b"missing").is_none());
        assert!(get_by_key(&store, root, TreeType::Map, b"zzzz").is_none());
    }

    #[test]
    fn get_by_pos_matches_order() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let items: Vec<Item> = (0..500).map(|i| Item::list(format!("elem{i}"))).collect();
        let root = build_items(&store, &cfg, TreeType::List, items.clone());
        for i in [0usize, 1, 100, 250, 499] {
            let item = get_by_pos(&store, root, TreeType::List, i as u64).expect("present");
            assert_eq!(item, items[i]);
        }
        assert!(get_by_pos(&store, root, TreeType::List, 500).is_none());
    }

    #[test]
    fn leaf_of_key_partitions() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(7);
        let items: Vec<Item> = (0..3000)
            .map(|i| Item::map(format!("k{i:06}"), "x"))
            .collect();
        let root = build_items(&store, &cfg, TreeType::Map, items);
        let scan = scan_tree(&store, root, TreeType::Map).expect("scan");
        // Every key must land in the leaf whose range covers it.
        for i in (0..3000).step_by(113) {
            let key = format!("k{i:06}");
            let li = scan.leaf_of_key(key.as_bytes());
            assert!(li < scan.leaf_entries.len());
            assert!(scan.leaf_entries[li].key.as_ref() >= key.as_bytes());
            if li > 0 {
                assert!(scan.leaf_entries[li - 1].key.as_ref() < key.as_bytes());
            }
        }
        assert_eq!(scan.leaf_of_key(b"zzz"), scan.leaf_entries.len());
    }

    #[test]
    fn single_leaf_scan() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_blob(&store, &cfg, b"small");
        let scan = scan_tree(&store, root, TreeType::Blob).expect("scan");
        assert_eq!(scan.height, 0);
        assert_eq!(scan.leaf_entries.len(), 1);
        assert_eq!(scan.total_count(), 5);
    }

    #[test]
    fn empty_tree_scan() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_blob(&store, &cfg, b"");
        let scan = scan_tree(&store, root, TreeType::Blob).expect("scan");
        assert_eq!(scan.total_count(), 0);
        assert_eq!(scan.leaf_entries.len(), 1, "canonical empty leaf");
    }
}
