//! The four chunkable object types and their chunk-type mappings.

use forkbase_chunk::ChunkType;

/// Which chunkable type a POS-Tree stores (paper §3.4, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TreeType {
    /// A sequence of raw bytes; elements are single bytes.
    Blob,
    /// A sequence of arbitrary byte-string elements, position-indexed.
    List,
    /// A sorted sequence of unique byte-string elements.
    Set,
    /// A sorted sequence of key → value pairs.
    Map,
}

impl TreeType {
    /// Sorted types use split keys (SIndex); unsorted use element counts
    /// (UIndex).
    pub fn is_sorted(self) -> bool {
        matches!(self, TreeType::Set | TreeType::Map)
    }

    /// The chunk type of this tree's leaf nodes.
    pub fn leaf_chunk(self) -> ChunkType {
        match self {
            TreeType::Blob => ChunkType::Blob,
            TreeType::List => ChunkType::List,
            TreeType::Set => ChunkType::Set,
            TreeType::Map => ChunkType::Map,
        }
    }

    /// The chunk type of this tree's index nodes.
    pub fn index_chunk(self) -> ChunkType {
        if self.is_sorted() {
            ChunkType::SIndex
        } else {
            ChunkType::UIndex
        }
    }

    /// Stable tag for serialization in FObjects.
    pub fn tag(self) -> u8 {
        match self {
            TreeType::Blob => 0,
            TreeType::List => 1,
            TreeType::Set => 2,
            TreeType::Map => 3,
        }
    }

    /// Decode [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<TreeType> {
        Some(match tag {
            0 => TreeType::Blob,
            1 => TreeType::List,
            2 => TreeType::Set,
            3 => TreeType::Map,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_type_mapping() {
        assert_eq!(TreeType::Blob.leaf_chunk(), ChunkType::Blob);
        assert_eq!(TreeType::Map.leaf_chunk(), ChunkType::Map);
        assert_eq!(TreeType::Blob.index_chunk(), ChunkType::UIndex);
        assert_eq!(TreeType::List.index_chunk(), ChunkType::UIndex);
        assert_eq!(TreeType::Set.index_chunk(), ChunkType::SIndex);
        assert_eq!(TreeType::Map.index_chunk(), ChunkType::SIndex);
    }

    #[test]
    fn tags_round_trip() {
        for t in [TreeType::Blob, TreeType::List, TreeType::Set, TreeType::Map] {
            assert_eq!(TreeType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(TreeType::from_tag(9), None);
    }
}
