//! Public handles for the four chunkable types.
//!
//! A handle is just a root cid (plus the type); all data lives in the
//! chunk store. Reads fetch only the chunks they need; writes produce a
//! *new* handle, never mutating existing chunks (copy-on-write).

use crate::batch::WriteBatch;
use crate::builder::{build_blob, build_items};
use crate::error::TreeResult;
use crate::iter::ItemIter;
use crate::leaf::Item;
use crate::scan::{get_by_key, get_by_pos, scan_tree, total_count};
use crate::types::TreeType;
use crate::update::{splice_blob, splice_list, update_sorted, Edit};
use bytes::Bytes;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::{ChunkerConfig, Digest};

/// An untyped tree reference: root cid + element type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TreeRef {
    /// Root chunk cid.
    pub root: Digest,
    /// Element type of the tree.
    pub ty: TreeType,
}

/// A byte-sequence object backed by a POS-Tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Blob {
    root: Digest,
}

impl Blob {
    /// Build from raw bytes.
    pub fn build(store: &dyn ChunkStore, cfg: &ChunkerConfig, data: &[u8]) -> Blob {
        Blob {
            root: build_blob(store, cfg, data),
        }
    }

    /// Build from a shared buffer: every leaf payload is a zero-copy
    /// slice of `data`, so the build's only byte-level work is the
    /// boundary scan and the cid hashing.
    pub fn build_bytes(
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        data: impl Into<Bytes>,
    ) -> Blob {
        Blob {
            root: crate::builder::build_blob_bytes(store, cfg, data.into()),
        }
    }

    /// Re-attach to an existing root.
    pub fn from_root(root: Digest) -> Blob {
        Blob { root }
    }

    /// The root cid.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Length in bytes.
    pub fn len(&self, store: &dyn ChunkStore) -> u64 {
        total_count(store, self.root, TreeType::Blob).unwrap_or(0)
    }

    /// True if the blob holds no bytes.
    pub fn is_empty(&self, store: &dyn ChunkStore) -> bool {
        self.len(store) == 0
    }

    /// Read the entire content. Sibling leaves are prefetched with one
    /// [`get_many`](ChunkStore::get_many) instead of a per-leaf `get`,
    /// so the cache/backing tier sees a single batched request.
    pub fn read_all(&self, store: &dyn ChunkStore) -> Option<Vec<u8>> {
        let scan = scan_tree(store, self.root, TreeType::Blob)?;
        let cids: Vec<Digest> = scan.leaf_entries.iter().map(|e| e.cid).collect();
        let mut out = Vec::with_capacity(scan.total_count() as usize);
        for chunk in store.get_many(&cids) {
            out.extend_from_slice(chunk?.payload());
        }
        Some(out)
    }

    /// Read `len` bytes starting at `start` (clamped to the object). The
    /// leaves covering the range are prefetched with one batched
    /// [`get_many`](ChunkStore::get_many).
    pub fn read_range(&self, store: &dyn ChunkStore, start: u64, len: u64) -> Option<Vec<u8>> {
        let scan = scan_tree(store, self.root, TreeType::Blob)?;
        let total = scan.total_count();
        let start = start.min(total);
        let end = (start + len).min(total);
        // (leaf start offset, leaf end offset, cid) of the covering run.
        let mut covering: Vec<(u64, u64, Digest)> = Vec::new();
        let mut cum = 0u64;
        for e in &scan.leaf_entries {
            let leaf_start = cum;
            let leaf_end = cum + e.count;
            cum = leaf_end;
            if leaf_end <= start {
                continue;
            }
            if leaf_start >= end {
                break;
            }
            covering.push((leaf_start, leaf_end, e.cid));
        }
        let cids: Vec<Digest> = covering.iter().map(|(_, _, cid)| *cid).collect();
        let mut out = Vec::with_capacity((end - start) as usize);
        for ((leaf_start, leaf_end, _), chunk) in covering.iter().zip(store.get_many(&cids)) {
            let chunk = chunk?;
            let from = start.saturating_sub(*leaf_start) as usize;
            let to = (end.min(*leaf_end) - leaf_start) as usize;
            out.extend_from_slice(&chunk.payload()[from..to]);
        }
        Some(out)
    }

    /// Replace `remove` bytes at `start` with `insert`; returns the new
    /// blob (copy-on-write). [`crate::TreeError::MissingChunk`] indicates
    /// a missing/corrupt chunk in the version being spliced.
    pub fn splice(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        start: u64,
        remove: u64,
        insert: &[u8],
    ) -> TreeResult<Blob> {
        Ok(Blob {
            root: splice_blob(store, cfg, self.root, start, remove, insert)?,
        })
    }

    /// Append bytes at the end.
    pub fn append(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        data: &[u8],
    ) -> TreeResult<Blob> {
        let len = self.len(store);
        self.splice(store, cfg, len, 0, data)
    }

    /// Remove `len` bytes at `start`.
    pub fn remove(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        start: u64,
        len: u64,
    ) -> TreeResult<Blob> {
        self.splice(store, cfg, start, len, &[])
    }

    /// Insert bytes at `start` without removing anything.
    pub fn insert(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        start: u64,
        data: &[u8],
    ) -> TreeResult<Blob> {
        self.splice(store, cfg, start, 0, data)
    }
}

/// A position-indexed sequence of byte-string elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct List {
    root: Digest,
}

impl List {
    /// Build from an element sequence.
    pub fn build<I, B>(store: &dyn ChunkStore, cfg: &ChunkerConfig, elems: I) -> List
    where
        I: IntoIterator<Item = B>,
        B: Into<Bytes>,
    {
        List {
            root: build_items(
                store,
                cfg,
                TreeType::List,
                elems.into_iter().map(|b| Item::list(b.into())),
            ),
        }
    }

    /// Re-attach to an existing root.
    pub fn from_root(root: Digest) -> List {
        List { root }
    }

    /// The root cid.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Number of elements.
    pub fn len(&self, store: &dyn ChunkStore) -> u64 {
        total_count(store, self.root, TreeType::List).unwrap_or(0)
    }

    /// True if no elements.
    pub fn is_empty(&self, store: &dyn ChunkStore) -> bool {
        self.len(store) == 0
    }

    /// Fetch the element at `idx`.
    pub fn get(&self, store: &dyn ChunkStore, idx: u64) -> Option<Bytes> {
        get_by_pos(store, self.root, TreeType::List, idx).map(|i| i.value)
    }

    /// Iterate all elements.
    pub fn iter<'s>(&self, store: &'s dyn ChunkStore) -> impl Iterator<Item = Bytes> + 's {
        ItemIter::new(store, self.root, TreeType::List)
            .into_iter()
            .flatten()
            .map(|i| i.value)
    }

    /// Replace `remove` elements at `start` with `insert`.
    /// [`crate::TreeError::MissingChunk`] indicates a missing/corrupt
    /// chunk in the version being spliced.
    pub fn splice<I, B>(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        start: u64,
        remove: u64,
        insert: I,
    ) -> TreeResult<List>
    where
        I: IntoIterator<Item = B>,
        B: Into<Bytes>,
    {
        let items: Vec<Item> = insert.into_iter().map(|b| Item::list(b.into())).collect();
        Ok(List {
            root: splice_list(store, cfg, self.root, start, remove, &items)?,
        })
    }

    /// Append one element.
    pub fn push(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        elem: impl Into<Bytes>,
    ) -> TreeResult<List> {
        let len = self.len(store);
        self.splice(store, cfg, len, 0, [elem.into()])
    }
}

/// A sorted key → value mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Map {
    root: Digest,
}

impl Map {
    /// Build from key/value pairs (any order; duplicate keys last-wins).
    pub fn build<I, K, V>(store: &dyn ChunkStore, cfg: &ChunkerConfig, pairs: I) -> Map
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<Bytes>,
        V: Into<Bytes>,
    {
        let mut sorted: std::collections::BTreeMap<Bytes, Bytes> =
            std::collections::BTreeMap::new();
        for (k, v) in pairs {
            sorted.insert(k.into(), v.into());
        }
        Map {
            root: build_items(
                store,
                cfg,
                TreeType::Map,
                sorted.into_iter().map(|(k, v)| Item { key: k, value: v }),
            ),
        }
    }

    /// Re-attach to an existing root.
    pub fn from_root(root: Digest) -> Map {
        Map { root }
    }

    /// The root cid.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Number of entries.
    pub fn len(&self, store: &dyn ChunkStore) -> u64 {
        total_count(store, self.root, TreeType::Map).unwrap_or(0)
    }

    /// True if no entries.
    pub fn is_empty(&self, store: &dyn ChunkStore) -> bool {
        self.len(store) == 0
    }

    /// Point lookup.
    pub fn get(&self, store: &dyn ChunkStore, key: &[u8]) -> Option<Bytes> {
        get_by_key(store, self.root, TreeType::Map, key).map(|i| i.value)
    }

    /// Iterate entries in key order.
    pub fn iter<'s>(&self, store: &'s dyn ChunkStore) -> impl Iterator<Item = (Bytes, Bytes)> + 's {
        ItemIter::new(store, self.root, TreeType::Map)
            .into_iter()
            .flatten()
            .map(|i| (i.key, i.value))
    }

    /// Iterate entries with key ≥ `from`.
    pub fn iter_from<'s>(
        &self,
        store: &'s dyn ChunkStore,
        from: &[u8],
    ) -> impl Iterator<Item = (Bytes, Bytes)> + 's {
        ItemIter::seek(store, self.root, TreeType::Map, from)
            .into_iter()
            .flatten()
            .map(|i| (i.key, i.value))
    }

    /// Apply a batch of edits: `Some(value)` puts, `None` deletes.
    /// Duplicate keys collapse last-wins; the whole batch is one
    /// multi-range splice.
    pub fn update<I, K>(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        edits: I,
    ) -> TreeResult<Map>
    where
        I: IntoIterator<Item = (K, Option<Bytes>)>,
        K: Into<Bytes>,
    {
        let edits: Vec<Edit> = edits
            .into_iter()
            .map(|(k, v)| match v {
                Some(v) => Edit::Put(Item {
                    key: k.into(),
                    value: v,
                }),
                None => Edit::Del(k.into()),
            })
            .collect();
        Ok(Map {
            root: update_sorted(store, cfg, TreeType::Map, self.root, edits)?,
        })
    }

    /// Apply a [`WriteBatch`] in a single splice, returning the new map
    /// (copy-on-write). Bit-identical to folding the batch's edits through
    /// sequential [`put`](Self::put)/[`del`](Self::del) calls.
    pub fn apply(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        batch: WriteBatch,
    ) -> TreeResult<Map> {
        Ok(Map {
            root: update_sorted(store, cfg, TreeType::Map, self.root, batch.into_edits())?,
        })
    }

    /// Insert or replace one entry.
    pub fn put(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> TreeResult<Map> {
        self.update(store, cfg, [(key.into(), Some(value.into()))])
    }

    /// Remove one entry.
    pub fn del(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        key: impl Into<Bytes>,
    ) -> TreeResult<Map> {
        self.update(store, cfg, [(key.into(), None)])
    }
}

/// A sorted set of byte-string elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Set {
    root: Digest,
}

impl Set {
    /// Build from elements (any order, duplicates collapse).
    pub fn build<I, K>(store: &dyn ChunkStore, cfg: &ChunkerConfig, elems: I) -> Set
    where
        I: IntoIterator<Item = K>,
        K: Into<Bytes>,
    {
        let sorted: std::collections::BTreeSet<Bytes> = elems.into_iter().map(Into::into).collect();
        Set {
            root: build_items(store, cfg, TreeType::Set, sorted.into_iter().map(Item::set)),
        }
    }

    /// Re-attach to an existing root.
    pub fn from_root(root: Digest) -> Set {
        Set { root }
    }

    /// The root cid.
    pub fn root(&self) -> Digest {
        self.root
    }

    /// Number of elements.
    pub fn len(&self, store: &dyn ChunkStore) -> u64 {
        total_count(store, self.root, TreeType::Set).unwrap_or(0)
    }

    /// True if no elements.
    pub fn is_empty(&self, store: &dyn ChunkStore) -> bool {
        self.len(store) == 0
    }

    /// Membership test.
    pub fn contains(&self, store: &dyn ChunkStore, key: &[u8]) -> bool {
        get_by_key(store, self.root, TreeType::Set, key).is_some()
    }

    /// Iterate elements in order.
    pub fn iter<'s>(&self, store: &'s dyn ChunkStore) -> impl Iterator<Item = Bytes> + 's {
        ItemIter::new(store, self.root, TreeType::Set)
            .into_iter()
            .flatten()
            .map(|i| i.key)
    }

    /// Apply a [`WriteBatch`] (built with
    /// [`insert`](WriteBatch::insert)/[`delete`](WriteBatch::delete)) in a
    /// single splice, returning the new set (copy-on-write).
    pub fn apply(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        batch: WriteBatch,
    ) -> TreeResult<Set> {
        Ok(Set {
            root: update_sorted(store, cfg, TreeType::Set, self.root, batch.into_edits())?,
        })
    }

    /// Insert an element.
    pub fn insert(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        key: impl Into<Bytes>,
    ) -> TreeResult<Set> {
        let root = update_sorted(
            store,
            cfg,
            TreeType::Set,
            self.root,
            vec![Edit::Put(Item::set(key.into()))],
        )?;
        Ok(Set { root })
    }

    /// Remove an element.
    pub fn remove(
        &self,
        store: &dyn ChunkStore,
        cfg: &ChunkerConfig,
        key: impl Into<Bytes>,
    ) -> TreeResult<Set> {
        let root = update_sorted(
            store,
            cfg,
            TreeType::Set,
            self.root,
            vec![Edit::Del(key.into())],
        )?;
        Ok(Set { root })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_chunk::MemStore;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn blob_read_write() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let data = pseudo_random(40_000, 1);
        let blob = Blob::build(&store, &cfg, &data);
        assert_eq!(blob.len(&store), 40_000);
        assert_eq!(blob.read_all(&store).expect("read"), data);
        assert_eq!(
            blob.read_range(&store, 10_000, 100).expect("read"),
            &data[10_000..10_100]
        );
        assert_eq!(
            blob.read_range(&store, 39_990, 100).expect("read"),
            &data[39_990..]
        );
    }

    #[test]
    fn blob_paper_example() {
        // Figure 4 of the paper: remove 10 bytes from the beginning, then
        // append.
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let blob = Blob::build(&store, &cfg, b"0123456789my value");
        let blob = blob.remove(&store, &cfg, 0, 10).expect("remove");
        let blob = blob.append(&store, &cfg, b" some more").expect("append");
        assert_eq!(blob.read_all(&store).expect("read"), b"my value some more");
    }

    #[test]
    fn map_point_ops() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let map = Map::build(&store, &cfg, [("b", "2"), ("a", "1")]);
        assert_eq!(map.len(&store), 2);
        assert_eq!(map.get(&store, b"a").expect("hit").as_ref(), b"1");

        let map2 = map.put(&store, &cfg, "c", "3").expect("put");
        assert_eq!(map2.len(&store), 3);
        assert_eq!(map.len(&store), 2, "previous version untouched");

        let map3 = map2.del(&store, &cfg, "a").expect("del");
        assert_eq!(map3.len(&store), 2);
        assert!(map3.get(&store, b"a").is_none());
    }

    #[test]
    fn map_build_accepts_unsorted_with_duplicates() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let map = Map::build(&store, &cfg, [("z", "1"), ("a", "2"), ("z", "3")]);
        assert_eq!(map.len(&store), 2);
        assert_eq!(map.get(&store, b"z").expect("hit").as_ref(), b"3");
    }

    #[test]
    fn map_iter_from() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(7);
        let map = Map::build(
            &store,
            &cfg,
            (0..500).map(|i| (format!("k{i:04}"), format!("v{i}"))),
        );
        let tail: Vec<_> = map.iter_from(&store, b"k0490").collect();
        assert_eq!(tail.len(), 10);
        assert_eq!(tail[0].0.as_ref(), b"k0490");
    }

    #[test]
    fn set_ops() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let set = Set::build(&store, &cfg, ["apple", "banana", "apple"]);
        assert_eq!(set.len(&store), 2);
        assert!(set.contains(&store, b"apple"));
        assert!(!set.contains(&store, b"cherry"));

        let set2 = set.insert(&store, &cfg, "cherry").expect("insert");
        assert!(set2.contains(&store, b"cherry"));
        let set3 = set2.remove(&store, &cfg, "apple").expect("remove");
        assert!(!set3.contains(&store, b"apple"));
        assert_eq!(set3.len(&store), 2);
    }

    #[test]
    fn map_apply_batch_equals_sequential_edits() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(7);
        let map = Map::build(
            &store,
            &cfg,
            (0..500).map(|i| (format!("k{i:04}"), format!("v{i}"))),
        );

        let mut wb = WriteBatch::new();
        wb.put("k0000", "overwritten")
            .delete("k0250")
            .put("k0250", "resurrected")
            .put("zzz", "appended")
            .delete("k0499")
            .delete("not-present");
        let batched = map.apply(&store, &cfg, wb).expect("apply");

        let sequential = map
            .put(&store, &cfg, "k0000", "overwritten")
            .and_then(|m| m.del(&store, &cfg, "k0250"))
            .and_then(|m| m.put(&store, &cfg, "k0250", "resurrected"))
            .and_then(|m| m.put(&store, &cfg, "zzz", "appended"))
            .and_then(|m| m.del(&store, &cfg, "k0499"))
            .and_then(|m| m.del(&store, &cfg, "not-present"))
            .expect("sequential");
        assert_eq!(batched.root(), sequential.root());
        assert_eq!(
            batched.get(&store, b"k0250").expect("hit").as_ref(),
            b"resurrected",
            "last edit on the key wins"
        );
    }

    #[test]
    fn set_apply_batch() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let set = Set::build(&store, &cfg, ["a", "b", "c"]);
        let mut wb = WriteBatch::new();
        wb.insert("d").delete("a").insert("a");
        let set2 = set.apply(&store, &cfg, wb).expect("apply");
        assert!(set2.contains(&store, b"a"), "re-inserted after delete");
        assert!(set2.contains(&store, b"d"));
        assert_eq!(set2.len(&store), 4);
    }

    #[test]
    fn identical_maps_share_root() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let a = Map::build(&store, &cfg, [("x", "1"), ("y", "2")]);
        let b = Map::build(&store, &cfg, [("y", "2"), ("x", "1")]);
        assert_eq!(a.root(), b.root(), "same content, same identity");
    }

    #[test]
    fn list_push_and_get() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let mut list = List::build(&store, &cfg, ["a", "b"]);
        list = list.push(&store, &cfg, "c").expect("push");
        assert_eq!(list.len(&store), 3);
        assert_eq!(list.get(&store, 2).expect("hit").as_ref(), b"c");
        let all: Vec<_> = list.iter(&store).collect();
        assert_eq!(all.len(), 3);
    }
}
