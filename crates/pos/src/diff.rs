//! Structural diff between two POS-Trees (§4.3: "comparing two trees can be
//! done efficiently by recursively comparing the cids").
//!
//! Because identical content yields identical chunks, a diff only needs to
//! look inside chunks that differ: shared leaves — typically all but the
//! edited region — are skipped by cid equality.

use crate::entry::IndexEntry;
use crate::leaf::{decode_items, Item};
use crate::scan::scan_tree;
use crate::types::TreeType;
use bytes::Bytes;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::Digest;

/// One differing key between two sorted trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffEntry {
    /// The key.
    pub key: Bytes,
    /// Value on the left side (`None` = absent).
    pub left: Option<Bytes>,
    /// Value on the right side (`None` = absent).
    pub right: Option<Bytes>,
}

/// Keys that differ between two sorted trees (Map or Set; for Set the
/// values are empty byte strings).
pub fn sorted_diff(
    store: &dyn ChunkStore,
    ty: TreeType,
    left: Digest,
    right: Digest,
) -> Option<Vec<DiffEntry>> {
    debug_assert!(ty.is_sorted());
    if left == right {
        return Some(Vec::new());
    }
    let l = scan_tree(store, left, ty)?.leaf_entries;
    let r = scan_tree(store, right, ty)?.leaf_entries;

    let mut out = Vec::new();
    let mut lc = LeafCursor::new(store, ty, &l);
    let mut rc = LeafCursor::new(store, ty, &r);
    loop {
        // Return exhausted leaves before checking for skippable ones.
        lc.settle();
        rc.settle();
        // Subtree skip: both cursors at the start of identical leaves.
        while lc.at_leaf_start() && rc.at_leaf_start() {
            match (lc.current_cid(), rc.current_cid()) {
                (Some(a), Some(b)) if a == b => {
                    lc.skip_leaf();
                    rc.skip_leaf();
                }
                _ => break,
            }
        }
        match (lc.peek()?, rc.peek()?) {
            (None, None) => break,
            (Some(li), None) => {
                out.push(DiffEntry {
                    key: li.key.clone(),
                    left: Some(li.value.clone()),
                    right: None,
                });
                lc.advance();
            }
            (None, Some(ri)) => {
                out.push(DiffEntry {
                    key: ri.key.clone(),
                    left: None,
                    right: Some(ri.value.clone()),
                });
                rc.advance();
            }
            (Some(li), Some(ri)) => match li.key.cmp(&ri.key) {
                std::cmp::Ordering::Less => {
                    out.push(DiffEntry {
                        key: li.key.clone(),
                        left: Some(li.value.clone()),
                        right: None,
                    });
                    lc.advance();
                }
                std::cmp::Ordering::Greater => {
                    out.push(DiffEntry {
                        key: ri.key.clone(),
                        left: None,
                        right: Some(ri.value.clone()),
                    });
                    rc.advance();
                }
                std::cmp::Ordering::Equal => {
                    if li.value != ri.value {
                        out.push(DiffEntry {
                            key: li.key.clone(),
                            left: Some(li.value.clone()),
                            right: Some(ri.value.clone()),
                        });
                    }
                    lc.advance();
                    rc.advance();
                }
            },
        }
    }
    Some(out)
}

/// Item-level cursor over a leaf entry list, decoding lazily.
struct LeafCursor<'a, 's> {
    store: &'s dyn ChunkStore,
    ty: TreeType,
    leaves: &'a [IndexEntry],
    leaf_idx: usize,
    items: Vec<Item>,
    item_idx: usize,
    loaded: bool,
}

impl<'a, 's> LeafCursor<'a, 's> {
    fn new(store: &'s dyn ChunkStore, ty: TreeType, leaves: &'a [IndexEntry]) -> Self {
        LeafCursor {
            store,
            ty,
            leaves,
            leaf_idx: 0,
            items: Vec::new(),
            item_idx: 0,
            loaded: false,
        }
    }

    fn at_leaf_start(&self) -> bool {
        !self.loaded && self.leaf_idx < self.leaves.len()
    }

    fn current_cid(&self) -> Option<Digest> {
        self.leaves.get(self.leaf_idx).map(|e| e.cid)
    }

    fn skip_leaf(&mut self) {
        debug_assert!(self.at_leaf_start());
        self.leaf_idx += 1;
    }

    /// If the current leaf is exhausted, move to the next leaf *without*
    /// loading it, so the caller can apply the cid-equality skip first.
    fn settle(&mut self) {
        if self.loaded && self.item_idx >= self.items.len() {
            self.loaded = false;
            self.items.clear();
            self.leaf_idx += 1;
        }
    }

    /// Current item, loading the leaf if necessary. Outer `Option` is a
    /// storage error; inner `None` means exhausted.
    #[allow(clippy::option_option)]
    fn peek(&mut self) -> Option<Option<&Item>> {
        loop {
            if self.loaded {
                if self.item_idx < self.items.len() {
                    // Borrow-checker friendly re-index.
                    return Some(self.items.get(self.item_idx));
                }
                self.loaded = false;
                self.leaf_idx += 1;
                continue;
            }
            if self.leaf_idx >= self.leaves.len() {
                return Some(None);
            }
            let chunk = self.store.get(&self.leaves[self.leaf_idx].cid)?;
            self.items = decode_items(self.ty, chunk.payload())?;
            self.item_idx = 0;
            self.loaded = true;
        }
    }

    fn advance(&mut self) {
        self.item_idx += 1;
    }
}

/// Summary of the differing region between two unsorted trees
/// (Blob/List), in element coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeDiff {
    /// First differing element position (same in both sides).
    pub start: u64,
    /// Length of the differing region on the left side.
    pub left_len: u64,
    /// Length of the differing region on the right side.
    pub right_len: u64,
}

/// Locate the differing region between two Blobs at byte precision.
/// Returns `None` (inner) if the blobs are identical.
pub fn blob_diff_summary(
    store: &dyn ChunkStore,
    left: Digest,
    right: Digest,
) -> Option<Option<RangeDiff>> {
    if left == right {
        return Some(None);
    }
    let l = scan_tree(store, left, TreeType::Blob)?.leaf_entries;
    let r = scan_tree(store, right, TreeType::Blob)?.leaf_entries;
    let total_l: u64 = l.iter().map(|e| e.count).sum();
    let total_r: u64 = r.iter().map(|e| e.count).sum();

    // Common whole-leaf prefix.
    let mut p = 0usize;
    while p < l.len() && p < r.len() && l[p].cid == r[p].cid {
        p += 1;
    }
    // Common whole-leaf suffix (not overlapping the prefix).
    let mut s = 0usize;
    while s < l.len() - p && s < r.len() - p && l[l.len() - 1 - s].cid == r[r.len() - 1 - s].cid {
        s += 1;
    }
    let prefix_bytes: u64 = l[..p].iter().map(|e| e.count).sum();
    let suffix_bytes: u64 = l[l.len() - s..].iter().map(|e| e.count).sum();

    // Refine to byte precision inside the first/last differing leaves.
    let mid_l = read_concat(store, &l[p..l.len() - s])?;
    let mid_r = read_concat(store, &r[p..r.len() - s])?;
    let mut head = 0usize;
    while head < mid_l.len() && head < mid_r.len() && mid_l[head] == mid_r[head] {
        head += 1;
    }
    let mut tail = 0usize;
    while tail < mid_l.len() - head
        && tail < mid_r.len() - head
        && mid_l[mid_l.len() - 1 - tail] == mid_r[mid_r.len() - 1 - tail]
    {
        tail += 1;
    }

    let start = prefix_bytes + head as u64;
    let left_len = total_l - prefix_bytes - suffix_bytes - head as u64 - tail as u64;
    let right_len = total_r - prefix_bytes - suffix_bytes - head as u64 - tail as u64;
    Some(Some(RangeDiff {
        start,
        left_len,
        right_len,
    }))
}

fn read_concat(store: &dyn ChunkStore, leaves: &[IndexEntry]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    for e in leaves {
        let chunk = store.get(&e.cid)?;
        out.extend_from_slice(chunk.payload());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_blob, build_items};
    use forkbase_chunk::MemStore;
    use forkbase_crypto::ChunkerConfig;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    fn build_map(store: &MemStore, pairs: &[(&str, &str)]) -> Digest {
        let cfg = ChunkerConfig::with_leaf_bits(7);
        let mut sorted: Vec<_> = pairs.to_vec();
        sorted.sort();
        build_items(
            store,
            &cfg,
            TreeType::Map,
            sorted
                .into_iter()
                .map(|(k, v)| Item::map(k.to_string(), v.to_string())),
        )
    }

    #[test]
    fn identical_trees_diff_empty() {
        let store = MemStore::new();
        let a = build_map(&store, &[("a", "1"), ("b", "2")]);
        let b = build_map(&store, &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert!(sorted_diff(&store, TreeType::Map, a, b)
            .expect("diff")
            .is_empty());
    }

    #[test]
    fn diff_finds_all_change_kinds() {
        let store = MemStore::new();
        let a = build_map(&store, &[("a", "1"), ("b", "2"), ("c", "3")]);
        let b = build_map(&store, &[("a", "1"), ("b", "CHANGED"), ("d", "4")]);
        let mut diff = sorted_diff(&store, TreeType::Map, a, b).expect("diff");
        diff.sort_by(|x, y| x.key.cmp(&y.key));
        assert_eq!(diff.len(), 3);
        assert_eq!(diff[0].key.as_ref(), b"b");
        assert_eq!(diff[0].left.as_deref(), Some(&b"2"[..]));
        assert_eq!(diff[0].right.as_deref(), Some(&b"CHANGED"[..]));
        assert_eq!(diff[1].key.as_ref(), b"c");
        assert_eq!(diff[1].right, None);
        assert_eq!(diff[2].key.as_ref(), b"d");
        assert_eq!(diff[2].left, None);
    }

    #[test]
    fn diff_on_large_maps_is_chunk_local() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let items: Vec<Item> = (0..20_000)
            .map(|i| Item::map(format!("k{i:06}"), format!("v{i}")))
            .collect();
        let a = build_items(&store, &cfg, TreeType::Map, items.clone());
        let mut edited = items;
        edited[10_000] = Item::map("k010000", "EDITED");
        let b = build_items(&store, &cfg, TreeType::Map, edited);

        let gets_before = store.stats().gets;
        let diff = sorted_diff(&store, TreeType::Map, a, b).expect("diff");
        let gets = store.stats().gets - gets_before;
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0].key.as_ref(), b"k010000");
        // A point edit should touch only the index spine and the edited
        // leaf — far fewer fetches than the ~hundreds of leaves.
        assert!(
            gets < 60,
            "diff fetched {gets} chunks; expected chunk-local work"
        );
    }

    #[test]
    fn blob_diff_locates_edit() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let data = pseudo_random(60_000, 5);
        let mut edited = data.clone();
        edited[30_000] = edited[30_000].wrapping_add(1);

        let a = build_blob(&store, &cfg, &data);
        let b = build_blob(&store, &cfg, &edited);
        let d = blob_diff_summary(&store, a, b)
            .expect("diff")
            .expect("differs");
        assert_eq!(d.start, 30_000);
        assert_eq!(d.left_len, 1);
        assert_eq!(d.right_len, 1);
    }

    #[test]
    fn blob_diff_insert() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let data = pseudo_random(40_000, 6);
        let mut longer = data.clone();
        longer.splice(20_000..20_000, b"INSERTED".iter().copied());

        let a = build_blob(&store, &cfg, &data);
        let b = build_blob(&store, &cfg, &longer);
        let d = blob_diff_summary(&store, a, b)
            .expect("diff")
            .expect("differs");
        assert_eq!(d.start, 20_000);
        assert_eq!(d.left_len, 0);
        assert_eq!(d.right_len, 8);
    }

    #[test]
    fn blob_diff_identical_is_none() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let a = build_blob(&store, &cfg, b"same");
        let b = build_blob(&store, &cfg, b"same");
        assert_eq!(blob_diff_summary(&store, a, b), Some(None));
    }

    #[test]
    fn diff_works_across_different_keys_of_same_type() {
        // Diff between objects stored under different db keys (paper: Diff
        // "returns the differences between two FObjects of the same types
        // (they could be of different keys)").
        let store = MemStore::new();
        let a = build_map(&store, &[("x", "1")]);
        let b = build_map(&store, &[("y", "2")]);
        let diff = sorted_diff(&store, TreeType::Map, a, b).expect("diff");
        assert_eq!(diff.len(), 2);
    }
}
