//! Three-way merge (§4.5.2).
//!
//! "To merge two branch heads v1 and v2, three versions (v1, v2 and
//! LCA(v1,v2)) are fed into the merge function. If the merge fails, it
//! returns a conflict list … Simple conflicts can be resolved using
//! built-in resolution functions (such as append, aggregate and
//! choose-one). ForkBase allows users to hook customized resolution
//! strategies."

use crate::diff::{blob_diff_summary, sorted_diff};
use crate::error::TreeError;
use crate::leaf::Item;
use crate::tree::Blob;
use crate::types::TreeType;
use crate::update::{update_sorted, Edit};
use bytes::Bytes;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::{ChunkerConfig, Digest};
use std::collections::BTreeMap;

/// Why a sorted three-way merge failed. Conflicts are the application's
/// problem to resolve; corruption means one of the three input trees
/// could not be read and must **not** be presented as a resolvable
/// conflict.
#[derive(Clone, Debug, PartialEq)]
pub enum MergeError {
    /// Keys both sides changed differently and the resolver declined.
    Conflicts(Vec<Conflict>),
    /// A chunk of one of the input trees is missing or corrupt.
    Corrupt(TreeError),
}

/// A key where both sides changed the base differently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The conflicting key.
    pub key: Bytes,
    /// Value in the common ancestor.
    pub base: Option<Bytes>,
    /// Value on our side (`None` = deleted).
    pub ours: Option<Bytes>,
    /// Value on their side (`None` = deleted).
    pub theirs: Option<Bytes>,
}

/// How to resolve conflicting changes to the same key.
pub enum Resolver {
    /// Report conflicts to the caller (the application resolves them).
    Fail,
    /// Choose-one: keep our change.
    TakeOurs,
    /// Choose-one: keep their change.
    TakeTheirs,
    /// Concatenate both values (absent sides contribute nothing).
    Append,
    /// Treat values as ASCII decimal integers and combine the two deltas:
    /// `base + (ours−base) + (theirs−base)`. Falls back to unresolved if a
    /// value does not parse.
    Aggregate,
    /// User hook: return `Some(new_value)` (`Some(None)` deletes the key)
    /// or `None` to leave the conflict unresolved.
    #[allow(clippy::type_complexity)]
    Custom(Box<dyn Fn(&Conflict) -> Option<Option<Bytes>> + Send + Sync>),
}

impl Resolver {
    fn resolve(&self, c: &Conflict) -> Option<Option<Bytes>> {
        match self {
            Resolver::Fail => None,
            Resolver::TakeOurs => Some(c.ours.clone()),
            Resolver::TakeTheirs => Some(c.theirs.clone()),
            Resolver::Append => {
                let mut v = Vec::new();
                if let Some(o) = &c.ours {
                    v.extend_from_slice(o);
                }
                if let Some(t) = &c.theirs {
                    v.extend_from_slice(t);
                }
                Some(Some(Bytes::from(v)))
            }
            Resolver::Aggregate => {
                let parse = |b: &Option<Bytes>| -> Option<i64> {
                    match b {
                        None => Some(0),
                        Some(b) => std::str::from_utf8(b).ok()?.trim().parse().ok(),
                    }
                };
                let base = parse(&c.base)?;
                let ours = parse(&c.ours)?;
                let theirs = parse(&c.theirs)?;
                let merged = base + (ours - base) + (theirs - base);
                Some(Some(Bytes::from(merged.to_string())))
            }
            Resolver::Custom(f) => f(c),
        }
    }
}

/// Result of a successful merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Root of the merged tree.
    pub root: Digest,
    /// How many conflicts the resolver settled.
    pub resolved: usize,
}

/// Three-way merge of sorted trees. Returns the merged root, or the list
/// of unresolved conflicts.
pub fn merge3_sorted(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    base: Digest,
    ours: Digest,
    theirs: Digest,
    resolver: &Resolver,
) -> Result<MergeOutcome, MergeError> {
    debug_assert!(ty.is_sorted());
    // Fast paths.
    if ours == theirs || theirs == base {
        return Ok(MergeOutcome {
            root: ours,
            resolved: 0,
        });
    }
    if ours == base {
        return Ok(MergeOutcome {
            root: theirs,
            resolved: 0,
        });
    }

    let corrupt = |root| MergeError::Corrupt(TreeError::MissingChunk { root });
    // A failed diff means *either* side of the pair is unreadable; only
    // then re-scan the shared base so the error names the tree that is
    // actually broken (no extra reads on the success path).
    let blame = |side| {
        if crate::scan::scan_tree(store, base, ty).is_none() {
            corrupt(base)
        } else {
            corrupt(side)
        }
    };
    let d_ours = sorted_diff(store, ty, base, ours).ok_or_else(|| blame(ours))?;
    let d_theirs = sorted_diff(store, ty, base, theirs).ok_or_else(|| blame(theirs))?;

    // key -> (base value, new value)
    type Change = (Option<Bytes>, Option<Bytes>);
    let to_changes = |d: Vec<crate::diff::DiffEntry>| -> BTreeMap<Bytes, Change> {
        d.into_iter().map(|e| (e.key, (e.left, e.right))).collect()
    };
    let ours_ch = to_changes(d_ours);
    let theirs_ch = to_changes(d_theirs);

    let mut edits: Vec<Edit> = Vec::new();
    let mut conflicts: Vec<Conflict> = Vec::new();
    let mut resolved = 0usize;

    let apply = |edits: &mut Vec<Edit>, key: &Bytes, value: &Option<Bytes>| match value {
        Some(v) => edits.push(Edit::Put(Item {
            key: key.clone(),
            value: v.clone(),
        })),
        None => edits.push(Edit::Del(key.clone())),
    };

    for (key, (base_v, ours_v)) in &ours_ch {
        match theirs_ch.get(key) {
            None => apply(&mut edits, key, ours_v),
            Some((_, theirs_v)) => {
                if ours_v == theirs_v {
                    apply(&mut edits, key, ours_v);
                } else {
                    let c = Conflict {
                        key: key.clone(),
                        base: base_v.clone(),
                        ours: ours_v.clone(),
                        theirs: theirs_v.clone(),
                    };
                    match resolver.resolve(&c) {
                        Some(value) => {
                            resolved += 1;
                            apply(&mut edits, key, &value);
                        }
                        None => conflicts.push(c),
                    }
                }
            }
        }
    }
    for (key, (_, theirs_v)) in &theirs_ch {
        if !ours_ch.contains_key(key) {
            apply(&mut edits, key, theirs_v);
        }
    }

    if !conflicts.is_empty() {
        return Err(MergeError::Conflicts(conflicts));
    }
    let root = update_sorted(store, cfg, ty, base, edits).map_err(MergeError::Corrupt)?;
    Ok(MergeOutcome { root, resolved })
}

/// A Blob merge conflict: both sides edited overlapping byte ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobConflict {
    /// Our edit region (start, base length replaced).
    pub ours: (u64, u64),
    /// Their edit region.
    pub theirs: (u64, u64),
}

/// Why a Blob three-way merge failed — the Blob-side analogue of
/// [`MergeError`]: overlapping edits are the application's problem,
/// unreadable input trees are a storage error and must not be presented
/// as a resolvable conflict.
#[derive(Clone, Debug, PartialEq)]
pub enum BlobMergeError {
    /// Both sides edited overlapping byte regions.
    Conflict(BlobConflict),
    /// A chunk of one of the input trees is missing or corrupt.
    Corrupt(TreeError),
}

/// Three-way merge of Blobs: succeeds when the two sides edited disjoint
/// byte regions of the base.
pub fn merge3_blob(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    base: Digest,
    ours: Digest,
    theirs: Digest,
) -> Result<Digest, BlobMergeError> {
    if ours == theirs || theirs == base {
        return Ok(ours);
    }
    if ours == base {
        return Ok(theirs);
    }
    // Identical content means identical roots (history independence), so
    // differing roots guarantee a non-empty diff; a missing summary can
    // only mean an unreadable tree. On failure, re-scan the shared base
    // so the error names the tree that is actually broken (no extra
    // reads on the success path).
    let corrupt = |root| BlobMergeError::Corrupt(TreeError::MissingChunk { root });
    let blame = |side| {
        if crate::scan::scan_tree(store, base, crate::types::TreeType::Blob).is_none() {
            corrupt(base)
        } else {
            corrupt(side)
        }
    };
    let d1 = blob_diff_summary(store, base, ours)
        .flatten()
        .ok_or_else(|| blame(ours))?;
    let d2 = blob_diff_summary(store, base, theirs)
        .flatten()
        .ok_or_else(|| blame(theirs))?;

    let overlap =
        d1.start < d2.start + d2.left_len.max(1) && d2.start < d1.start + d1.left_len.max(1);
    if overlap {
        return Err(BlobMergeError::Conflict(BlobConflict {
            ours: (d1.start, d1.left_len),
            theirs: (d2.start, d2.left_len),
        }));
    }

    // Apply the higher-offset edit first so base coordinates stay valid.
    let (hi, hi_src, lo, lo_src) = if d1.start > d2.start {
        (d1, ours, d2, theirs)
    } else {
        (d2, theirs, d1, ours)
    };
    let hi_bytes = Blob::from_root(hi_src)
        .read_range(store, hi.start, hi.right_len)
        .ok_or(corrupt(hi_src))?;
    let merged = Blob::from_root(base)
        .splice(store, cfg, hi.start, hi.left_len, &hi_bytes)
        .map_err(BlobMergeError::Corrupt)?;
    let lo_bytes = Blob::from_root(lo_src)
        .read_range(store, lo.start, lo.right_len)
        .ok_or(corrupt(lo_src))?;
    let merged = merged
        .splice(store, cfg, lo.start, lo.left_len, &lo_bytes)
        .map_err(BlobMergeError::Corrupt)?;
    Ok(merged.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_items;
    use crate::scan::get_by_key;
    use crate::tree::Map;
    use forkbase_chunk::MemStore;

    fn map(store: &MemStore, cfg: &ChunkerConfig, pairs: &[(&str, &str)]) -> Digest {
        let mut sorted: Vec<_> = pairs.to_vec();
        sorted.sort();
        build_items(
            store,
            cfg,
            TreeType::Map,
            sorted
                .into_iter()
                .map(|(k, v)| Item::map(k.to_string(), v.to_string())),
        )
    }

    #[test]
    fn disjoint_edits_merge_cleanly() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("a", "1"), ("b", "2"), ("c", "3")]);
        let ours = map(&store, &cfg, &[("a", "OURS"), ("b", "2"), ("c", "3")]);
        let theirs = map(
            &store,
            &cfg,
            &[("a", "1"), ("b", "2"), ("c", "THEIRS"), ("d", "4")],
        );

        let out = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Fail,
        )
        .expect("clean merge");
        let expected = map(
            &store,
            &cfg,
            &[("a", "OURS"), ("b", "2"), ("c", "THEIRS"), ("d", "4")],
        );
        assert_eq!(out.root, expected);
        assert_eq!(out.resolved, 0);
    }

    #[test]
    fn merge_is_symmetric_for_disjoint_edits() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("a", "1"), ("b", "2")]);
        let ours = map(&store, &cfg, &[("a", "X"), ("b", "2")]);
        let theirs = map(&store, &cfg, &[("a", "1"), ("b", "Y")]);
        let m1 = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Fail,
        )
        .expect("merge");
        let m2 = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            theirs,
            ours,
            &Resolver::Fail,
        )
        .expect("merge");
        assert_eq!(m1.root, m2.root);
    }

    #[test]
    fn conflicting_edits_reported() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("k", "base")]);
        let ours = map(&store, &cfg, &[("k", "ours")]);
        let theirs = map(&store, &cfg, &[("k", "theirs")]);
        let err = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Fail,
        )
        .expect_err("conflict");
        let MergeError::Conflicts(err) = err else {
            panic!("expected conflicts, got {err:?}");
        };
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].key.as_ref(), b"k");
        assert_eq!(err[0].base.as_deref(), Some(&b"base"[..]));
    }

    #[test]
    fn same_change_both_sides_is_not_conflict() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("k", "old")]);
        let ours = map(&store, &cfg, &[("k", "new")]);
        let theirs = map(&store, &cfg, &[("k", "new")]);
        let out = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Fail,
        )
        .expect("merge");
        assert_eq!(out.root, ours);
    }

    #[test]
    fn take_ours_resolver() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("k", "base")]);
        let ours = map(&store, &cfg, &[("k", "ours")]);
        let theirs = map(&store, &cfg, &[("k", "theirs")]);
        let out = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::TakeOurs,
        )
        .expect("merge");
        assert_eq!(out.resolved, 1);
        let v = get_by_key(&store, out.root, TreeType::Map, b"k").expect("present");
        assert_eq!(v.value.as_ref(), b"ours");
    }

    #[test]
    fn aggregate_resolver_sums_deltas() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("counter", "100")]);
        let ours = map(&store, &cfg, &[("counter", "130")]); // +30
        let theirs = map(&store, &cfg, &[("counter", "95")]); // -5
        let out = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Aggregate,
        )
        .expect("merge");
        let v = get_by_key(&store, out.root, TreeType::Map, b"counter").expect("present");
        assert_eq!(v.value.as_ref(), b"125");
    }

    #[test]
    fn append_resolver_concatenates() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("log", "")]);
        let ours = map(&store, &cfg, &[("log", "A")]);
        let theirs = map(&store, &cfg, &[("log", "B")]);
        let out = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Append,
        )
        .expect("merge");
        let v = get_by_key(&store, out.root, TreeType::Map, b"log").expect("present");
        assert_eq!(v.value.as_ref(), b"AB");
    }

    #[test]
    fn custom_resolver_hook() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("k", "1")]);
        let ours = map(&store, &cfg, &[("k", "2")]);
        let theirs = map(&store, &cfg, &[("k", "3")]);
        let resolver = Resolver::Custom(Box::new(|c: &Conflict| {
            // Keep the lexicographically larger value.
            Some(c.ours.clone().max(c.theirs.clone()))
        }));
        let out = merge3_sorted(&store, &cfg, TreeType::Map, base, ours, theirs, &resolver)
            .expect("merge");
        let v = get_by_key(&store, out.root, TreeType::Map, b"k").expect("present");
        assert_eq!(v.value.as_ref(), b"3");
    }

    #[test]
    fn delete_vs_edit_conflicts() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = map(&store, &cfg, &[("k", "v"), ("other", "x")]);
        let ours = map(&store, &cfg, &[("other", "x")]); // deleted k
        let theirs = map(&store, &cfg, &[("k", "edited"), ("other", "x")]);
        let err = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base,
            ours,
            theirs,
            &Resolver::Fail,
        )
        .expect_err("conflict");
        let MergeError::Conflicts(err) = err else {
            panic!("expected conflicts, got {err:?}");
        };
        assert_eq!(err[0].ours, None);
        assert_eq!(err[0].theirs.as_deref(), Some(&b"edited"[..]));
    }

    #[test]
    fn blob_merge_disjoint_regions() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base_data = vec![b'x'; 1000];
        let base = Blob::build(&store, &cfg, &base_data);
        let ours = base.splice(&store, &cfg, 10, 5, b"OURS!").expect("splice");
        let theirs = base
            .splice(&store, &cfg, 900, 5, b"THEIRS")
            .expect("splice");

        let merged = merge3_blob(&store, &cfg, base.root(), ours.root(), theirs.root())
            .expect("clean merge");
        let content = Blob::from_root(merged).read_all(&store).expect("read");
        let mut expected = base_data.clone();
        expected.splice(900..905, b"THEIRS".iter().copied());
        expected.splice(10..15, b"OURS!".iter().copied());
        assert_eq!(content, expected);
    }

    #[test]
    fn blob_merge_overlap_conflicts() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = Blob::build(&store, &cfg, &vec![b'x'; 1000]);
        let ours = base.splice(&store, &cfg, 100, 50, b"AAAA").expect("splice");
        let theirs = base.splice(&store, &cfg, 120, 50, b"BBBB").expect("splice");
        assert!(merge3_blob(&store, &cfg, base.root(), ours.root(), theirs.root()).is_err());
    }

    #[test]
    fn blob_merge_one_side_unchanged() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let base = Blob::build(&store, &cfg, b"base content");
        let ours = base.append(&store, &cfg, b" plus ours").expect("append");
        assert_eq!(
            merge3_blob(&store, &cfg, base.root(), ours.root(), base.root()),
            Ok(ours.root())
        );
        assert_eq!(
            merge3_blob(&store, &cfg, base.root(), base.root(), ours.root()),
            Ok(ours.root())
        );
    }

    #[test]
    fn map_merge_large_disjoint() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let base_map = Map::build(
            &store,
            &cfg,
            (0..5000).map(|i| (format!("k{i:05}"), format!("v{i}"))),
        );
        let ours = base_map.put(&store, &cfg, "k00100", "OURS").expect("put");
        let theirs = base_map.put(&store, &cfg, "k04900", "THEIRS").expect("put");
        let out = merge3_sorted(
            &store,
            &cfg,
            TreeType::Map,
            base_map.root(),
            ours.root(),
            theirs.root(),
            &Resolver::Fail,
        )
        .expect("merge");
        let merged = Map::from_root(out.root);
        assert_eq!(
            merged.get(&store, b"k00100").expect("hit").as_ref(),
            b"OURS"
        );
        assert_eq!(
            merged.get(&store, b"k04900").expect("hit").as_ref(),
            b"THEIRS"
        );
        assert_eq!(merged.len(&store), 5000);
    }
}
