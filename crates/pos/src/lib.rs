//! The Pattern-Oriented-Split Tree (POS-Tree), §4.3 of the ForkBase paper.
//!
//! A POS-Tree stores a large object as a balanced tree of content-addressed
//! chunks. It resembles a B+-tree (index nodes with split keys guide
//! lookups) and a Merkle tree (children are referenced by cryptographic
//! hashes of their content) at the same time. Node boundaries are not
//! capacity-based but *pattern-based*:
//!
//! * a **leaf** ends where a rolling hash of the trailing bytes matches a
//!   pattern (`P & (2^q−1) == 0`), extended to the end of the current
//!   element so that no element spans two chunks;
//! * an **index node** ends where a child's cid matches a cheaper pattern
//!   (`cid & (2^r−1) == 0`) — the paper's P′ optimization.
//!
//! Because both patterns are pure functions of content, the tree shape is
//! **history-independent**: two objects with identical content have
//! identical trees (hence identical root cids), no matter through which
//! sequence of edits they were produced. This is what makes structural
//! sharing, fast diff (recursive cid comparison), and cross-object
//! deduplication work.
//!
//! Four chunkable types are provided (paper §3.4): [`Blob`], [`List`],
//! [`Set`] and [`Map`], all stored through any
//! [`forkbase_chunk::ChunkStore`].
//!
//! ```
//! use forkbase_chunk::MemStore;
//! use forkbase_crypto::ChunkerConfig;
//! use forkbase_pos::Map;
//!
//! let store = MemStore::new();
//! let cfg = ChunkerConfig::default();
//! let map = Map::build(&store, &cfg, [("k1", "v1"), ("k2", "v2")]);
//! assert_eq!(map.get(&store, b"k1").unwrap().as_ref(), b"v1");
//! let map2 = map.put(&store, &cfg, "k3", "v3").unwrap();
//! assert_eq!(map2.len(&store), 3);
//! assert_eq!(map.len(&store), 2, "old version is untouched");
//!
//! // Many edits amortize into a single splice via a WriteBatch:
//! let mut wb = forkbase_pos::WriteBatch::new();
//! wb.put("k4", "v4").put("k5", "v5").delete("k1");
//! let map3 = map2.apply(&store, &cfg, wb).unwrap();
//! assert_eq!(map3.len(&store), 4);
//! ```

pub mod batch;
pub mod builder;
pub mod diff;
pub mod entry;
pub mod error;
pub mod hamt;
pub mod iter;
pub mod leaf;
pub mod merge;
pub mod scan;
pub mod tree;
pub mod types;
pub mod update;

pub use batch::WriteBatch;
pub use diff::{blob_diff_summary, sorted_diff, DiffEntry, RangeDiff};
pub use entry::IndexEntry;
pub use error::{TreeError, TreeResult};
pub use hamt::Hamt;
pub use iter::ItemIter;
pub use leaf::Item;
pub use merge::{
    merge3_blob, merge3_sorted, BlobConflict, BlobMergeError, Conflict, MergeError, MergeOutcome,
    Resolver,
};
pub use tree::{Blob, List, Map, Set, TreeRef};
pub use types::TreeType;
pub use update::{normalize_edits, splice_blob, splice_list, update_sorted, Edit};

pub use forkbase_chunk::{Chunk, ChunkStore, ChunkType};
pub use forkbase_crypto::{ChunkerConfig, Digest};
