//! Localized, copy-on-write tree updates (§4.3.3).
//!
//! "When updating an existing POS-Tree, only affected nodes are
//! reconstructed … no subsequent chunks are involved during the
//! reconstruction, because the boundary pattern of the last merged chunk is
//! preserved."
//!
//! The splice algorithm:
//! 1. Collect the leaf entry list (index-chunk metadata only).
//! 2. Reuse every leaf strictly before the first affected position
//!    ([`LeafBuilder::push_reused`]); warm the rolling window with the
//!    bytes preceding the rebuild point so boundary decisions match a
//!    from-scratch build.
//! 3. Re-chunk through the affected region, applying the edits.
//! 4. Once past the last edit, stop at the first chunk cut that coincides
//!    with an old leaf boundary *and* lies at least one rolling-hash window
//!    beyond the last edited byte — from there on, old and new boundary
//!    decisions provably agree, so all remaining leaves are reused.
//! 5. Rebuild the index levels from the leaf entry list. Index levels are
//!    cheap (metadata-sized) and their chunks deduplicate in the store, so
//!    a full index rebuild preserves both history independence and storage
//!    sharing.
//!
//! # Multi-range splice
//!
//! [`update_sorted`] is a **multi-range** splice: one call applies an
//! arbitrary batch of keyed edits, re-chunking each affected region
//! exactly once. The batch is first normalized ([`normalize_edits`]:
//! sorted by key, duplicate keys last-wins), then the splice alternates
//! between two modes:
//!
//! * **reuse mode** — while the chunk stream is aligned with the old tree
//!   and no un-realigned edit is pending, whole leaves up to the next
//!   edit's key are adopted by entry (a `partition_point` over the leaf
//!   list, no chunk reads);
//! * **re-chunk mode** — leaves overlapping a run of consecutive edits are
//!   decoded and merge-applied; once the boundary stream provably realigns
//!   (step 4 above) the splice falls back to reuse mode and skips ahead to
//!   the next edit cluster.
//!
//! So a batch with `k` well-separated edit clusters touches `O(k)` leaf
//! regions and walks the in-between leaves only as metadata — the tree is
//! spliced **once** per batch, never once per edit. Fresh leaves produced
//! across all regions are hashed as a single batch at
//! [`LeafBuilder::finish`] (parallel cid computation on multi-core hosts),
//! and the index levels are rebuilt once at the end. This is what makes
//! [`WriteBatch`](crate::batch::WriteBatch) application orders of
//! magnitude cheaper per edit than a `put` loop.
//!
//! Because leaf boundaries are pure functions of content, the spliced tree
//! is bit-identical to a from-scratch build of the edited content — the
//! property the `history_independence` and batch-equivalence proptests pin
//! down.

use crate::builder::{build_from_entries_reusing, LeafBuilder};
use crate::entry::IndexEntry;
use crate::error::{TreeError, TreeResult};
use crate::leaf::{Item, RawItemCursor};
use crate::scan::scan_tree;
use crate::types::TreeType;
use bytes::Bytes;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::{ChunkerConfig, Digest};

/// A keyed edit against a sorted tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Insert or replace the item at `item.key`.
    Put(Item),
    /// Remove the key if present.
    Del(Bytes),
}

impl Edit {
    /// The key this edit addresses.
    pub fn key(&self) -> &[u8] {
        match self {
            Edit::Put(item) => &item.key,
            Edit::Del(key) => key,
        }
    }
}

/// Sort edits by key, last-wins on duplicates.
pub fn normalize_edits(mut edits: Vec<Edit>) -> Vec<Edit> {
    // Stable sort preserves input order among equal keys; keep the last.
    edits.sort_by(|a, b| a.key().cmp(b.key()));
    let mut out: Vec<Edit> = Vec::with_capacity(edits.len());
    for e in edits {
        if out.last().map(|l| l.key() == e.key()).unwrap_or(false) {
            *out.last_mut().expect("non-empty") = e;
        } else {
            out.push(e);
        }
    }
    out
}

/// Feed the last `window` bytes preceding leaf `first` into the builder's
/// rolling window.
fn seed_before(
    store: &dyn ChunkStore,
    leaves: &[IndexEntry],
    first: usize,
    window: usize,
    lb: &mut LeafBuilder,
) -> Option<()> {
    if first == 0 {
        lb.seed(&[]);
        return Some(());
    }
    let mut parts: Vec<bytes::Bytes> = Vec::new();
    let mut got = 0usize;
    for e in leaves[..first].iter().rev() {
        let chunk = store.get(&e.cid)?;
        got += chunk.len();
        parts.push(chunk.payload().clone());
        if got >= window {
            break;
        }
    }
    let mut all = Vec::with_capacity(got);
    for p in parts.iter().rev() {
        all.extend_from_slice(p);
    }
    let start = all.len().saturating_sub(window);
    lb.seed(&all[start..]);
    Some(())
}

/// Treat the canonical empty leaf as zero leaves.
fn effective_leaves(entries: &[IndexEntry]) -> &[IndexEntry] {
    if entries.len() == 1 && entries[0].count == 0 {
        &[]
    } else {
        entries
    }
}

/// Apply a batch of keyed edits to a sorted tree in one multi-range
/// splice; returns the new root. [`TreeError::MissingChunk`] indicates a
/// missing/corrupt chunk in the tree being updated.
pub fn update_sorted(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    root: Digest,
    edits: Vec<Edit>,
) -> TreeResult<Digest> {
    update_sorted_inner(store, cfg, ty, root, edits).ok_or(TreeError::MissingChunk { root })
}

fn update_sorted_inner(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    ty: TreeType,
    root: Digest,
    edits: Vec<Edit>,
) -> Option<Digest> {
    debug_assert!(ty.is_sorted());
    if edits.is_empty() {
        return Some(root);
    }
    let edits = normalize_edits(edits);
    let scan = scan_tree(store, root, ty)?;
    let leaves = effective_leaves(&scan.leaf_entries);
    let window = cfg.window;

    let mut lb = LeafBuilder::new(store, cfg, ty);
    let mut leaf_i = 0usize;
    let mut edit_i = 0usize;
    // `dirty`: an edit has been applied and the boundary stream has not yet
    // provably realigned with the old tree.
    let mut dirty = false;
    let mut bytes_since_edit = 0usize;
    // Scratch for the current leaf's element spans, reused across leaves.
    let mut raw_items: Vec<crate::leaf::RawItem> = Vec::new();

    loop {
        if lb.aligned() && !dirty {
            // Reuse mode: skip unaffected leaves wholesale.
            let target = if edit_i < edits.len() {
                leaves
                    .partition_point(|e| e.key.as_ref() < edits[edit_i].key())
                    .min(leaves.len().saturating_sub(1))
            } else {
                leaves.len()
            };
            if target > leaf_i {
                for e in &leaves[leaf_i..target] {
                    lb.push_reused(e.clone());
                }
                leaf_i = target;
            }
            if edit_i >= edits.len() {
                break; // no edits left, everything reused
            }
            seed_before(store, leaves, leaf_i, window, &mut lb)?;
            if leaf_i >= leaves.len() {
                // Empty tree: all edits are trailing inserts.
                while edit_i < edits.len() {
                    if let Edit::Put(item) = &edits[edit_i] {
                        lb.append_item(item);
                    }
                    edit_i += 1;
                }
                break;
            }
        }

        // Merge-apply edits through one leaf. The old payload is walked
        // as raw byte spans: untouched elements are compared by key slice
        // and adopted in whole runs ([`LeafBuilder::append_encoded_run`])
        // — no per-item decode/re-encode, `Bytes` refcounting, or
        // per-element chunker calls.
        let entry = &leaves[leaf_i];
        let chunk = store.get(&entry.cid)?;
        let payload = chunk.payload();
        raw_items.clear();
        let mut cursor = RawItemCursor::new(ty, payload);
        while let Some(raw) = cursor.next() {
            raw_items.push(raw);
        }
        if !cursor.finished_clean() {
            return None; // corrupt leaf payload
        }
        let key_of = |r: &crate::leaf::RawItem| &payload[r.key.0..r.key.1];
        let is_last_leaf = leaf_i + 1 == leaves.len();
        let mut i = 0usize;
        while i < raw_items.len() {
            let item_key = key_of(&raw_items[i]);
            while edit_i < edits.len() && edits[edit_i].key() < item_key {
                if let Edit::Put(e) = &edits[edit_i] {
                    lb.append_item(e);
                }
                dirty = true;
                bytes_since_edit = 0;
                edit_i += 1;
            }
            if edit_i < edits.len() && edits[edit_i].key() == item_key {
                if let Edit::Put(e) = &edits[edit_i] {
                    lb.append_item(e);
                }
                dirty = true;
                bytes_since_edit = 0;
                edit_i += 1;
                i += 1;
                continue;
            }
            // Untouched run: every element strictly before the next
            // edit's key.
            let run_end = match edits.get(edit_i) {
                Some(e) => i + raw_items[i..].partition_point(|r| key_of(r) < e.key()),
                None => raw_items.len(),
            };
            bytes_since_edit += raw_items[run_end - 1].span.1 - raw_items[i].span.0;
            lb.append_encoded_run(payload, &raw_items[i..run_end]);
            i = run_end;
        }
        if is_last_leaf {
            while edit_i < edits.len() {
                if let Edit::Put(e) = &edits[edit_i] {
                    lb.append_item(e);
                }
                dirty = true;
                edit_i += 1;
            }
        }
        leaf_i += 1;

        if dirty && lb.aligned() && bytes_since_edit >= window {
            // New cut coincides with an old leaf boundary, one full window
            // past the last edit: chunking provably realigned.
            dirty = false;
        }
        if leaf_i >= leaves.len() && edit_i >= edits.len() {
            break;
        }
    }

    let entries = lb.finish();
    Some(build_from_entries_reusing(
        store,
        cfg,
        ty,
        entries,
        Some(root),
    ))
}

/// Replace `remove` bytes at `start` with `insert` in a Blob tree.
/// Out-of-range `start`/`remove` are clamped to the object.
/// [`TreeError::MissingChunk`] indicates a missing/corrupt chunk in the
/// tree being spliced.
pub fn splice_blob(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    root: Digest,
    start: u64,
    remove: u64,
    insert: &[u8],
) -> TreeResult<Digest> {
    splice_blob_inner(store, cfg, root, start, remove, insert)
        .ok_or(TreeError::MissingChunk { root })
}

fn splice_blob_inner(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    root: Digest,
    start: u64,
    remove: u64,
    insert: &[u8],
) -> Option<Digest> {
    let scan = scan_tree(store, root, TreeType::Blob)?;
    let leaves = effective_leaves(&scan.leaf_entries);
    let total: u64 = leaves.iter().map(|e| e.count).sum();
    let start = start.min(total);
    let remove = remove.min(total - start);
    let window = cfg.window;

    let mut lb = LeafBuilder::new(store, cfg, TreeType::Blob);

    // First leaf containing `start`. A pure append (`start == total`) must
    // still re-chunk the last leaf: it ends without a boundary pattern, so
    // appended bytes merge into it.
    let mut cum = 0u64;
    let mut first = leaves.len();
    for (i, e) in leaves.iter().enumerate() {
        if start < cum + e.count {
            first = i;
            break;
        }
        cum += e.count;
    }
    if first == leaves.len() && !leaves.is_empty() {
        first = leaves.len() - 1;
        cum -= leaves[first].count;
    }
    for e in &leaves[..first] {
        lb.push_reused(e.clone());
    }
    seed_before(store, leaves, first, window, &mut lb)?;

    let mut inserted = false;
    let mut to_remove = remove;
    let mut dirty = false;
    let mut bytes_since_edit = 0usize;
    let mut li = first;
    let mut pos = cum;

    while li < leaves.len() {
        let e = &leaves[li];
        if inserted && to_remove >= e.count && e.count > 0 {
            // Whole leaf falls inside the removal: drop it unread.
            to_remove -= e.count;
            pos += e.count;
            li += 1;
            dirty = true;
            continue;
        }
        if inserted && to_remove == 0 && !dirty && lb.aligned() {
            for e2 in &leaves[li..] {
                lb.push_reused(e2.clone());
            }
            let _ = li;
            break;
        }
        let chunk = store.get(&e.cid)?;
        let payload = chunk.payload();
        let mut j = 0usize;
        if !inserted {
            let pre = (start - pos) as usize;
            lb.append_blob_shared(&payload.slice(..pre));
            lb.append_blob(insert);
            inserted = true;
            dirty = true;
            bytes_since_edit = 0;
            j = pre;
            let rm = (to_remove as usize).min(payload.len() - j);
            j += rm;
            to_remove -= rm as u64;
        } else if to_remove > 0 {
            let rm = (to_remove as usize).min(payload.len());
            j = rm;
            to_remove -= rm as u64;
            bytes_since_edit = 0;
        }
        let rest_len = payload.len() - j;
        lb.append_blob_shared(&payload.slice(j..));
        if dirty {
            bytes_since_edit += rest_len;
        }
        pos += e.count;
        li += 1;
        if dirty && inserted && to_remove == 0 && lb.aligned() && bytes_since_edit >= window {
            dirty = false;
        }
    }
    if !inserted {
        // start == total: pure append.
        lb.append_blob(insert);
    }

    let entries = lb.finish();
    Some(build_from_entries_reusing(
        store,
        cfg,
        TreeType::Blob,
        entries,
        Some(root),
    ))
}

/// Replace `remove` elements at position `start` with `insert` in a List
/// tree. Out-of-range values are clamped.
/// [`TreeError::MissingChunk`] indicates a missing/corrupt chunk in the
/// tree being spliced.
pub fn splice_list(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    root: Digest,
    start: u64,
    remove: u64,
    insert: &[Item],
) -> TreeResult<Digest> {
    splice_list_inner(store, cfg, root, start, remove, insert)
        .ok_or(TreeError::MissingChunk { root })
}

fn splice_list_inner(
    store: &dyn ChunkStore,
    cfg: &ChunkerConfig,
    root: Digest,
    start: u64,
    remove: u64,
    insert: &[Item],
) -> Option<Digest> {
    let scan = scan_tree(store, root, TreeType::List)?;
    let leaves = effective_leaves(&scan.leaf_entries);
    let total: u64 = leaves.iter().map(|e| e.count).sum();
    let start = start.min(total);
    let remove = remove.min(total - start);
    let window = cfg.window;

    let mut lb = LeafBuilder::new(store, cfg, TreeType::List);

    let mut cum = 0u64;
    let mut first = leaves.len();
    for (i, e) in leaves.iter().enumerate() {
        if start < cum + e.count {
            first = i;
            break;
        }
        cum += e.count;
    }
    if first == leaves.len() && !leaves.is_empty() {
        // Appends re-chunk the final (pattern-less) leaf.
        first = leaves.len() - 1;
        cum -= leaves[first].count;
    }
    for e in &leaves[..first] {
        lb.push_reused(e.clone());
    }
    seed_before(store, leaves, first, window, &mut lb)?;

    let mut inserted = false;
    let mut to_remove = remove;
    let mut dirty = false;
    let mut bytes_since_edit = 0usize;
    let mut li = first;
    let mut pos = cum;
    // Scratch for the current leaf's element spans, reused across leaves.
    let mut raw_items: Vec<crate::leaf::RawItem> = Vec::new();

    while li < leaves.len() {
        let e = &leaves[li];
        if inserted && to_remove >= e.count && e.count > 0 {
            to_remove -= e.count;
            pos += e.count;
            li += 1;
            dirty = true;
            continue;
        }
        if inserted && to_remove == 0 && !dirty && lb.aligned() {
            for e2 in &leaves[li..] {
                lb.push_reused(e2.clone());
            }
            let _ = li;
            break;
        }
        // Walk the old payload as raw byte spans: untouched elements are
        // adopted in whole runs ([`LeafBuilder::append_encoded_run`]) —
        // no per-element decode/re-encode or `Bytes` refcounting;
        // removals skip a span without materializing the items at all.
        let chunk = store.get(&e.cid)?;
        let payload = chunk.payload();
        raw_items.clear();
        let mut cursor = RawItemCursor::new(TreeType::List, payload);
        while let Some(raw) = cursor.next() {
            raw_items.push(raw);
        }
        if !cursor.finished_clean() {
            return None; // corrupt leaf payload
        }
        let n = raw_items.len();
        let mut i = 0usize;
        while i < n {
            if !inserted && pos == start {
                for ins in insert {
                    lb.append_item(ins);
                }
                inserted = true;
                dirty = true;
                bytes_since_edit = 0;
            }
            if inserted && to_remove > 0 {
                // Removal run: drop as much of it as this leaf holds.
                let rm = (to_remove as usize).min(n - i);
                i += rm;
                pos += rm as u64;
                to_remove -= rm as u64;
                bytes_since_edit = 0;
                continue;
            }
            // Untouched run: up to the insertion point, else to leaf end.
            let left = n - i;
            let run_end = if !inserted && start < pos + left as u64 {
                i + (start - pos) as usize
            } else {
                n
            };
            if run_end > i {
                bytes_since_edit += raw_items[run_end - 1].span.1 - raw_items[i].span.0;
                lb.append_encoded_run(payload, &raw_items[i..run_end]);
                pos += (run_end - i) as u64;
                i = run_end;
            }
        }
        li += 1;
        if dirty && inserted && to_remove == 0 && lb.aligned() && bytes_since_edit >= window {
            dirty = false;
        }
    }
    if !inserted {
        for ins in insert {
            lb.append_item(ins);
        }
    }

    let entries = lb.finish();
    Some(build_from_entries_reusing(
        store,
        cfg,
        TreeType::List,
        entries,
        Some(root),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_blob, build_items};
    use forkbase_chunk::MemStore;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    fn map_items(n: usize) -> Vec<Item> {
        (0..n)
            .map(|i| Item::map(format!("k{i:06}"), format!("value-{i}")))
            .collect()
    }

    /// The crucial invariant: a spliced tree is bit-identical to a
    /// from-scratch build of the edited content.
    #[test]
    fn blob_splice_equals_rebuild() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let data = pseudo_random(120_000, 1);
        let root = build_blob(&store, &cfg, &data);

        for (start, remove, insert) in [
            (0u64, 0u64, &b"prefix!"[..]),
            (60_000, 100, &b"middle edit"[..]),
            (60_000, 0, &b""[..]),
            (119_000, 5_000, &b"tail replaced"[..]), // clamped removal
            (120_000, 0, &b"appended"[..]),
            (0, 120_000, &b"everything replaced"[..]),
            (0, 0, &b""[..]), // no-op
        ] {
            let spliced = splice_blob(&store, &cfg, root, start, remove, insert).expect("splice");
            let mut expected = data.clone();
            let s = (start as usize).min(expected.len());
            let r = (remove as usize).min(expected.len() - s);
            expected.splice(s..s + r, insert.iter().copied());
            let rebuilt = build_blob(&store, &cfg, &expected);
            assert_eq!(
                spliced, rebuilt,
                "splice(start={start}, remove={remove}) must equal rebuild"
            );
        }
    }

    #[test]
    fn blob_splice_reuses_most_chunks() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(9);
        let data = pseudo_random(500_000, 2);
        let root = build_blob(&store, &cfg, &data);
        let before = store.stats().stored_chunks;

        splice_blob(&store, &cfg, root, 250_000, 10, b"small edit").expect("splice");
        let added = store.stats().stored_chunks - before;
        let total_leaves = scan_tree(&store, root, TreeType::Blob)
            .expect("scan")
            .leaf_entries
            .len() as u64;
        assert!(
            added < total_leaves / 10,
            "edit added {added} chunks out of {total_leaves} leaves"
        );
    }

    #[test]
    fn map_update_equals_rebuild() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let items = map_items(5000);
        let root = build_items(&store, &cfg, TreeType::Map, items.clone());

        // Mixed batch: replace, delete, insert (front, middle, back).
        let edits = vec![
            Edit::Put(Item::map("k000000", "REPLACED")),
            Edit::Del(Bytes::from("k002500")),
            Edit::Put(Item::map("k0025001", "INSERTED-MID")),
            Edit::Put(Item::map("zzz-appended", "TAIL")),
            Edit::Del(Bytes::from("not-present")),
        ];
        let new_root = update_sorted(&store, &cfg, TreeType::Map, root, edits).expect("update");

        let mut model: std::collections::BTreeMap<Bytes, Bytes> =
            items.into_iter().map(|i| (i.key, i.value)).collect();
        model.insert(Bytes::from("k000000"), Bytes::from("REPLACED"));
        model.remove(&Bytes::from("k002500")[..]);
        model.insert(Bytes::from("k0025001"), Bytes::from("INSERTED-MID"));
        model.insert(Bytes::from("zzz-appended"), Bytes::from("TAIL"));
        let rebuilt = build_items(
            &store,
            &cfg,
            TreeType::Map,
            model.into_iter().map(|(k, v)| Item { key: k, value: v }),
        );
        assert_eq!(new_root, rebuilt);
    }

    #[test]
    fn map_update_on_empty_tree() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let empty = build_items(&store, &cfg, TreeType::Map, std::iter::empty());
        let edits = vec![
            Edit::Put(Item::map("b", "2")),
            Edit::Put(Item::map("a", "1")),
            Edit::Del(Bytes::from("c")),
        ];
        let root = update_sorted(&store, &cfg, TreeType::Map, empty, edits).expect("update");
        let rebuilt = build_items(
            &store,
            &cfg,
            TreeType::Map,
            vec![Item::map("a", "1"), Item::map("b", "2")],
        );
        assert_eq!(root, rebuilt);
    }

    #[test]
    fn map_delete_everything_yields_empty() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let items = map_items(50);
        let root = build_items(&store, &cfg, TreeType::Map, items.clone());
        let edits: Vec<Edit> = items.iter().map(|i| Edit::Del(i.key.clone())).collect();
        let new_root = update_sorted(&store, &cfg, TreeType::Map, root, edits).expect("update");
        let empty = build_items(&store, &cfg, TreeType::Map, std::iter::empty());
        assert_eq!(new_root, empty);
    }

    #[test]
    fn duplicate_edits_last_wins() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_items(&store, &cfg, TreeType::Map, map_items(10));
        let edits = vec![
            Edit::Put(Item::map("k000005", "first")),
            Edit::Put(Item::map("k000005", "second")),
        ];
        let new_root = update_sorted(&store, &cfg, TreeType::Map, root, edits).expect("update");
        let item =
            crate::scan::get_by_key(&store, new_root, TreeType::Map, b"k000005").expect("found");
        assert_eq!(item.value.as_ref(), b"second");
    }

    #[test]
    fn list_splice_equals_rebuild() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let items: Vec<Item> = (0..3000)
            .map(|i| Item::list(format!("element-{i}")))
            .collect();
        let root = build_items(&store, &cfg, TreeType::List, items.clone());

        for (start, remove, insert_n) in [
            (0u64, 0u64, 3usize),
            (1500, 10, 2),
            (2999, 1, 0),
            (3000, 0, 5),
            (0, 3000, 1),
        ] {
            let insert: Vec<Item> = (0..insert_n)
                .map(|i| Item::list(format!("NEW-{i}")))
                .collect();
            let new_root = splice_list(&store, &cfg, root, start, remove, &insert).expect("splice");
            let mut expected = items.clone();
            let s = (start as usize).min(expected.len());
            let r = (remove as usize).min(expected.len() - s);
            expected.splice(s..s + r, insert);
            let rebuilt = build_items(&store, &cfg, TreeType::List, expected);
            assert_eq!(
                new_root, rebuilt,
                "list splice(start={start}, remove={remove})"
            );
        }
    }

    #[test]
    fn spread_edits_realign_between_clusters() {
        // Two edits far apart: the splice must skip the unaffected middle.
        let store = MemStore::new();
        let cfg = ChunkerConfig::with_leaf_bits(8);
        let items = map_items(20_000);
        let root = build_items(&store, &cfg, TreeType::Map, items.clone());
        let before = store.stats().stored_chunks;

        let edits = vec![
            Edit::Put(Item::map("k000100", "edit-A")),
            Edit::Put(Item::map("k019900", "edit-B")),
        ];
        let new_root = update_sorted(&store, &cfg, TreeType::Map, root, edits).expect("update");
        let added = store.stats().stored_chunks - before;

        // Verify correctness against rebuild.
        let mut model: std::collections::BTreeMap<Bytes, Bytes> =
            items.into_iter().map(|i| (i.key, i.value)).collect();
        model.insert(Bytes::from("k000100"), Bytes::from("edit-A"));
        model.insert(Bytes::from("k019900"), Bytes::from("edit-B"));
        let rebuilt = build_items(
            &store,
            &cfg,
            TreeType::Map,
            model.into_iter().map(|(k, v)| Item { key: k, value: v }),
        );
        assert_eq!(new_root, rebuilt);

        let leaves = scan_tree(&store, root, TreeType::Map)
            .expect("scan")
            .leaf_entries
            .len() as u64;
        assert!(
            added < leaves / 4,
            "two point edits added {added} chunks of {leaves} leaves"
        );
    }

    #[test]
    fn missing_chunk_surfaces_as_error() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_items(&store, &cfg, TreeType::Map, map_items(100));
        // Same root against an empty store: every chunk is missing.
        let empty_store = MemStore::new();
        let result = update_sorted(
            &empty_store,
            &cfg,
            TreeType::Map,
            root,
            vec![Edit::Del(Bytes::from("k000001"))],
        );
        assert_eq!(result, Err(TreeError::MissingChunk { root }));
    }

    #[test]
    fn empty_edit_batch_is_identity() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let root = build_items(&store, &cfg, TreeType::Map, map_items(100));
        assert_eq!(
            update_sorted(&store, &cfg, TreeType::Map, root, vec![]),
            Ok(root)
        );
    }
}
