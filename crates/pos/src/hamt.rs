//! A persistent hash-array-mapped trie for the flat hot-state tier.
//!
//! Both Sonic Labs forkless-DB papers get their headline wins by serving
//! *latest* state from a flat hash-shaped index and demoting the Merkle
//! structure to an asynchronously maintained sidecar. This is that index:
//! a 32-way HAMT over the 64-bit FxHash of a `Bytes` key, with
//! path-copying updates so that
//!
//! * `clone()` is an O(1) snapshot — every node is behind an `Arc`, and a
//!   snapshot just bumps the root's refcount;
//! * mutation copies only the nodes it actually touches
//!   ([`Arc::make_mut`]), so a uniquely-owned trie mutates in place at
//!   hash-map speed while a shared one degrades gracefully to
//!   copy-on-write along one root-to-leaf path (≤13 nodes).
//!
//! Unlike the POS-Tree [`crate::tree::Map`], a `Hamt` is purely in-memory
//! and unordered: no chunk store, no content addressing, no iteration
//! order guarantees. The hot tier pairs one of these (per engine key)
//! with the POS-Tree map that authenticates it.

use bytes::Bytes;
use forkbase_crypto::fx::FxHasher;
use std::hash::Hasher;
use std::sync::Arc;

/// Bits consumed per trie level. 2^5 = 32-way branching; a 64-bit hash
/// supports 13 levels (12×5 + 4) before exact-collision handling kicks in.
const BITS: u32 = 5;
const LEVEL_MASK: u64 = (1 << BITS) - 1;
/// Past this shift the hash is exhausted: equal remaining hashes mean a
/// true 64-bit collision, handled by a `Collision` node.
const MAX_SHIFT: u32 = 60;

fn hash_key(key: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(key);
    h.finish()
}

#[derive(Clone)]
enum Node<V> {
    /// Interior node: `bitmap` has bit `i` set iff child for slot `i`
    /// exists; children are stored densely in slot order.
    Branch {
        bitmap: u32,
        children: Vec<Arc<Node<V>>>,
    },
    /// A single key. The full hash is cached so splits never rehash.
    Leaf { hash: u64, key: Bytes, value: V },
    /// Keys whose full 64-bit hashes are identical.
    Collision { hash: u64, entries: Vec<(Bytes, V)> },
}

/// A persistent (path-copying) hash map from `Bytes` to `V`.
///
/// `clone()` is an O(1) snapshot; mutating either copy never disturbs the
/// other. See the module docs for where this sits in the engine.
pub struct Hamt<V> {
    root: Option<Arc<Node<V>>>,
    len: usize,
}

impl<V> Clone for Hamt<V> {
    fn clone(&self) -> Self {
        Hamt {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<V> Default for Hamt<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Hamt<V> {
    pub fn new() -> Self {
        Hamt { root: None, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<V: Clone> Hamt<V> {
    /// Look up `key`, returning a reference into the trie.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let hash = hash_key(key);
        let mut shift = 0u32;
        loop {
            match node {
                Node::Branch { bitmap, children } => {
                    let idx = ((hash >> shift) & LEVEL_MASK) as u32;
                    let bit = 1u32 << idx;
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let pos = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[pos];
                    shift += BITS;
                }
                Node::Leaf {
                    hash: h,
                    key: k,
                    value,
                } => {
                    return (*h == hash && k.as_ref() == key).then_some(value);
                }
                Node::Collision { hash: h, entries } => {
                    if *h != hash {
                        return None;
                    }
                    return entries
                        .iter()
                        .find(|(k, _)| k.as_ref() == key)
                        .map(|(_, v)| v);
                }
            }
        }
    }

    /// Insert or replace. Returns the previous value if the key was
    /// present. Only the touched root-to-leaf path is copied; nodes
    /// uniquely owned by this trie are mutated in place.
    pub fn insert(&mut self, key: Bytes, value: V) -> Option<V> {
        let hash = hash_key(&key);
        self.insert_hashed(hash, key, value)
    }

    /// `insert` with the hash supplied by the caller. Exposed for tests
    /// that need to force collision paths without reversing FxHash.
    pub fn insert_hashed(&mut self, hash: u64, key: Bytes, value: V) -> Option<V> {
        match &mut self.root {
            None => {
                self.root = Some(Arc::new(Node::Leaf { hash, key, value }));
                self.len += 1;
                None
            }
            Some(root) => {
                let old = node_insert(root, 0, hash, key, value);
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let hash = hash_key(key);
        let root = self.root.as_mut()?;
        let (old, now_empty) = node_remove(root, 0, hash, key);
        if now_empty {
            self.root = None;
        }
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Visit every entry. Order is hash order — arbitrary but stable for
    /// a given key set.
    pub fn for_each(&self, mut f: impl FnMut(&Bytes, &V)) {
        fn walk<V>(node: &Node<V>, f: &mut impl FnMut(&Bytes, &V)) {
            match node {
                Node::Branch { children, .. } => {
                    for c in children {
                        walk(c, f);
                    }
                }
                Node::Leaf { key, value, .. } => f(key, value),
                Node::Collision { entries, .. } => {
                    for (k, v) in entries {
                        f(k, v);
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            walk(root, &mut f);
        }
    }

    /// Collect every entry into a `Vec` (hash order).
    pub fn entries(&self) -> Vec<(Bytes, V)> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|k, v| out.push((k.clone(), v.clone())));
        out
    }
}

/// Build the smallest subtree distinguishing two leaves whose hashes
/// differ somewhere at or above `shift`. Exact collisions are bucketed
/// by the caller before this is reached.
fn join_leaves<V>(shift: u32, a: Arc<Node<V>>, b: Arc<Node<V>>) -> Node<V> {
    let (ha, hb) = match (&*a, &*b) {
        (Node::Leaf { hash: ha, .. }, Node::Leaf { hash: hb, .. }) => (*ha, *hb),
        _ => unreachable!("join_leaves called on non-leaf nodes"),
    };
    debug_assert_ne!(ha, hb, "equal hashes must be bucketed by the caller");
    let ia = ((ha >> shift) & LEVEL_MASK) as u32;
    let ib = ((hb >> shift) & LEVEL_MASK) as u32;
    if ia == ib {
        let child = Arc::new(join_leaves(shift + BITS, a, b));
        Node::Branch {
            bitmap: 1 << ia,
            children: vec![child],
        }
    } else {
        let (bitmap, children) = if ia < ib {
            (1 << ia | 1 << ib, vec![a, b])
        } else {
            (1 << ia | 1 << ib, vec![b, a])
        };
        Node::Branch { bitmap, children }
    }
}

fn node_insert<V: Clone>(
    node: &mut Arc<Node<V>>,
    shift: u32,
    hash: u64,
    key: Bytes,
    value: V,
) -> Option<V> {
    let n = Arc::make_mut(node);
    match n {
        Node::Branch { bitmap, children } => {
            let idx = ((hash >> shift) & LEVEL_MASK) as u32;
            let bit = 1u32 << idx;
            let pos = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit != 0 {
                node_insert(&mut children[pos], shift + BITS, hash, key, value)
            } else {
                *bitmap |= bit;
                children.insert(pos, Arc::new(Node::Leaf { hash, key, value }));
                None
            }
        }
        Node::Leaf {
            hash: h,
            key: k,
            value: v,
        } => {
            if *h == hash && *k == key {
                return Some(std::mem::replace(v, value));
            }
            if *h == hash {
                // Exact 64-bit collision: bucket node. (Distinct hashes
                // always split within 64 bits, so `shift` stays ≤
                // `MAX_SHIFT` on the split path.)
                let old = (k.clone(), v.clone());
                *n = Node::Collision {
                    hash,
                    entries: vec![old, (key, value)],
                };
                return None;
            }
            let old_leaf = Arc::new(n.clone());
            let new_leaf = Arc::new(Node::Leaf { hash, key, value });
            *n = join_leaves(shift, old_leaf, new_leaf);
            None
        }
        Node::Collision { hash: h, entries } => {
            let h = *h;
            if h == hash {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    return Some(std::mem::replace(&mut slot.1, value));
                }
                entries.push((key, value));
                return None;
            }
            // Distinct hash reaching a collision bucket: split the level.
            debug_assert!(shift <= MAX_SHIFT, "distinct hashes agree on all 64 bits");
            let bucket = Arc::new(n.clone());
            let ib = ((h >> shift) & LEVEL_MASK) as u32;
            let il = ((hash >> shift) & LEVEL_MASK) as u32;
            let leaf = Arc::new(Node::Leaf { hash, key, value });
            *n = if ib == il {
                let mut inner = bucket;
                let old = node_insert_into_subtree(&mut inner, shift + BITS, hash, leaf);
                debug_assert!(old.is_none());
                Node::Branch {
                    bitmap: 1 << ib,
                    children: vec![inner],
                }
            } else {
                let (bitmap, children) = if ib < il {
                    (1 << ib | 1 << il, vec![bucket, leaf])
                } else {
                    (1 << ib | 1 << il, vec![leaf, bucket])
                };
                Node::Branch { bitmap, children }
            };
            None
        }
    }
}

/// Insert an already-built leaf beneath `node` (used when splitting a
/// collision bucket whose slot the new key shares).
fn node_insert_into_subtree<V: Clone>(
    node: &mut Arc<Node<V>>,
    shift: u32,
    hash: u64,
    leaf: Arc<Node<V>>,
) -> Option<V> {
    match &*leaf {
        Node::Leaf { key, value, .. } => node_insert(node, shift, hash, key.clone(), value.clone()),
        _ => unreachable!(),
    }
}

/// Returns `(removed_value, node_is_now_empty)`.
fn node_remove<V: Clone>(
    node: &mut Arc<Node<V>>,
    shift: u32,
    hash: u64,
    key: &[u8],
) -> (Option<V>, bool) {
    // Peek before copying: a miss must not path-copy a shared trie.
    let hit = match &**node {
        Node::Branch { bitmap, .. } => {
            let idx = ((hash >> shift) & LEVEL_MASK) as u32;
            bitmap & (1 << idx) != 0
        }
        Node::Leaf {
            hash: h, key: k, ..
        } => *h == hash && k.as_ref() == key,
        Node::Collision { hash: h, entries } => {
            *h == hash && entries.iter().any(|(k, _)| k.as_ref() == key)
        }
    };
    if !hit {
        return (None, false);
    }
    let n = Arc::make_mut(node);
    match n {
        Node::Branch { bitmap, children } => {
            let idx = ((hash >> shift) & LEVEL_MASK) as u32;
            let bit = 1u32 << idx;
            let pos = (*bitmap & (bit - 1)).count_ones() as usize;
            let (old, child_empty) = node_remove(&mut children[pos], shift + BITS, hash, key);
            if child_empty {
                *bitmap &= !bit;
                children.remove(pos);
            }
            (old, children.is_empty())
        }
        Node::Leaf { value, .. } => (Some(value.clone()), true),
        Node::Collision { entries, .. } => {
            let pos = entries
                .iter()
                .position(|(k, _)| k.as_ref() == key)
                .expect("checked above");
            let (_, v) = entries.remove(pos);
            if entries.len() == 1 {
                let (k, v1) = entries.pop().expect("one entry");
                let h = match n {
                    Node::Collision { hash, .. } => *hash,
                    _ => unreachable!(),
                };
                *n = Node::Leaf {
                    hash: h,
                    key: k,
                    value: v1,
                };
            }
            (Some(v), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut h: Hamt<u32> = Hamt::new();
        assert_eq!(h.get(b"a"), None);
        assert_eq!(h.insert(b("a"), 1), None);
        assert_eq!(h.insert(b("b"), 2), None);
        assert_eq!(h.insert(b("a"), 3), Some(1));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(b"a"), Some(&3));
        assert_eq!(h.get(b"b"), Some(&2));
        assert_eq!(h.remove(b"a"), Some(3));
        assert_eq!(h.remove(b"a"), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(b"a"), None);
        assert_eq!(h.get(b"b"), Some(&2));
    }

    #[test]
    fn matches_hashmap_model_under_mixed_ops() {
        // Deterministic pseudo-random op stream; 4096 ops over a 512-key
        // space drives plenty of splits, replacements and removals.
        let mut h: Hamt<u64> = Hamt::new();
        let mut model: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for i in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = format!("key{:03}", x % 512);
            match x % 3 {
                0 | 1 => {
                    let got = h.insert(b(&key), i);
                    let want = model.insert(key.into_bytes(), i);
                    assert_eq!(got, want);
                }
                _ => {
                    let got = h.remove(key.as_bytes());
                    let want = model.remove(key.as_bytes());
                    assert_eq!(got, want);
                }
            }
            assert_eq!(h.len(), model.len());
        }
        for (k, v) in &model {
            assert_eq!(h.get(k), Some(v), "key {:?}", String::from_utf8_lossy(k));
        }
        let mut count = 0;
        h.for_each(|k, v| {
            assert_eq!(model.get(k.as_ref()), Some(v));
            count += 1;
        });
        assert_eq!(count, model.len());
    }

    #[test]
    fn snapshots_are_isolated() {
        let mut h: Hamt<u32> = Hamt::new();
        for i in 0..200 {
            h.insert(b(&format!("k{i}")), i);
        }
        let snap = h.clone(); // O(1)
        for i in 0..200 {
            h.insert(b(&format!("k{i}")), i + 1000);
        }
        h.remove(b"k0");
        for i in 0..200u32 {
            assert_eq!(snap.get(format!("k{i}").as_bytes()), Some(&i));
        }
        assert_eq!(h.get(b"k0"), None);
        assert_eq!(h.get(b"k1"), Some(&1001));
        assert_eq!(snap.len(), 200);
        assert_eq!(h.len(), 199);
    }

    #[test]
    fn forced_collisions_bucket_and_split() {
        let mut h: Hamt<u32> = Hamt::new();
        // Same full hash: collision bucket.
        h.insert_hashed(42, b("a"), 1);
        h.insert_hashed(42, b("b"), 2);
        h.insert_hashed(42, b("c"), 3);
        // A distinct hash sharing the low 5 bits lands next to the bucket.
        h.insert_hashed(42 + 32, b("d"), 4);
        assert_eq!(h.len(), 4);
        // get() rehashes with FxHash, so probe through entries() instead.
        let got: HashMap<Bytes, u32> = h.entries().into_iter().collect();
        assert_eq!(got[&b("a")], 1);
        assert_eq!(got[&b("b")], 2);
        assert_eq!(got[&b("c")], 3);
        assert_eq!(got[&b("d")], 4);
        // Replacement inside a bucket.
        assert_eq!(h.insert_hashed(42, b("b"), 20), Some(2));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn empty_and_tombstone_values() {
        // The hot tier stores Option<Bytes> (None = tombstone): make sure
        // nested Option round-trips unambiguously.
        let mut h: Hamt<Option<Bytes>> = Hamt::new();
        h.insert(b("live"), Some(b("v")));
        h.insert(b("dead"), None);
        assert_eq!(h.get(b"live"), Some(&Some(b("v"))));
        assert_eq!(h.get(b"dead"), Some(&None));
        assert_eq!(h.get(b"missing"), None);
    }
}
