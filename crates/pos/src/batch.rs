//! An ordered buffer of keyed edits, applied to a sorted tree in a single
//! splice.
//!
//! One-at-a-time `Map::put` re-walks and re-splices the whole tree per
//! key. A [`WriteBatch`] collects puts and deletes in application order
//! and hands them to [`update_sorted`](crate::update::update_sorted) as
//! one batch: edits are normalized (sorted, last-wins on duplicate keys),
//! every affected leaf region is re-chunked exactly once, and the index
//! levels are rebuilt once at the end. The resulting root is bit-identical
//! to folding the same edits through sequential `put`/`del` calls — the
//! batch-equivalence proptests pin that down — while the cost per edit
//! drops by orders of magnitude for large batches.
//!
//! The same buffer works for Maps (`put`/`delete`) and Sets
//! (`insert`/`delete`): a Set element is an [`Item`] with an empty value.

use crate::leaf::Item;
use crate::update::{normalize_edits, Edit};
use bytes::Bytes;

/// An ordered edit buffer with last-wins semantics, RocksDB-WriteBatch
/// style. Build it up with [`put`](WriteBatch::put) /
/// [`delete`](WriteBatch::delete), then apply it atomically with
/// [`Map::apply`](crate::tree::Map::apply) or
/// [`Set::apply`](crate::tree::Set::apply).
#[derive(Clone, Debug, Default)]
pub struct WriteBatch {
    edits: Vec<Edit>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// An empty batch with room for `n` edits.
    pub fn with_capacity(n: usize) -> WriteBatch {
        WriteBatch {
            edits: Vec::with_capacity(n),
        }
    }

    /// Buffer an insert-or-replace of `key` → `value` (Map entries).
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> &mut Self {
        self.edits.push(Edit::Put(Item {
            key: key.into(),
            value: value.into(),
        }));
        self
    }

    /// Buffer an insert of `key` (Set elements).
    pub fn insert(&mut self, key: impl Into<Bytes>) -> &mut Self {
        self.edits.push(Edit::Put(Item::set(key.into())));
        self
    }

    /// Buffer a delete of `key`. Deleting an absent key is a no-op when
    /// the batch is applied.
    pub fn delete(&mut self, key: impl Into<Bytes>) -> &mut Self {
        self.edits.push(Edit::Del(key.into()));
        self
    }

    /// Number of buffered edits (before duplicate-key collapsing).
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Drop all buffered edits, keeping the allocation.
    pub fn clear(&mut self) {
        self.edits.clear();
    }

    /// The buffered edits in application order.
    pub fn iter(&self) -> impl Iterator<Item = &Edit> {
        self.edits.iter()
    }

    /// Consume the batch as a raw edit list in application order.
    pub fn into_edits(self) -> Vec<Edit> {
        self.edits
    }

    /// Consume the batch as a normalized edit list: sorted by key,
    /// duplicate keys collapsed to the last buffered edit.
    pub fn into_normalized_edits(self) -> Vec<Edit> {
        normalize_edits(self.edits)
    }
}

impl Extend<Edit> for WriteBatch {
    fn extend<I: IntoIterator<Item = Edit>>(&mut self, iter: I) {
        self.edits.extend(iter);
    }
}

impl FromIterator<Edit> for WriteBatch {
    fn from_iter<I: IntoIterator<Item = Edit>>(iter: I) -> WriteBatch {
        WriteBatch {
            edits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_in_order_with_last_wins_on_normalize() {
        let mut wb = WriteBatch::new();
        wb.put("b", "1").delete("a").put("b", "2").insert("c");
        assert_eq!(wb.len(), 4);
        let normalized = wb.into_normalized_edits();
        assert_eq!(normalized.len(), 3, "duplicate key collapsed");
        assert_eq!(normalized[0], Edit::Del(Bytes::from("a")));
        assert_eq!(normalized[1], Edit::Put(Item::map("b", "2")), "last wins");
        assert_eq!(normalized[2], Edit::Put(Item::set("c")));
    }

    #[test]
    fn clear_and_reuse() {
        let mut wb = WriteBatch::with_capacity(8);
        wb.put("k", "v");
        assert!(!wb.is_empty());
        wb.clear();
        assert!(wb.is_empty());
        wb.delete("k");
        assert_eq!(wb.into_edits(), vec![Edit::Del(Bytes::from("k"))]);
    }
}
