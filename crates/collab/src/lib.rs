//! **fb-collab** — collaborative analytics over relational datasets on
//! ForkBase (§5.3).
//!
//! Two physical layouts implement the same table abstraction:
//!
//! * [`Layout::Row`] — each record is stored under its primary key in a
//!   `Map` ("a record is stored as a Tuple, embedded in a Map keyed by its
//!   primary key");
//! * [`Layout::Column`] — each column's values are a `List`, referenced
//!   from a `Map` keyed by column name ("column values are stored as a
//!   List, embedded in a Map keyed by the column name").
//!
//! Checkout is O(1) (a handle; chunks are fetched lazily), commits write
//! only changed chunks, version diff uses the POS-Tree, and analytical
//! queries pick whichever layout serves them (Fig. 17(b): column layout
//! is ~10× faster for aggregation).

use bytes::Bytes;
use fb_workload::Record;
use forkbase_core::{FbError, ForkBase, Result, Value};
use forkbase_crypto::Digest;
use forkbase_pos::{sorted_diff, List, Map, TreeType};

/// Physical layout of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// pk → encoded record, one Map.
    Row,
    /// column name → List of values, one Map of Lists.
    Column,
}

/// The five columns of the benchmark schema, in order.
pub const COLUMNS: [&str; 5] = ["pk", "qty", "price", "descr", "region"];

fn column_values(rec: &Record) -> [String; 5] {
    [
        rec.pk.clone(),
        rec.qty.to_string(),
        rec.price.to_string(),
        rec.descr.clone(),
        rec.region.clone(),
    ]
}

/// A named, versioned dataset inside a ForkBase instance.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The ForkBase key the dataset lives under.
    pub key: Bytes,
    /// Physical layout.
    pub layout: Layout,
}

impl Dataset {
    /// Import records as version 0 on the default branch.
    pub fn import(
        db: &ForkBase,
        name: &str,
        layout: Layout,
        records: &[Record],
    ) -> Result<Dataset> {
        let ds = Dataset {
            key: Bytes::from(name.to_string()),
            layout,
        };
        let value = ds.build_value(db, records);
        db.put(ds.key.clone(), None, value)?;
        Ok(ds)
    }

    fn build_value(&self, db: &ForkBase, records: &[Record]) -> Value {
        match self.layout {
            Layout::Row => {
                let map = db.new_map(
                    records
                        .iter()
                        .map(|r| (Bytes::from(r.pk.clone()), r.encode())),
                );
                Value::Map(map)
            }
            Layout::Column => {
                let mut cols: Vec<(Bytes, Bytes)> = Vec::with_capacity(COLUMNS.len());
                for (c, name) in COLUMNS.iter().enumerate() {
                    let list = db.new_list(
                        records
                            .iter()
                            .map(|r| Bytes::from(column_values(r)[c].clone())),
                    );
                    cols.push((
                        Bytes::from(name.to_string()),
                        Bytes::copy_from_slice(list.root().as_bytes()),
                    ));
                }
                Value::Map(db.new_map(cols))
            }
        }
    }

    fn head_map(&self, db: &ForkBase) -> Result<Map> {
        db.get_value(self.key.clone(), None)?.as_map()
    }

    fn column_list(&self, db: &ForkBase, map: &Map, column: &str) -> Result<List> {
        let root_bytes = map
            .get(db.store(), column.as_bytes())
            .ok_or(FbError::KeyNotFound)?;
        let root = Digest::from_slice(&root_bytes)
            .ok_or_else(|| FbError::Corrupt("bad column root".into()))?;
        Ok(List::from_root(root))
    }

    /// Number of records in the head version.
    pub fn row_count(&self, db: &ForkBase) -> Result<u64> {
        let map = self.head_map(db)?;
        match self.layout {
            Layout::Row => Ok(map.len(db.store())),
            Layout::Column => Ok(self.column_list(db, &map, "pk")?.len(db.store())),
        }
    }

    /// Apply record modifications `(row index, new record)` as one commit;
    /// returns the new version uid.
    pub fn update(&self, db: &ForkBase, mods: &[(usize, Record)]) -> Result<Digest> {
        let map = self.head_map(db)?;
        let value = match self.layout {
            Layout::Row => {
                let edits = mods
                    .iter()
                    .map(|(_, rec)| (Bytes::from(rec.pk.clone()), Some(rec.encode())));
                let map = map.update(db.store(), db.cfg(), edits)?;
                Value::Map(map)
            }
            Layout::Column => {
                let mut col_edits: Vec<(Bytes, Option<Bytes>)> = Vec::new();
                for (c, name) in COLUMNS.iter().enumerate() {
                    let mut list = self.column_list(db, &map, name)?;
                    for (idx, rec) in mods {
                        list = list.splice(
                            db.store(),
                            db.cfg(),
                            *idx as u64,
                            1,
                            [Bytes::from(column_values(rec)[c].clone())],
                        )?;
                    }
                    col_edits.push((
                        Bytes::from(name.to_string()),
                        Some(Bytes::copy_from_slice(list.root().as_bytes())),
                    ));
                }
                let map = map.update(db.store(), db.cfg(), col_edits)?;
                Value::Map(map)
            }
        };
        db.put(self.key.clone(), None, value)
    }

    /// Read one record by primary key (and row index for column layout).
    pub fn get_record(&self, db: &ForkBase, pk: &str, idx: usize) -> Result<Option<Record>> {
        let map = self.head_map(db)?;
        match self.layout {
            Layout::Row => Ok(map
                .get(db.store(), pk.as_bytes())
                .and_then(|bytes| Record::from_csv(std::str::from_utf8(&bytes).ok()?))),
            Layout::Column => {
                let mut fields = Vec::with_capacity(COLUMNS.len());
                for name in COLUMNS {
                    let list = self.column_list(db, &map, name)?;
                    match list.get(db.store(), idx as u64) {
                        Some(v) => fields.push(String::from_utf8(v.to_vec()).unwrap_or_default()),
                        None => return Ok(None),
                    }
                }
                Ok(Record::from_csv(&fields.join(",")))
            }
        }
    }

    /// Sum an integer column over the head version — the Fig. 17(b)
    /// aggregation. Row layout parses every record; column layout streams
    /// one List.
    pub fn aggregate_sum(&self, db: &ForkBase, column: &str) -> Result<i64> {
        let col_idx = COLUMNS
            .iter()
            .position(|c| *c == column)
            .ok_or(FbError::KeyNotFound)?;
        let map = self.head_map(db)?;
        match self.layout {
            Layout::Row => {
                let mut sum = 0i64;
                for (_, rec_bytes) in map.iter(db.store()) {
                    let text = std::str::from_utf8(&rec_bytes)
                        .map_err(|_| FbError::Corrupt("non-utf8 record".into()))?;
                    let field = text
                        .splitn(COLUMNS.len(), ',')
                        .nth(col_idx)
                        .ok_or_else(|| FbError::Corrupt("short record".into()))?;
                    sum += field.parse::<i64>().unwrap_or(0);
                }
                Ok(sum)
            }
            Layout::Column => {
                let list = self.column_list(db, &map, column)?;
                let mut sum = 0i64;
                for v in list.iter(db.store()) {
                    sum += std::str::from_utf8(&v)
                        .ok()
                        .and_then(|s| s.parse::<i64>().ok())
                        .unwrap_or(0);
                }
                Ok(sum)
            }
        }
    }

    /// Count differing records between two committed versions (row layout
    /// only — the layout the paper's Fig. 17(a) diff experiment uses).
    pub fn diff_versions(&self, db: &ForkBase, a: Digest, b: Digest) -> Result<usize> {
        assert_eq!(
            self.layout,
            Layout::Row,
            "diff is defined on the row layout"
        );
        let root_of = |uid: Digest| -> Result<Digest> {
            let obj = db.get_version(self.key.clone(), uid)?;
            let map = obj.value(db.store())?.as_map()?;
            Ok(map.root())
        };
        let ra = root_of(a)?;
        let rb = root_of(b)?;
        let entries = sorted_diff(db.store(), TreeType::Map, ra, rb)
            .ok_or_else(|| FbError::Corrupt("diff walk".into()))?;
        Ok(entries.len())
    }

    /// Export the head version as CSV (with header).
    pub fn export_csv(&self, db: &ForkBase) -> Result<String> {
        let map = self.head_map(db)?;
        let mut out = String::from("pk,qty,price,descr,region\n");
        match self.layout {
            Layout::Row => {
                for (_, rec) in map.iter(db.store()) {
                    out.push_str(
                        std::str::from_utf8(&rec)
                            .map_err(|_| FbError::Corrupt("non-utf8 record".into()))?,
                    );
                    out.push('\n');
                }
            }
            Layout::Column => {
                let lists = COLUMNS
                    .iter()
                    .map(|c| self.column_list(db, &map, c))
                    .collect::<Result<Vec<_>>>()?;
                let n = lists[0].len(db.store());
                let cols: Vec<Vec<Bytes>> =
                    lists.iter().map(|l| l.iter(db.store()).collect()).collect();
                for i in 0..n as usize {
                    let row: Vec<&str> = cols
                        .iter()
                        .map(|c| std::str::from_utf8(&c[i]).unwrap_or(""))
                        .collect();
                    out.push_str(&row.join(","));
                    out.push('\n');
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fb_workload::DatasetGen;

    fn setup(layout: Layout, n: usize) -> (ForkBase, Dataset, Vec<Record>) {
        let db = ForkBase::in_memory();
        let mut gen = DatasetGen::new(42);
        let records = gen.records(n);
        let ds = Dataset::import(&db, "sales", layout, &records).expect("import");
        (db, ds, records)
    }

    #[test]
    fn import_and_count_row() {
        let (db, ds, _) = setup(Layout::Row, 500);
        assert_eq!(ds.row_count(&db).expect("count"), 500);
    }

    #[test]
    fn import_and_count_column() {
        let (db, ds, _) = setup(Layout::Column, 500);
        assert_eq!(ds.row_count(&db).expect("count"), 500);
    }

    #[test]
    fn get_record_round_trip_both_layouts() {
        for layout in [Layout::Row, Layout::Column] {
            let (db, ds, records) = setup(layout, 200);
            for idx in [0usize, 99, 199] {
                let rec = ds
                    .get_record(&db, &records[idx].pk, idx)
                    .expect("io")
                    .expect("present");
                assert_eq!(rec, records[idx], "{layout:?} idx {idx}");
            }
            assert_eq!(
                ds.get_record(&db, "pk-999999999", 99_999).expect("io"),
                None
            );
        }
    }

    #[test]
    fn aggregation_matches_reference_both_layouts() {
        let expected: i64 = {
            let mut g = DatasetGen::new(42);
            g.records(300).iter().map(|r| r.price).sum()
        };
        for layout in [Layout::Row, Layout::Column] {
            let (db, ds, _) = setup(layout, 300);
            assert_eq!(
                ds.aggregate_sum(&db, "price").expect("aggregate"),
                expected,
                "{layout:?}"
            );
        }
    }

    #[test]
    fn update_creates_new_version_row() {
        let (db, ds, records) = setup(Layout::Row, 1000);
        let v0 = db.head("sales", None).expect("head");
        let mut gen = DatasetGen::new(7);
        let mods = gen.modifications(1000, 20);
        let v1 = ds.update(&db, &mods).expect("update");
        assert_ne!(v0, v1);

        // New values visible, untouched records unchanged.
        let (idx, rec) = &mods[0];
        let got = ds
            .get_record(&db, &rec.pk, *idx)
            .expect("io")
            .expect("present");
        assert_eq!(&got, rec);
        let untouched = (0..1000)
            .find(|i| mods.iter().all(|(mi, _)| mi != i))
            .expect("some untouched row");
        let got = ds
            .get_record(&db, &records[untouched].pk, untouched)
            .expect("io")
            .expect("present");
        assert_eq!(got, records[untouched]);
    }

    #[test]
    fn update_creates_new_version_column() {
        let (db, ds, _) = setup(Layout::Column, 300);
        let mut gen = DatasetGen::new(8);
        let mods = gen.modifications(300, 5);
        ds.update(&db, &mods).expect("update");
        for (idx, rec) in &mods {
            let got = ds
                .get_record(&db, &rec.pk, *idx)
                .expect("io")
                .expect("present");
            assert_eq!(&got, rec);
        }
    }

    #[test]
    fn diff_counts_changed_records() {
        let (db, ds, _) = setup(Layout::Row, 2000);
        let v0 = db.head("sales", None).expect("head");
        let mut gen = DatasetGen::new(9);
        let mods = gen.modifications(2000, 37);
        let v1 = ds.update(&db, &mods).expect("update");
        assert_eq!(ds.diff_versions(&db, v0, v1).expect("diff"), 37);
        assert_eq!(ds.diff_versions(&db, v0, v0).expect("diff"), 0);
    }

    #[test]
    fn csv_export_round_trips() {
        let (db, ds, records) = setup(Layout::Row, 100);
        let csv = ds.export_csv(&db).expect("export");
        let parsed = DatasetGen::from_csv(&csv);
        assert_eq!(parsed.len(), 100);
        // Row layout sorts by pk, which matches generation order.
        assert_eq!(parsed, records);
    }

    #[test]
    fn updates_share_unchanged_chunks() {
        // Large enough that per-edit write amplification (a whole ~4KB
        // leaf per touched record, ~27 records/leaf) is small relative to
        // the dataset.
        let (db, ds, _) = setup(Layout::Row, 20_000);
        let before = db.store().stats().stored_bytes;
        let mut gen = DatasetGen::new(10);
        let mods = gen.modifications(20_000, 10);
        ds.update(&db, &mods).expect("update");
        let added = db.store().stats().stored_bytes - before;
        assert!(
            added < before / 10,
            "10 modified records of 20000 must not rewrite the dataset: {added}B added to {before}B"
        );
    }

    #[test]
    fn branching_datasets() {
        // The collaborative workflow: analysts fork the dataset, transform
        // their branch, and the original stays intact.
        let (db, ds, _) = setup(Layout::Row, 200);
        db.fork("sales", "master", "cleaning").expect("fork");
        let mut gen = DatasetGen::new(11);
        let mods = gen.modifications(200, 50);

        // Commit the transformation on the branch only.
        let map = db
            .get_value("sales", Some("cleaning"))
            .expect("branch")
            .as_map()
            .expect("map");
        let edits = mods
            .iter()
            .map(|(_, rec)| (Bytes::from(rec.pk.clone()), Some(rec.encode())));
        let map = map.update(db.store(), db.cfg(), edits).expect("update");
        db.put("sales", Some("cleaning"), Value::Map(map))
            .expect("put");

        let main_sum = ds.aggregate_sum(&db, "price").expect("sum");
        let mut g2 = DatasetGen::new(42);
        let original_sum: i64 = g2.records(200).iter().map(|r| r.price).sum();
        assert_eq!(main_sum, original_sum, "master unaffected by branch work");
    }
}
