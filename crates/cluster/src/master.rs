//! The master: cluster runtime information (§4.1 — "the master maintains
//! the cluster runtime information").

/// Chunk placement policy (the Fig. 15 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// One-layer: all of a key's chunks stay on its home servlet.
    OneLayer,
    /// Two-layer: data chunks are scattered by cid; meta chunks stay
    /// local.
    TwoLayer,
}

/// Cluster topology and policy.
#[derive(Clone, Debug)]
pub struct Master {
    n_servlets: usize,
    partitioning: Partitioning,
}

impl Master {
    /// A master for `n_servlets` nodes under `partitioning`.
    pub fn new(n_servlets: usize, partitioning: Partitioning) -> Master {
        assert!(n_servlets >= 1, "need at least one servlet");
        Master {
            n_servlets,
            partitioning,
        }
    }

    /// Number of servlets.
    pub fn n_servlets(&self) -> usize {
        self.n_servlets
    }

    /// Active partitioning policy.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// The home servlet of a request key (layer 1: key-hash routing).
    pub fn servlet_of(&self, key: &[u8]) -> usize {
        (forkbase_crypto::hash_bytes(key).prefix_u64() % self.n_servlets as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let m = Master::new(7, Partitioning::TwoLayer);
        for i in 0..100 {
            let key = format!("key-{i}");
            let s = m.servlet_of(key.as_bytes());
            assert!(s < 7);
            assert_eq!(s, m.servlet_of(key.as_bytes()), "stable routing");
        }
    }

    #[test]
    fn keys_spread_across_servlets() {
        let m = Master::new(8, Partitioning::TwoLayer);
        let mut counts = [0usize; 8];
        for i in 0..8000 {
            counts[m.servlet_of(format!("key-{i}").as_bytes())] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "balanced: {counts:?}");
        }
    }
}
