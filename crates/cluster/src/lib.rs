//! **forkbase-cluster** — the distributed deployment of §4.1/§4.6,
//! simulated in-process.
//!
//! A cluster is a master (topology bookkeeping), a request dispatcher,
//! and N servlets, each co-located with a local chunk storage. Requests
//! are partitioned twice:
//!
//! 1. **dispatcher → servlet** by the request key's hash, and
//! 2. **servlet → chunk storage** by each chunk's cid — except meta
//!    chunks, which stay on the servlet's local storage ("meta chunks are
//!    always stored locally, as they are not accessed by other
//!    servlets").
//!
//! The second layer is what keeps storage balanced under skew (Fig. 15):
//! a hot key's chunks scatter across all nodes because cids are uniform,
//! whereas one-layer partitioning pins all of a key's data to its home
//! servlet. Both policies are provided so the experiment can compare
//! them.
//!
//! The paper's network is not simulated — servlets are in-process — so
//! cross-servlet routing costs nothing here; scalability (Fig. 8) derives
//! from the absence of cross-servlet coordination, which this model
//! preserves faithfully.

pub mod dispatch;
pub mod master;
pub mod servlet;
pub mod store2l;

pub use dispatch::Cluster;
pub use master::{Master, Partitioning};
pub use servlet::Servlet;
pub use store2l::TwoLayerStore;
