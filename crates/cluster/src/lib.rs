//! **forkbase-cluster** — the distributed deployment of §4.1/§4.6.
//!
//! A cluster is a master (topology bookkeeping), a request dispatcher,
//! and N servlets, each co-located with a local chunk storage. Requests
//! are partitioned twice:
//!
//! 1. **dispatcher → servlet** by the request key's hash, and
//! 2. **servlet → chunk storage** by each chunk's cid — except meta
//!    chunks, which stay on the servlet's local storage ("meta chunks are
//!    always stored locally, as they are not accessed by other
//!    servlets").
//!
//! The second layer is what keeps storage balanced under skew (Fig. 15):
//! a hot key's chunks scatter across all nodes because cids are uniform,
//! whereas one-layer partitioning pins all of a key's data to its home
//! servlet. Both policies are provided so the experiment can compare
//! them.
//!
//! Cross-node chunk traffic goes through the transport-agnostic
//! [`ChunkService`] API (get / get_many / put / put_many / stats) with
//! two interchangeable transports, selected per cluster by
//! [`ClusterBuilder::transport`]:
//!
//! * **in-process** ([`StoreService`]) — direct handles to the peer
//!   stores; zero-cost routing for single-machine runs and tests;
//! * **TCP** ([`net`]) — every node serves a [`ChunkServer`] speaking
//!   length-prefixed, checksummed binary frames, and peers dial it with
//!   pooled, pipelined [`TcpChunkClient`]s. A killed node surfaces as
//!   [`FbError::Io`](forkbase_core::FbError::Io) (counted in that
//!   servlet's `io_errors`), never a hang; a restarted node is picked up
//!   by lazy re-dial.
//!
//! The two transports are held to identical observable behavior —
//! same answers, same per-node stats deltas — by the
//! transport-equivalence suite, so experiments can chunk-route over
//! loopback TCP (Fig. 8's real deployment shape) or in-process (fast)
//! interchangeably.

pub mod builder;
pub mod dispatch;
pub mod master;
pub mod net;
pub mod service;
pub mod servlet;
pub mod store2l;

pub use builder::{ClusterBuilder, Transport};
pub use dispatch::Cluster;
pub use master::{Master, Partitioning};
pub use net::{ChunkServer, TcpChunkClient, TcpConfig};
pub use service::{ChunkService, StoreService};
pub use servlet::Servlet;
pub use store2l::TwoLayerStore;
