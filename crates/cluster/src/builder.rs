//! [`ClusterBuilder`] — the one way to assemble a [`Cluster`].
//!
//! Every deployment axis is a builder knob: node count or explicit
//! per-node stores, partitioning policy, chunker configuration,
//! remote-cache sizing, and — the axis that makes the cluster real —
//! the [`Transport`] servlets use to reach each other's chunk storage.

use crate::dispatch::Cluster;
use crate::master::{Master, Partitioning};
use crate::net::{ChunkServer, TcpChunkClient, TcpConfig};
use crate::service::{ChunkService, StoreService};
use crate::servlet::Servlet;
use forkbase_chunk::{CacheConfig, ChunkStore, MemStore};
use forkbase_core::{FbError, Result};
use forkbase_crypto::ChunkerConfig;
use std::net::TcpListener;
use std::sync::Arc;

/// How servlets reach each other's chunk storage.
#[derive(Clone, Copy, Debug, Default)]
pub enum Transport {
    /// Direct in-process handles — zero-cost routing, the single-machine
    /// and test path.
    #[default]
    InProcess,
    /// Loopback TCP: every node binds a [`ChunkServer`] on an ephemeral
    /// `127.0.0.1` port and peers dial it with pooled, pipelined
    /// [`TcpChunkClient`]s. Same chunks, same stats, real wire.
    Tcp(TcpConfig),
}

/// Builder for a [`Cluster`]. Start from [`Cluster::builder`].
///
/// ```
/// use forkbase_cluster::{Cluster, Partitioning, Transport};
///
/// let cluster = Cluster::builder(4)
///     .partitioning(Partitioning::TwoLayer)
///     .transport(Transport::InProcess)
///     .build()
///     .unwrap();
/// cluster.put_blob("key", b"value").unwrap();
/// ```
pub struct ClusterBuilder {
    nodes: usize,
    partitioning: Partitioning,
    cfg: ChunkerConfig,
    stores: Option<Vec<Arc<dyn ChunkStore>>>,
    cache: CacheConfig,
    transport: Transport,
}

impl ClusterBuilder {
    /// A builder for `nodes` servlets with two-layer partitioning,
    /// default chunking, per-node [`MemStore`]s, the default
    /// remote-chunk cache, and the in-process transport.
    pub fn new(nodes: usize) -> ClusterBuilder {
        ClusterBuilder {
            nodes,
            partitioning: Partitioning::TwoLayer,
            cfg: ChunkerConfig::default(),
            stores: None,
            cache: CacheConfig::default(),
            transport: Transport::InProcess,
        }
    }

    /// Key → servlet / chunk → node policy (default:
    /// [`Partitioning::TwoLayer`]).
    pub fn partitioning(mut self, partitioning: Partitioning) -> ClusterBuilder {
        self.partitioning = partitioning;
        self
    }

    /// Content-defined chunking configuration for every servlet.
    pub fn chunker(mut self, cfg: ChunkerConfig) -> ClusterBuilder {
        self.cfg = cfg;
        self
    }

    /// Caller-provided per-node chunk stores — one per servlet, so this
    /// also fixes the node count. This is how a cluster runs on disk:
    /// hand it one [`LogStore`](forkbase_chunk::LogStore) per node (or
    /// any mix of backends).
    pub fn stores(mut self, stores: Vec<Arc<dyn ChunkStore>>) -> ClusterBuilder {
        self.nodes = stores.len();
        self.stores = Some(stores);
        self
    }

    /// Per-servlet remote-chunk cache sizing ([`CacheConfig::disabled`]
    /// for uncached pool reads).
    pub fn cache(mut self, cache: CacheConfig) -> ClusterBuilder {
        self.cache = cache;
        self
    }

    /// How servlets reach each other (default: [`Transport::InProcess`]).
    pub fn transport(mut self, transport: Transport) -> ClusterBuilder {
        self.transport = transport;
        self
    }

    /// Shorthand for `transport(Transport::Tcp(TcpConfig::default()))`.
    pub fn tcp(self) -> ClusterBuilder {
        self.transport(Transport::Tcp(TcpConfig::default()))
    }

    /// Assemble the cluster. Fails with [`FbError::Io`] if a TCP
    /// endpoint cannot bind; the in-process transport cannot fail.
    pub fn build(self) -> Result<Cluster> {
        if self.nodes == 0 {
            return Err(FbError::Io("cluster needs at least one node".into()));
        }
        let stores: Vec<Arc<dyn ChunkStore>> = match self.stores {
            Some(stores) => stores,
            None => (0..self.nodes)
                .map(|_| Arc::new(MemStore::new()) as Arc<dyn ChunkStore>)
                .collect(),
        };
        let n = stores.len();
        let master = Master::new(n, self.partitioning);

        match self.transport {
            Transport::InProcess => {
                // One shared pool of direct store handles; every servlet
                // sees the same endpoints.
                let pool: Vec<Arc<dyn ChunkService>> = stores
                    .iter()
                    .map(|s| Arc::new(StoreService::new(s.clone())) as Arc<dyn ChunkService>)
                    .collect();
                let servlets: Vec<Arc<Servlet>> = (0..n)
                    .map(|id| {
                        Arc::new(Servlet::with_cache(
                            id,
                            self.partitioning,
                            stores[id].clone(),
                            pool.clone(),
                            self.cfg.clone(),
                            self.cache,
                        ))
                    })
                    .collect();
                // Per-node stats endpoints are the servlets themselves.
                let endpoints: Vec<Arc<dyn ChunkService>> = servlets
                    .iter()
                    .map(|s| s.clone() as Arc<dyn ChunkService>)
                    .collect();
                Ok(Cluster::from_parts(master, servlets, endpoints, Vec::new()))
            }
            Transport::Tcp(tcp) => {
                // Bind every listener first so all peer addresses are
                // known before any servlet is built; clients dial
                // lazily, so nothing connects until the servers run.
                let listeners: Vec<TcpListener> = (0..n)
                    .map(|_| {
                        TcpListener::bind("127.0.0.1:0")
                            .map_err(|e| FbError::Io(format!("bind cluster node: {e}")))
                    })
                    .collect::<Result<_>>()?;
                let addrs: Vec<std::net::SocketAddr> = listeners
                    .iter()
                    .map(|l| {
                        l.local_addr()
                            .map_err(|e| FbError::Io(format!("local addr: {e}")))
                    })
                    .collect::<Result<_>>()?;
                let servlets: Vec<Arc<Servlet>> = (0..n)
                    .map(|id| {
                        // A node's own pool entry short-circuits to its
                        // local store; only peers cross the wire.
                        let pool: Vec<Arc<dyn ChunkService>> = (0..n)
                            .map(|j| {
                                if j == id {
                                    Arc::new(StoreService::new(stores[id].clone()))
                                        as Arc<dyn ChunkService>
                                } else {
                                    Arc::new(TcpChunkClient::new(addrs[j], tcp))
                                        as Arc<dyn ChunkService>
                                }
                            })
                            .collect();
                        Arc::new(Servlet::with_cache(
                            id,
                            self.partitioning,
                            stores[id].clone(),
                            pool,
                            self.cfg.clone(),
                            self.cache,
                        ))
                    })
                    .collect();
                let servers: Vec<ChunkServer> = listeners
                    .into_iter()
                    .zip(&servlets)
                    .map(|(listener, servlet)| {
                        ChunkServer::start(listener, servlet.clone())
                            .map_err(|e| FbError::Io(format!("start cluster node: {e}")))
                    })
                    .collect::<Result<_>>()?;
                // Stats endpoints cross the wire too: node_stats() is
                // served by the same stats opcode peers use.
                let endpoints: Vec<Arc<dyn ChunkService>> = addrs
                    .iter()
                    .map(|&addr| Arc::new(TcpChunkClient::new(addr, tcp)) as Arc<dyn ChunkService>)
                    .collect();
                Ok(Cluster::from_parts(master, servlets, endpoints, servers))
            }
        }
    }
}
