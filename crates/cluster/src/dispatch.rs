//! The request dispatcher and the cluster facade.

use crate::builder::ClusterBuilder;
use crate::master::Master;
use crate::net::ChunkServer;
use crate::service::ChunkService;
use crate::servlet::Servlet;
use bytes::Bytes;
use forkbase_chunk::StoreStats;
use forkbase_core::{FObject, Result, Value};
use forkbase_crypto::Digest;
use forkbase_pos::builder;
use forkbase_pos::TreeType;
use std::sync::Arc;

/// A ForkBase cluster: master + dispatcher + N servlets, assembled by
/// [`ClusterBuilder`] over either the in-process or the TCP transport.
pub struct Cluster {
    master: Master,
    servlets: Vec<Arc<Servlet>>,
    /// One [`ChunkService`] endpoint per node for cluster-level stats
    /// collection — the servlets themselves in-process, dedicated TCP
    /// clients otherwise (so [`node_stats`](Self::node_stats) exercises
    /// the same wire peers use).
    endpoints: Vec<Arc<dyn ChunkService>>,
    /// The per-node TCP servers; empty under the in-process transport.
    /// Declared last so clients (inside servlets/endpoints) drop first.
    servers: Vec<ChunkServer>,
}

impl Cluster {
    /// Start configuring a cluster of `nodes` servlets. See
    /// [`ClusterBuilder`] for the knobs; `Cluster::builder(n).build()`
    /// gives two-layer partitioning over in-process MemStore nodes.
    pub fn builder(nodes: usize) -> ClusterBuilder {
        ClusterBuilder::new(nodes)
    }

    pub(crate) fn from_parts(
        master: Master,
        servlets: Vec<Arc<Servlet>>,
        endpoints: Vec<Arc<dyn ChunkService>>,
        servers: Vec<ChunkServer>,
    ) -> Cluster {
        Cluster {
            master,
            servlets,
            endpoints,
            servers,
        }
    }

    /// The master's topology view.
    pub fn master(&self) -> &Master {
        &self.master
    }

    /// Whether this cluster's nodes talk over TCP.
    pub fn is_networked(&self) -> bool {
        !self.servers.is_empty()
    }

    /// The servlet a key routes to (layer 1).
    pub fn servlet_for(&self, key: &[u8]) -> &Arc<Servlet> {
        &self.servlets[self.master.servlet_of(key)]
    }

    /// All servlets (for benchmark drivers that spawn one client per
    /// servlet).
    pub fn servlets(&self) -> &[Arc<Servlet>] {
        &self.servlets
    }

    /// Per-node merged stats — local storage counters plus each
    /// servlet's remote-cache hits/misses and observed transport
    /// errors. Over TCP this is a stats request to every node (the same
    /// opcode peers use), so a dead node surfaces as `Err` rather than
    /// a row of zeros.
    pub fn node_stats(&self) -> Result<Vec<StoreStats>> {
        self.endpoints.iter().map(|e| e.stats()).collect()
    }

    /// Dispatch a Put to the key's home servlet.
    pub fn put(&self, key: impl Into<Bytes>, value: Value) -> Result<Digest> {
        let key = key.into();
        self.servlet_for(&key).db().put(key, None, value)
    }

    /// Dispatch a Get to the key's home servlet.
    pub fn get(&self, key: impl Into<Bytes>) -> Result<FObject> {
        let key = key.into();
        self.servlet_for(&key).db().get(key, None)
    }

    /// Store a blob value for `key` (chunks placed per the partitioning
    /// policy).
    pub fn put_blob(&self, key: impl Into<Bytes>, data: &[u8]) -> Result<Digest> {
        let key = key.into();
        let servlet = self.servlet_for(&key);
        let blob = servlet.db().new_blob(data);
        servlet.db().put(key, None, Value::Blob(blob))
    }

    /// Read back a blob value.
    pub fn get_blob(&self, key: impl Into<Bytes>) -> Result<Vec<u8>> {
        let key = key.into();
        let servlet = self.servlet_for(&key);
        let obj = servlet.db().get(key, None)?;
        let blob = obj.value(servlet.db().store())?.as_blob()?;
        blob.read_all(servlet.db().store())
            .ok_or(forkbase_core::FbError::KeyNotFound)
    }

    /// §4.6.1 — re-balanced POS-Tree construction: the home servlet is
    /// overloaded, so a helper servlet performs the (compute-intensive)
    /// tree construction; the home servlet then commits the FObject
    /// referencing the built tree and updates its branch table.
    pub fn put_blob_offloaded(
        &self,
        key: impl Into<Bytes>,
        data: &[u8],
        helper: usize,
    ) -> Result<Digest> {
        let key = key.into();
        let home = self.servlet_for(&key);
        let helper = &self.servlets[helper % self.servlets.len()];
        // Tree construction happens with the helper's compute and store
        // view; chunks land in the shared pool either way.
        let root = builder::build_blob(helper.db().store(), helper.db().cfg(), data);
        // The home servlet serializes the branch-table update.
        let blob = forkbase_pos::Blob::from_root(root);
        home.db().put(key, None, Value::Blob(blob))
    }

    /// Per-node local storage in bytes — the Fig. 15 distribution.
    pub fn per_node_bytes(&self) -> Vec<u64> {
        self.servlets.iter().map(|s| s.local_bytes()).collect()
    }

    /// Imbalance ratio: max node bytes / mean node bytes (1.0 = perfectly
    /// even).
    pub fn imbalance(&self) -> f64 {
        let bytes = self.per_node_bytes();
        let max = *bytes.iter().max().unwrap_or(&0) as f64;
        let mean = bytes.iter().sum::<u64>() as f64 / bytes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Build and commit a Map object at its home servlet (helper for
    /// tests and benches).
    pub fn put_map<I, K, V>(&self, key: impl Into<Bytes>, pairs: I) -> Result<Digest>
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<Bytes>,
        V: Into<Bytes>,
    {
        let key = key.into();
        let servlet = self.servlet_for(&key);
        let map = servlet.db().new_map(pairs);
        servlet.db().put(key, None, Value::Map(map))
    }

    /// Total distinct chunks across the cluster (dedup works cluster-wide
    /// under 2LP because identical chunks route to the same node).
    pub fn total_chunks(&self) -> u64 {
        self.servlets.iter().map(|s| s.local_chunks()).sum()
    }

    /// The empty-tree sentinel used by tests.
    pub fn empty_blob_root(&self) -> Digest {
        builder::build_items(
            self.servlets[0].db().store(),
            self.servlets[0].db().cfg(),
            TreeType::Blob,
            std::iter::empty(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::Partitioning;
    use forkbase_crypto::ChunkerConfig;

    fn payload(i: usize, len: usize) -> Vec<u8> {
        let mut state = i as u64 + 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn put_get_across_servlets() {
        let cluster = Cluster::builder(4).build().expect("cluster");
        for i in 0..50 {
            let key = format!("key-{i}");
            let data = payload(i, 10_000);
            cluster.put_blob(key.clone(), &data).expect("put");
            assert_eq!(cluster.get_blob(key).expect("get"), data, "key {i}");
        }
    }

    #[test]
    fn two_layer_balances_skewed_workload() {
        // The Fig. 15 effect: a few hot keys, many versions. Under 1LP
        // the hot keys' servlets hold all their data; under 2LP the
        // chunks scatter.
        let run = |p: Partitioning| {
            let cluster = Cluster::builder(8)
                .partitioning(p)
                .build()
                .expect("cluster");
            for version in 0..30 {
                for hot in 0..3 {
                    let key = format!("hot-page-{hot}");
                    let data = payload(hot * 1000 + version, 60_000);
                    cluster.put_blob(key, &data).expect("put");
                }
            }
            cluster.imbalance()
        };
        let one_layer = run(Partitioning::OneLayer);
        let two_layer = run(Partitioning::TwoLayer);
        assert!(
            one_layer > 2.0,
            "1LP should be badly imbalanced, got {one_layer:.2}"
        );
        assert!(
            two_layer < 1.5,
            "2LP should be near-even, got {two_layer:.2}"
        );
    }

    #[test]
    fn offloaded_construction_equivalent() {
        let cluster = Cluster::builder(4).build().expect("cluster");
        let data = payload(7, 100_000);
        let key = "offloaded";
        let home = cluster.master().servlet_of(key.as_bytes());
        let helper = (home + 1) % 4;
        cluster
            .put_blob_offloaded(key, &data, helper)
            .expect("offloaded put");
        assert_eq!(cluster.get_blob(key).expect("get"), data);
    }

    #[test]
    fn single_servlet_cluster_degenerates_to_embedded() {
        let cluster = Cluster::builder(1).build().expect("cluster");
        cluster.put_blob("k", b"embedded mode").expect("put");
        assert_eq!(cluster.get_blob("k").expect("get"), b"embedded mode");
    }

    #[test]
    fn parallel_clients() {
        let cluster = Arc::new(Cluster::builder(4).build().expect("cluster"));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cluster = Arc::clone(&cluster);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let key = format!("t{t}-k{i}");
                        cluster
                            .put_blob(key.clone(), &payload(t * 100 + i, 2000))
                            .expect("put");
                        assert!(cluster.get_blob(key).is_ok());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
    }

    #[test]
    fn durable_cluster_nodes_survive_reopen() {
        use forkbase_chunk::{Durability, LogConfig, LogStore};
        let base = std::env::temp_dir().join(format!(
            "forkbase-cluster-durable-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&base).ok();
        let open_pool = || -> Vec<Arc<dyn forkbase_chunk::ChunkStore>> {
            (0..3)
                .map(|id| {
                    Arc::new(
                        LogStore::open_with(
                            base.join(format!("node-{id}")),
                            LogConfig::default(),
                            Durability::Always,
                        )
                        .expect("open node store"),
                    ) as Arc<dyn forkbase_chunk::ChunkStore>
                })
                .collect()
        };
        let data = payload(42, 30_000);
        let uid = {
            let cluster = Cluster::builder(3)
                .stores(open_pool())
                .build()
                .expect("cluster");
            cluster.put_blob("doc", &data).expect("put");
            assert_eq!(cluster.get_blob("doc").expect("get"), data);
            cluster
                .servlet_for(b"doc")
                .db()
                .head("doc", None)
                .expect("head")
        }; // every node store dropped: the "cluster restart"

        // A fresh cluster over the same directories serves the version
        // by uid — the chunks were scattered across the durable nodes
        // and all survived.
        let cluster = Cluster::builder(3)
            .stores(open_pool())
            .build()
            .expect("cluster");
        let servlet = cluster.servlet_for(b"doc");
        let obj = servlet.db().get_version("doc", uid).expect("recovered");
        let blob = obj
            .value(servlet.db().store())
            .expect("decode")
            .as_blob()
            .expect("blob");
        assert_eq!(
            blob.read_all(servlet.db().store()).expect("read"),
            data,
            "blob reassembles across durable nodes"
        );
        drop(cluster);
        std::fs::remove_dir_all(base).ok();
    }

    #[test]
    fn cluster_wide_dedup_under_2lp() {
        let cluster = Cluster::builder(4).build().expect("cluster");
        let data = payload(1, 50_000);
        // The same content written under keys homed at different
        // servlets deduplicates because chunks route by cid.
        cluster.put_blob("key-a", &data).expect("put");
        let after_first = cluster.total_chunks();
        cluster.put_blob("key-b", &data).expect("put");
        let added = cluster.total_chunks() - after_first;
        // Only meta chunks (and possibly nothing else) are new.
        assert!(added <= 2, "cross-key dedup: {added} new chunks");
    }

    #[test]
    fn node_stats_cover_every_node() {
        let cluster = Cluster::builder(4).build().expect("cluster");
        for i in 0..20 {
            cluster
                .put_blob(format!("k{i}"), &payload(i, 20_000))
                .expect("put");
        }
        let stats = cluster.node_stats().expect("stats");
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.stored_chunks > 0));
        assert_eq!(stats.iter().map(|s| s.io_errors).sum::<u64>(), 0);
    }

    #[test]
    fn tcp_cluster_round_trips_blobs() {
        let cluster = Cluster::builder(3)
            .chunker(ChunkerConfig::default())
            .tcp()
            .build()
            .expect("tcp cluster");
        assert!(cluster.is_networked());
        for i in 0..10 {
            let key = format!("wire-{i}");
            let data = payload(i, 30_000);
            cluster.put_blob(key.clone(), &data).expect("put");
            assert_eq!(cluster.get_blob(key).expect("get"), data, "key {i}");
        }
        // Chunks really scattered across the nodes' stores.
        let stats = cluster.node_stats().expect("stats over the wire");
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().all(|s| s.stored_chunks > 0), "{stats:?}");
        assert_eq!(stats.iter().map(|s| s.io_errors).sum::<u64>(), 0);
    }
}
