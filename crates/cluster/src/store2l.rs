//! The servlet-side chunk store implementing layer 2 of the partitioning
//! scheme: meta chunks pinned to the local node, data chunks routed by
//! cid across the whole pool (§4.6).

use forkbase_chunk::{Chunk, ChunkStore, ChunkType, PutOutcome, StoreStats};
use forkbase_crypto::Digest;
use std::sync::Arc;

/// A view over the cluster-wide chunk pool from one servlet. The pool
/// entries are abstract [`ChunkStore`]s, so a node can run on anything —
/// in-memory ([`MemStore`](forkbase_chunk::MemStore)), on disk
/// ([`LogStore`](forkbase_chunk::LogStore)), cached, replicated, …
pub struct TwoLayerStore {
    /// This servlet's co-located storage (meta chunks live here).
    local: Arc<dyn ChunkStore>,
    /// All nodes' storages, indexable by cid hash.
    pool: Vec<Arc<dyn ChunkStore>>,
}

impl TwoLayerStore {
    /// A view with `local` as the co-located storage.
    pub fn new(local: Arc<dyn ChunkStore>, pool: Vec<Arc<dyn ChunkStore>>) -> TwoLayerStore {
        assert!(!pool.is_empty());
        TwoLayerStore { local, pool }
    }

    fn node_of(&self, cid: &Digest) -> usize {
        (cid.prefix_u64() % self.pool.len() as u64) as usize
    }
}

impl ChunkStore for TwoLayerStore {
    fn get(&self, cid: &Digest) -> Option<Chunk> {
        // Meta chunks are local; data chunks live at their cid's node.
        // Local-first covers both without knowing the type up front.
        if let Some(chunk) = self.local.get(cid) {
            return Some(chunk);
        }
        self.pool[self.node_of(cid)].get(cid)
    }

    fn put(&self, chunk: Chunk) -> PutOutcome {
        if chunk.ty() == ChunkType::Meta {
            self.local.put(chunk)
        } else {
            self.pool[self.node_of(&chunk.cid())].put(chunk)
        }
    }

    fn contains(&self, cid: &Digest) -> bool {
        self.local.contains(cid) || self.pool[self.node_of(cid)].contains(cid)
    }

    fn stats(&self) -> StoreStats {
        // The servlet's view: its local storage (pool-wide stats are the
        // cluster's to aggregate).
        self.local.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use forkbase_chunk::{LogStore, MemStore};

    fn pool(n: usize) -> Vec<Arc<dyn ChunkStore>> {
        (0..n)
            .map(|_| Arc::new(MemStore::new()) as Arc<dyn ChunkStore>)
            .collect()
    }

    #[test]
    fn meta_chunks_stay_local() {
        let nodes = pool(4);
        let store = TwoLayerStore::new(nodes[1].clone(), nodes.clone());
        let meta = Chunk::new(ChunkType::Meta, Bytes::from_static(b"an fobject"));
        store.put(meta.clone());
        assert!(nodes[1].contains(&meta.cid()), "meta pinned to local node");
        assert_eq!(store.get(&meta.cid()), Some(meta));
    }

    #[test]
    fn data_chunks_route_by_cid() {
        let nodes = pool(4);
        let store = TwoLayerStore::new(nodes[0].clone(), nodes.clone());
        for i in 0..400u32 {
            store.put(Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec()));
        }
        let counts: Vec<u64> = nodes.iter().map(|n| n.stats().stored_chunks).collect();
        // node 0 also holds nothing extra (no meta written); all spread.
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 400);
        for c in &counts {
            assert!(*c > 50, "each node holds a share: {counts:?}");
        }
    }

    #[test]
    fn chunks_visible_from_any_servlet_view() {
        let nodes = pool(3);
        let view_a = TwoLayerStore::new(nodes[0].clone(), nodes.clone());
        let view_b = TwoLayerStore::new(nodes[2].clone(), nodes.clone());
        let chunk = Chunk::new(ChunkType::Map, Bytes::from_static(b"shared"));
        view_a.put(chunk.clone());
        assert_eq!(view_b.get(&chunk.cid()), Some(chunk), "pool is shared");
    }

    #[test]
    fn mixed_pool_of_mem_and_log_nodes() {
        // One node of the pool is a durable LogStore: chunks routed to it
        // land on disk, everything stays mutually visible.
        let dir = std::env::temp_dir().join(format!(
            "forkbase-2l-mixed-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let durable = Arc::new(LogStore::open(&dir).expect("open"));
        let nodes: Vec<Arc<dyn ChunkStore>> = vec![
            Arc::new(MemStore::new()),
            durable.clone() as Arc<dyn ChunkStore>,
        ];
        let store = TwoLayerStore::new(nodes[0].clone(), nodes.clone());
        let mut cids = Vec::new();
        for i in 0..100u32 {
            let c = Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec());
            cids.push(c.cid());
            store.put(c);
        }
        for cid in &cids {
            assert!(store.get(cid).is_some());
        }
        assert!(
            durable.stats().stored_chunks > 20,
            "the durable node holds its share"
        );
        drop(store);
        drop(nodes);
        drop(durable);
        std::fs::remove_dir_all(dir).ok();
    }
}
