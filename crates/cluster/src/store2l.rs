//! The servlet-side chunk store implementing layer 2 of the partitioning
//! scheme: meta chunks pinned to the local node, data chunks routed by
//! cid across the whole pool, and a servlet-local cache for the chunks
//! fetched from *remote* nodes — "each servlet may cache the frequently
//! accessed remote chunks" (§4.6).
//!
//! The pool entries are [`ChunkService`] endpoints, not concrete stores:
//! the same view runs over the in-process transport
//! ([`StoreService`](crate::service::StoreService)) or over TCP
//! ([`TcpChunkClient`](crate::net::TcpChunkClient)). A remote node that
//! cannot be reached is *not* reported as "chunk absent" silently — the
//! failure is counted in this view's `StoreStats::io_errors` (mirroring
//! the durable [`LogStore`](forkbase_chunk::LogStore)'s read-failure
//! contract) so [`Cluster::node_stats`](crate::Cluster::node_stats) makes
//! a degraded peer visible.

use crate::service::ChunkService;
use forkbase_chunk::{
    CacheConfig, Chunk, ChunkCache, ChunkStore, ChunkType, PutOutcome, StoreStats,
};
use forkbase_crypto::Digest;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A view over the cluster-wide chunk pool from one servlet, addressed
/// through the transport-agnostic [`ChunkService`] API.
pub struct TwoLayerStore {
    /// This servlet's co-located storage (meta chunks live here).
    local: Arc<dyn ChunkStore>,
    /// Every node's service endpoint, indexable by cid hash. Entry
    /// `local_idx` serves `local` directly — a servlet never pays the
    /// wire to reach its own storage.
    pool: Vec<Arc<dyn ChunkService>>,
    /// Which pool entry is this servlet's own node (cache decisions need
    /// to know whether a routed chunk is remote).
    local_idx: usize,
    /// Sharded cache over chunks fetched from remote nodes. Local chunks
    /// are never cached — they are already one local read away.
    remote_cache: Option<ChunkCache>,
    /// Transport/service failures observed by this view. Folded into
    /// `stats().io_errors`.
    io_errors: AtomicU64,
}

impl TwoLayerStore {
    /// A view with `local` as the co-located storage (which pool entry
    /// `local_idx` must serve) and the default remote-chunk cache.
    pub fn new(
        local: Arc<dyn ChunkStore>,
        pool: Vec<Arc<dyn ChunkService>>,
        local_idx: usize,
    ) -> TwoLayerStore {
        Self::with_cache(local, pool, local_idx, CacheConfig::default())
    }

    /// A view with explicit remote-cache sizing
    /// ([`CacheConfig::disabled`] turns caching off).
    pub fn with_cache(
        local: Arc<dyn ChunkStore>,
        pool: Vec<Arc<dyn ChunkService>>,
        local_idx: usize,
        cache: CacheConfig,
    ) -> TwoLayerStore {
        assert!(!pool.is_empty());
        assert!(local_idx < pool.len(), "local_idx must index the pool");
        TwoLayerStore {
            local,
            pool,
            local_idx,
            remote_cache: cache.enabled.then(|| ChunkCache::new(&cache)),
            io_errors: AtomicU64::new(0),
        }
    }

    fn node_of(&self, cid: &Digest) -> usize {
        (cid.prefix_u64() % self.pool.len() as u64) as usize
    }

    fn is_remote(&self, node: usize) -> bool {
        self.local_idx != node
    }

    fn record_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// (hits, misses) of the remote-chunk cache, if enabled.
    pub fn remote_cache_stats(&self) -> Option<(u64, u64)> {
        self.remote_cache.as_ref().map(|c| c.hit_miss())
    }

    /// Drop every cached remote chunk (the nodes are unaffected).
    pub fn clear_remote_cache(&self) {
        if let Some(cache) = &self.remote_cache {
            cache.clear();
        }
    }

    /// Transport/service failures this view has observed — reads that
    /// answered "absent" and puts that fell back to the local store
    /// (also folded into `stats().io_errors`).
    pub fn transport_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Fetch from the owning node, filling the remote cache when the
    /// owner is not this servlet's node. A transport failure counts as
    /// an io_error and reads as absent, like a failed durable read.
    fn fetch_routed(&self, cid: &Digest) -> Option<Chunk> {
        let node = self.node_of(cid);
        let chunk = match self.pool[node].get(cid) {
            Ok(found) => found?,
            Err(_) => {
                self.record_io_error();
                return None;
            }
        };
        if self.is_remote(node) {
            if let Some(cache) = &self.remote_cache {
                cache.insert(chunk.clone());
            }
        }
        Some(chunk)
    }
}

impl ChunkStore for TwoLayerStore {
    fn get(&self, cid: &Digest) -> Option<Chunk> {
        // Meta chunks are local; data chunks live at their cid's node.
        // Local-first covers both without knowing the type up front.
        if let Some(chunk) = self.local.get(cid) {
            return Some(chunk);
        }
        if let Some(cache) = &self.remote_cache {
            if let Some(chunk) = cache.get(cid) {
                return Some(chunk);
            }
        }
        self.fetch_routed(cid)
    }

    /// Batched get: local probes first, then the remote cache, then one
    /// [`get_many`](ChunkService::get_many) per owning node for whatever
    /// is left — over TCP that is one request/response frame per node,
    /// however many cids the batch carries.
    fn get_many(&self, cids: &[Digest]) -> Vec<Option<Chunk>> {
        let mut out: Vec<Option<Chunk>> = Vec::with_capacity(cids.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, cid) in cids.iter().enumerate() {
            let found = self
                .local
                .get(cid)
                .or_else(|| self.remote_cache.as_ref().and_then(|cache| cache.get(cid)));
            if found.is_none() {
                missing.push(i);
            }
            out.push(found);
        }
        // Group the leftovers by owning node: one batched call each.
        let mut by_node: Vec<Vec<usize>> = vec![Vec::new(); self.pool.len()];
        for &i in &missing {
            by_node[self.node_of(&cids[i])].push(i);
        }
        for (node, slots) in by_node.into_iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let node_cids: Vec<Digest> = slots.iter().map(|&i| cids[i]).collect();
            let fetched = match self.pool[node].get_many(&node_cids) {
                Ok(fetched) if fetched.len() == node_cids.len() => fetched,
                _ => {
                    self.record_io_error();
                    continue; // the slots stay None
                }
            };
            for (slot, chunk) in slots.into_iter().zip(fetched) {
                if let Some(chunk) = &chunk {
                    if self.is_remote(node) {
                        if let Some(cache) = &self.remote_cache {
                            cache.insert(chunk.clone());
                        }
                    }
                }
                out[slot] = chunk;
            }
        }
        out
    }

    fn put(&self, chunk: Chunk) -> PutOutcome {
        if chunk.ty() == ChunkType::Meta {
            return self.local.put(chunk);
        }
        let node = self.node_of(&chunk.cid());
        match self.pool[node].put(chunk.clone()) {
            Ok(outcome) => {
                // Write-through for remote-routed chunks: this servlet
                // just built them, so it is the likeliest next reader.
                if self.is_remote(node) {
                    if let Some(cache) = &self.remote_cache {
                        cache.insert(chunk);
                    }
                }
                outcome
            }
            Err(_) => {
                // The owning node is unreachable. Acking Stored with the
                // chunk held only in the evictable cache would turn a
                // transient blip into silent data loss — so the chunk
                // falls back into the local store (content-addressed:
                // any node may hold it) where it stays durable and
                // readable through the local-first get path, and the
                // failure is latched in io_errors.
                self.record_io_error();
                self.local.put(chunk)
            }
        }
    }

    fn contains(&self, cid: &Digest) -> bool {
        if self.local.contains(cid)
            || self
                .remote_cache
                .as_ref()
                .is_some_and(|cache| cache.contains(cid))
        {
            return true;
        }
        // The wire has no existence-only opcode, so this pays a full
        // fetch — route it through fetch_routed so the chunk lands in
        // the remote cache and a following get doesn't pay it again.
        self.fetch_routed(cid).is_some()
    }

    fn stats(&self) -> StoreStats {
        // The servlet's view: its local storage (pool-wide stats are the
        // cluster's to aggregate), plus this view's remote-cache tier
        // and transport failures. Only the cache_*/io_error fields are
        // added: every view-level get was already counted by the local
        // probe, so folding cache hits into `gets`/`get_hits` (what
        // `fold_stats` does for a cache layered in front of one store)
        // would double-count requests.
        let mut stats = self.local.stats();
        if let Some(cache) = &self.remote_cache {
            let (hits, misses) = cache.hit_miss();
            stats.cache_hits += hits;
            stats.cache_misses += misses;
            stats.cache_evictions += cache.evictions();
        }
        stats.io_errors += self.io_errors.load(Ordering::Relaxed);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::StoreService;
    use bytes::Bytes;
    use forkbase_chunk::{LogStore, MemStore};

    fn stores(n: usize) -> Vec<Arc<dyn ChunkStore>> {
        (0..n)
            .map(|_| Arc::new(MemStore::new()) as Arc<dyn ChunkStore>)
            .collect()
    }

    fn services(stores: &[Arc<dyn ChunkStore>]) -> Vec<Arc<dyn ChunkService>> {
        stores
            .iter()
            .map(|s| Arc::new(StoreService::new(s.clone())) as Arc<dyn ChunkService>)
            .collect()
    }

    fn view(stores: &[Arc<dyn ChunkStore>], local_idx: usize) -> TwoLayerStore {
        TwoLayerStore::new(stores[local_idx].clone(), services(stores), local_idx)
    }

    #[test]
    fn meta_chunks_stay_local() {
        let nodes = stores(4);
        let store = view(&nodes, 1);
        let meta = Chunk::new(ChunkType::Meta, Bytes::from_static(b"an fobject"));
        store.put(meta.clone());
        assert!(nodes[1].contains(&meta.cid()), "meta pinned to local node");
        assert_eq!(store.get(&meta.cid()), Some(meta));
    }

    #[test]
    fn data_chunks_route_by_cid() {
        let nodes = stores(4);
        let store = view(&nodes, 0);
        for i in 0..400u32 {
            store.put(Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec()));
        }
        let counts: Vec<u64> = nodes.iter().map(|n| n.stats().stored_chunks).collect();
        // node 0 also holds nothing extra (no meta written); all spread.
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 400);
        for c in &counts {
            assert!(*c > 50, "each node holds a share: {counts:?}");
        }
    }

    #[test]
    fn chunks_visible_from_any_servlet_view() {
        let nodes = stores(3);
        let view_a = view(&nodes, 0);
        let view_b = view(&nodes, 2);
        let chunk = Chunk::new(ChunkType::Map, Bytes::from_static(b"shared"));
        view_a.put(chunk.clone());
        assert_eq!(view_b.get(&chunk.cid()), Some(chunk), "pool is shared");
    }

    #[test]
    fn remote_chunks_cached_after_first_fetch() {
        let nodes = stores(4);
        let store = view(&nodes, 0);
        // Find a chunk that routes to a *remote* node.
        let chunk = (0u32..)
            .map(|i| Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec()))
            .find(|c| (c.cid().prefix_u64() % 4) != 0)
            .expect("remote-routed chunk");
        let owner = (chunk.cid().prefix_u64() % 4) as usize;
        // Insert via the owner directly (another servlet wrote it), so
        // this view's first read is a genuine remote fetch.
        nodes[owner].put(chunk.clone());

        let gets_before = nodes[owner].stats().gets;
        assert_eq!(store.get(&chunk.cid()), Some(chunk.clone()));
        assert_eq!(store.get(&chunk.cid()), Some(chunk.clone()));
        assert_eq!(store.get(&chunk.cid()), Some(chunk));
        assert_eq!(
            nodes[owner].stats().gets,
            gets_before + 1,
            "only the first read crossed to the remote node"
        );
        let (hits, _misses) = store.remote_cache_stats().expect("cache on");
        assert_eq!(hits, 2);
        // The cache tier shows up in the servlet-view stats — without
        // inflating the request counters (each of the 3 view gets was
        // already counted once by the local-store probe).
        let stats = store.stats();
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.gets, 3, "no double-counted get requests");
    }

    #[test]
    fn local_chunks_are_never_cached() {
        let nodes = stores(2);
        let store = view(&nodes, 1);
        let chunk = (0u32..)
            .map(|i| Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec()))
            .find(|c| (c.cid().prefix_u64() % 2) == 1)
            .expect("locally-routed chunk");
        store.put(chunk.clone());
        assert_eq!(store.get(&chunk.cid()), Some(chunk));
        let (hits, _) = store.remote_cache_stats().expect("cache on");
        assert_eq!(hits, 0, "local reads bypass the remote cache");
    }

    #[test]
    fn get_many_equals_sequential_gets() {
        let nodes = stores(3);
        let store = view(&nodes, 0);
        let uncached = TwoLayerStore::with_cache(
            nodes[0].clone(),
            services(&nodes),
            0,
            CacheConfig::disabled(),
        );
        let mut cids = Vec::new();
        for i in 0..60u32 {
            let c = Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec());
            cids.push(c.cid());
            store.put(c);
        }
        let meta = Chunk::new(ChunkType::Meta, Bytes::from_static(b"local meta"));
        cids.push(meta.cid());
        store.put(meta);
        cids.push(Chunk::new(ChunkType::Blob, Bytes::from_static(b"absent")).cid());

        let batched = store.get_many(&cids);
        let sequential: Vec<_> = cids.iter().map(|c| uncached.get(c)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(batched.iter().filter(|c| c.is_none()).count(), 1);
    }

    #[test]
    fn mixed_pool_of_mem_and_log_nodes() {
        // One node of the pool is a durable LogStore: chunks routed to it
        // land on disk, everything stays mutually visible.
        let dir = std::env::temp_dir().join(format!(
            "forkbase-2l-mixed-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let durable = Arc::new(LogStore::open(&dir).expect("open"));
        let nodes: Vec<Arc<dyn ChunkStore>> = vec![
            Arc::new(MemStore::new()),
            durable.clone() as Arc<dyn ChunkStore>,
        ];
        let store = view(&nodes, 0);
        let mut cids = Vec::new();
        for i in 0..100u32 {
            let c = Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec());
            cids.push(c.cid());
            store.put(c);
        }
        for cid in &cids {
            assert!(store.get(cid).is_some());
        }
        assert!(
            durable.stats().stored_chunks > 20,
            "the durable node holds its share"
        );
        drop(store);
        drop(nodes);
        drop(durable);
        std::fs::remove_dir_all(dir).ok();
    }

    /// A service that always fails — the "node unreachable" case.
    struct DeadService;
    impl ChunkService for DeadService {
        fn get(&self, _: &Digest) -> forkbase_core::Result<Option<Chunk>> {
            Err(forkbase_core::FbError::Io("node down".into()))
        }
        fn put(&self, _: Chunk) -> forkbase_core::Result<PutOutcome> {
            Err(forkbase_core::FbError::Io("node down".into()))
        }
        fn stats(&self) -> forkbase_core::Result<StoreStats> {
            Err(forkbase_core::FbError::Io("node down".into()))
        }
    }

    #[test]
    fn dead_node_counts_io_errors_instead_of_lying() {
        let nodes = stores(2);
        let mut pool = services(&nodes);
        pool[1] = Arc::new(DeadService);
        let store = TwoLayerStore::new(nodes[0].clone(), pool, 0);
        // Two chunks routed to the dead node: one we put (must survive
        // the failed wire), one never written anywhere (reads absent).
        let mut routed = (0u32..)
            .map(|i| Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec()))
            .filter(|c| (c.cid().prefix_u64() % 2) == 1);
        let chunk = routed.next().expect("chunk routed to node 1");
        let absent = routed.next().expect("second chunk routed to node 1");

        // The put fails over the "wire" but must not ack a chunk that
        // exists nowhere durable: it falls back to the local store and
        // stays readable even with the cache gone.
        assert_eq!(store.put(chunk.clone()), PutOutcome::Stored);
        assert!(nodes[0].contains(&chunk.cid()), "fallback landed locally");
        store.clear_remote_cache();
        assert_eq!(store.get(&chunk.cid()), Some(chunk.clone()));
        assert!(store.contains(&chunk.cid()));
        assert_eq!(store.transport_errors(), 1, "only the failed put");

        // A chunk the pool never held: reads fail over the wire, answer
        // absent, and every failure is counted.
        assert_eq!(store.get(&absent.cid()), None);
        assert!(!store.contains(&absent.cid()));
        assert_eq!(store.transport_errors(), 3, "put + get + contains");
        assert_eq!(store.stats().io_errors, 3);
    }

    #[test]
    fn contains_fills_the_remote_cache() {
        let nodes = stores(2);
        let store = view(&nodes, 0);
        let chunk = (0u32..)
            .map(|i| Chunk::new(ChunkType::Blob, i.to_le_bytes().to_vec()))
            .find(|c| (c.cid().prefix_u64() % 2) == 1)
            .expect("remote-routed chunk");
        nodes[1].put(chunk.clone());
        assert!(store.contains(&chunk.cid()));
        // The existence check already paid the transfer; the follow-up
        // get is served from the remote cache, not the wire again.
        let gets_before = nodes[1].stats().gets;
        assert_eq!(store.get(&chunk.cid()), Some(chunk));
        assert_eq!(nodes[1].stats().gets, gets_before, "no second fetch");
    }
}
