//! The servlet-side TCP endpoint: a blocking thread-per-connection
//! server loop over any [`ChunkService`] backend.
//!
//! Each accepted connection gets one handler thread that decodes frames,
//! executes requests against the backend, and writes the response frame
//! back. Requests on one connection are served in order, but the client
//! does not wait between sends — a pipelined batch pays one round trip,
//! not one per request. Concurrency comes from connections (the client
//! pools several), matching the `Durability::Batch` flusher precedent of
//! plain background threads over an async runtime.

use super::frame::FrameDecoder;
use super::proto::{self, Request, Response};
use crate::service::ChunkService;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Shared server state: the stop latch and the live connections that
/// must be torn down on shutdown. Keyed by connection id so each
/// handler removes its own entry when the connection closes — the
/// shutdown handle is a dup'd fd, and keeping it past the connection's
/// life would leak one fd per client ever accepted.
struct Shared {
    stop: AtomicBool,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// A running chunk-service endpoint. Dropping (or [`stop`]ping) it
/// closes the listener and every open connection; in-flight requests on
/// a dying connection surface as I/O errors at the client.
///
/// [`stop`]: ChunkServer::stop
pub struct ChunkServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChunkServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `backend` until [`stop`](Self::stop)/drop.
    pub fn bind(addr: &str, backend: Arc<dyn ChunkService>) -> std::io::Result<ChunkServer> {
        Self::start(TcpListener::bind(addr)?, backend)
    }

    /// Serve `backend` on an already-bound listener.
    pub fn start(
        listener: TcpListener,
        backend: Arc<dyn ChunkService>,
    ) -> std::io::Result<ChunkServer> {
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("fb-chunk-server-{}", addr.port()))
            .spawn(move || accept_loop(listener, backend, accept_shared))?;
        Ok(ChunkServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the real port when bound with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every open connection, and join the accept
    /// loop. Idempotent.
    pub fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection; the loop
        // re-checks the latch first thing.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in self.shared.conns.lock().expect("conns lock").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChunkServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, backend: Arc<dyn ChunkService>, shared: Arc<Shared>) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let id = next_id;
        next_id += 1;
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").insert(id, clone);
        }
        let backend = Arc::clone(&backend);
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("fb-chunk-conn".into())
            .spawn(move || {
                let _ = serve_conn(stream, &*backend);
                // The connection is done: drop its shutdown handle too,
                // closing the dup'd fd.
                conn_shared.conns.lock().expect("conns lock").remove(&id);
            });
    }
    // Handler threads exit on their own when their stream is shut down
    // (stop()) or the peer disconnects.
}

/// Execute one request against the backend.
fn execute(backend: &dyn ChunkService, req: Request) -> Response {
    let executed = match req {
        Request::Get(cid) => backend.get(&cid).map(Response::Get),
        Request::GetMany(cids) => backend.get_many(&cids).map(Response::GetMany),
        Request::Put(chunk) => backend.put(chunk).map(Response::Put),
        Request::PutMany(chunks) => backend.put_many(chunks).map(Response::PutMany),
        Request::Stats => backend.stats().map(Response::Stats),
    };
    executed.unwrap_or_else(|e| Response::Err(e.to_string()))
}

/// One connection's serve loop: read → decode → execute → respond.
/// Returns (dropping the connection) on EOF, I/O failure, or the first
/// malformed frame — after corruption the stream offset is untrusted.
fn serve_conn(mut stream: TcpStream, backend: &dyn ChunkService) -> std::io::Result<()> {
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // clean EOF
        }
        decoder.feed(&buf[..n]);
        while let Some(frame) = decoder
            .next_frame()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            let Some((req_id, req)) = proto::decode_request(frame.opcode, &frame.payload) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "malformed request payload",
                ));
            };
            let resp = execute(backend, req);
            stream.write_all(&proto::encode_response(req_id, &resp))?;
        }
    }
}
