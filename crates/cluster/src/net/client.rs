//! The client side of the cluster wire: a [`ChunkService`] over pooled,
//! pipelined TCP connections.
//!
//! Each client owns a small pool of sockets to one peer. A request
//! picks a socket round-robin, registers a waiter under a fresh request
//! id, writes its frame, and blocks on the response channel — so many
//! threads share one socket with their requests in flight
//! simultaneously, and a `get_many` batch is one frame each way no
//! matter how many cids it carries. One reader thread per socket
//! dispatches responses back to waiters by request id.
//!
//! Connections are dialed lazily and re-dialed on the next request
//! after a failure: a killed peer surfaces as
//! [`FbError::Io`] on every in-flight
//! request (the reader thread drops their channels — nothing hangs),
//! and a restarted peer is picked up transparently.

use super::frame::FrameDecoder;
use super::proto::{self, Request, Response};
use crate::service::ChunkService;
use forkbase_chunk::{Chunk, PutOutcome, StoreStats};
use forkbase_core::{FbError, Result};
use forkbase_crypto::Digest;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Tuning for the TCP transport.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Sockets per peer. Requests round-robin across them; each socket
    /// carries many in-flight requests (pipelining), so a handful go a
    /// long way.
    pub connections: usize,
    /// Dial timeout for one connection attempt.
    pub connect_timeout: Duration,
    /// Upper bound on waiting for one response. Connection loss is
    /// detected eagerly by the reader thread; this is the safety net for
    /// a peer that accepted the request and then wedged.
    pub response_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            connections: 4,
            connect_timeout: Duration::from_secs(5),
            response_timeout: Duration::from_secs(30),
        }
    }
}

/// Waiters keyed by request id; the reader thread completes them.
///
/// One map per connection *generation*, shared between that generation's
/// `Live` state and its reader thread — tearing down generation N can
/// only ever drop waiters registered against generation N, never those
/// of a re-dialed replacement.
type Pending = Mutex<HashMap<u64, mpsc::Sender<Response>>>;

/// An established connection. Present while believed healthy; cleared
/// (by writer or reader, whoever sees the failure first) so the next
/// request re-dials.
struct Live {
    stream: TcpStream,
    generation: u64,
    pending: Arc<Pending>,
}

/// One pooled connection slot.
struct Conn {
    state: Mutex<Option<Live>>,
    generations: AtomicU64,
}

impl Conn {
    fn new() -> Arc<Conn> {
        Arc::new(Conn {
            state: Mutex::new(None),
            generations: AtomicU64::new(0),
        })
    }

    /// Tear down the live connection of generation `gen` (no-op if a
    /// newer one replaced it) and fail every waiter registered against
    /// that generation.
    fn fail(&self, gen: u64) {
        let pending = {
            let mut state = self.state.lock().expect("conn state lock");
            match state.as_ref() {
                Some(live) if live.generation == gen => {
                    let _ = live.stream.shutdown(Shutdown::Both);
                    state.take().map(|live| live.pending)
                }
                _ => None,
            }
        };
        // Dropping the senders wakes every waiter with a recv error,
        // which the request path reports as FbError::Io.
        if let Some(pending) = pending {
            pending.lock().expect("pending lock").clear();
        }
    }

    /// Register `req_id`, then write the frame — both under the state
    /// lock, so concurrent senders interleave whole frames and a
    /// connection teardown cannot slip between registration and write.
    /// Returns the response channel and the pending map the waiter was
    /// registered in, so a timed-out waiter can deregister from the
    /// right generation.
    fn send(
        self: &Arc<Conn>,
        addr: SocketAddr,
        cfg: &TcpConfig,
        req_id: u64,
        frame: &[u8],
    ) -> Result<(mpsc::Receiver<Response>, Arc<Pending>)> {
        let mut state = self.state.lock().expect("conn state lock");
        if state.is_none() {
            let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)
                .map_err(|e| FbError::Io(format!("connect {addr}: {e}")))?;
            let _ = stream.set_nodelay(true);
            let reader_stream = stream
                .try_clone()
                .map_err(|e| FbError::Io(format!("clone socket to {addr}: {e}")))?;
            let generation = self.generations.fetch_add(1, Ordering::SeqCst) + 1;
            let pending = Arc::new(Mutex::new(HashMap::new()));
            *state = Some(Live {
                stream,
                generation,
                pending: Arc::clone(&pending),
            });
            let conn = Arc::clone(self);
            let spawned = std::thread::Builder::new()
                .name("fb-chunk-client-rx".into())
                .spawn(move || reader_loop(reader_stream, &conn, generation, &pending));
            if let Err(e) = spawned {
                // Without a reader nothing would ever dispatch responses
                // — every request on this slot would write fine and then
                // wait out the full response timeout. Tear the dial back
                // down so the next request re-dials instead.
                if let Some(live) = state.take() {
                    let _ = live.stream.shutdown(Shutdown::Both);
                }
                return Err(FbError::Io(format!("spawn reader: {e}")));
            }
        }
        let live = state.as_mut().expect("dialed above");
        let generation = live.generation;
        let pending = Arc::clone(&live.pending);
        let (tx, rx) = mpsc::channel();
        pending.lock().expect("pending lock").insert(req_id, tx);
        if let Err(e) = live.stream.write_all(frame) {
            drop(state);
            pending.lock().expect("pending lock").remove(&req_id);
            self.fail(generation);
            return Err(FbError::Io(format!("write to {addr}: {e}")));
        }
        Ok((rx, pending))
    }
}

/// Reads frames off one socket and routes them to waiters until the
/// socket dies or produces garbage, then fails the connection.
fn reader_loop(mut stream: TcpStream, conn: &Arc<Conn>, generation: u64, pending: &Arc<Pending>) {
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    let Some((req_id, resp)) = proto::decode_response(frame.opcode, &frame.payload)
                    else {
                        break 'conn; // malformed body: untrusted stream
                    };
                    // Unknown ids (waiter timed out and left) are dropped.
                    let waiter = pending.lock().expect("pending lock").remove(&req_id);
                    if let Some(tx) = waiter {
                        let _ = tx.send(resp);
                    }
                }
                Ok(None) => break,
                Err(_) => break 'conn, // framing corruption
            }
        }
    }
    conn.fail(generation);
    // If a re-dial already replaced this generation, fail() was a no-op
    // on the new state — still wake any waiters left in *this*
    // generation's map (only ours; the replacement has its own).
    pending.lock().expect("pending lock").clear();
}

/// A [`ChunkService`] talking to one remote node over TCP.
pub struct TcpChunkClient {
    addr: SocketAddr,
    cfg: TcpConfig,
    conns: Vec<Arc<Conn>>,
    next_conn: AtomicUsize,
    next_req_id: AtomicU64,
}

impl TcpChunkClient {
    /// A client for the node at `addr`. No connection is made until the
    /// first request.
    pub fn new(addr: SocketAddr, cfg: TcpConfig) -> TcpChunkClient {
        let slots = cfg.connections.max(1);
        TcpChunkClient {
            addr,
            cfg,
            conns: (0..slots).map(|_| Conn::new()).collect(),
            next_conn: AtomicUsize::new(0),
            next_req_id: AtomicU64::new(1),
        }
    }

    /// The peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One round trip: send `req` on the next pooled connection and wait
    /// for its response.
    fn request(&self, req: &Request) -> Result<Response> {
        let conn = &self.conns[self.next_conn.fetch_add(1, Ordering::Relaxed) % self.conns.len()];
        let req_id = self.next_req_id.fetch_add(1, Ordering::Relaxed);
        let frame = proto::encode_request(req_id, req);
        let (rx, pending) = conn.send(self.addr, &self.cfg, req_id, &frame)?;
        match rx.recv_timeout(self.cfg.response_timeout) {
            Ok(Response::Err(msg)) => Err(FbError::Io(format!("node {}: {msg}", self.addr))),
            Ok(resp) => Ok(resp),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(FbError::Io(format!("connection to {} lost", self.addr)))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                pending.lock().expect("pending lock").remove(&req_id);
                Err(FbError::Io(format!("request to {} timed out", self.addr)))
            }
        }
    }

    fn unexpected(&self) -> FbError {
        FbError::Io(format!("node {}: response type mismatch", self.addr))
    }

    /// A fetched chunk must hash to the cid it was requested under —
    /// the wire inherits the store's tamper evidence.
    fn verify(&self, chunk: Chunk, cid: &Digest) -> Result<Chunk> {
        if chunk.cid() == *cid {
            Ok(chunk)
        } else {
            Err(FbError::Corrupt(format!(
                "node {} returned chunk {} for requested cid {}",
                self.addr,
                chunk.cid().short_hex(),
                cid.short_hex()
            )))
        }
    }
}

impl ChunkService for TcpChunkClient {
    fn get(&self, cid: &Digest) -> Result<Option<Chunk>> {
        match self.request(&Request::Get(*cid))? {
            Response::Get(found) => found.map(|c| self.verify(c, cid)).transpose(),
            _ => Err(self.unexpected()),
        }
    }

    fn get_many(&self, cids: &[Digest]) -> Result<Vec<Option<Chunk>>> {
        match self.request(&Request::GetMany(cids.to_vec()))? {
            Response::GetMany(found) if found.len() == cids.len() => found
                .into_iter()
                .zip(cids)
                .map(|(c, cid)| c.map(|c| self.verify(c, cid)).transpose())
                .collect(),
            Response::GetMany(_) => Err(self.unexpected()),
            _ => Err(self.unexpected()),
        }
    }

    fn put(&self, chunk: Chunk) -> Result<PutOutcome> {
        match self.request(&Request::Put(chunk))? {
            Response::Put(outcome) => Ok(outcome),
            _ => Err(self.unexpected()),
        }
    }

    fn put_many(&self, chunks: Vec<Chunk>) -> Result<Vec<PutOutcome>> {
        let n = chunks.len();
        match self.request(&Request::PutMany(chunks))? {
            Response::PutMany(outcomes) if outcomes.len() == n => Ok(outcomes),
            _ => Err(self.unexpected()),
        }
    }

    fn stats(&self) -> Result<StoreStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(self.unexpected()),
        }
    }
}
