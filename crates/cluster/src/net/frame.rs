//! Length-prefixed binary framing for the cluster wire.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! [magic: u32 LE][len: u32 LE][opcode: u8][payload: len-1 bytes][checksum: u32 LE]
//! ```
//!
//! * `magic` — [`MAGIC`], rejects cross-protocol garbage immediately;
//! * `len` — byte length of `opcode + payload`, bounded by
//!   [`MAX_BODY_LEN`] so a corrupt length cannot make the decoder buffer
//!   gigabytes;
//! * `checksum` — FNV-1a over `opcode + payload`, folded to 32 bits. It
//!   guards the *framing* (torn writes, bit flips on the wire); chunk
//!   payloads are additionally content-verified end to end, because
//!   decoding a [`Chunk`](forkbase_chunk::Chunk) recomputes its cid.
//!
//! Decoding is incremental and torn-read safe: [`FrameDecoder`] is fed
//! whatever the socket produced — any split, down to one byte at a time
//! — and yields a frame only once every byte of it has arrived. A
//! partial frame is never misparsed, mirroring the LogStore's torn-tail
//! guarantees on disk.

use bytes::Bytes;

/// Frame magic: `FBW1` (ForkBase wire, version 1).
pub const MAGIC: u32 = u32::from_le_bytes(*b"FBW1");

/// Upper bound on `opcode + payload` length. Large enough for a
/// `put_many` of thousands of 64 KB-scale chunks, small enough that a
/// corrupted length field fails fast instead of allocating the moon.
pub const MAX_BODY_LEN: usize = 256 << 20;

/// Bytes of framing around the body: magic + len + checksum.
pub const FRAME_OVERHEAD: usize = 4 + 4 + 4;

/// A decoded frame: opcode plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant (see [`super::proto`]).
    pub opcode: u8,
    /// Opcode-specific payload.
    pub payload: Bytes,
}

/// Framing-level decode failure. Fatal for the connection that produced
/// it: after corruption the stream offset can no longer be trusted, so
/// both sides drop the socket rather than resynchronize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The magic word did not match [`MAGIC`].
    BadMagic(u32),
    /// The length field was zero or exceeded [`MAX_BODY_LEN`].
    BadLength(u32),
    /// The body checksum did not match the header's.
    BadChecksum {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum of the received body.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::BadLength(l) => write!(f, "bad frame length {l}"),
            FrameError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#010x}, body {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a (64-bit, folded to 32) over the frame body.
pub fn checksum(opcode: u8, payload: &[u8]) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    h = (h ^ u64::from(opcode)).wrapping_mul(PRIME);
    for &b in payload {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    (h ^ (h >> 32)) as u32
}

/// Encode one frame into a fresh buffer.
pub fn encode(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let body_len = 1 + payload.len();
    assert!(body_len <= MAX_BODY_LEN, "frame body over MAX_BODY_LEN");
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + body_len);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(opcode, payload).to_le_bytes());
    out
}

/// Incremental frame decoder over an arbitrarily-split byte stream.
///
/// Feed it socket reads with [`feed`](Self::feed); drain complete frames
/// with [`next_frame`](Self::next_frame). Bytes of an incomplete frame are buffered
/// until the rest arrives — `next_frame` returns `Ok(None)` in the meantime
/// and never consumes a partial frame.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read offset into `buf`; consumed bytes are reclaimed lazily.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append freshly-received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to one frame.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 8 {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let body_len = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes"));
        if body_len == 0 || body_len as usize > MAX_BODY_LEN {
            return Err(FrameError::BadLength(body_len));
        }
        let total = 8 + body_len as usize + 4;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[8..8 + body_len as usize];
        let (opcode, payload) = (body[0], &body[1..]);
        let expected = u32::from_le_bytes(
            avail[8 + body_len as usize..total]
                .try_into()
                .expect("4 bytes"),
        );
        let actual = checksum(opcode, payload);
        if expected != actual {
            return Err(FrameError::BadChecksum { expected, actual });
        }
        let payload = Bytes::copy_from_slice(payload);
        self.pos += total;
        Ok(Some(Frame { opcode, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut dec = FrameDecoder::new();
        dec.feed(&encode(7, b"hello frame"));
        let frame = dec.next_frame().expect("valid").expect("complete");
        assert_eq!(frame.opcode, 7);
        assert_eq!(&frame.payload[..], b"hello frame");
        assert_eq!(dec.next_frame().expect("valid"), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_payload_frame() {
        let mut dec = FrameDecoder::new();
        dec.feed(&encode(1, b""));
        let frame = dec.next_frame().expect("valid").expect("complete");
        assert_eq!(frame.opcode, 1);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn back_to_back_frames_in_one_feed() {
        let mut bytes = encode(1, b"first");
        bytes.extend_from_slice(&encode(2, b"second"));
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap().unwrap().opcode, 1);
        assert_eq!(dec.next_frame().unwrap().unwrap().opcode, 2);
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(1, b"x");
        bytes[0] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn oversize_length_rejected() {
        let mut bytes = encode(1, b"x");
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadLength(_))));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = encode(3, b"sensitive payload");
        bytes[10] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadChecksum { .. })
        ));
    }
}
