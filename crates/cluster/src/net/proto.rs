//! Request/response messages carried by the frame layer.
//!
//! Every payload begins with a little-endian `u64` request id. The
//! client allocates ids and matches responses back to waiters, so one
//! socket can carry many in-flight requests (pipelining); the server
//! echoes the id verbatim. Response opcodes are the request opcode with
//! the high bit set, plus [`OP_ERR`] for server-side failures.
//!
//! Chunks travel in their canonical on-wire form
//! ([`Chunk::encode`]: `[type: u8][payload…]`) and are re-hashed on
//! decode, so a fetched chunk is verified against the requested cid end
//! to end — the wire inherits the storage layer's tamper evidence
//! (§4.4) rather than trusting the frame checksum alone.

use forkbase_chunk::{Chunk, PutOutcome, StoreStats};
use forkbase_crypto::Digest;

/// Fetch one chunk.
pub const OP_GET: u8 = 0x01;
/// Fetch a batch of chunks.
pub const OP_GET_MANY: u8 = 0x02;
/// Store one chunk.
pub const OP_PUT: u8 = 0x03;
/// Store a batch of chunks.
pub const OP_PUT_MANY: u8 = 0x04;
/// Node statistics snapshot.
pub const OP_STATS: u8 = 0x05;
/// Response bit: `request opcode | OP_RESP` answers that request.
pub const OP_RESP: u8 = 0x80;
/// Server-side failure response (payload: request id + UTF-8 message).
pub const OP_ERR: u8 = 0xFF;

/// A decoded request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Fetch one chunk by cid.
    Get(Digest),
    /// Fetch many chunks; the response answers positionally.
    GetMany(Vec<Digest>),
    /// Store one chunk.
    Put(Chunk),
    /// Store many chunks; the response answers positionally.
    PutMany(Vec<Chunk>),
    /// Snapshot the node's [`StoreStats`].
    Stats,
}

/// A decoded response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Get`].
    Get(Option<Chunk>),
    /// Answer to [`Request::GetMany`].
    GetMany(Vec<Option<Chunk>>),
    /// Answer to [`Request::Put`].
    Put(PutOutcome),
    /// Answer to [`Request::PutMany`].
    PutMany(Vec<PutOutcome>),
    /// Answer to [`Request::Stats`].
    Stats(StoreStats),
    /// The server failed to execute the request.
    Err(String),
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&u32::try_from(v).expect("count fits u32").to_le_bytes());
}

/// Sequential reader over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn digest(&mut self) -> Option<Digest> {
        Digest::from_slice(self.take(Digest::LEN)?)
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn outcome_byte(outcome: PutOutcome) -> u8 {
    match outcome {
        PutOutcome::Stored => 0,
        PutOutcome::Deduplicated => 1,
    }
}

fn outcome_from(byte: u8) -> Option<PutOutcome> {
    match byte {
        0 => Some(PutOutcome::Stored),
        1 => Some(PutOutcome::Deduplicated),
        _ => None,
    }
}

/// The request id of any payload (request or response) — what the
/// client's reader uses to route a response to its waiter without
/// decoding the body.
pub fn peek_req_id(payload: &[u8]) -> Option<u64> {
    Cursor::new(payload).u64()
}

/// Encode a request as a complete frame.
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    p.extend_from_slice(&req_id.to_le_bytes());
    let opcode = match req {
        Request::Get(cid) => {
            p.extend_from_slice(cid.as_bytes());
            OP_GET
        }
        Request::GetMany(cids) => {
            put_u32(&mut p, cids.len());
            for cid in cids {
                p.extend_from_slice(cid.as_bytes());
            }
            OP_GET_MANY
        }
        Request::Put(chunk) => {
            p.extend_from_slice(&chunk.encode());
            OP_PUT
        }
        Request::PutMany(chunks) => {
            put_u32(&mut p, chunks.len());
            for chunk in chunks {
                let encoded = chunk.encode();
                put_u32(&mut p, encoded.len());
                p.extend_from_slice(&encoded);
            }
            OP_PUT_MANY
        }
        Request::Stats => OP_STATS,
    };
    super::frame::encode(opcode, &p)
}

/// Decode a request frame body. `None` on any malformed payload — the
/// server drops the connection rather than guess.
pub fn decode_request(opcode: u8, payload: &[u8]) -> Option<(u64, Request)> {
    let mut c = Cursor::new(payload);
    let req_id = c.u64()?;
    let req = match opcode {
        OP_GET => Request::Get(c.digest()?),
        OP_GET_MANY => {
            let n = c.u32()? as usize;
            let mut cids = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                cids.push(c.digest()?);
            }
            Request::GetMany(cids)
        }
        OP_PUT => Request::Put(Chunk::decode(c.rest())?),
        OP_PUT_MANY => {
            let n = c.u32()? as usize;
            let mut chunks = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let len = c.u32()? as usize;
                chunks.push(Chunk::decode(c.take(len)?)?);
            }
            Request::PutMany(chunks)
        }
        OP_STATS => Request::Stats,
        _ => return None,
    };
    c.done().then_some((req_id, req))
}

/// Encode a response as a complete frame.
pub fn encode_response(req_id: u64, resp: &Response) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    p.extend_from_slice(&req_id.to_le_bytes());
    let opcode = match resp {
        Response::Get(chunk) => {
            match chunk {
                Some(chunk) => {
                    p.push(1);
                    p.extend_from_slice(&chunk.encode());
                }
                None => p.push(0),
            }
            OP_GET | OP_RESP
        }
        Response::GetMany(chunks) => {
            put_u32(&mut p, chunks.len());
            for chunk in chunks {
                match chunk {
                    Some(chunk) => {
                        p.push(1);
                        let encoded = chunk.encode();
                        put_u32(&mut p, encoded.len());
                        p.extend_from_slice(&encoded);
                    }
                    None => p.push(0),
                }
            }
            OP_GET_MANY | OP_RESP
        }
        Response::Put(outcome) => {
            p.push(outcome_byte(*outcome));
            OP_PUT | OP_RESP
        }
        Response::PutMany(outcomes) => {
            put_u32(&mut p, outcomes.len());
            p.extend(outcomes.iter().map(|o| outcome_byte(*o)));
            OP_PUT_MANY | OP_RESP
        }
        Response::Stats(stats) => {
            p.extend_from_slice(&stats.to_wire());
            OP_STATS | OP_RESP
        }
        Response::Err(msg) => {
            p.extend_from_slice(msg.as_bytes());
            OP_ERR
        }
    };
    super::frame::encode(opcode, &p)
}

/// Decode a response frame body. `None` on any malformed payload.
pub fn decode_response(opcode: u8, payload: &[u8]) -> Option<(u64, Response)> {
    let mut c = Cursor::new(payload);
    let req_id = c.u64()?;
    let resp = match opcode {
        o if o == OP_GET | OP_RESP => Response::Get(match c.u8()? {
            0 => None,
            1 => Some(Chunk::decode(c.rest())?),
            _ => return None,
        }),
        o if o == OP_GET_MANY | OP_RESP => {
            let n = c.u32()? as usize;
            let mut chunks = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                chunks.push(match c.u8()? {
                    0 => None,
                    1 => {
                        let len = c.u32()? as usize;
                        Some(Chunk::decode(c.take(len)?)?)
                    }
                    _ => return None,
                });
            }
            Response::GetMany(chunks)
        }
        o if o == OP_PUT | OP_RESP => Response::Put(outcome_from(c.u8()?)?),
        o if o == OP_PUT_MANY | OP_RESP => {
            let n = c.u32()? as usize;
            let mut outcomes = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                outcomes.push(outcome_from(c.u8()?)?);
            }
            Response::PutMany(outcomes)
        }
        o if o == OP_STATS | OP_RESP => Response::Stats(StoreStats::from_wire(c.rest())?),
        OP_ERR => Response::Err(String::from_utf8_lossy(c.rest()).into_owned()),
        _ => return None,
    };
    c.done().then_some((req_id, resp))
}

#[cfg(test)]
mod tests {
    use super::super::frame::FrameDecoder;
    use super::*;
    use forkbase_chunk::ChunkType;

    fn round_trip_request(req: Request) -> (u64, Request) {
        let bytes = encode_request(77, &req);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let frame = dec.next_frame().expect("valid").expect("complete");
        decode_request(frame.opcode, &frame.payload).expect("decodes")
    }

    fn round_trip_response(resp: Response) -> (u64, Response) {
        let bytes = encode_response(98, &resp);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let frame = dec.next_frame().expect("valid").expect("complete");
        decode_response(frame.opcode, &frame.payload).expect("decodes")
    }

    #[test]
    fn requests_round_trip() {
        let a = Chunk::new(ChunkType::Blob, &b"aaa"[..]);
        let b = Chunk::new(ChunkType::Map, &b"bbb"[..]);
        for req in [
            Request::Get(a.cid()),
            Request::GetMany(vec![a.cid(), b.cid()]),
            Request::GetMany(vec![]),
            Request::Put(a.clone()),
            Request::PutMany(vec![a.clone(), b.clone()]),
            Request::PutMany(vec![]),
            Request::Stats,
        ] {
            let (id, back) = round_trip_request(req.clone());
            assert_eq!(id, 77);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let a = Chunk::new(ChunkType::Blob, &b"aaa"[..]);
        let stats = StoreStats {
            stored_chunks: 3,
            io_errors: 9,
            cache_hits: 12,
            ..StoreStats::default()
        };
        for resp in [
            Response::Get(Some(a.clone())),
            Response::Get(None),
            Response::GetMany(vec![Some(a.clone()), None, Some(a.clone())]),
            Response::GetMany(vec![]),
            Response::Put(PutOutcome::Stored),
            Response::Put(PutOutcome::Deduplicated),
            Response::PutMany(vec![PutOutcome::Stored, PutOutcome::Deduplicated]),
            Response::Stats(stats),
            Response::Err("node on fire".into()),
        ] {
            let (id, back) = round_trip_response(resp.clone());
            assert_eq!(id, 98);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn peek_matches_decoded_id() {
        let bytes = encode_request(0xDEAD_BEEF_0123, &Request::Stats);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(peek_req_id(&frame.payload), Some(0xDEAD_BEEF_0123));
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let a = Chunk::new(ChunkType::Blob, &b"aaa"[..]);
        let bytes = encode_request(5, &Request::Get(a.cid()));
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        // Truncated: drop the last payload byte.
        assert_eq!(
            decode_request(frame.opcode, &frame.payload[..frame.payload.len() - 1]),
            None
        );
        // Trailing garbage after a well-formed body.
        let mut long = frame.payload.to_vec();
        long.push(0);
        assert_eq!(decode_request(frame.opcode, &long), None);
        // Unknown opcode.
        assert_eq!(decode_request(0x7E, &frame.payload), None);
    }
}
