//! The cluster's network transport: the [`ChunkService`] API over TCP.
//!
//! Three layers, each testable on its own:
//!
//! * [`frame`] — length-prefixed binary frames
//!   (`[magic][len][opcode][payload][checksum]`) with an incremental,
//!   torn-read-safe [`FrameDecoder`];
//! * [`proto`] — request/response messages (get / get_many / put /
//!   put_many / stats), every payload led by a client-chosen request id
//!   so responses can be matched out of wait-order;
//! * [`server`] / [`client`] — a blocking thread-per-connection
//!   [`ChunkServer`] on the servlet side, and a [`TcpChunkClient`] with
//!   connection pooling and pipelined request/response on the caller
//!   side.
//!
//! The in-process transport
//! ([`StoreService`](crate::service::StoreService)) remains the test
//! and single-machine path; the transport-equivalence suite holds the
//! two to identical behavior on identical request schedules.
//!
//! [`ChunkService`]: crate::service::ChunkService
//! [`FrameDecoder`]: frame::FrameDecoder
//! [`ChunkServer`]: server::ChunkServer
//! [`TcpChunkClient`]: client::TcpChunkClient

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{TcpChunkClient, TcpConfig};
pub use frame::{Frame, FrameDecoder, FrameError};
pub use server::ChunkServer;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ChunkService, StoreService};
    use forkbase_chunk::{Chunk, ChunkStore, ChunkType, MemStore, PutOutcome};
    use std::sync::Arc;

    fn loopback_pair() -> (ChunkServer, TcpChunkClient, Arc<MemStore>) {
        let store = Arc::new(MemStore::new());
        let backend = Arc::new(StoreService::new(store.clone() as Arc<dyn ChunkStore>));
        let server = ChunkServer::bind("127.0.0.1:0", backend).expect("bind");
        let client = TcpChunkClient::new(server.addr(), TcpConfig::default());
        (server, client, store)
    }

    #[test]
    fn round_trip_over_loopback() {
        let (_server, client, store) = loopback_pair();
        let chunk = Chunk::new(ChunkType::Blob, &b"over the wire"[..]);
        assert_eq!(client.put(chunk.clone()).expect("put"), PutOutcome::Stored);
        assert_eq!(
            client.put(chunk.clone()).expect("dedup put"),
            PutOutcome::Deduplicated
        );
        assert_eq!(client.get(&chunk.cid()).expect("get"), Some(chunk.clone()));
        let absent = Chunk::new(ChunkType::Blob, &b"absent"[..]).cid();
        assert_eq!(client.get(&absent).expect("absent get"), None);
        assert_eq!(store.stats().stored_chunks, 1);
        // Stats cross the wire too.
        let remote = client.stats().expect("stats");
        assert_eq!(remote.stored_chunks, 1);
        assert_eq!(remote.puts, 2);
    }

    #[test]
    fn batched_ops_over_loopback() {
        let (_server, client, _store) = loopback_pair();
        let chunks: Vec<Chunk> = (0..100u32)
            .map(|i| Chunk::new(ChunkType::Map, i.to_le_bytes().to_vec()))
            .collect();
        let outcomes = client.put_many(chunks.clone()).expect("put_many");
        assert!(outcomes.iter().all(|o| *o == PutOutcome::Stored));
        let mut cids: Vec<_> = chunks.iter().map(|c| c.cid()).collect();
        cids.push(Chunk::new(ChunkType::Map, &b"missing"[..]).cid());
        let fetched = client.get_many(&cids).expect("get_many");
        assert_eq!(fetched.len(), 101);
        for (slot, chunk) in fetched.iter().zip(&chunks) {
            assert_eq!(slot.as_ref(), Some(chunk));
        }
        assert_eq!(fetched[100], None);
    }

    #[test]
    fn pipelined_requests_share_sockets() {
        let (_server, client, _store) = loopback_pair();
        let client = Arc::new(client);
        // More threads than pooled sockets: requests must interleave on
        // shared connections and all come back correctly matched.
        std::thread::scope(|s| {
            for t in 0..16u32 {
                let client = Arc::clone(&client);
                s.spawn(move || {
                    for i in 0..50u32 {
                        let chunk =
                            Chunk::new(ChunkType::Blob, (t * 1000 + i).to_le_bytes().to_vec());
                        client.put(chunk.clone()).expect("put");
                        assert_eq!(
                            client.get(&chunk.cid()).expect("get"),
                            Some(chunk),
                            "thread {t} op {i}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn connect_to_dead_port_is_an_error_not_a_hang() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let client = TcpChunkClient::new(addr, TcpConfig::default());
        let cid = Chunk::new(ChunkType::Blob, &b"x"[..]).cid();
        match client.get(&cid) {
            Err(forkbase_core::FbError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
