//! The transport-agnostic node service API.
//!
//! Every cluster node exposes its chunk storage through [`ChunkService`]
//! — the five-operation surface a remote peer needs (fetch, batched
//! fetch, store, batched store, health). The dispatcher, the two-layer
//! store, and the remote-chunk cache are all written against
//! `Arc<dyn ChunkService>`, so the wire is pluggable:
//!
//! * **in-process** — [`StoreService`] wraps the node's local
//!   [`ChunkStore`] directly (the test/bench transport, and the self
//!   entry of every servlet's pool view), and [`Servlet`](crate::Servlet)
//!   implements the
//!   trait itself so a whole node can be plugged in as a peer;
//! * **TCP** — [`TcpChunkClient`](crate::net::TcpChunkClient) speaks the
//!   same trait over length-prefixed binary frames to a
//!   [`ChunkServer`](crate::net::ChunkServer) on the peer.
//!
//! Unlike [`ChunkStore`], every method is fallible: a network transport
//! can lose its peer mid-request, and the caller must see that as
//! [`FbError::Io`](forkbase_core::FbError::Io) rather than as a missing
//! chunk.

use forkbase_chunk::{Chunk, ChunkStore, PutOutcome, StoreStats};
use forkbase_core::Result;
use forkbase_crypto::Digest;
use std::sync::Arc;

/// The service surface of one cluster node's chunk storage.
///
/// Implementations must be thread-safe: servlet pool views and benchmark
/// drivers issue requests from many threads concurrently, and a network
/// implementation is expected to pipeline them over shared connections.
pub trait ChunkService: Send + Sync {
    /// Fetch a chunk by cid. `Ok(None)` means the node does not hold the
    /// chunk; `Err` means the node could not be asked.
    fn get(&self, cid: &Digest) -> Result<Option<Chunk>>;

    /// Fetch many chunks at once; element `i` answers `cids[i]`.
    /// Semantically identical to mapping [`get`](Self::get), but a
    /// transport carries the whole batch in one request/response
    /// exchange.
    fn get_many(&self, cids: &[Digest]) -> Result<Vec<Option<Chunk>>> {
        cids.iter().map(|cid| self.get(cid)).collect()
    }

    /// Store a chunk; dedups on existing cid.
    fn put(&self, chunk: Chunk) -> Result<PutOutcome>;

    /// Store many chunks at once; element `i` answers `chunks[i]`.
    fn put_many(&self, chunks: Vec<Chunk>) -> Result<Vec<PutOutcome>> {
        chunks.into_iter().map(|c| self.put(c)).collect()
    }

    /// The node's storage statistics — the observability surface that
    /// makes a degraded remote node (climbing `io_errors`, collapsing
    /// cache hit rate) visible instead of silent.
    fn stats(&self) -> Result<StoreStats>;
}

/// Blanket impl so `Arc<S>` can be used wherever a service is expected.
impl<S: ChunkService + ?Sized> ChunkService for Arc<S> {
    fn get(&self, cid: &Digest) -> Result<Option<Chunk>> {
        (**self).get(cid)
    }

    fn get_many(&self, cids: &[Digest]) -> Result<Vec<Option<Chunk>>> {
        (**self).get_many(cids)
    }

    fn put(&self, chunk: Chunk) -> Result<PutOutcome> {
        (**self).put(chunk)
    }

    fn put_many(&self, chunks: Vec<Chunk>) -> Result<Vec<PutOutcome>> {
        (**self).put_many(chunks)
    }

    fn stats(&self) -> Result<StoreStats> {
        (**self).stats()
    }
}

/// The in-process transport: a [`ChunkService`] served by a local
/// [`ChunkStore`]. Never fails.
pub struct StoreService {
    store: Arc<dyn ChunkStore>,
}

impl StoreService {
    /// Serve `store` in-process.
    pub fn new(store: Arc<dyn ChunkStore>) -> StoreService {
        StoreService { store }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<dyn ChunkStore> {
        &self.store
    }
}

impl ChunkService for StoreService {
    fn get(&self, cid: &Digest) -> Result<Option<Chunk>> {
        Ok(self.store.get(cid))
    }

    fn get_many(&self, cids: &[Digest]) -> Result<Vec<Option<Chunk>>> {
        Ok(self.store.get_many(cids))
    }

    fn put(&self, chunk: Chunk) -> Result<PutOutcome> {
        Ok(self.store.put(chunk))
    }

    fn put_many(&self, chunks: Vec<Chunk>) -> Result<Vec<PutOutcome>> {
        Ok(self.store.put_many(chunks))
    }

    fn stats(&self) -> Result<StoreStats> {
        Ok(self.store.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_chunk::{ChunkType, MemStore};

    #[test]
    fn store_service_mirrors_the_store() {
        let store = Arc::new(MemStore::new());
        let svc = StoreService::new(store.clone());
        let chunk = Chunk::new(ChunkType::Blob, &b"payload"[..]);
        assert_eq!(svc.put(chunk.clone()).unwrap(), PutOutcome::Stored);
        assert_eq!(svc.put(chunk.clone()).unwrap(), PutOutcome::Deduplicated);
        assert_eq!(svc.get(&chunk.cid()).unwrap(), Some(chunk.clone()));
        let absent = Chunk::new(ChunkType::Blob, &b"absent"[..]).cid();
        assert_eq!(
            svc.get_many(&[chunk.cid(), absent]).unwrap(),
            vec![Some(chunk), None]
        );
        assert_eq!(svc.stats().unwrap(), store.stats());
    }
}
