//! A servlet: one ForkBase execution unit with its co-located chunk
//! storage (§4.1).

use crate::master::Partitioning;
use crate::store2l::TwoLayerStore;
use forkbase_chunk::{CacheConfig, ChunkStore};
use forkbase_core::ForkBase;
use forkbase_crypto::ChunkerConfig;
use std::sync::Arc;

/// One node of the cluster: servlet + local chunk storage. The storage
/// is any [`ChunkStore`], so a node can run in memory or on disk
/// (e.g. a [`LogStore`](forkbase_chunk::LogStore) per node). Under
/// two-layer partitioning the servlet's pool view caches remote chunks
/// (§4.6) by default.
pub struct Servlet {
    id: usize,
    db: ForkBase,
    local: Arc<dyn ChunkStore>,
    /// Typed handle to the two-layer view (remote-cache stats); `None`
    /// under one-layer partitioning.
    view2l: Option<Arc<TwoLayerStore>>,
}

impl Servlet {
    /// Build servlet `id` with the default remote-chunk cache. Under
    /// two-layer partitioning the servlet writes data chunks into the
    /// whole `pool`; under one-layer it uses only its local storage.
    pub fn new(
        id: usize,
        partitioning: Partitioning,
        pool: &[Arc<dyn ChunkStore>],
        cfg: ChunkerConfig,
    ) -> Servlet {
        Self::with_cache(id, partitioning, pool, cfg, CacheConfig::default())
    }

    /// [`new`](Self::new) with explicit remote-cache sizing
    /// ([`CacheConfig::disabled`] for uncached pool reads).
    pub fn with_cache(
        id: usize,
        partitioning: Partitioning,
        pool: &[Arc<dyn ChunkStore>],
        cfg: ChunkerConfig,
        cache: CacheConfig,
    ) -> Servlet {
        let local = pool[id].clone();
        let mut view2l = None;
        let store: Arc<dyn ChunkStore> = match partitioning {
            Partitioning::OneLayer => local.clone(),
            Partitioning::TwoLayer => {
                let view = Arc::new(TwoLayerStore::with_cache(
                    local.clone(),
                    pool.to_vec(),
                    cache,
                ));
                view2l = Some(view.clone());
                view
            }
        };
        Servlet {
            id,
            db: ForkBase::with_store(store, cfg),
            local,
            view2l,
        }
    }

    /// (hits, misses) of this servlet's remote-chunk cache, when running
    /// two-layer partitioning with the cache enabled.
    pub fn remote_cache_stats(&self) -> Option<(u64, u64)> {
        self.view2l.as_ref().and_then(|v| v.remote_cache_stats())
    }

    /// Servlet id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The engine instance this servlet executes requests on.
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    /// This node's co-located storage.
    pub fn local_store(&self) -> &Arc<dyn ChunkStore> {
        &self.local
    }

    /// Bytes held on this node's local storage (per-node storage
    /// distribution, Fig. 15).
    pub fn local_bytes(&self) -> u64 {
        self.local.stats().stored_bytes
    }

    /// Chunks held on this node's local storage.
    pub fn local_chunks(&self) -> u64 {
        self.local.stats().stored_chunks
    }
}
