//! A servlet: one ForkBase execution unit with its co-located chunk
//! storage (§4.1).

use crate::master::Partitioning;
use crate::store2l::TwoLayerStore;
use forkbase_chunk::ChunkStore;
use forkbase_core::ForkBase;
use forkbase_crypto::ChunkerConfig;
use std::sync::Arc;

/// One node of the cluster: servlet + local chunk storage. The storage
/// is any [`ChunkStore`], so a node can run in memory or on disk
/// (e.g. a [`LogStore`](forkbase_chunk::LogStore) per node).
pub struct Servlet {
    id: usize,
    db: ForkBase,
    local: Arc<dyn ChunkStore>,
}

impl Servlet {
    /// Build servlet `id`. Under two-layer partitioning the servlet
    /// writes data chunks into the whole `pool`; under one-layer it uses
    /// only its local storage.
    pub fn new(
        id: usize,
        partitioning: Partitioning,
        pool: &[Arc<dyn ChunkStore>],
        cfg: ChunkerConfig,
    ) -> Servlet {
        let local = pool[id].clone();
        let store: Arc<dyn ChunkStore> = match partitioning {
            Partitioning::OneLayer => local.clone(),
            Partitioning::TwoLayer => Arc::new(TwoLayerStore::new(local.clone(), pool.to_vec())),
        };
        Servlet {
            id,
            db: ForkBase::with_store(store, cfg),
            local,
        }
    }

    /// Servlet id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The engine instance this servlet executes requests on.
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    /// This node's co-located storage.
    pub fn local_store(&self) -> &Arc<dyn ChunkStore> {
        &self.local
    }

    /// Bytes held on this node's local storage (per-node storage
    /// distribution, Fig. 15).
    pub fn local_bytes(&self) -> u64 {
        self.local.stats().stored_bytes
    }

    /// Chunks held on this node's local storage.
    pub fn local_chunks(&self) -> u64 {
        self.local.stats().stored_chunks
    }
}
