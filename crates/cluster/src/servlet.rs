//! A servlet: one ForkBase execution unit with its co-located chunk
//! storage (§4.1).

use crate::master::Partitioning;
use crate::service::ChunkService;
use crate::store2l::TwoLayerStore;
use forkbase_chunk::{CacheConfig, Chunk, ChunkStore, PutOutcome, StoreStats};
use forkbase_core::ForkBase;
use forkbase_crypto::{ChunkerConfig, Digest};
use std::sync::Arc;

/// One node of the cluster: servlet + local chunk storage. The storage
/// is any [`ChunkStore`], so a node can run in memory or on disk
/// (e.g. a [`LogStore`](forkbase_chunk::LogStore) per node). Under
/// two-layer partitioning the servlet's pool view routes data chunks to
/// their owning node through [`ChunkService`] endpoints — in-process
/// handles or TCP clients, the servlet cannot tell — and caches remote
/// chunks (§4.6) by default.
///
/// A servlet is itself a [`ChunkService`]: the endpoint peers talk to
/// when they route a chunk here. Service requests are answered from the
/// *local* storage only (the requester already did the routing), while
/// [`stats`](ChunkService::stats) reports the merged node view — local
/// store counters plus this servlet's remote-cache hits/misses and any
/// transport errors it has observed.
pub struct Servlet {
    id: usize,
    db: ForkBase,
    local: Arc<dyn ChunkStore>,
    /// Typed handle to the two-layer view (remote-cache stats); `None`
    /// under one-layer partitioning.
    view2l: Option<Arc<TwoLayerStore>>,
}

impl Servlet {
    /// Build servlet `id` with the default remote-chunk cache. Under
    /// two-layer partitioning the servlet routes data chunks across
    /// `pool` (its own entry must be `pool[id]`); under one-layer it
    /// uses only `local`.
    pub fn new(
        id: usize,
        partitioning: Partitioning,
        local: Arc<dyn ChunkStore>,
        pool: Vec<Arc<dyn ChunkService>>,
        cfg: ChunkerConfig,
    ) -> Servlet {
        Self::with_cache(id, partitioning, local, pool, cfg, CacheConfig::default())
    }

    /// [`new`](Self::new) with explicit remote-cache sizing
    /// ([`CacheConfig::disabled`] for uncached pool reads).
    pub fn with_cache(
        id: usize,
        partitioning: Partitioning,
        local: Arc<dyn ChunkStore>,
        pool: Vec<Arc<dyn ChunkService>>,
        cfg: ChunkerConfig,
        cache: CacheConfig,
    ) -> Servlet {
        let mut view2l = None;
        let store: Arc<dyn ChunkStore> = match partitioning {
            Partitioning::OneLayer => local.clone(),
            Partitioning::TwoLayer => {
                let view = Arc::new(TwoLayerStore::with_cache(local.clone(), pool, id, cache));
                view2l = Some(view.clone());
                view
            }
        };
        Servlet {
            id,
            db: ForkBase::with_store(store, cfg),
            local,
            view2l,
        }
    }

    /// (hits, misses) of this servlet's remote-chunk cache, when running
    /// two-layer partitioning with the cache enabled.
    pub fn remote_cache_stats(&self) -> Option<(u64, u64)> {
        self.view2l.as_ref().and_then(|v| v.remote_cache_stats())
    }

    /// Servlet id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The engine instance this servlet executes requests on.
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    /// This node's co-located storage.
    pub fn local_store(&self) -> &Arc<dyn ChunkStore> {
        &self.local
    }

    /// Bytes held on this node's local storage (per-node storage
    /// distribution, Fig. 15).
    pub fn local_bytes(&self) -> u64 {
        self.local.stats().stored_bytes
    }

    /// Chunks held on this node's local storage.
    pub fn local_chunks(&self) -> u64 {
        self.local.stats().stored_chunks
    }
}

/// The service endpoint other nodes (and the cluster's stats collector)
/// reach this servlet through — directly in-process, or as the backend
/// of a [`ChunkServer`](crate::net::ChunkServer) over TCP.
impl ChunkService for Servlet {
    fn get(&self, cid: &Digest) -> forkbase_core::Result<Option<Chunk>> {
        Ok(self.local.get(cid))
    }

    fn get_many(&self, cids: &[Digest]) -> forkbase_core::Result<Vec<Option<Chunk>>> {
        Ok(self.local.get_many(cids))
    }

    fn put(&self, chunk: Chunk) -> forkbase_core::Result<PutOutcome> {
        Ok(self.local.put(chunk))
    }

    fn put_many(&self, chunks: Vec<Chunk>) -> forkbase_core::Result<Vec<PutOutcome>> {
        Ok(chunks.into_iter().map(|c| self.local.put(c)).collect())
    }

    /// The node's merged view: local storage counters, plus the
    /// remote-cache tier and transport errors when running two-layer.
    fn stats(&self) -> forkbase_core::Result<StoreStats> {
        Ok(match &self.view2l {
            Some(view) => view.stats(),
            None => self.local.stats(),
        })
    }
}
