//! Integration suite for the cluster wire.
//!
//! Three hazard classes, mirroring the LogStore torn-tail suite one
//! layer up:
//!
//! * **framing** — a TCP read boundary can fall on *any* byte, so the
//!   decoder is swept across every split and truncation offset, and a
//!   single flipped byte anywhere in a frame must never decode into a
//!   frame;
//! * **transport equivalence** — the in-process and TCP transports are
//!   the same cluster observed through different wires: an identical
//!   request schedule must produce identical digests, identical blob
//!   reads, and identical per-node stats deltas;
//! * **failure** — a killed server surfaces as `FbError::Io` promptly
//!   (no hang on in-flight or subsequent requests), and a server
//!   restarted on the same address is picked up by the same client
//!   without reconstruction.

use forkbase_chunk::{Chunk, ChunkStore, ChunkType, MemStore, StoreStats};
use forkbase_cluster::net::frame::{encode, FrameDecoder};
use forkbase_cluster::net::{ChunkServer, TcpChunkClient, TcpConfig};
use forkbase_cluster::service::{ChunkService, StoreService};
use forkbase_cluster::{Cluster, Partitioning, Transport};
use forkbase_core::FbError;
use proptest::prelude::*;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sample_frames() -> Vec<(u8, Vec<u8>)> {
    vec![
        (0x01, b"first payload".to_vec()),
        (0x02, Vec::new()),
        (0x7f, (0u8..=255).collect()),
    ]
}

fn stream_of(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    frames.iter().flat_map(|(op, p)| encode(*op, p)).collect()
}

fn drain(decoder: &mut FrameDecoder) -> Vec<(u8, Vec<u8>)> {
    let mut out = Vec::new();
    while let Some(frame) = decoder.next_frame().expect("valid stream") {
        out.push((frame.opcode, frame.payload.to_vec()));
    }
    out
}

#[test]
fn frames_survive_a_split_at_every_byte_offset() {
    let frames = sample_frames();
    let stream = stream_of(&frames);
    for split in 0..=stream.len() {
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        decoder.feed(&stream[..split]);
        got.extend(drain(&mut decoder));
        decoder.feed(&stream[split..]);
        got.extend(drain(&mut decoder));
        assert_eq!(got, frames, "split at byte {split}");
    }
}

#[test]
fn frames_survive_byte_at_a_time_delivery() {
    let frames = sample_frames();
    let stream = stream_of(&frames);
    let mut decoder = FrameDecoder::new();
    let mut got = Vec::new();
    for byte in &stream {
        decoder.feed(std::slice::from_ref(byte));
        got.extend(drain(&mut decoder));
    }
    assert_eq!(got, frames);
}

#[test]
fn truncation_at_every_offset_reads_as_incomplete_then_completes() {
    let frames = sample_frames();
    let stream = stream_of(&frames);
    for cut in 0..stream.len() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&stream[..cut]);
        let complete = drain(&mut decoder);
        assert!(
            complete.len() <= frames.len(),
            "cut at {cut} produced too many frames"
        );
        // Whatever decoded is a strict prefix of the real frames —
        // never an invented or reordered frame.
        assert_eq!(complete[..], frames[..complete.len()], "cut at {cut}");
        // The rest of the bytes finish the job.
        decoder.feed(&stream[cut..]);
        let mut all = complete;
        all.extend(drain(&mut decoder));
        assert_eq!(all, frames, "resumed after cut at {cut}");
    }
}

#[test]
fn single_byte_corruption_never_yields_a_frame() {
    let (opcode, payload) = (0x03u8, b"checksummed payload".to_vec());
    let pristine = encode(opcode, &payload);
    for offset in 0..pristine.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = pristine.clone();
            corrupt[offset] ^= flip;
            let mut decoder = FrameDecoder::new();
            decoder.feed(&corrupt);
            match decoder.next_frame() {
                // Detected: bad magic, bad length, or bad checksum.
                Err(_) => {}
                // A corrupted length field can claim a longer frame —
                // that reads as incomplete, which a real connection
                // resolves by the checksum failing once more bytes
                // arrive (or the peer timing out), never by a frame.
                Ok(None) => {}
                Ok(Some(frame)) => panic!(
                    "byte {offset} ^ {flip:#04x} decoded as a frame \
                     (opcode {:#04x}, {} bytes)",
                    frame.opcode,
                    frame.payload.len()
                ),
            }
        }
    }
}

#[test]
fn killed_server_surfaces_io_quickly_and_restart_recovers() {
    let store = Arc::new(MemStore::new());
    let backend = Arc::new(StoreService::new(store.clone() as Arc<dyn ChunkStore>));
    let mut server = ChunkServer::bind("127.0.0.1:0", backend.clone()).expect("bind");
    let addr = server.addr();
    let client = TcpChunkClient::new(
        addr,
        TcpConfig {
            connections: 2,
            ..TcpConfig::default()
        },
    );

    let chunk = Chunk::new(ChunkType::Blob, &b"survives restarts"[..]);
    client.put(chunk.clone()).expect("put while alive");
    assert_eq!(client.get(&chunk.cid()).expect("get"), Some(chunk.clone()));

    server.stop();
    drop(server);

    // Every pooled connection fails fast — an error, not a hang.
    let start = Instant::now();
    for _ in 0..4 {
        match client.get(&chunk.cid()) {
            Err(FbError::Io(_)) => {}
            other => panic!("expected Io error from killed server, got {other:?}"),
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "dead-server errors must be prompt, took {:?}",
        start.elapsed()
    );

    // Same address, same backing store: the client's lazy re-dial picks
    // the restarted server up without being rebuilt.
    let listener = TcpListener::bind(addr).expect("rebind same addr");
    let _server = ChunkServer::start(listener, backend).expect("restart");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.get(&chunk.cid()) {
            Ok(found) => {
                assert_eq!(found, Some(chunk));
                break;
            }
            // A pooled connection that died mid-teardown may eat one
            // more error; retry until the re-dial lands.
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("client never recovered after restart: {e:?}"),
        }
    }
}

/// One step of a deterministic cluster schedule.
#[derive(Clone, Debug)]
enum ClusterOp {
    /// Write a blob under key `key % KEYS` with seeded content.
    PutBlob { key: usize, seed: usize, len: usize },
    /// Read a key back (may be absent — both transports must agree).
    GetBlob { key: usize },
    /// Offloaded construction via a helper servlet.
    PutOffloaded {
        key: usize,
        seed: usize,
        helper: usize,
    },
}

const KEYS: usize = 8;

fn payload(seed: usize, len: usize) -> Vec<u8> {
    let mut state = seed as u64 + 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = ClusterOp> {
    prop_oneof![
        4 => (0usize..KEYS, 0usize..1000, 512usize..16_384)
            .prop_map(|(key, seed, len)| ClusterOp::PutBlob { key, seed, len }),
        3 => (0usize..KEYS).prop_map(|key| ClusterOp::GetBlob { key }),
        1 => (0usize..KEYS, 0usize..1000, 0usize..8)
            .prop_map(|(key, seed, helper)| ClusterOp::PutOffloaded { key, seed, helper }),
    ]
}

/// Drive `ops` against a cluster; every observable goes into the trace.
fn run_schedule(cluster: &Cluster, ops: &[ClusterOp]) -> (Vec<String>, Vec<StoreStats>) {
    let mut trace = Vec::with_capacity(ops.len());
    for op in ops {
        let step = match op {
            ClusterOp::PutBlob { key, seed, len } => {
                let uid = cluster
                    .put_blob(format!("key-{key}"), &payload(*seed, *len))
                    .expect("put");
                format!("put:{uid}")
            }
            ClusterOp::GetBlob { key } => match cluster.get_blob(format!("key-{key}")) {
                Ok(data) => format!("get:{}b:{:?}", data.len(), &data[..data.len().min(8)]),
                Err(e) => format!("get:err:{e:?}"),
            },
            ClusterOp::PutOffloaded { key, seed, helper } => {
                let uid = cluster
                    .put_blob_offloaded(format!("key-{key}"), &payload(*seed, 4096), *helper)
                    .expect("offloaded put");
                format!("off:{uid}")
            }
        };
        trace.push(step);
    }
    (trace, cluster.node_stats().expect("node stats"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The api_redesign contract: the transport is invisible. The same
    /// schedule against an in-process cluster and a TCP cluster yields
    /// bit-identical version digests, identical read results, and
    /// identical per-node stats (routing, dedup, caching, and io_error
    /// accounting all agree).
    #[test]
    fn tcp_and_in_process_transports_are_equivalent(
        ops in prop::collection::vec(op_strategy(), 1..25),
        nodes in 2usize..5,
    ) {
        let inproc = Cluster::builder(nodes)
            .partitioning(Partitioning::TwoLayer)
            .build()
            .expect("in-process cluster");
        let tcp = Cluster::builder(nodes)
            .partitioning(Partitioning::TwoLayer)
            .transport(Transport::Tcp(TcpConfig::default()))
            .build()
            .expect("tcp cluster");
        prop_assert!(!inproc.is_networked());
        prop_assert!(tcp.is_networked());

        let (trace_a, stats_a) = run_schedule(&inproc, &ops);
        let (trace_b, stats_b) = run_schedule(&tcp, &ops);

        prop_assert_eq!(trace_a, trace_b, "observable behavior diverged");
        prop_assert_eq!(stats_a, stats_b, "per-node stats deltas diverged");
    }
}
