//! Concurrency tests for the engine.
//!
//! §4.5.1: "Concurrent updates on a tagged branch are serialized by the
//! servlet." These tests drive the engine from many threads and check the
//! serialization guarantees — and, critically, that no code path
//! self-deadlocks on the branch-table lock (a regression test for a real
//! bug: `put` once re-acquired the non-reentrant lock inside `commit`).

use forkbase_core::{ForkBase, Resolver, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Run `f` on a fresh engine but fail the test if it wedges — turns a
/// deadlock into a failure instead of a hung suite.
fn with_deadline<F: FnOnce(Arc<ForkBase>) + Send + 'static>(secs: u64, f: F) {
    let db = Arc::new(ForkBase::in_memory());
    let handle = thread::spawn(move || f(db));
    let deadline = std::time::Instant::now() + Duration::from_secs(secs);
    while !handle.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "test body did not finish within {secs}s — deadlock?"
        );
        thread::sleep(Duration::from_millis(20));
    }
    handle.join().expect("test body panicked");
}

#[test]
fn single_put_does_not_deadlock() {
    // The minimal regression: the first Put ever issued must return.
    with_deadline(30, |db| {
        db.put("k", None, Value::Int(1)).expect("put");
        assert_eq!(db.get_value("k", None).expect("get"), Value::Int(1));
    });
}

#[test]
fn concurrent_puts_same_branch_serialize() {
    with_deadline(120, |db| {
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        db.put("shared", None, Value::Int((t * 1000 + i) as i64))
                            .expect("put");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        // All puts linearized onto one chain: depth counts every commit.
        let head = db.get("shared", None).expect("get");
        assert_eq!(head.depth as usize, threads * per_thread - 1);
        // Exactly one untagged head (no accidental forks through M3).
        assert_eq!(db.list_untagged_branches("shared").expect("list").len(), 1);
    });
}

#[test]
fn concurrent_guarded_puts_exactly_one_winner() {
    with_deadline(60, |db| {
        let base = db.put("k", None, Value::Int(0)).expect("put");
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    if db
                        .put_guarded("k", None, Value::Int(t as i64 + 1), base)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(
            wins.load(Ordering::SeqCst),
            1,
            "compare-and-swap semantics: one winner"
        );
    });
}

#[test]
fn concurrent_foc_puts_all_become_heads() {
    with_deadline(60, |db| {
        let base = db.put_conflict("k", None, Value::Int(0)).expect("genesis");
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let db = Arc::clone(&db);
                thread::spawn(move || {
                    db.put_conflict("k", Some(base), Value::Int(t as i64 + 1))
                        .expect("put")
                })
            })
            .collect();
        let mut heads: Vec<_> = handles.into_iter().map(|h| h.join().expect("ok")).collect();
        heads.sort();
        let mut listed = db.list_untagged_branches("k").expect("list");
        listed.sort();
        assert_eq!(listed, heads, "every concurrent writer forked a head");

        // The application resolves the conflict by merging them all.
        let merged = db
            .merge_versions("k", &listed, &Resolver::Aggregate)
            .expect("merge");
        assert_eq!(db.list_untagged_branches("k").expect("list"), vec![merged]);
    });
}

#[test]
fn concurrent_forks_and_puts_across_branches() {
    with_deadline(120, |db| {
        db.put("doc", None, Value::String("base".into()))
            .expect("put");
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                thread::spawn(move || {
                    let branch = format!("user-{t}");
                    db.fork("doc", "master", &branch).expect("fork");
                    for i in 0..20 {
                        db.put("doc", Some(&branch), Value::String(format!("u{t} v{i}")))
                            .expect("put");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(
            db.list_tagged_branches("doc").expect("list").len(),
            9,
            "master + 8 user branches"
        );
        // Branch isolation held under concurrency.
        assert_eq!(
            db.get_value("doc", None).expect("get"),
            Value::String("base".into())
        );
        for t in 0..8 {
            assert_eq!(
                db.get_value("doc", Some(&format!("user-{t}")))
                    .expect("get"),
                Value::String(format!("u{t} v19"))
            );
        }
    });
}

#[test]
fn readers_run_against_writers() {
    with_deadline(120, |db| {
        db.put("k", None, Value::Int(0)).expect("put");
        let stop = Arc::new(AtomicUsize::new(0));
        let writer = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 1i64;
                while stop.load(Ordering::Relaxed) == 0 {
                    db.put("k", None, Value::Int(i)).expect("put");
                    i += 1;
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                thread::spawn(move || {
                    let mut last = -1i64;
                    for _ in 0..500 {
                        let v = db.get_value("k", None).expect("get").as_int().expect("int");
                        assert!(v >= last, "branch head must move forward, {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader ok");
        }
        stop.store(1, Ordering::Relaxed);
        writer.join().expect("writer ok");
    });
}

#[test]
fn concurrent_distinct_keys_are_independent() {
    with_deadline(120, |db| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                thread::spawn(move || {
                    for i in 0..50 {
                        let key = format!("k{t}");
                        db.put(key.clone(), None, Value::Int(i)).expect("put");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(db.list_keys().len(), 8);
        for t in 0..8 {
            assert_eq!(
                db.get_value(format!("k{t}"), None).expect("get"),
                Value::Int(49)
            );
        }
    });
}

/// `commit_checkpoint` from many threads at once: the HEAD.tmp write +
/// rename must be serialized (the hot-tier publisher checkpoints in the
/// background while flushes and callers checkpoint too). Before the
/// checkpoint lock, two racing renames could fail with ENOENT.
#[test]
fn concurrent_checkpoints_serialize() {
    let dir = std::env::temp_dir().join(format!(
        "forkbase-ckpt-race-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .subsec_nanos()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let db = Arc::new(ForkBase::open(&dir).expect("open"));
    db.put("k", None, Value::Int(0)).expect("seed");
    thread::scope(|s| {
        for t in 0..4 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..16 {
                    db.put("k", None, Value::Int((t * 100 + i) as i64))
                        .expect("put");
                    db.commit_checkpoint().expect("checkpoint must never race");
                }
            });
        }
    });
    drop(db);
    let db = ForkBase::open(&dir).expect("reopen");
    assert!(
        matches!(db.get_value("k", None).expect("restored"), Value::Int(_)),
        "HEAD points at a valid checkpoint"
    );
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}
