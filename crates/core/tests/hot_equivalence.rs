//! Equivalence proptests for the hot tier: a hot-tier-fronted engine
//! must be observationally identical to the synchronous tree-only path.
//!
//! Two `ForkBase` handles run the same randomized op schedule — one with
//! the tier on (writes land in the flat HAMT and are published
//! asynchronously), one with it off (every hot op degrades to a
//! synchronous `commit_map_batch`/map read). After **every** op the
//! visible state must agree, and after a final flush the committed map
//! root cids must be byte-identical: POS-Tree history-independence means
//! identical content ⇒ identical roots, regardless of how writes were
//! batched into publish rounds along the way.
//!
//! The `FB_HOT_TIER` CI matrix leg varies the publisher schedule rather
//! than skipping anything: leg `0` runs an aggressive config
//! (2-edit rounds, 1 ms interval) so publish rounds constantly race the
//! checks, leg `1` (and local runs) the `on()` defaults where most
//! publishing happens inside `flush_hot`/drains. Both legs must pass.

use bytes::Bytes;
use forkbase_core::{ForkBase, HotTierConfig, WriteBatch};
use proptest::prelude::*;
use std::time::Duration;

/// Engine keys the schedule spreads over: enough for cross-key batching
/// in one publish round, few enough that each sees real contention.
const KEYS: [&str; 3] = ["state/a", "state/b", "state/c"];

fn hot_cfg() -> HotTierConfig {
    match std::env::var("FB_HOT_TIER").as_deref() {
        Ok("0") => HotTierConfig {
            enabled: true,
            publish_batch: 2,
            publish_interval: Duration::from_millis(1),
        },
        _ => HotTierConfig::on(),
    }
}

#[derive(Clone, Debug)]
enum HotOp {
    /// `hot_put` on KEYS[i].
    Put(usize, String, String),
    /// `hot_delete` on KEYS[i].
    Del(usize, String),
    /// `flush_hot`: forces a full publish + quiescent point.
    Flush,
    /// A direct tree write through `commit_map_batch` — exercises the
    /// drain + invalidate coordination path.
    TreeBatch(usize, Vec<(String, Option<String>)>),
}

fn key_idx() -> impl Strategy<Value = usize> {
    0usize..KEYS.len()
}

fn subkey() -> impl Strategy<Value = String> {
    // A tiny subkey space so puts, deletes, and tree writes constantly
    // collide on the same entries.
    "[a-d]"
}

fn hot_op() -> impl Strategy<Value = HotOp> {
    prop_oneof![
        6 => (key_idx(), subkey(), "[a-z]{0,6}").prop_map(|(k, s, v)| HotOp::Put(k, s, v)),
        2 => (key_idx(), subkey()).prop_map(|(k, s)| HotOp::Del(k, s)),
        1 => Just(HotOp::Flush),
        2 => (
            key_idx(),
            prop::collection::vec((subkey(), prop::option::of("[a-z]{0,6}")), 1..4),
        )
            .prop_map(|(k, edits)| HotOp::TreeBatch(k, edits)),
    ]
}

fn apply(db: &ForkBase, op: &HotOp) {
    match op {
        HotOp::Put(k, sk, v) => db
            .hot_put(KEYS[*k], sk.clone(), v.clone())
            .expect("hot put"),
        HotOp::Del(k, sk) => db.hot_delete(KEYS[*k], sk.clone()).expect("hot delete"),
        HotOp::Flush => db.flush_hot().expect("flush"),
        HotOp::TreeBatch(k, edits) => {
            let mut wb = WriteBatch::new();
            for (sk, v) in edits {
                match v {
                    Some(v) => {
                        wb.put(Bytes::from(sk.clone()), Bytes::from(v.clone()));
                    }
                    None => {
                        wb.delete(Bytes::from(sk.clone()));
                    }
                }
            }
            db.commit_map_batch(KEYS[*k], None, wb).expect("tree batch");
        }
    }
}

/// Committed map root cid for one engine key (`None`: never committed).
fn committed_root(db: &ForkBase, key: &str) -> Option<forkbase_crypto::Digest> {
    let value = db.get_value(key, None).ok()?;
    Some(value.as_map().expect("state keys hold maps").root())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core contract: identical reads at every step, identical
    /// committed roots at the end.
    #[test]
    fn hot_on_and_off_agree_at_every_step(
        ops in prop::collection::vec(hot_op(), 1..60)
    ) {
        let hot = ForkBase::in_memory_hot(hot_cfg());
        let cold = ForkBase::in_memory();
        prop_assert!(hot.hot_enabled());
        prop_assert!(!cold.hot_enabled());

        for op in &ops {
            apply(&hot, op);
            apply(&cold, op);
            // Full-state probe after every single op: any subkey the
            // schedule can touch must read identically right now, no
            // matter where the publisher is in its cycle.
            for key in KEYS {
                for sk in [b"a".as_ref(), b"b", b"c", b"d"] {
                    let h = hot.hot_get(key, sk).expect("hot read");
                    let c = cold.hot_get(key, sk).expect("cold read");
                    prop_assert_eq!(h, c, "key {} subkey {:?} after {:?}", key, sk, op);
                }
            }
        }

        // Quiesce the publisher, then the *committed* trees must be
        // byte-identical: same content ⇒ same root cid (history
        // independence), even though the hot engine grouped writes into
        // arbitrary publish rounds.
        hot.flush_hot().expect("final flush");
        for key in KEYS {
            prop_assert_eq!(
                committed_root(&hot, key),
                committed_root(&cold, key),
                "committed root for {}",
                key
            );
        }
    }

    /// Threaded variant: disjoint per-thread subkey ranges on one engine
    /// key, so publisher rounds interleave with concurrent writers. The
    /// final committed root must still match a tree-only engine fed the
    /// same (deterministically re-ordered) writes.
    #[test]
    fn concurrent_hot_writers_converge_to_tree_root(
        per_thread in prop::collection::vec(
            prop::collection::vec("[a-z]{0,6}", 1..12),
            2..4,
        )
    ) {
        let hot = std::sync::Arc::new(ForkBase::in_memory_hot(hot_cfg()));
        let cold = ForkBase::in_memory();

        std::thread::scope(|s| {
            for (t, writes) in per_thread.iter().enumerate() {
                let hot = std::sync::Arc::clone(&hot);
                s.spawn(move || {
                    for (i, v) in writes.iter().enumerate() {
                        let sk = format!("t{t}/k{i}");
                        hot.hot_put("state/conc", sk, v.clone()).expect("hot put");
                    }
                });
            }
        });
        hot.flush_hot().expect("flush");

        let mut wb = WriteBatch::new();
        for (t, writes) in per_thread.iter().enumerate() {
            for (i, v) in writes.iter().enumerate() {
                wb.put(Bytes::from(format!("t{t}/k{i}")), Bytes::from(v.clone()));
            }
        }
        cold.commit_map_batch("state/conc", None, wb).expect("tree batch");

        prop_assert_eq!(
            committed_root(&hot, "state/conc"),
            committed_root(&cold, "state/conc"),
            "disjoint-key concurrent writes converge"
        );
        // And every entry reads back identically through both paths.
        for (t, writes) in per_thread.iter().enumerate() {
            for (i, v) in writes.iter().enumerate() {
                let sk = format!("t{t}/k{i}");
                prop_assert_eq!(
                    hot.hot_get("state/conc", sk.as_bytes()).expect("hot read"),
                    Some(Bytes::from(v.clone()))
                );
            }
        }
    }
}
