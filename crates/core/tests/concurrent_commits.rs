//! Concurrent commit pipeline equivalence suite.
//!
//! The sharded branch map + optimistic-CAS publish path (§4.5.1) must be
//! observationally equivalent to *some* sequential interleaving of the
//! same commits: disjoint-key writers land exactly the chains a
//! sequential run produces (content-derived uids make this checkable
//! bit-for-bit), overlapping writers serialize onto one chain with zero
//! lost updates, and `commit_map_batch`'s merge-on-conflict keeps every
//! subkey from every racing batch. The property tests pin the batched
//! entry points (`put_many`, `put_conflict_many`) to their sequential
//! counterparts on the same input.
//!
//! CI runs this with `RUST_TEST_THREADS=8` so the writer threads really
//! overlap on multi-core runners.

use forkbase_core::{ForkBase, Value};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const ROUNDS: usize = 25;

/// Disjoint-key writers: every thread owns its own key, so no CAS ever
/// fails and the final heads must be bit-identical to a sequential run
/// of the same per-key chains (uids are content-derived).
#[test]
fn disjoint_key_writers_match_sequential_run() {
    let db = Arc::new(ForkBase::in_memory());
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for i in 0..ROUNDS {
                    db.put(
                        format!("key-{t}"),
                        None,
                        Value::Int((t * ROUNDS + i) as i64),
                    )
                    .expect("put");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer ok");
    }

    // Replay the same chains sequentially on a fresh engine.
    let seq = ForkBase::in_memory();
    for t in 0..WRITERS {
        for i in 0..ROUNDS {
            seq.put(
                format!("key-{t}"),
                None,
                Value::Int((t * ROUNDS + i) as i64),
            )
            .expect("put");
        }
    }
    for t in 0..WRITERS {
        let key = format!("key-{t}");
        assert_eq!(
            db.head(key.clone(), None).expect("head"),
            seq.head(key.clone(), None).expect("head"),
            "disjoint-key chain {t} diverged from the sequential run"
        );
        assert_eq!(db.get(key, None).expect("get").depth as usize, ROUNDS - 1);
    }
}

/// Overlapping writers on one key: every commit must land on the single
/// serialized chain — final depth counts all of them, every returned uid
/// is distinct, and exactly one untagged head remains.
#[test]
fn overlapping_writers_lose_no_updates() {
    let db = Arc::new(ForkBase::in_memory());
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                (0..ROUNDS)
                    .map(|i| {
                        db.put("hot", None, Value::Int((t * ROUNDS + i) as i64))
                            .expect("put")
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut uids = HashSet::new();
    for h in handles {
        for uid in h.join().expect("writer ok") {
            assert!(uids.insert(uid), "two commits produced the same uid");
        }
    }
    assert_eq!(uids.len(), WRITERS * ROUNDS);
    let head = db.get("hot", None).expect("get");
    assert_eq!(
        head.depth as usize,
        WRITERS * ROUNDS - 1,
        "depth counts every commit: zero lost updates"
    );
    assert_eq!(db.list_untagged_branches("hot").expect("list").len(), 1);
}

/// Racing `commit_map_batch` calls over disjoint subkey sets: the
/// merge-on-conflict path must keep every subkey from every batch.
#[test]
fn concurrent_map_batches_keep_every_subkey() {
    let db = Arc::new(ForkBase::in_memory());
    db.put("m", None, Value::Map(db.new_map([("genesis", "0")])))
        .expect("put");
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for round in 0..4 {
                    let mut wb = forkbase_pos::WriteBatch::new();
                    for s in 0..5 {
                        wb.put(format!("t{t}-r{round}-s{s}"), format!("v{t}.{round}.{s}"));
                    }
                    db.commit_map_batch("m", None, wb).expect("commit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer ok");
    }

    let map = db.get_value("m", None).expect("get").as_map().expect("map");
    for t in 0..WRITERS {
        for round in 0..4 {
            for s in 0..5 {
                let k = format!("t{t}-r{round}-s{s}");
                assert_eq!(
                    map.get(db.store(), k.as_bytes()),
                    Some(bytes::Bytes::from(format!("v{t}.{round}.{s}"))),
                    "subkey {k} lost in a conflicting batch merge"
                );
            }
        }
    }
    assert_eq!(
        map.get(db.store(), b"genesis"),
        Some(bytes::Bytes::from_static(b"0"))
    );
}

/// Racing batches that also contend on one hot subkey: own subkeys all
/// survive, and the hot subkey holds exactly one of the written values.
#[test]
fn contended_map_batches_serialize_hot_subkey() {
    let db = Arc::new(ForkBase::in_memory());
    db.put("m", None, Value::Map(db.new_map([("hot", "init")])))
        .expect("put");
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let mut wb = forkbase_pos::WriteBatch::new();
                wb.put("hot", format!("w{t}")).put(format!("own-{t}"), "1");
                db.commit_map_batch("m", None, wb).expect("commit");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer ok");
    }

    let map = db.get_value("m", None).expect("get").as_map().expect("map");
    for t in 0..WRITERS {
        assert!(
            map.get(db.store(), format!("own-{t}").as_bytes()).is_some(),
            "own subkey of writer {t} lost"
        );
    }
    let hot = map.get(db.store(), b"hot").expect("hot present");
    let winners: Vec<bytes::Bytes> = (0..WRITERS)
        .map(|t| bytes::Bytes::from(format!("w{t}")))
        .collect();
    assert!(
        winners.contains(&hot),
        "hot subkey holds a value no writer wrote: {hot:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `put_many` is equivalent to issuing the same puts sequentially:
    /// same returned uids (duplicate keys chain in batch order), same
    /// final heads and values.
    #[test]
    fn put_many_matches_sequential_puts(
        entries in prop::collection::vec(("[a-d]{1,2}", "[a-z]{0,8}"), 1..24)
    ) {
        let batched = ForkBase::in_memory();
        let uids_batch = batched
            .put_many(None, entries.iter().map(|(k, v)| (k.clone(), Value::String(v.clone()))))
            .expect("put_many");

        let seq = ForkBase::in_memory();
        let uids_seq: Vec<_> = entries
            .iter()
            .map(|(k, v)| seq.put(k.clone(), None, Value::String(v.clone())).expect("put"))
            .collect();

        prop_assert_eq!(uids_batch, uids_seq, "per-entry uids diverge");
        for (k, _) in &entries {
            prop_assert_eq!(
                batched.head(k.clone(), None).expect("head"),
                seq.head(k.clone(), None).expect("head")
            );
            prop_assert_eq!(
                batched.get_value(k.clone(), None).expect("get"),
                seq.get_value(k.clone(), None).expect("get")
            );
        }
    }

    /// `put_conflict_many` is equivalent to sequential `put_conflict`
    /// calls: same uids and the same set of untagged heads per key.
    #[test]
    fn put_conflict_many_matches_sequential(
        values in prop::collection::vec("[a-z]{1,8}", 1..12)
    ) {
        let batched = ForkBase::in_memory();
        let base_b = batched.put_conflict("k", None, Value::Int(0)).expect("genesis");
        let uids_batch = batched
            .put_conflict_many(values.iter().map(|v| {
                ("k", Some(base_b), Value::String(v.clone()))
            }))
            .expect("put_conflict_many");

        let seq = ForkBase::in_memory();
        let base_s = seq.put_conflict("k", None, Value::Int(0)).expect("genesis");
        prop_assert_eq!(base_b, base_s);
        let uids_seq: Vec<_> = values
            .iter()
            .map(|v| seq.put_conflict("k", Some(base_s), Value::String(v.clone())).expect("put"))
            .collect();

        prop_assert_eq!(uids_batch, uids_seq);
        let mut heads_b = batched.list_untagged_branches("k").expect("list");
        let mut heads_s = seq.list_untagged_branches("k").expect("list");
        heads_b.sort();
        heads_s.sort();
        prop_assert_eq!(heads_b, heads_s);
    }
}
