//! Property tests on the engine: branch semantics, uid stability, and
//! the key-value model equivalence on the default branch.

use forkbase_core::{FbError, ForkBase, Value};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// §3.1: with only the default branch, ForkBase behaves as a plain
    /// key-value store (last write wins).
    #[test]
    fn default_branch_is_kv_store(
        writes in prop::collection::vec(("[a-c]{1,3}", "[a-z]{0,12}"), 1..60)
    ) {
        let db = ForkBase::in_memory();
        let mut model: HashMap<String, String> = HashMap::new();
        for (k, v) in &writes {
            db.put(k.clone(), None, Value::String(v.clone())).expect("put");
            model.insert(k.clone(), v.clone());
        }
        for (k, v) in &model {
            let got = db.get_value(k.clone(), None).expect("get");
            prop_assert_eq!(got, Value::String(v.clone()));
        }
        // Version chains have the right depth: number of writes - 1.
        let mut write_counts: HashMap<&String, u64> = HashMap::new();
        for (k, _) in &writes {
            *write_counts.entry(k).or_default() += 1;
        }
        for (k, count) in write_counts {
            let obj = db.get(k.clone(), None).expect("get");
            prop_assert_eq!(obj.depth, count - 1, "depth counts prior versions");
        }
    }

    /// uids are injective over (value, history): re-putting an identical
    /// value yields a different uid (the base changed), while identical
    /// (value, base, depth) commits collide.
    #[test]
    fn uid_reflects_value_and_history(v in "[a-z]{1,12}") {
        let db = ForkBase::in_memory();
        let u1 = db.put("k", None, Value::String(v.clone())).expect("put");
        let u2 = db.put("k", None, Value::String(v.clone())).expect("put");
        prop_assert_ne!(u1, u2, "same value, different history");

        // A fresh database reproduces u1 exactly (content-derived ids).
        let db2 = ForkBase::in_memory();
        let u1_again = db2.put("k", None, Value::String(v)).expect("put");
        prop_assert_eq!(u1, u1_again);
    }

    /// Forked branches evolve independently; the fork point stays the LCA.
    #[test]
    fn fork_isolation(
        master_writes in prop::collection::vec("[a-z]{1,8}", 1..8),
        branch_writes in prop::collection::vec("[a-z]{1,8}", 1..8),
    ) {
        let db = ForkBase::in_memory();
        let fork_point = db.put("k", None, Value::String("base".into())).expect("put");
        db.fork("k", "master", "dev").expect("fork");

        for w in &master_writes {
            db.put("k", None, Value::String(w.clone())).expect("put");
        }
        for w in &branch_writes {
            db.put("k", Some("dev"), Value::String(w.clone())).expect("put");
        }

        let m = db.get_value("k", None).expect("get");
        let d = db.get_value("k", Some("dev")).expect("get");
        prop_assert_eq!(m, Value::String(master_writes.last().expect("non-empty").clone()));
        prop_assert_eq!(d, Value::String(branch_writes.last().expect("non-empty").clone()));

        let lca = db
            .lca(
                "k",
                db.head("k", None).expect("head"),
                db.head("k", Some("dev")).expect("head"),
            )
            .expect("lca");
        prop_assert_eq!(lca, Some(fork_point));
    }

    /// Guarded puts serialize: exactly one of two guards against the same
    /// head can win.
    #[test]
    fn guarded_put_serializes(v1 in "[a-z]{1,6}", v2 in "[A-Z]{1,6}") {
        let db = ForkBase::in_memory();
        let head = db.put("k", None, Value::String("init".into())).expect("put");
        let r1 = db.put_guarded("k", None, Value::String(v1), head);
        let r2 = db.put_guarded("k", None, Value::String(v2), head);
        prop_assert!(r1.is_ok());
        let guard_failed = matches!(r2, Err(FbError::GuardFailed { .. }));
        prop_assert!(guard_failed);
    }

    /// FoC puts accumulate untagged heads; merging them all restores a
    /// single head.
    #[test]
    fn foc_heads_merge_to_one(n in 2usize..6) {
        let db = ForkBase::in_memory();
        let base = db.put_conflict("k", None, Value::Int(0)).expect("genesis");
        for i in 0..n {
            db.put_conflict("k", Some(base), Value::Int(i as i64 + 1)).expect("put");
        }
        let heads = db.list_untagged_branches("k").expect("list");
        prop_assert_eq!(heads.len(), n);
        let merged = db
            .merge_versions("k", &heads, &forkbase_pos::Resolver::TakeOurs)
            .expect("merge");
        prop_assert_eq!(db.list_untagged_branches("k").expect("list"), vec![merged]);
    }
}
