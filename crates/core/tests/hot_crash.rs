//! Crash test for the hot tier's publish window: a child process writes
//! through the hot surface, flushes a prefix, leaves a window of edits
//! pending, and dies via `abort()` — no destructors, no publisher drain.
//! The parent reopens and checks the loss bound:
//!
//! * everything acknowledged by `flush_hot` survives (the publisher
//!   checkpointed it), and
//! * the pending window loses *at most* its own edits — each window
//!   subkey is either absent or carries exactly the value that was
//!   written (a background publish round may have landed before the
//!   abort, but nothing is ever torn or reordered).
//!
//! The `FB_HOT_TIER` env var (CI persistence-job matrix) picks the leg:
//! `1`/unset runs the tier on with an aggressive publish schedule, `0`
//! runs the tier off, where `hot_put` is a synchronous tree commit and
//! the recovery point is the last explicit `commit_checkpoint` — the
//! window is then *fully* lost on reopen, which the test pins too.

use bytes::Bytes;
use forkbase_core::{ForkBase, HotTierConfig};
use std::process::Command;
use std::time::Duration;

/// Subkeys flushed (or checkpointed) before the crash window opens.
const FLUSHED: usize = 64;
/// Subkeys written after the flush, still pending at abort time.
const WINDOW: usize = 24;
const STATE_KEY: &str = "eth/state";

fn hot_on() -> bool {
    std::env::var("FB_HOT_TIER").as_deref() != Ok("0")
}

fn open(dir: &std::path::Path) -> ForkBase {
    let hot = if hot_on() {
        // Small rounds so background publishing genuinely races the
        // abort — the window assertions must hold either way.
        HotTierConfig {
            enabled: true,
            publish_batch: 8,
            publish_interval: Duration::from_millis(1),
        }
    } else {
        HotTierConfig::disabled()
    };
    ForkBase::open_with(
        dir,
        forkbase_crypto::ChunkerConfig::default(),
        forkbase_chunk::Durability::Always,
        forkbase_chunk::CacheConfig::default(),
        hot,
    )
    .expect("open")
}

fn subkey(i: usize) -> Bytes {
    Bytes::from(format!("acct/{i:06}"))
}

fn value(i: usize) -> Bytes {
    Bytes::from(format!("balance-{i}-{}", "x".repeat(i % 7)))
}

/// Child mode: only active when `FORKBASE_HOT_KILL_DIR` is set.
#[test]
fn child_writer() {
    let Some(dir) = std::env::var_os("FORKBASE_HOT_KILL_DIR") else {
        return;
    };
    let db = open(std::path::Path::new(&dir));
    for i in 0..FLUSHED {
        db.hot_put(STATE_KEY, subkey(i), value(i)).expect("hot put");
    }
    if hot_on() {
        // The durability point the parent will hold us to.
        db.flush_hot().expect("flush");
    } else {
        // Tier off: writes were synchronous tree commits; the recovery
        // point is the explicit checkpoint.
        db.commit_checkpoint().expect("checkpoint");
    }
    for i in FLUSHED..FLUSHED + WINDOW {
        db.hot_put(STATE_KEY, subkey(i), value(i)).expect("hot put");
    }
    // Die with the window pending: no Drop, no publisher drain, no
    // clean close.
    std::process::abort();
}

#[test]
fn kill_loses_at_most_the_publish_window() {
    let dir = std::env::temp_dir().join(format!(
        "forkbase-hot-kill-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .subsec_nanos()
    ));
    std::fs::remove_dir_all(&dir).ok();

    let exe = std::env::current_exe().expect("own binary");
    let status = Command::new(exe)
        .args(["child_writer", "--exact", "--nocapture", "--test-threads=1"])
        .env("FORKBASE_HOT_KILL_DIR", &dir)
        .status()
        .expect("spawn child");
    assert!(
        !status.success(),
        "the child must die by abort, not exit cleanly"
    );

    let db = open(&dir);

    // The flushed prefix is the hard guarantee: zero loss.
    for i in 0..FLUSHED {
        assert_eq!(
            db.hot_get(STATE_KEY, &subkey(i)).expect("read"),
            Some(value(i)),
            "flushed subkey {i} must survive the crash"
        );
    }

    // The window: bounded, prefix-free loss. Each subkey either made it
    // into a published round (exact value) or is gone — never torn.
    let mut lost = 0;
    for i in FLUSHED..FLUSHED + WINDOW {
        match db.hot_get(STATE_KEY, &subkey(i)).expect("read") {
            Some(v) => assert_eq!(v, value(i), "window subkey {i} must not be torn"),
            None => lost += 1,
        }
    }
    assert!(
        lost <= WINDOW,
        "loss bounded by the pending window: lost {lost} of {WINDOW}"
    );
    if !hot_on() {
        // Tier off: reopen restores the last checkpoint, taken before
        // the window opened — the whole window is lost, exactly.
        assert_eq!(lost, WINDOW, "tree-only recovery point is the checkpoint");
    }

    // The survivor is a fully functional engine: writes, flush, and a
    // clean reopen all keep working.
    db.hot_put(STATE_KEY, subkey(999_999), Bytes::from_static(b"alive"))
        .expect("post-crash write");
    db.flush_hot().expect("post-crash flush");
    db.commit_checkpoint().expect("post-crash checkpoint");
    drop(db);
    let db = open(&dir);
    assert_eq!(
        db.hot_get(STATE_KEY, &subkey(999_999)).expect("read"),
        Some(Bytes::from_static(b"alive"))
    );
    drop(db);
    std::fs::remove_dir_all(dir).ok();
}
