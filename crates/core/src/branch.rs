//! Per-key branch tables (§4.5).
//!
//! "For each data key there is a branch table that holds all its branches'
//! heads … Tagged branches are maintained in a map structure called
//! TB-table … Untagged branches are maintained in a set structure called
//! UB-table … UB-table essentially maintains all the leaf nodes in the
//! object derivation graph."

use bytes::Bytes;
use forkbase_crypto::fx::{FxHashMap, FxHashSet};
use forkbase_crypto::Digest;
use parking_lot::RwLock;
use std::sync::Arc;

/// Branch heads of a single key.
#[derive(Clone, Debug, Default)]
pub struct BranchTable {
    /// TB-table: branch name → head uid.
    tagged: FxHashMap<String, Digest>,
    /// UB-table: heads of untagged branches (derivation-graph leaves).
    untagged: FxHashSet<Digest>,
}

impl BranchTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Head of a tagged branch.
    pub fn head(&self, branch: &str) -> Option<Digest> {
        self.tagged.get(branch).copied()
    }

    /// True if the tagged branch exists.
    pub fn has_branch(&self, branch: &str) -> bool {
        self.tagged.contains_key(branch)
    }

    /// Set a tagged branch head (Put-Branch, Fork, Rename).
    pub fn set_head(&mut self, branch: &str, head: Digest) {
        self.tagged.insert(branch.to_string(), head);
    }

    /// Remove a tagged branch; returns its head if it existed.
    pub fn remove_branch(&mut self, branch: &str) -> Option<Digest> {
        self.tagged.remove(branch)
    }

    /// Rename a tagged branch; returns false if the source is missing.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        match self.tagged.remove(from) {
            Some(head) => {
                self.tagged.insert(to.to_string(), head);
                true
            }
            None => false,
        }
    }

    /// All tagged branches as (name, head) pairs, sorted by name for
    /// deterministic output.
    pub fn tagged_branches(&self) -> Vec<(String, Digest)> {
        let mut out: Vec<_> = self
            .tagged
            .iter()
            .map(|(name, head)| (name.clone(), *head))
            .collect();
        out.sort();
        out
    }

    /// All untagged heads, sorted for deterministic output.
    pub fn untagged_heads(&self) -> Vec<Digest> {
        let mut out: Vec<_> = self.untagged.iter().copied().collect();
        out.sort();
        out
    }

    /// Number of untagged heads.
    pub fn untagged_count(&self) -> usize {
        self.untagged.len()
    }

    /// Record a newly created FObject in the UB-table: insert its uid,
    /// retire the bases it derives from (§4.5.1). "If the new FObject
    /// already exists … the UB-table simply ignores it."
    pub fn record_version(&mut self, uid: Digest, bases: &[Digest]) {
        for base in bases {
            self.untagged.remove(base);
        }
        self.untagged.insert(uid);
    }

    /// True when the key has no conflicting untagged heads (§3.3.2: M10
    /// "returns a single head version if no conflict is found").
    pub fn has_conflict(&self) -> bool {
        self.untagged.len() > 1
    }

    /// Drop a head from the UB-table without recording a successor. Used
    /// when a tagged branch is removed and nothing else names its head:
    /// the version ceases to be a tracked leaf of the derivation graph,
    /// making it collectable by [`crate::gc`].
    pub fn retire_untagged(&mut self, head: Digest) -> bool {
        self.untagged.remove(&head)
    }
}

/// A key's branch-table slot: one `BranchTable` behind its own lock.
/// Handles are cloned out of the [`ShardedBranchMap`] so commit paths
/// hold only this key's lock, never the map's.
pub type BranchSlot = Arc<RwLock<BranchTable>>;

/// Striped-lock shard count. Power of two so slot selection is a mask;
/// 64 stripes keep the collision probability negligible for any
/// realistic writer count while costing ~only a cache line each.
const SHARDS: usize = 64;

/// Branch-head state for a whole instance: per-key [`BranchTable`] slots
/// behind striped locks, replacing the old instance-global branch lock.
///
/// Writers resolve their key to a `BranchSlot` (a brief shard-lock
/// probe) and then serialize only on that slot — commits to disjoint
/// keys never contend, which is what lets the commit pipeline scale
/// across cores. The shard write lock is held only to insert a missing
/// slot, never across a commit.
pub struct ShardedBranchMap {
    shards: Box<[RwLock<FxHashMap<Bytes, BranchSlot>>]>,
}

impl Default for ShardedBranchMap {
    fn default() -> Self {
        ShardedBranchMap {
            shards: (0..SHARDS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
        }
    }
}

impl ShardedBranchMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// FNV-1a over the key bytes; independent of the per-table hasher so
    /// shard skew cannot correlate with in-shard collisions.
    fn shard_of(&self, key: &[u8]) -> usize {
        let h = key.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        (h as usize) & (self.shards.len() - 1)
    }

    /// The key's slot, created empty if absent.
    pub fn slot(&self, key: &Bytes) -> BranchSlot {
        let shard = &self.shards[self.shard_of(key)];
        if let Some(slot) = shard.read().get(key) {
            return Arc::clone(slot);
        }
        let mut shard = shard.write();
        Arc::clone(shard.entry(key.clone()).or_default())
    }

    /// The key's slot if it exists.
    pub fn get(&self, key: &Bytes) -> Option<BranchSlot> {
        self.shards[self.shard_of(key)].read().get(key).cloned()
    }

    /// Every key with a slot, sorted.
    pub fn keys(&self) -> Vec<Bytes> {
        let mut keys: Vec<Bytes> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }

    /// Visit every (key, table) pair. Per-slot reads are individually
    /// consistent; the traversal as a whole is not a point-in-time
    /// snapshot under concurrent writers (quiesce before checkpointing
    /// when that matters, as the old global lock forced anyway).
    pub fn for_each(&self, mut f: impl FnMut(&Bytes, &BranchTable)) {
        for shard in self.shards.iter() {
            let shard = shard.read();
            for (key, slot) in shard.iter() {
                f(key, &slot.read());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::hash_bytes;

    #[test]
    fn tagged_branch_lifecycle() {
        let mut t = BranchTable::new();
        let h1 = hash_bytes(b"v1");
        let h2 = hash_bytes(b"v2");

        assert_eq!(t.head("master"), None);
        t.set_head("master", h1);
        assert_eq!(t.head("master"), Some(h1));
        t.set_head("master", h2);
        assert_eq!(t.head("master"), Some(h2));

        assert!(t.rename("master", "main"));
        assert_eq!(t.head("master"), None);
        assert_eq!(t.head("main"), Some(h2));
        assert!(!t.rename("missing", "x"));

        assert_eq!(t.remove_branch("main"), Some(h2));
        assert_eq!(t.remove_branch("main"), None);
    }

    #[test]
    fn untagged_tracks_dag_leaves() {
        let mut t = BranchTable::new();
        let v1 = hash_bytes(b"v1");
        let v2 = hash_bytes(b"v2");
        let v3 = hash_bytes(b"v3");

        // Linear chain: v1 <- v2 keeps a single head.
        t.record_version(v1, &[]);
        assert!(!t.has_conflict());
        t.record_version(v2, &[v1]);
        assert_eq!(t.untagged_heads(), {
            let mut v = vec![v2];
            v.sort();
            v
        });

        // Concurrent write off v1 (already derived): conflict appears.
        t.record_version(v3, &[v1]);
        assert!(t.has_conflict());
        assert_eq!(t.untagged_count(), 2);

        // Merging both heads resolves the conflict.
        let merged = hash_bytes(b"merged");
        t.record_version(merged, &[v2, v3]);
        assert!(!t.has_conflict());
        assert_eq!(t.untagged_heads(), vec![merged]);
    }

    #[test]
    fn duplicate_version_ignored() {
        let mut t = BranchTable::new();
        let v1 = hash_bytes(b"v1");
        t.record_version(v1, &[]);
        t.record_version(v1, &[]);
        assert_eq!(t.untagged_count(), 1);
    }

    #[test]
    fn sharded_map_slots_are_shared_handles() {
        let m = ShardedBranchMap::new();
        let k = Bytes::from("k");
        let a = m.slot(&k);
        a.write().set_head("master", hash_bytes(b"v"));
        let b = m.get(&k).expect("slot exists");
        assert_eq!(b.read().head("master"), Some(hash_bytes(b"v")));
        assert!(m.get(&Bytes::from("other")).is_none());
        assert_eq!(m.keys(), vec![k]);
    }

    #[test]
    fn sharded_map_visits_every_key_across_shards() {
        let m = ShardedBranchMap::new();
        for i in 0..200u8 {
            let k = Bytes::from(format!("key-{i}"));
            m.slot(&k).write().set_head("b", hash_bytes(&[i]));
        }
        let mut n = 0;
        m.for_each(|_, t| {
            assert!(t.has_branch("b"));
            n += 1;
        });
        assert_eq!(n, 200);
        assert_eq!(m.keys().len(), 200);
    }

    #[test]
    fn listing_is_sorted() {
        let mut t = BranchTable::new();
        t.set_head("zeta", hash_bytes(b"z"));
        t.set_head("alpha", hash_bytes(b"a"));
        let names: Vec<_> = t.tagged_branches().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
