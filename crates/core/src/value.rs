//! The ForkBase data types (§3.4): primitive types, optimized for fast
//! access and embedded directly in the meta chunk, and chunkable types,
//! stored as POS-Trees and deduplicated.

use crate::error::{FbError, Result};
use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, get_varint, put_bytes, put_varint};
use forkbase_chunk::ChunkStore;
use forkbase_crypto::Digest;
use forkbase_pos::{Blob, List, Map, Set, TreeType};

/// Type tag of a [`Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ValueType {
    /// Primitive boolean.
    Bool = 0,
    /// Primitive 64-bit signed integer.
    Int = 1,
    /// Primitive string, embedded in the meta chunk.
    String = 2,
    /// Primitive tuple of byte strings.
    Tuple = 3,
    /// Chunkable byte sequence (POS-Tree).
    Blob = 4,
    /// Chunkable element sequence.
    List = 5,
    /// Chunkable sorted set.
    Set = 6,
    /// Chunkable sorted map.
    Map = 7,
}

impl ValueType {
    /// Decode the tag byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        Some(match v {
            0 => ValueType::Bool,
            1 => ValueType::Int,
            2 => ValueType::String,
            3 => ValueType::Tuple,
            4 => ValueType::Blob,
            5 => ValueType::List,
            6 => ValueType::Set,
            7 => ValueType::Map,
            _ => return None,
        })
    }

    /// Primitive types are embedded in the meta chunk; chunkable types are
    /// stored as a POS-Tree the meta chunk points to (§4.2.2).
    pub fn is_chunkable(self) -> bool {
        matches!(
            self,
            ValueType::Blob | ValueType::List | ValueType::Set | ValueType::Map
        )
    }

    /// Short name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Bool => "Bool",
            ValueType::Int => "Int",
            ValueType::String => "String",
            ValueType::Tuple => "Tuple",
            ValueType::Blob => "Blob",
            ValueType::List => "List",
            ValueType::Set => "Set",
            ValueType::Map => "Map",
        }
    }
}

/// A ForkBase value: either a primitive (embedded) or a chunkable handle
/// (POS-Tree root).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer. Supports `Add`/`Multiply` ops.
    Int(i64),
    /// Small string. Supports `Append`/`Insert` ops.
    String(String),
    /// Small tuple of byte strings. Supports `Append`/`Insert`.
    Tuple(Vec<Bytes>),
    /// Large byte sequence.
    Blob(Blob),
    /// Large element sequence.
    List(List),
    /// Large sorted set.
    Set(Set),
    /// Large sorted map.
    Map(Map),
}

impl Value {
    /// This value's type tag.
    pub fn vtype(&self) -> ValueType {
        match self {
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::String(_) => ValueType::String,
            Value::Tuple(_) => ValueType::Tuple,
            Value::Blob(_) => ValueType::Blob,
            Value::List(_) => ValueType::List,
            Value::Set(_) => ValueType::Set,
            Value::Map(_) => ValueType::Map,
        }
    }

    /// Encode into the FObject `data` field: primitives inline, chunkables
    /// as the 32-byte root cid.
    pub fn encode_data(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            Value::Bool(b) => out.push(u8::from(*b)),
            Value::Int(i) => out.extend_from_slice(&i.to_le_bytes()),
            Value::String(s) => out.extend_from_slice(s.as_bytes()),
            Value::Tuple(fields) => {
                put_varint(&mut out, fields.len() as u64);
                for f in fields {
                    put_bytes(&mut out, f);
                }
            }
            Value::Blob(b) => out.extend_from_slice(b.root().as_bytes()),
            Value::List(l) => out.extend_from_slice(l.root().as_bytes()),
            Value::Set(s) => out.extend_from_slice(s.root().as_bytes()),
            Value::Map(m) => out.extend_from_slice(m.root().as_bytes()),
        }
        Bytes::from(out)
    }

    /// Decode from an FObject `data` field.
    pub fn decode_data(vtype: ValueType, data: &[u8]) -> Result<Value> {
        let corrupt = || FbError::Corrupt(format!("bad {} payload", vtype.name()));
        Ok(match vtype {
            ValueType::Bool => Value::Bool(*data.first().ok_or_else(corrupt)? != 0),
            ValueType::Int => {
                Value::Int(i64::from_le_bytes(data.try_into().map_err(|_| corrupt())?))
            }
            ValueType::String => {
                Value::String(String::from_utf8(data.to_vec()).map_err(|_| corrupt())?)
            }
            ValueType::Tuple => {
                let mut pos = 0;
                let n = get_varint(data, &mut pos).ok_or_else(corrupt)?;
                let mut fields = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    fields.push(Bytes::copy_from_slice(
                        get_bytes(data, &mut pos).ok_or_else(corrupt)?,
                    ));
                }
                Value::Tuple(fields)
            }
            ValueType::Blob => Value::Blob(Blob::from_root(root_cid(data)?)),
            ValueType::List => Value::List(List::from_root(root_cid(data)?)),
            ValueType::Set => Value::Set(Set::from_root(root_cid(data)?)),
            ValueType::Map => Value::Map(Map::from_root(root_cid(data)?)),
        })
    }

    /// For chunkable values, the POS-Tree root; `None` for primitives.
    pub fn tree_root(&self) -> Option<(TreeType, Digest)> {
        match self {
            Value::Blob(b) => Some((TreeType::Blob, b.root())),
            Value::List(l) => Some((TreeType::List, l.root())),
            Value::Set(s) => Some((TreeType::Set, s.root())),
            Value::Map(m) => Some((TreeType::Map, m.root())),
            _ => None,
        }
    }

    // ---- typed accessors (paper Fig. 4: `value.Blob()` with type check) --

    /// Extract a Blob handle or fail with `TypeMismatch`.
    pub fn as_blob(&self) -> Result<Blob> {
        match self {
            Value::Blob(b) => Ok(*b),
            other => Err(mismatch(other, "Blob")),
        }
    }

    /// Extract a Map handle or fail with `TypeMismatch`.
    pub fn as_map(&self) -> Result<Map> {
        match self {
            Value::Map(m) => Ok(*m),
            other => Err(mismatch(other, "Map")),
        }
    }

    /// Extract a List handle or fail with `TypeMismatch`.
    pub fn as_list(&self) -> Result<List> {
        match self {
            Value::List(l) => Ok(*l),
            other => Err(mismatch(other, "List")),
        }
    }

    /// Extract a Set handle or fail with `TypeMismatch`.
    pub fn as_set(&self) -> Result<Set> {
        match self {
            Value::Set(s) => Ok(*s),
            other => Err(mismatch(other, "Set")),
        }
    }

    /// Extract a string or fail with `TypeMismatch`.
    pub fn as_string(&self) -> Result<&str> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(mismatch(other, "String")),
        }
    }

    /// Extract an integer or fail with `TypeMismatch`.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(mismatch(other, "Int")),
        }
    }

    /// Extract a tuple or fail with `TypeMismatch`.
    pub fn as_tuple(&self) -> Result<&[Bytes]> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(mismatch(other, "Tuple")),
        }
    }

    // ---- type-specific primitive operations (§3.4) ----------------------

    /// `Append` for String values.
    pub fn string_append(&mut self, suffix: &str) -> Result<()> {
        match self {
            Value::String(s) => {
                s.push_str(suffix);
                Ok(())
            }
            other => Err(mismatch(other, "String")),
        }
    }

    /// `Insert` for String values (byte offset, clamped).
    pub fn string_insert(&mut self, at: usize, text: &str) -> Result<()> {
        match self {
            Value::String(s) => {
                let at = at.min(s.len());
                s.insert_str(at, text);
                Ok(())
            }
            other => Err(mismatch(other, "String")),
        }
    }

    /// `Append` for Tuple values.
    pub fn tuple_append(&mut self, field: impl Into<Bytes>) -> Result<()> {
        match self {
            Value::Tuple(t) => {
                t.push(field.into());
                Ok(())
            }
            other => Err(mismatch(other, "Tuple")),
        }
    }

    /// `Insert` for Tuple values (index, clamped).
    pub fn tuple_insert(&mut self, at: usize, field: impl Into<Bytes>) -> Result<()> {
        match self {
            Value::Tuple(t) => {
                let at = at.min(t.len());
                t.insert(at, field.into());
                Ok(())
            }
            other => Err(mismatch(other, "Tuple")),
        }
    }

    /// `Add` for numeric values.
    pub fn int_add(&mut self, delta: i64) -> Result<()> {
        match self {
            Value::Int(i) => {
                *i = i.wrapping_add(delta);
                Ok(())
            }
            other => Err(mismatch(other, "Int")),
        }
    }

    /// `Multiply` for numeric values.
    pub fn int_multiply(&mut self, factor: i64) -> Result<()> {
        match self {
            Value::Int(i) => {
                *i = i.wrapping_mul(factor);
                Ok(())
            }
            other => Err(mismatch(other, "Int")),
        }
    }

    /// Logical size in bytes: inline size for primitives, tree element
    /// count for chunkables.
    pub fn logical_size(&self, store: &dyn ChunkStore) -> u64 {
        match self {
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::String(s) => s.len() as u64,
            Value::Tuple(t) => t.iter().map(|f| f.len() as u64).sum(),
            Value::Blob(b) => b.len(store),
            Value::List(l) => l.len(store),
            Value::Set(s) => s.len(store),
            Value::Map(m) => m.len(store),
        }
    }
}

fn root_cid(data: &[u8]) -> Result<Digest> {
    Digest::from_slice(data).ok_or_else(|| FbError::Corrupt("bad tree root".into()))
}

fn mismatch(found: &Value, expected: &'static str) -> FbError {
    FbError::TypeMismatch {
        found: found.vtype().name(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_chunk::MemStore;
    use forkbase_crypto::ChunkerConfig;

    #[test]
    fn primitive_encode_round_trip() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::String("hello".into()),
            Value::String(String::new()),
            Value::Tuple(vec![Bytes::from("a"), Bytes::from(""), Bytes::from("ccc")]),
            Value::Tuple(vec![]),
        ] {
            let data = v.encode_data();
            let back = Value::decode_data(v.vtype(), &data).expect("decode");
            assert_eq!(back, v);
        }
    }

    #[test]
    fn chunkable_encode_round_trip() {
        let store = MemStore::new();
        let cfg = ChunkerConfig::default();
        let blob = Blob::build(&store, &cfg, b"chunkable content");
        let v = Value::Blob(blob);
        let data = v.encode_data();
        assert_eq!(data.len(), 32, "meta chunk stores only the root cid");
        let back = Value::decode_data(ValueType::Blob, &data).expect("decode");
        assert_eq!(back.as_blob().expect("blob").root(), blob.root());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Value::decode_data(ValueType::Int, b"short").is_err());
        assert!(Value::decode_data(ValueType::Blob, b"not a cid").is_err());
        assert!(Value::decode_data(ValueType::Bool, b"").is_err());
        assert!(Value::decode_data(ValueType::String, &[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn type_accessors_enforce_types() {
        let v = Value::Int(7);
        assert_eq!(v.as_int().expect("int"), 7);
        let err = v.as_blob().expect_err("not a blob");
        assert_eq!(
            err,
            FbError::TypeMismatch {
                found: "Int",
                expected: "Blob"
            }
        );
    }

    #[test]
    fn primitive_ops() {
        let mut s = Value::String("hello".into());
        s.string_append(" world").expect("append");
        s.string_insert(0, ">> ").expect("insert");
        assert_eq!(s.as_string().expect("string"), ">> hello world");

        let mut i = Value::Int(10);
        i.int_add(5).expect("add");
        i.int_multiply(3).expect("multiply");
        assert_eq!(i.as_int().expect("int"), 45);

        let mut t = Value::Tuple(vec![Bytes::from("a")]);
        t.tuple_append("c").expect("append");
        t.tuple_insert(1, "b").expect("insert");
        assert_eq!(
            t.as_tuple().expect("tuple"),
            &[Bytes::from("a"), Bytes::from("b"), Bytes::from("c")]
        );
    }

    #[test]
    fn ops_on_wrong_type_fail() {
        let mut v = Value::Bool(true);
        assert!(v.string_append("x").is_err());
        assert!(v.int_add(1).is_err());
        assert!(v.tuple_append("x").is_err());
    }

    #[test]
    fn value_type_tags_round_trip() {
        for t in [
            ValueType::Bool,
            ValueType::Int,
            ValueType::String,
            ValueType::Tuple,
            ValueType::Blob,
            ValueType::List,
            ValueType::Set,
            ValueType::Map,
        ] {
            assert_eq!(ValueType::from_u8(t as u8), Some(t));
        }
        assert_eq!(ValueType::from_u8(99), None);
    }
}
