//! The flat hot-state tier in front of the POS-Tree.
//!
//! Both Sonic Labs forkless-DB papers (see PAPERS.md) win by serving
//! *latest* state from a flat hash-shaped index and demoting the Merkle
//! structure to an asynchronously maintained authentication sidecar.
//! This module is that split for ForkBase:
//!
//! * **Hot state** — per engine key, a persistent
//!   [`Hamt`] from subkey to latest value
//!   (`None` = tombstone). Point reads and writes are pure in-memory
//!   hash operations: no chunk fetch, no tree traversal, no hashing of
//!   content. `Clone` of a key's trie is an O(1) isolated snapshot.
//! * **Pending queue** — every hot write is also enqueued (bounded, with
//!   backpressure once the queue holds `8 × publish_batch` edits).
//! * **Publisher** — a background thread group-publishes the queue into
//!   the POS-Tree via [`Engine::commit_map_batch`] (one `WriteBatch`
//!   splice per key per round) whenever `publish_batch` edits are
//!   pending or `publish_interval` elapses, then advances the durable
//!   recovery point ([`Engine::commit_checkpoint`]) so a crash loses at
//!   most the edits still queued — the *publish window*.
//!
//! The POS-Tree stays the versioned, tamper-evident substrate: every
//! publish round is an ordinary map commit with hash-chained `FObject`
//! versions, so history, diff, merge and `verify_history` keep working
//! unchanged. Coordination with direct tree reads/writes lives in
//! [`ForkBase`](crate::ForkBase), which drains a key's pending edits
//! before touching its default branch through the tree API.

use crate::db::Engine;
use crate::error::{FbError, Result};
use bytes::Bytes;
use forkbase_crypto::fx::FxHashMap;
use forkbase_pos::{Hamt, WriteBatch};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Hot-tier configuration for [`ForkBase::open_with`](crate::ForkBase::open_with).
#[derive(Debug, Clone)]
pub struct HotTierConfig {
    /// Front the engine with the hot tier. Off by default — the tier
    /// trades a bounded publish window of crash loss for hash-map-speed
    /// point access, and that trade must be opted into.
    pub enabled: bool,
    /// Pending-edit count that triggers an immediate publish round. The
    /// queue accepts up to 8× this before writers block (backpressure).
    pub publish_batch: usize,
    /// Maximum time a pending edit waits before a publish round picks it
    /// up, batch full or not. This bounds the crash-loss window on
    /// durable instances.
    pub publish_interval: Duration,
}

impl HotTierConfig {
    /// The tier enabled with default batching (512-edit rounds, 20 ms
    /// interval).
    pub fn on() -> Self {
        HotTierConfig {
            enabled: true,
            publish_batch: 512,
            publish_interval: Duration::from_millis(20),
        }
    }

    /// The tier disabled: hot methods run write-through/read-through on
    /// the POS-Tree synchronously. Same results, tree speed, no loss
    /// window.
    pub fn disabled() -> Self {
        HotTierConfig {
            enabled: false,
            publish_batch: 512,
            publish_interval: Duration::from_millis(20),
        }
    }
}

impl Default for HotTierConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A snapshot of the hot tier's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotTierStats {
    /// `hot_get`s answered from the flat index (tombstones included).
    pub hits: u64,
    /// `hot_get`s that fell through to the committed POS-Tree.
    pub misses: u64,
    /// Edits accepted by `hot_put`/`hot_put_many`/`hot_delete`.
    pub writes: u64,
    /// Edits published into the POS-Tree so far.
    pub published: u64,
    /// Publish rounds (group commits) run so far.
    pub publish_rounds: u64,
    /// Edits currently pending (enqueued, not yet published).
    pub pending: u64,
}

type HotMap = Hamt<Option<Bytes>>;

/// Pending (unpublished) edits, guarded by one mutex with two condvars:
/// `work` wakes the publisher, `room` wakes writers blocked on
/// backpressure and drain/flush callers waiting out an in-flight round.
struct Pending {
    edits: FxHashMap<Bytes, Vec<(Bytes, Option<Bytes>)>>,
    total: usize,
    /// Keys currently being published (their edits are out of `edits`
    /// but not yet in the tree), refcounted: the publisher and a
    /// concurrent `flush` can each have a round in flight for the same
    /// key. Drains must wait the count down to zero, or a subsequent
    /// tree access could observe a head about to move.
    inflight: FxHashMap<Bytes, u32>,
    /// First publish error, if any. A poisoned tier fails all further
    /// hot writes/flushes — the flat index may be ahead of a tree that
    /// can no longer accept it.
    poisoned: Option<String>,
}

struct Shared {
    engine: Arc<Engine>,
    cfg: HotTierConfig,
    /// key → its latest-state trie. Slots are never removed by readers;
    /// tree writes invalidate by removing the whole slot.
    state: RwLock<FxHashMap<Bytes, Arc<RwLock<HotMap>>>>,
    pending: Mutex<Pending>,
    work: Condvar,
    room: Condvar,
    stop: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    published: AtomicU64,
    publish_rounds: AtomicU64,
}

impl Shared {
    fn queue_cap(&self) -> usize {
        self.cfg.publish_batch.saturating_mul(8).max(1)
    }

    fn slot(&self, key: &Bytes) -> Arc<RwLock<HotMap>> {
        if let Some(s) = self.state.read().expect("state lock").get(key) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.state
                .write()
                .expect("state lock")
                .entry(key.clone())
                .or_default(),
        )
    }

    fn poison_err(msg: &str) -> FbError {
        FbError::Io(format!("hot tier poisoned by publish failure: {msg}"))
    }

    /// Publish one key's edit run as a single map splice. Returns the
    /// number of edits on success.
    fn publish_key(&self, key: &Bytes, edits: Vec<(Bytes, Option<Bytes>)>) -> Result<usize> {
        let n = edits.len();
        let mut wb = WriteBatch::with_capacity(n);
        for (sk, v) in edits {
            match v {
                Some(v) => {
                    wb.put(sk, v);
                }
                None => {
                    wb.delete(sk);
                }
            }
        }
        self.engine.commit_map_batch(key.clone(), None, wb)?;
        self.published.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Take the whole queue, marking every taken key in-flight. Caller
    /// must clear `inflight` (and notify `room`) when done.
    fn take_all(p: &mut Pending) -> FxHashMap<Bytes, Vec<(Bytes, Option<Bytes>)>> {
        let work = std::mem::take(&mut p.edits);
        p.total = 0;
        for key in work.keys() {
            *p.inflight.entry(key.clone()).or_insert(0) += 1;
        }
        work
    }

    /// Publish a taken batch and clear its in-flight marks. The first
    /// error poisons the tier and is returned.
    fn publish_work(&self, work: FxHashMap<Bytes, Vec<(Bytes, Option<Bytes>)>>) -> Result<()> {
        let mut first_err: Option<FbError> = None;
        for (key, edits) in &work {
            if first_err.is_none() {
                if let Err(e) = self.publish_key(key, edits.clone()) {
                    first_err = Some(e);
                }
            }
        }
        if first_err.is_none() {
            if let Err(e) = self.checkpoint_if_durable() {
                first_err = Some(e);
            }
        }
        let mut p = self.pending.lock().expect("pending lock");
        for key in work.keys() {
            release_inflight(&mut p, key);
        }
        if let Some(e) = &first_err {
            p.poisoned.get_or_insert_with(|| e.to_string());
        } else {
            self.publish_rounds.fetch_add(1, Ordering::Relaxed);
        }
        drop(p);
        self.room.notify_all();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Advance the durable recovery point so published edits survive a
    /// crash. `commit_checkpoint` fsyncs the log (forcing out any
    /// `Durability::Batch`-deferred records) and atomically rewrites the
    /// HEAD ref; on in-memory instances this is a no-op.
    fn checkpoint_if_durable(&self) -> Result<()> {
        if self.engine.durable_store().is_some() {
            self.engine.commit_checkpoint()?;
        }
        Ok(())
    }
}

/// The running hot tier owned by a [`ForkBase`](crate::ForkBase) handle:
/// shared state plus the publisher thread. Dropping it stops the
/// publisher and drains every pending edit into the tree (clean close
/// loses nothing).
pub(crate) struct HotTier {
    shared: Arc<Shared>,
    publisher: Option<JoinHandle<()>>,
}

impl HotTier {
    /// Spawn the tier over a shared engine. `None` when disabled.
    pub(crate) fn spawn(engine: Arc<Engine>, cfg: HotTierConfig) -> Option<HotTier> {
        if !cfg.enabled {
            return None;
        }
        let shared = Arc::new(Shared {
            engine,
            cfg,
            state: RwLock::new(FxHashMap::default()),
            pending: Mutex::new(Pending {
                edits: FxHashMap::default(),
                total: 0,
                inflight: FxHashMap::default(),
                poisoned: None,
            }),
            work: Condvar::new(),
            room: Condvar::new(),
            stop: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            published: AtomicU64::new(0),
            publish_rounds: AtomicU64::new(0),
        });
        let bg = Arc::clone(&shared);
        let publisher = std::thread::Builder::new()
            .name("fb-hot-publish".into())
            .spawn(move || publisher_loop(bg))
            .expect("spawn hot publisher");
        Some(HotTier {
            shared,
            publisher: Some(publisher),
        })
    }

    /// Point read: flat index first (hit even on tombstones), committed
    /// tree on miss.
    pub(crate) fn get(&self, key: &Bytes, subkey: &[u8]) -> Result<Option<Bytes>> {
        let slot = self
            .shared
            .state
            .read()
            .expect("state lock")
            .get(key)
            .cloned();
        if let Some(slot) = slot {
            if let Some(v) = slot.read().expect("slot lock").get(subkey) {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(v.clone());
            }
        }
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
        self.shared.engine.map_get_latest(key, subkey)
    }

    /// Apply a batch of edits to the flat index and enqueue them for
    /// publication. Visible to [`get`](Self::get) immediately; blocks
    /// only when the pending queue is at capacity.
    pub(crate) fn put_many(&self, key: &Bytes, entries: Vec<(Bytes, Option<Bytes>)>) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let n = entries.len();
        {
            let slot = self.shared.slot(key);
            let mut map = slot.write().expect("slot lock");
            for (sk, v) in &entries {
                map.insert(sk.clone(), v.clone());
            }
        }
        let cap = self.shared.queue_cap();
        let mut p = self.shared.pending.lock().expect("pending lock");
        if let Some(msg) = &p.poisoned {
            return Err(Shared::poison_err(msg));
        }
        while p.total >= cap && !self.shared.stop.load(Ordering::Acquire) {
            self.shared.work.notify_one();
            p = self.shared.room.wait(p).expect("pending lock");
            if let Some(msg) = &p.poisoned {
                return Err(Shared::poison_err(msg));
            }
        }
        p.edits.entry(key.clone()).or_default().extend(entries);
        p.total += n;
        self.shared.writes.fetch_add(n as u64, Ordering::Relaxed);
        let trigger = p.total >= self.shared.cfg.publish_batch;
        drop(p);
        if trigger {
            self.shared.work.notify_one();
        }
        Ok(())
    }

    /// Synchronously publish `key`'s pending edits (waiting out an
    /// in-flight round that includes the key). Used before any tree
    /// access to the key's default branch. No-op when nothing is
    /// pending.
    pub(crate) fn drain_key(&self, key: &Bytes) -> Result<()> {
        loop {
            let edits = {
                let mut p = self.shared.pending.lock().expect("pending lock");
                if let Some(msg) = &p.poisoned {
                    return Err(Shared::poison_err(msg));
                }
                if p.inflight.contains_key(key) {
                    let q = self.shared.room.wait(p).expect("pending lock");
                    drop(q);
                    continue;
                }
                match p.edits.remove(key) {
                    None => return Ok(()),
                    Some(edits) => {
                        p.total -= edits.len();
                        *p.inflight.entry(key.clone()).or_insert(0) += 1;
                        edits
                    }
                }
            };
            self.shared.room.notify_all();
            let res = self.shared.publish_key(key, edits);
            let mut p = self.shared.pending.lock().expect("pending lock");
            release_inflight(&mut p, key);
            if let Err(e) = &res {
                p.poisoned.get_or_insert_with(|| e.to_string());
            }
            drop(p);
            self.shared.room.notify_all();
            res?;
            return self.shared.checkpoint_if_durable();
        }
    }

    /// Remove `key`'s flat-index state (called after a direct tree write
    /// makes it stale; subsequent reads fall through until re-warmed by
    /// writes).
    pub(crate) fn invalidate(&self, key: &Bytes) {
        self.shared.state.write().expect("state lock").remove(key);
    }

    /// Publish everything pending at call time (waiting out in-flight
    /// rounds), then checkpoint on durable instances.
    pub(crate) fn flush(&self) -> Result<()> {
        loop {
            let work = {
                let mut p = self.shared.pending.lock().expect("pending lock");
                if let Some(msg) = &p.poisoned {
                    return Err(Shared::poison_err(msg));
                }
                if p.edits.is_empty() {
                    if p.inflight.is_empty() {
                        break;
                    }
                    let q = self.shared.room.wait(p).expect("pending lock");
                    drop(q);
                    continue;
                }
                Shared::take_all(&mut p)
            };
            self.shared.room.notify_all();
            self.shared.publish_work(work)?;
        }
        self.shared.checkpoint_if_durable()
    }

    pub(crate) fn stats(&self) -> HotTierStats {
        let pending = self.shared.pending.lock().expect("pending lock").total as u64;
        HotTierStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            writes: self.shared.writes.load(Ordering::Relaxed),
            published: self.shared.published.load(Ordering::Relaxed),
            publish_rounds: self.shared.publish_rounds.load(Ordering::Relaxed),
            pending,
        }
    }

    /// O(1) snapshot of one key's flat state.
    pub(crate) fn snapshot(&self, key: &Bytes) -> Option<HotMap> {
        let slot = self
            .shared
            .state
            .read()
            .expect("state lock")
            .get(key)
            .cloned()?;
        let snap = slot.read().expect("slot lock").clone();
        Some(snap)
    }
}

impl Drop for HotTier {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work.notify_all();
        self.shared.room.notify_all();
        if let Some(handle) = self.publisher.take() {
            let _ = handle.join();
        }
        // The publisher drains on exit; this catches edits enqueued
        // while it was shutting down. Errors are unreportable from Drop
        // — they stay recorded in `poisoned` for post-mortems.
        let _ = self.flush();
    }
}

/// Drop one in-flight reference for `key`, removing the mark when the
/// last concurrent round for it completes.
fn release_inflight(p: &mut Pending, key: &Bytes) {
    if let Some(n) = p.inflight.get_mut(key) {
        *n -= 1;
        if *n == 0 {
            p.inflight.remove(key);
        }
    }
}

fn publisher_loop(shared: Arc<Shared>) {
    let mut p = shared.pending.lock().expect("pending lock");
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if p.total < shared.cfg.publish_batch {
            let (q, _timeout) = shared
                .work
                .wait_timeout(p, shared.cfg.publish_interval)
                .expect("pending lock");
            p = q;
        }
        if p.total == 0 {
            continue;
        }
        let work = Shared::take_all(&mut p);
        drop(p);
        shared.room.notify_all();
        // Publish errors poison the tier (inside publish_work); the
        // loop keeps running so drains/flushes can observe the poison
        // instead of hanging on inflight marks.
        let _ = shared.publish_work(work);
        p = shared.pending.lock().expect("pending lock");
    }
    // Final drain: publish everything still queued before exiting.
    let work = Shared::take_all(&mut p);
    drop(p);
    if !work.is_empty() {
        let _ = shared.publish_work(work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ForkBase;
    use crate::value::Value;

    fn hot_db(publish_batch: usize, interval_ms: u64) -> ForkBase {
        ForkBase::in_memory_hot(HotTierConfig {
            enabled: true,
            publish_batch,
            publish_interval: Duration::from_millis(interval_ms),
        })
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn hot_writes_visible_immediately_and_after_flush() {
        let db = hot_db(1024, 1000); // big batch, long interval: we flush
        db.hot_put("acct", "alice", "100").unwrap();
        db.hot_put("acct", "bob", "50").unwrap();
        assert_eq!(db.hot_get("acct", b"alice").unwrap(), Some(b("100")));
        db.flush_hot().unwrap();
        // Committed in the tree now.
        let map = db.get_value("acct", None).unwrap().as_map().unwrap();
        assert_eq!(map.get(db.store(), b"alice").unwrap().as_ref(), b"100");
        assert_eq!(map.get(db.store(), b"bob").unwrap().as_ref(), b"50");
        let stats = db.hot_stats().unwrap();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.published, 2);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn tombstones_shadow_committed_values() {
        let db = hot_db(1024, 1000);
        db.hot_put("k", "a", "v1").unwrap();
        db.flush_hot().unwrap();
        db.hot_delete("k", "a").unwrap();
        // Deleted in the hot tier even though the tree still has it.
        assert_eq!(db.hot_get("k", b"a").unwrap(), None);
        db.flush_hot().unwrap();
        assert_eq!(db.hot_get("k", b"a").unwrap(), None);
        assert_eq!(
            db.get_value("k", None)
                .unwrap()
                .as_map()
                .unwrap()
                .get(db.store(), b"a"),
            None
        );
    }

    #[test]
    fn tree_read_observes_earlier_hot_puts() {
        let db = hot_db(1 << 20, 10_000); // publisher effectively idle
        db.hot_put("k", "x", "1").unwrap();
        // get() must drain the pending edit first (read-your-writes).
        let map = db.get_value("k", None).unwrap().as_map().unwrap();
        assert_eq!(map.get(db.store(), b"x").unwrap().as_ref(), b"1");
    }

    #[test]
    fn tree_write_invalidates_hot_state() {
        let db = hot_db(1024, 1000);
        db.hot_put("k", "a", "hot").unwrap();
        db.flush_hot().unwrap();
        assert_eq!(db.hot_get("k", b"a").unwrap(), Some(b("hot")));
        // Direct tree write replaces the whole map value.
        let map = db.new_map([("a", "tree")]);
        db.put("k", None, Value::Map(map)).unwrap();
        assert_eq!(db.hot_get("k", b"a").unwrap(), Some(b("tree")));
    }

    #[test]
    fn background_publisher_drains_without_flush() {
        let db = hot_db(4, 5);
        for i in 0..64 {
            db.hot_put("k", format!("sk{i}"), "v").unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let s = db.hot_stats().unwrap();
            if s.published == 64 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "publisher stalled: {s:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let map = db.get_value("k", None).unwrap().as_map().unwrap();
        assert_eq!(map.len(db.store()), 64);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let db = hot_db(2, 1);
        // Cap is 16 (8×2); writing far past it must not grow pending
        // unboundedly and everything must land.
        for i in 0..500 {
            db.hot_put("k", format!("sk{i:03}"), "v").unwrap();
            assert!(db.hot_stats().unwrap().pending <= 16);
        }
        db.flush_hot().unwrap();
        let map = db.get_value("k", None).unwrap().as_map().unwrap();
        assert_eq!(map.len(db.store()), 500);
    }

    #[test]
    fn drop_drains_fully() {
        let dir = tempdir();
        {
            let db = ForkBase::open_with(
                &dir,
                forkbase_crypto::ChunkerConfig::default(),
                forkbase_chunk::Durability::Always,
                forkbase_chunk::CacheConfig::default(),
                HotTierConfig {
                    enabled: true,
                    publish_batch: 1 << 20,
                    publish_interval: Duration::from_secs(3600),
                },
            )
            .unwrap();
            for i in 0..32 {
                db.hot_put("k", format!("sk{i}"), "v").unwrap();
            }
            // No flush: Drop must publish + checkpoint.
        }
        let db = ForkBase::open(&dir).unwrap();
        let map = db.get_value("k", None).unwrap().as_map().unwrap();
        assert_eq!(map.len(db.store()), 32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let db = hot_db(1024, 1000);
        db.hot_put("k", "a", "1").unwrap();
        let snap = db.hot_snapshot("k").unwrap();
        db.hot_put("k", "a", "2").unwrap();
        db.hot_put("k", "b", "3").unwrap();
        assert_eq!(snap.get(b"a"), Some(&Some(b("1"))));
        assert_eq!(snap.get(b"b"), None);
        assert_eq!(db.hot_get("k", b"a").unwrap(), Some(b("2")));
    }

    #[test]
    fn disabled_tier_is_synchronous_write_through() {
        let db = ForkBase::in_memory();
        assert!(!db.hot_enabled());
        assert!(db.hot_stats().is_none());
        db.hot_put("k", "a", "v").unwrap();
        // Committed immediately, no flush needed.
        let map = db.get_value("k", None).unwrap().as_map().unwrap();
        assert_eq!(map.get(db.store(), b"a").unwrap().as_ref(), b"v");
        assert_eq!(db.hot_get("k", b"a").unwrap(), Some(b("v")));
        db.hot_delete("k", "a").unwrap();
        assert_eq!(db.hot_get("k", b"a").unwrap(), None);
    }

    fn tempdir() -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fb_hot_test_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
