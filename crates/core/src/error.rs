//! Error types for the engine API.

use forkbase_crypto::Digest;
use std::fmt;

/// Everything that can go wrong at the ForkBase API surface.
#[derive(Debug, Clone, PartialEq)]
pub enum FbError {
    /// The key has never been written.
    KeyNotFound,
    /// The named branch does not exist for this key.
    BranchNotFound(String),
    /// A branch with this name already exists (Fork/Rename target).
    BranchExists(String),
    /// No FObject with this uid is stored.
    VersionNotFound(Digest),
    /// The stored object has a different type than requested
    /// (`TypeNotMatchError` in the paper's Figure 4).
    TypeMismatch {
        /// Type found in storage.
        found: &'static str,
        /// Type the caller expected.
        expected: &'static str,
    },
    /// Guarded put failed: the branch head moved.
    GuardFailed {
        /// Head the caller expected.
        expected: Digest,
        /// Actual current head.
        actual: Digest,
    },
    /// Three-way merge found conflicts the resolver did not settle.
    MergeConflict(usize),
    /// A chunk is missing or fails integrity verification.
    Corrupt(String),
    /// Access control denied the request.
    AccessDenied(String),
    /// The persistent store failed at the I/O level (open, write, fsync,
    /// compaction).
    Io(String),
}

impl fmt::Display for FbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FbError::KeyNotFound => write!(f, "key not found"),
            FbError::BranchNotFound(b) => write!(f, "branch not found: {b}"),
            FbError::BranchExists(b) => write!(f, "branch already exists: {b}"),
            FbError::VersionNotFound(d) => write!(f, "version not found: {}", d.short_hex()),
            FbError::TypeMismatch { found, expected } => {
                write!(f, "type mismatch: found {found}, expected {expected}")
            }
            FbError::GuardFailed { expected, actual } => write!(
                f,
                "guard failed: expected head {}, found {}",
                expected.short_hex(),
                actual.short_hex()
            ),
            FbError::MergeConflict(n) => write!(f, "merge produced {n} unresolved conflicts"),
            FbError::Corrupt(what) => write!(f, "storage corruption: {what}"),
            FbError::AccessDenied(what) => write!(f, "access denied: {what}"),
            FbError::Io(what) => write!(f, "storage I/O error: {what}"),
        }
    }
}

impl std::error::Error for FbError {}

impl From<forkbase_pos::TreeError> for FbError {
    fn from(e: forkbase_pos::TreeError) -> FbError {
        FbError::Corrupt(e.to_string())
    }
}

impl From<std::io::Error> for FbError {
    fn from(e: std::io::Error) -> FbError {
        FbError::Io(e.to_string())
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, FbError>;
