//! The FObject — a node of the object derivation graph (Figure 2).
//!
//! ```text
//! struct FObject {
//!     enum type;          // object type
//!     byte[] key;         // object key
//!     byte[] data;        // object value
//!     int depth;          // distance to the first version
//!     vector<uid> bases;  // versions it derives from
//!     byte[] context;     // reserved for application
//! }
//! ```
//!
//! An FObject serializes into a `Meta` chunk; its `uid` is that chunk's
//! cid. Because the `bases` field embeds the uids of the versions it
//! derives from, uids form a hash chain over the whole history — the
//! tamper-evidence property of §3.2.

use crate::error::{FbError, Result};
use crate::value::{Value, ValueType};
use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, get_varint, put_bytes, put_varint};
use forkbase_chunk::{Chunk, ChunkStore, ChunkType};
use forkbase_crypto::Digest;

/// One version of one key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FObject {
    /// Object type.
    pub vtype: ValueType,
    /// Object key.
    pub key: Bytes,
    /// Encoded value: inline for primitives, tree root for chunkables.
    pub data: Bytes,
    /// Distance to the first version of this key (0 for the genesis
    /// version).
    pub depth: u64,
    /// uids of the versions this one derives from: empty for genesis, one
    /// for a normal update, two or more for a merge.
    pub bases: Vec<Digest>,
    /// Application metadata (commit message, nonce, timestamp, …).
    pub context: Bytes,
}

impl FObject {
    /// Assemble a new version of `key` holding `value`.
    pub fn new(
        key: impl Into<Bytes>,
        value: &Value,
        bases: Vec<Digest>,
        depth: u64,
        context: impl Into<Bytes>,
    ) -> FObject {
        FObject {
            vtype: value.vtype(),
            key: key.into(),
            data: value.encode_data(),
            depth,
            bases,
            context: context.into(),
        }
    }

    /// Serialize into a `Meta` chunk; the chunk's cid is this version's
    /// uid.
    pub fn to_chunk(&self) -> Chunk {
        let mut out = Vec::with_capacity(
            1 + self.key.len() + self.data.len() + self.context.len() + 16 + self.bases.len() * 32,
        );
        out.push(self.vtype as u8);
        put_bytes(&mut out, &self.key);
        put_bytes(&mut out, &self.data);
        put_varint(&mut out, self.depth);
        put_varint(&mut out, self.bases.len() as u64);
        for b in &self.bases {
            out.extend_from_slice(b.as_bytes());
        }
        put_bytes(&mut out, &self.context);
        Chunk::new(ChunkType::Meta, out)
    }

    /// The version identifier: the meta chunk's cid.
    pub fn uid(&self) -> Digest {
        self.to_chunk().cid()
    }

    /// Deserialize from a meta chunk payload.
    pub fn decode(payload: &[u8]) -> Result<FObject> {
        let corrupt = || FbError::Corrupt("bad FObject encoding".into());
        let mut pos = 0usize;
        let &tag = payload.first().ok_or_else(corrupt)?;
        pos += 1;
        let vtype = ValueType::from_u8(tag).ok_or_else(corrupt)?;
        let key = Bytes::copy_from_slice(get_bytes(payload, &mut pos).ok_or_else(corrupt)?);
        let data = Bytes::copy_from_slice(get_bytes(payload, &mut pos).ok_or_else(corrupt)?);
        let depth = get_varint(payload, &mut pos).ok_or_else(corrupt)?;
        let n_bases = get_varint(payload, &mut pos).ok_or_else(corrupt)? as usize;
        if n_bases > payload.len() / 32 + 1 {
            return Err(corrupt());
        }
        let mut bases = Vec::with_capacity(n_bases);
        for _ in 0..n_bases {
            if payload.len() < pos + 32 {
                return Err(corrupt());
            }
            bases.push(Digest::from_slice(&payload[pos..pos + 32]).ok_or_else(corrupt)?);
            pos += 32;
        }
        let context = Bytes::copy_from_slice(get_bytes(payload, &mut pos).ok_or_else(corrupt)?);
        Ok(FObject {
            vtype,
            key,
            data,
            depth,
            bases,
            context,
        })
    }

    /// Load the FObject with the given uid from a store.
    pub fn load(store: &dyn ChunkStore, uid: Digest) -> Result<FObject> {
        let chunk = store.get(&uid).ok_or(FbError::VersionNotFound(uid))?;
        FObject::decode_verified(&chunk, uid)
    }

    /// Decode an already-fetched meta chunk, verifying type and that the
    /// content hashes to `uid` — the counterpart of [`load`](Self::load)
    /// for callers that batch their chunk fetches.
    pub fn decode_verified(chunk: &forkbase_chunk::Chunk, uid: Digest) -> Result<FObject> {
        if chunk.ty() != ChunkType::Meta {
            return Err(FbError::Corrupt(format!(
                "uid {} is not a meta chunk",
                uid.short_hex()
            )));
        }
        if chunk.cid() != uid {
            return Err(FbError::Corrupt(format!(
                "chunk content does not hash to uid {}",
                uid.short_hex()
            )));
        }
        FObject::decode(chunk.payload())
    }

    /// Decode this version's value.
    pub fn value(&self, _store: &dyn ChunkStore) -> Result<Value> {
        Value::decode_data(self.vtype, &self.data)
    }

    /// First base (the linear-history parent), if any.
    pub fn base(&self) -> Option<Digest> {
        self.bases.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_chunk::MemStore;
    use forkbase_crypto::hash_bytes;

    fn sample() -> FObject {
        FObject::new(
            "key-1",
            &Value::String("v1".into()),
            vec![hash_bytes(b"base1"), hash_bytes(b"base2")],
            7,
            "commit message",
        )
    }

    #[test]
    fn chunk_round_trip() {
        let obj = sample();
        let chunk = obj.to_chunk();
        assert_eq!(chunk.ty(), ChunkType::Meta);
        let back = FObject::decode(chunk.payload()).expect("decode");
        assert_eq!(back, obj);
        assert_eq!(back.uid(), obj.uid());
    }

    #[test]
    fn uid_commits_to_everything() {
        let base = sample();
        let mut o = base.clone();
        o.depth += 1;
        assert_ne!(o.uid(), base.uid(), "depth changes uid");

        let mut o = base.clone();
        o.context = Bytes::from("different");
        assert_ne!(o.uid(), base.uid(), "context changes uid");

        let mut o = base.clone();
        o.bases.pop();
        assert_ne!(o.uid(), base.uid(), "bases change uid");

        let mut o = base.clone();
        o.data = Value::String("v2".into()).encode_data();
        assert_ne!(o.uid(), base.uid(), "value changes uid");

        let same = sample();
        assert_eq!(same.uid(), base.uid(), "equal content, equal uid");
    }

    #[test]
    fn load_round_trip() {
        let store = MemStore::new();
        let obj = sample();
        let chunk = obj.to_chunk();
        let uid = chunk.cid();
        store.put(chunk);
        let loaded = FObject::load(&store, uid).expect("load");
        assert_eq!(loaded, obj);
    }

    #[test]
    fn load_missing_version() {
        let store = MemStore::new();
        let err = FObject::load(&store, hash_bytes(b"nope")).expect_err("missing");
        assert!(matches!(err, FbError::VersionNotFound(_)));
    }

    #[test]
    fn load_rejects_non_meta_chunk() {
        let store = MemStore::new();
        let chunk = Chunk::new(ChunkType::Blob, &b"not meta"[..]);
        let cid = chunk.cid();
        store.put(chunk);
        let err = FObject::load(&store, cid).expect_err("wrong type");
        assert!(matches!(err, FbError::Corrupt(_)));
    }

    #[test]
    fn decode_rejects_truncation() {
        let obj = sample();
        let chunk = obj.to_chunk();
        let payload = chunk.payload();
        for cut in [0, 1, 5, payload.len() - 1] {
            assert!(
                FObject::decode(&payload[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
    }

    #[test]
    fn genesis_has_no_bases() {
        let obj = FObject::new("k", &Value::Int(1), vec![], 0, "");
        assert_eq!(obj.base(), None);
        assert_eq!(obj.depth, 0);
    }
}
