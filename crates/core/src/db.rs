//! The ForkBase engine: the full API surface of Table 1 (M1–M17).
//!
//! | Group | Methods |
//! |-------|---------|
//! | Get   | [`get`](ForkBase::get) (M1), [`get_version`](Engine::get_version) (M2) |
//! | Put   | [`put`](ForkBase::put) (M3), [`put_guarded`](ForkBase::put_guarded), [`put_conflict`](Engine::put_conflict) (M4) |
//! | Merge | [`merge_branches`](ForkBase::merge_branches) (M5), [`merge_with_version`](ForkBase::merge_with_version) (M6), [`merge_versions`](Engine::merge_versions) (M7) |
//! | View  | [`list_keys`](Engine::list_keys) (M8), [`list_tagged_branches`](Engine::list_tagged_branches) (M9), [`list_untagged_branches`](Engine::list_untagged_branches) (M10) |
//! | Fork  | [`fork`](ForkBase::fork) (M11), [`fork_version`](Engine::fork_version) (M12), [`rename_branch`](Engine::rename_branch) (M13), [`remove_branch`](Engine::remove_branch) (M14) |
//! | Track | [`track`](ForkBase::track) (M15), [`track_version`](Engine::track_version) (M16), [`lca`](Engine::lca) (M17) |
//!
//! All of these are available on the [`ForkBase`] handle, which derefs
//! to [`Engine`]; the links point at whichever type defines the method
//! (the handle shadows the default-branch-mutating subset to coordinate
//! with the hot tier).

use crate::branch::{BranchSlot, ShardedBranchMap};
use crate::checkpoint::BranchSnapshot;
use crate::error::{FbError, Result};
use crate::fobject::FObject;
use crate::history;
use crate::hot::{HotTier, HotTierConfig, HotTierStats};
use crate::value::{Value, ValueType};
use bytes::Bytes;
use forkbase_chunk::{
    CacheConfig, Chunk, ChunkStore, Durability, LogConfig, LogStore, MemStore, ShardedCache,
};
use forkbase_crypto::fx::FxHashMap;
use forkbase_crypto::{ChunkerConfig, Digest};
use forkbase_pos::{builder, merge3_blob, merge3_sorted, Blob, List, Map, Resolver, Set, TreeType};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The branch written when no branch is given (§3.1).
pub const DEFAULT_BRANCH: &str = "master";

/// The engine core: branch tables, chunk store, and the full M1–M17
/// method surface plus checkpointing. [`ForkBase`] is a thin handle that
/// derefs to this and overlays the optional hot tier (see
/// [`crate::hot`]); the hot-tier publisher commits through a shared
/// `Arc<Engine>` behind the handle's back.
pub struct Engine {
    store: Arc<dyn ChunkStore>,
    cfg: ChunkerConfig,
    /// Per-key branch-head slots behind striped locks (§4.5 branch
    /// tables). Commits serialize per key, never across keys — the
    /// multi-writer commit pipeline scales because disjoint-key writers
    /// take disjoint locks.
    branches: ShardedBranchMap,
    /// Typed handle to the backing [`LogStore`] when this instance was
    /// opened durably — used by [`commit_checkpoint`](Self::commit_checkpoint)
    /// and in-place GC ([`gc::compact_in_place`](crate::gc::compact_in_place)).
    durable: Option<Arc<LogStore>>,
    /// The read-tier chunk cache when one was configured at open —
    /// gives callers (and GC) stats/clear access without downcasting
    /// `store`.
    cache: Option<Arc<ShardedCache>>,
    /// Serializes [`commit_checkpoint`](Self::commit_checkpoint): the
    /// hot-tier publisher checkpoints after publish rounds while flushes
    /// and callers checkpoint too, and the HEAD.tmp write + rename must
    /// not interleave (a lost rename, or an older cid landing last).
    ckpt_lock: Mutex<()>,
}

/// Name of the checkpoint-cid ref file inside a durable instance's
/// directory (cf. git's `HEAD`).
const HEAD_FILE: &str = "HEAD";

impl Engine {
    /// In-memory instance with default chunking parameters.
    pub fn in_memory() -> Engine {
        Engine::with_store(Arc::new(MemStore::new()), ChunkerConfig::default())
    }

    /// Instance over an arbitrary chunk store (persistent, partitioned,
    /// replicated, …).
    pub fn with_store(store: Arc<dyn ChunkStore>, cfg: ChunkerConfig) -> Engine {
        Engine {
            store,
            cfg,
            branches: ShardedBranchMap::new(),
            durable: None,
            cache: None,
            ckpt_lock: Mutex::new(()),
        }
    }

    /// Open (or create) a durable instance in directory `path` over a
    /// segmented [`LogStore`] with default chunking, sizing,
    /// [`Durability`], and the default read-tier chunk cache
    /// ([`CacheConfig::default`] — on). If a previous session left a
    /// checkpoint ref (written by
    /// [`commit_checkpoint`](Self::commit_checkpoint)), all branch heads
    /// are restored from it.
    pub fn open(path: impl AsRef<Path>) -> Result<Engine> {
        Self::open_with(
            path,
            ChunkerConfig::default(),
            Durability::default(),
            CacheConfig::default(),
        )
    }

    /// [`open`](Self::open) with explicit chunking configuration,
    /// durability policy, and read-tier cache sizing (pass
    /// [`CacheConfig::disabled`] for raw `LogStore` reads).
    pub fn open_with(
        path: impl AsRef<Path>,
        cfg: ChunkerConfig,
        durability: Durability,
        cache: CacheConfig,
    ) -> Result<Engine> {
        let path = path.as_ref();
        let log = Arc::new(LogStore::open_with(path, LogConfig::default(), durability)?);
        let mut cache_handle = None;
        let store: Arc<dyn ChunkStore> = if cache.enabled {
            let wrapped = Arc::new(ShardedCache::new(log.clone() as Arc<dyn ChunkStore>, cache));
            cache_handle = Some(wrapped.clone());
            wrapped
        } else {
            log.clone()
        };
        let head_path = path.join(HEAD_FILE);
        let mut db = match std::fs::read_to_string(&head_path) {
            Ok(hex) => {
                let cid = Digest::from_hex(hex.trim()).ok_or_else(|| {
                    FbError::Corrupt(format!("unparseable checkpoint ref in {HEAD_FILE}"))
                })?;
                Self::restore(store, cfg, cid)?
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Self::with_store(store, cfg),
            Err(e) => return Err(e.into()),
        };
        db.durable = Some(log);
        db.cache = cache_handle;
        Ok(db)
    }

    /// Checkpoint the branch tables into the store **and** make it the
    /// recovery point: the chunk log is fsynced and the checkpoint cid
    /// is written to the `HEAD` ref file (atomic rename), so a later
    /// [`open`](Self::open) of the same directory restores every branch
    /// head. Requires a durable instance.
    pub fn commit_checkpoint(&self) -> Result<Digest> {
        let store = self
            .durable
            .as_ref()
            .ok_or_else(|| FbError::Io("not a durable instance (use ForkBase::open)".into()))?;
        let _serialized = self.ckpt_lock.lock().expect("checkpoint lock");
        let cid = self.checkpoint();
        store.sync()?;
        let tmp = store.dir().join("HEAD.tmp");
        {
            // fsync before the rename: a crash must never promote a
            // HEAD whose data blocks were still in the page cache.
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(cid.to_hex().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, store.dir().join(HEAD_FILE))?;
        // Make the rename itself durable (best effort — not every
        // filesystem supports fsync on a directory handle).
        if let Ok(d) = std::fs::File::open(store.dir()) {
            let _ = d.sync_data();
        }
        Ok(cid)
    }

    /// The backing [`LogStore`] when this instance was opened durably.
    pub fn durable_store(&self) -> Option<&Arc<LogStore>> {
        self.durable.as_ref()
    }

    /// The read-tier chunk cache when one was configured at open.
    pub fn chunk_cache(&self) -> Option<&Arc<ShardedCache>> {
        self.cache.as_ref()
    }

    /// (cache hits, cache misses) of the read tier, if caching is on.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.hit_miss())
    }

    /// The underlying chunk store.
    pub fn store(&self) -> &dyn ChunkStore {
        self.store.as_ref()
    }

    /// Shared handle to the chunk store.
    pub fn store_arc(&self) -> Arc<dyn ChunkStore> {
        Arc::clone(&self.store)
    }

    /// The chunking configuration.
    pub fn cfg(&self) -> &ChunkerConfig {
        &self.cfg
    }

    // ---- chunkable value constructors -----------------------------------

    /// Build a Blob in this instance's store.
    pub fn new_blob(&self, data: &[u8]) -> Blob {
        Blob::build(self.store(), &self.cfg, data)
    }

    /// Build a Blob from an owned/shared buffer: leaf payloads are
    /// zero-copy slices of `data`, skipping the up-front copy
    /// [`new_blob`](Self::new_blob) pays for borrowed input.
    pub fn new_blob_bytes(&self, data: impl Into<Bytes>) -> Blob {
        Blob::build_bytes(self.store(), &self.cfg, data)
    }

    /// Build a List in this instance's store.
    pub fn new_list<I, B>(&self, elems: I) -> List
    where
        I: IntoIterator<Item = B>,
        B: Into<Bytes>,
    {
        List::build(self.store(), &self.cfg, elems)
    }

    /// Build a Map in this instance's store.
    pub fn new_map<I, K, V>(&self, pairs: I) -> Map
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<Bytes>,
        V: Into<Bytes>,
    {
        Map::build(self.store(), &self.cfg, pairs)
    }

    /// Build a Set in this instance's store.
    pub fn new_set<I, K>(&self, elems: I) -> Set
    where
        I: IntoIterator<Item = K>,
        K: Into<Bytes>,
    {
        Set::build(self.store(), &self.cfg, elems)
    }

    // ---- Put (M3, M4) ----------------------------------------------------

    /// M3: write a new version to a tagged branch (default branch when
    /// `branch` is `None`). The default branch is created implicitly;
    /// other branches must exist (create them with [`fork`](Self::fork)).
    pub fn put(&self, key: impl Into<Bytes>, branch: Option<&str>, value: Value) -> Result<Digest> {
        self.put_with_context(key, branch, value, Bytes::new())
    }

    /// M3 with application metadata stored in the FObject `context` field.
    pub fn put_with_context(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        value: Value,
        context: impl Into<Bytes>,
    ) -> Result<Digest> {
        let key = key.into();
        let branch = branch.unwrap_or(DEFAULT_BRANCH);
        // Concurrent updates on a tagged branch are serialized by the
        // servlet (§4.5.1) — but only per key: the key's branch slot is
        // held across the head-read → persist → head-advance sequence,
        // so writers to disjoint keys never contend. Only the meta chunk
        // is written under the lock; chunkable payloads were already
        // persisted when the value was built.
        let slot = self.branches.slot(&key);
        let mut table = slot.write();
        if !table.has_branch(branch) && branch != DEFAULT_BRANCH {
            return Err(FbError::BranchNotFound(branch.to_string()));
        }
        let bases: Vec<Digest> = table.head(branch).into_iter().collect();
        let uid = self.persist_object(&key, &value, &bases, context.into())?;
        table.record_version(uid, &bases);
        table.set_head(branch, uid);
        Ok(uid)
    }

    /// Batched M3: write one new version for **each** of `entries` as one
    /// commit-pipeline pass. Every entry is validated first (a missing
    /// non-default branch fails the whole batch before any head moves),
    /// then the pipeline runs in three overlapped stages:
    ///
    /// 1. **encode** — every meta chunk is built outside all branch
    ///    locks, against a snapshot of each key's head (duplicate keys
    ///    chain onto the version built earlier in the same batch);
    /// 2. **store I/O** — all meta chunks land with one
    ///    [`ChunkStore::put_many`], i.e. one group-commit round on a
    ///    durable store instead of one fsync wait per entry;
    /// 3. **publish** — each key's head advances under its own branch
    ///    slot via optimistic CAS. A key whose head moved since the
    ///    snapshot is **rebased**: its chain is re-encoded against the
    ///    new head under the slot lock (meta chunks only — the value
    ///    payloads are already in the store and content addressing
    ///    dedups them).
    ///
    /// Returns the new uids in entry order. Unlike the retired
    /// global-lock path, head advances of *different* keys are published
    /// independently — a reader racing the batch may observe some keys
    /// advanced and others not yet (per-key atomicity is unchanged).
    pub fn put_many<I, K>(&self, branch: Option<&str>, entries: I) -> Result<Vec<Digest>>
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<Bytes>,
    {
        let branch = branch.unwrap_or(DEFAULT_BRANCH);
        let entries: Vec<(Bytes, Value)> =
            entries.into_iter().map(|(k, v)| (k.into(), v)).collect();
        // Validate every key before any head moves.
        if branch != DEFAULT_BRANCH {
            for (key, _) in &entries {
                let exists = self
                    .branches
                    .get(key)
                    .map(|slot| slot.read().has_branch(branch))
                    .unwrap_or(false);
                if !exists {
                    return Err(FbError::BranchNotFound(branch.to_string()));
                }
            }
        }

        // Stage 1: snapshot heads and encode every meta chunk outside
        // the branch locks. Entries are grouped per key in batch order.
        struct KeyPlan {
            slot: BranchSlot,
            snapshot: Option<Digest>,
            /// Depth of the next version appended to this key's chain.
            next_depth: u64,
            /// (entry index, uid, bases) in batch order for this key.
            chain: Vec<(usize, Digest, Vec<Digest>)>,
        }
        let mut plans: FxHashMap<Bytes, KeyPlan> = FxHashMap::default();
        let mut order: Vec<Bytes> = Vec::new();
        let mut chunks: Vec<Chunk> = Vec::with_capacity(entries.len());
        for (i, (key, value)) in entries.iter().enumerate() {
            if !plans.contains_key(key) {
                let slot = self.branches.slot(key);
                let snapshot = slot.read().head(branch);
                let (_, next_depth) = self.chain_link(snapshot)?;
                plans.insert(
                    key.clone(),
                    KeyPlan {
                        slot,
                        snapshot,
                        next_depth,
                        chain: Vec::new(),
                    },
                );
                order.push(key.clone());
            }
            let plan = plans.get_mut(key).expect("plan just inserted");
            let prev = plan.chain.last().map(|(_, uid, _)| *uid).or(plan.snapshot);
            let bases: Vec<Digest> = prev.into_iter().collect();
            let obj = FObject::new(
                key.clone(),
                value,
                bases.clone(),
                plan.next_depth,
                Bytes::new(),
            );
            plan.next_depth += 1;
            let chunk = obj.to_chunk();
            plan.chain.push((i, chunk.cid(), bases));
            chunks.push(chunk);
        }

        // Stage 2: one batched store commit for every meta chunk.
        self.store.put_many(chunks);

        // Stage 3: per-key optimistic publish; rebase on a moved head.
        let mut uids: Vec<Digest> = vec![Digest::ZERO; entries.len()];
        for key in order {
            let plan = plans.remove(&key).expect("planned key");
            let mut table = plan.slot.write();
            if table.head(branch) == plan.snapshot {
                for (i, uid, bases) in &plan.chain {
                    table.record_version(*uid, bases);
                    uids[*i] = *uid;
                }
                let (_, last, _) = plan.chain.last().expect("non-empty chain");
                table.set_head(branch, *last);
                continue;
            }
            // Lost the CAS: a concurrent writer advanced this key. Re-link
            // the chain onto the current head under the slot lock; only
            // the cheap meta chunks are re-encoded and re-put.
            let mut prev = table.head(branch);
            for (i, _, _) in &plan.chain {
                let bases: Vec<Digest> = prev.into_iter().collect();
                let uid = self.persist_object(&key, &entries[*i].1, &bases, Bytes::new())?;
                table.record_version(uid, &bases);
                uids[*i] = uid;
                prev = Some(uid);
            }
            table.set_head(branch, prev.expect("chain published at least one version"));
        }
        Ok(uids)
    }

    /// `(bases, depth)` for a version derived from `prev`.
    fn chain_link(&self, prev: Option<Digest>) -> Result<(Vec<Digest>, u64)> {
        match prev {
            Some(uid) => {
                let depth = FObject::load(self.store(), uid)
                    .map(|o| o.depth + 1)
                    .unwrap_or(0);
                Ok((vec![uid], depth))
            }
            None => Ok((Vec::new(), 0)),
        }
    }

    /// Transactional Map batch commit: load the branch head of `key`
    /// (which must hold a Map), apply `batch` as one multi-range splice,
    /// and commit the result as a new version. A missing key starts from
    /// an empty map on the default branch.
    ///
    /// The splice (chunking + hashing + chunk-store writes) runs
    /// **outside** the branch-table lock — a large batch must not stall
    /// writers of unrelated keys. Publication is optimistic: the head is
    /// re-checked under the key's slot lock, and if a concurrent writer
    /// moved it the batch is **merged onto the new head** with
    /// [`merge3_sorted`] (base = the head we spliced against, ours = our
    /// spliced map, theirs = the observed head; batch edits win on
    /// subkeys both sides touched) — the paper's merge machinery is the
    /// contention resolver, so only conflicting tree regions are
    /// re-walked instead of redoing the whole splice. If the observed
    /// head is not mergeable (type changed under us, or the branch
    /// vanished) the splice is redone from scratch. Chunks written by an
    /// abandoned attempt deduplicate or become garbage for a later
    /// [`gc`](crate::gc) pass, exactly like an abandoned
    /// fork-on-conflict lineage.
    pub fn commit_map_batch(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        batch: forkbase_pos::WriteBatch,
    ) -> Result<Digest> {
        let key = key.into();
        let branch = branch.unwrap_or(DEFAULT_BRANCH);
        let slot = self.branches.slot(&key);
        let mut base = slot.read().head(branch);
        if base.is_none() && branch != DEFAULT_BRANCH {
            return Err(FbError::BranchNotFound(branch.to_string()));
        }
        let mut ours = self
            .map_at(base)?
            .apply(self.store(), &self.cfg, batch.clone())?;
        loop {
            let bases: Vec<Digest> = base.into_iter().collect();
            let uid = self.persist_object(&key, &Value::Map(ours), &bases, Bytes::new())?;
            let observed = {
                let mut table = slot.write();
                let observed = table.head(branch);
                if observed == base {
                    table.record_version(uid, &bases);
                    table.set_head(branch, uid);
                    return Ok(uid);
                }
                observed
            };
            // Lost the CAS. Re-splice against a vanished/retyped head,
            // merge against anything else.
            ours = match observed {
                Some(theirs_uid) => match self.merge_map_onto(base, &ours, theirs_uid) {
                    Some(merged) => merged,
                    None => self
                        .map_at(observed)?
                        .apply(self.store(), &self.cfg, batch.clone())?,
                },
                None => {
                    if branch != DEFAULT_BRANCH {
                        return Err(FbError::BranchNotFound(branch.to_string()));
                    }
                    self.map_at(None)?
                        .apply(self.store(), &self.cfg, batch.clone())?
                }
            };
            base = observed;
        }
    }

    /// The Map at a branch head, or the canonical empty Map for `None`.
    fn map_at(&self, head: Option<Digest>) -> Result<Map> {
        match head {
            Some(uid) => {
                let obj = FObject::load(self.store(), uid)?;
                obj.value(self.store())?.as_map()
            }
            None => Ok(Map::build(
                self.store(),
                &self.cfg,
                std::iter::empty::<(Bytes, Bytes)>(),
            )),
        }
    }

    /// Three-way merge `ours` (spliced off `base`) onto the concurrently
    /// published head `theirs`, our edits winning where both sides
    /// touched a subkey. `None` when `theirs` is not a mergeable Map —
    /// the caller falls back to a full re-splice.
    fn merge_map_onto(&self, base: Option<Digest>, ours: &Map, theirs: Digest) -> Option<Map> {
        let theirs_root = self.map_at(Some(theirs)).ok()?.root();
        let base_root = self.map_at(base).ok()?.root();
        let out = merge3_sorted(
            self.store(),
            &self.cfg,
            TreeType::Map,
            base_root,
            ours.root(),
            theirs_root,
            &Resolver::TakeOurs,
        )
        .ok()?;
        Some(Map::from_root(out.root))
    }

    /// Guarded put (§4.5.1): succeeds only if the branch head still equals
    /// `guard`, protecting against lost updates.
    pub fn put_guarded(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        value: Value,
        guard: Digest,
    ) -> Result<Digest> {
        let key = key.into();
        let branch = branch.unwrap_or(DEFAULT_BRANCH);
        let slot = self.branches.slot(&key);
        let mut table = slot.write();
        let head = table
            .head(branch)
            .ok_or_else(|| FbError::BranchNotFound(branch.to_string()))?;
        if head != guard {
            return Err(FbError::GuardFailed {
                expected: guard,
                actual: head,
            });
        }
        let bases = vec![head];
        let uid = self.persist_object(&key, &value, &bases, Bytes::new())?;
        table.record_version(uid, &bases);
        table.set_head(branch, uid);
        Ok(uid)
    }

    /// M4: fork-on-conflict put — derive a new untagged version from
    /// `base` (or start a fresh untagged lineage with `None`). Concurrent
    /// puts against the same base create conflicting heads, visible via
    /// [`list_untagged_branches`](Self::list_untagged_branches).
    pub fn put_conflict(
        &self,
        key: impl Into<Bytes>,
        base: Option<Digest>,
        value: Value,
    ) -> Result<Digest> {
        self.put_conflict_with_context(key, base, value, Bytes::new())
    }

    /// M4 with application metadata stored in the FObject `context`
    /// field. Because the uid commits to the context (alongside value,
    /// bases and depth), context carried here is tamper-evident — a
    /// block store keeps its header fields (timestamps, proposer ids)
    /// in it and gets content-addressed headers for free.
    pub fn put_conflict_with_context(
        &self,
        key: impl Into<Bytes>,
        base: Option<Digest>,
        value: Value,
        context: impl Into<Bytes>,
    ) -> Result<Digest> {
        let key = key.into();
        if let Some(base) = base {
            let obj = FObject::load(self.store(), base)?;
            if obj.key != key {
                return Err(FbError::VersionNotFound(base));
            }
        }
        self.commit(&key, &value, base.into_iter().collect(), context.into())
    }

    /// Batched **linked** M4: append `items` as one untagged chain —
    /// each version's base is the previous item's uid (the first links
    /// to `base`, or starts a fresh lineage with `None`). Unlike
    /// [`put_conflict_many`](Self::put_conflict_many), whose entries
    /// carry independent pre-existing bases, the in-batch parent links
    /// here are only known as the batch encodes, so the chain is built
    /// in one pass: every meta chunk is encoded against its
    /// predecessor's uid outside any lock, all of them land with a
    /// single [`ChunkStore::put_many`] (one group-commit fsync round on
    /// a durable store), and the UB-table records the whole chain under
    /// one slot-lock hold — intermediate versions are retired as they
    /// are superseded, so only the final uid surfaces as a new head.
    /// Returns the uids in item order.
    pub fn append_chain<I>(
        &self,
        key: impl Into<Bytes>,
        base: Option<Digest>,
        items: I,
    ) -> Result<Vec<Digest>>
    where
        I: IntoIterator<Item = (Value, Bytes)>,
    {
        let key = key.into();
        if let Some(base) = base {
            let obj = FObject::load(self.store(), base)?;
            if obj.key != key {
                return Err(FbError::VersionNotFound(base));
            }
        }
        let (mut bases, mut depth) = self.chain_link(base)?;
        let mut chunks: Vec<Chunk> = Vec::new();
        let mut links: Vec<(Digest, Vec<Digest>)> = Vec::new();
        for (value, context) in items {
            let obj = FObject::new(key.clone(), &value, bases.clone(), depth, context);
            let chunk = obj.to_chunk();
            let uid = chunk.cid();
            links.push((uid, bases));
            chunks.push(chunk);
            bases = vec![uid];
            depth += 1;
        }
        if chunks.is_empty() {
            return Ok(Vec::new());
        }
        self.store.put_many(chunks);
        let slot = self.branches.slot(&key);
        let mut table = slot.write();
        let mut uids = Vec::with_capacity(links.len());
        for (uid, bases) in links {
            table.record_version(uid, &bases);
            uids.push(uid);
        }
        Ok(uids)
    }

    /// Build and persist the FObject meta chunk. Touches only the chunk
    /// store — callers record the new version in the branch table
    /// themselves, so this is safe to call with the branch lock held
    /// (the lock is **not reentrant**).
    fn persist_object(
        &self,
        key: &Bytes,
        value: &Value,
        bases: &[Digest],
        context: Bytes,
    ) -> Result<Digest> {
        let depth = bases
            .iter()
            .map(|b| {
                FObject::load(self.store(), *b)
                    .map(|o| o.depth + 1)
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        let obj = FObject::new(key.clone(), value, bases.to_vec(), depth, context);
        let chunk = obj.to_chunk();
        let uid = chunk.cid();
        self.store.put(chunk);
        Ok(uid)
    }

    /// Create and persist the FObject; update the UB-table. Must be called
    /// **without** the branch lock held.
    fn commit(
        &self,
        key: &Bytes,
        value: &Value,
        bases: Vec<Digest>,
        context: Bytes,
    ) -> Result<Digest> {
        let uid = self.persist_object(key, value, &bases, context)?;
        self.branches.slot(key).write().record_version(uid, &bases);
        Ok(uid)
    }

    /// Batched M4: one fork-on-conflict put per `(key, base, value)`
    /// entry, all meta chunks landing with a single
    /// [`ChunkStore::put_many`] group-commit round. Every base is
    /// validated before anything is written; UB-tables are updated per
    /// key under that key's own slot lock. Returns the new uids in entry
    /// order.
    pub fn put_conflict_many<I, K>(&self, entries: I) -> Result<Vec<Digest>>
    where
        I: IntoIterator<Item = (K, Option<Digest>, Value)>,
        K: Into<Bytes>,
    {
        let entries: Vec<(Bytes, Option<Digest>, Value)> = entries
            .into_iter()
            .map(|(k, b, v)| (k.into(), b, v))
            .collect();
        for (key, base, _) in &entries {
            if let Some(base) = base {
                let obj = FObject::load(self.store(), *base)?;
                if obj.key != *key {
                    return Err(FbError::VersionNotFound(*base));
                }
            }
        }
        let mut chunks: Vec<Chunk> = Vec::with_capacity(entries.len());
        let mut metas: Vec<(Bytes, Digest, Vec<Digest>)> = Vec::with_capacity(entries.len());
        for (key, base, value) in &entries {
            let (bases, depth) = self.chain_link(*base)?;
            let obj = FObject::new(key.clone(), value, bases.clone(), depth, Bytes::new());
            let chunk = obj.to_chunk();
            metas.push((key.clone(), chunk.cid(), bases));
            chunks.push(chunk);
        }
        self.store.put_many(chunks);
        let mut uids = Vec::with_capacity(metas.len());
        for (key, uid, bases) in metas {
            self.branches.slot(&key).write().record_version(uid, &bases);
            uids.push(uid);
        }
        Ok(uids)
    }

    // ---- Get (M1, M2) ----------------------------------------------------

    /// M1: read the head version of a tagged branch (default branch when
    /// `None`).
    pub fn get(&self, key: impl Into<Bytes>, branch: Option<&str>) -> Result<FObject> {
        let uid = self.head(key, branch)?;
        FObject::load(self.store(), uid)
    }

    /// The head uid of a tagged branch.
    pub fn head(&self, key: impl Into<Bytes>, branch: Option<&str>) -> Result<Digest> {
        let key = key.into();
        let branch = branch.unwrap_or(DEFAULT_BRANCH);
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let head = slot.read().head(branch);
        head.ok_or_else(|| FbError::BranchNotFound(branch.to_string()))
    }

    /// M2: read a specific version by uid (works for both tagged and
    /// untagged lineages).
    pub fn get_version(&self, key: impl Into<Bytes>, uid: Digest) -> Result<FObject> {
        let key = key.into();
        let obj = FObject::load(self.store(), uid)?;
        if obj.key != key {
            return Err(FbError::VersionNotFound(uid));
        }
        Ok(obj)
    }

    /// Convenience: decode the head value of a branch.
    pub fn get_value(&self, key: impl Into<Bytes>, branch: Option<&str>) -> Result<Value> {
        let obj = self.get(key, branch)?;
        obj.value(self.store())
    }

    /// Latest committed value of `subkey` inside the Map at `key`'s
    /// default-branch head — the hot tier's fall-through read. A missing
    /// key, branch or subkey is `Ok(None)`; only store/decode failures
    /// (or a non-Map head) error.
    pub fn map_get_latest(&self, key: &Bytes, subkey: &[u8]) -> Result<Option<Bytes>> {
        let slot = match self.branches.get(key) {
            Some(slot) => slot,
            None => return Ok(None),
        };
        let head = slot.read().head(DEFAULT_BRANCH);
        let Some(uid) = head else { return Ok(None) };
        let obj = FObject::load(self.store(), uid)?;
        let map = obj.value(self.store())?.as_map()?;
        Ok(map.get(self.store(), subkey))
    }

    // ---- View (M8–M10) ---------------------------------------------------

    /// M8: every key with at least one branch.
    pub fn list_keys(&self) -> Vec<Bytes> {
        self.branches.keys()
    }

    /// M9: tagged branch names and head uids of a key.
    pub fn list_tagged_branches(&self, key: impl Into<Bytes>) -> Result<Vec<(String, Digest)>> {
        let key = key.into();
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let out = slot.read().tagged_branches();
        Ok(out)
    }

    /// M10: untagged (fork-on-conflict) heads of a key. A single entry
    /// means no conflict.
    pub fn list_untagged_branches(&self, key: impl Into<Bytes>) -> Result<Vec<Digest>> {
        let key = key.into();
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let out = slot.read().untagged_heads();
        Ok(out)
    }

    // ---- Fork (M11–M14) ---------------------------------------------------

    /// M11: create a tagged branch from an existing branch's head.
    pub fn fork(&self, key: impl Into<Bytes>, from: &str, new_branch: &str) -> Result<()> {
        let key = key.into();
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let mut table = slot.write();
        if table.has_branch(new_branch) {
            return Err(FbError::BranchExists(new_branch.to_string()));
        }
        let head = table
            .head(from)
            .ok_or_else(|| FbError::BranchNotFound(from.to_string()))?;
        table.set_head(new_branch, head);
        Ok(())
    }

    /// M12: create a tagged branch at a (possibly non-head) version,
    /// making history modifiable (§3.3: "to change a historical version, a
    /// new branch can be created at that version").
    pub fn fork_version(&self, key: impl Into<Bytes>, uid: Digest, new_branch: &str) -> Result<()> {
        let key = key.into();
        let obj = FObject::load(self.store(), uid)?;
        if obj.key != key {
            return Err(FbError::VersionNotFound(uid));
        }
        let slot = self.branches.slot(&key);
        let mut table = slot.write();
        if table.has_branch(new_branch) {
            return Err(FbError::BranchExists(new_branch.to_string()));
        }
        table.set_head(new_branch, uid);
        Ok(())
    }

    /// M13: rename a tagged branch.
    pub fn rename_branch(&self, key: impl Into<Bytes>, from: &str, to: &str) -> Result<()> {
        let key = key.into();
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let mut table = slot.write();
        if table.has_branch(to) {
            return Err(FbError::BranchExists(to.to_string()));
        }
        if !table.rename(from, to) {
            return Err(FbError::BranchNotFound(from.to_string()));
        }
        Ok(())
    }

    /// M14: remove a tagged branch. Versions stay in the store (they may
    /// be shared with other branches and histories). If no other tagged
    /// branch names the removed head, it is also retired from the
    /// UB-table, so the branch's exclusive versions become unreachable
    /// and a later [`gc`](crate::gc) pass can reclaim them. Heads created
    /// purely by fork-on-conflict are unaffected — they are never tagged,
    /// so this path cannot retire them.
    pub fn remove_branch(&self, key: impl Into<Bytes>, branch: &str) -> Result<()> {
        let key = key.into();
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let mut table = slot.write();
        let head = table
            .remove_branch(branch)
            .ok_or_else(|| FbError::BranchNotFound(branch.to_string()))?;
        let still_named = table.tagged_branches().iter().any(|(_, h)| *h == head);
        if !still_named {
            table.retire_untagged(head);
        }
        Ok(())
    }

    /// Retire fork-on-conflict heads from `key`'s UB-table without
    /// recording successors — the complement of
    /// [`remove_branch`](Self::remove_branch) for *untagged* lineages.
    /// Versions stay in the store; retiring a head only stops naming it
    /// as a leaf of the derivation graph, so the lineage's exclusive
    /// versions become reclaimable by a later [`gc`](crate::gc) pass. A
    /// head that is also the head of a tagged branch is skipped (the
    /// tagged ref still names it), as is a digest that is not currently
    /// an untagged head. Returns how many heads were actually retired.
    pub fn retire_untagged_heads(&self, key: impl Into<Bytes>, heads: &[Digest]) -> Result<usize> {
        let key = key.into();
        let slot = self.branches.get(&key).ok_or(FbError::KeyNotFound)?;
        let mut table = slot.write();
        let tagged: Vec<Digest> = table.tagged_branches().iter().map(|(_, h)| *h).collect();
        let mut retired = 0usize;
        for head in heads {
            if tagged.contains(head) {
                continue;
            }
            if table.retire_untagged(*head) {
                retired += 1;
            }
        }
        Ok(retired)
    }

    // ---- Track (M15–M17) --------------------------------------------------

    /// M15: versions of a branch within `[min_dist, max_dist]` hops from
    /// the head.
    pub fn track(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        min_dist: u64,
        max_dist: u64,
    ) -> Result<Vec<history::TrackedVersion>> {
        let head = self.head(key, branch)?;
        history::track(self.store(), head, min_dist, max_dist)
    }

    /// M16: versions within a distance range from an arbitrary version.
    pub fn track_version(
        &self,
        key: impl Into<Bytes>,
        uid: Digest,
        min_dist: u64,
        max_dist: u64,
    ) -> Result<Vec<history::TrackedVersion>> {
        let key = key.into();
        let obj = FObject::load(self.store(), uid)?;
        if obj.key != key {
            return Err(FbError::VersionNotFound(uid));
        }
        history::track(self.store(), uid, min_dist, max_dist)
    }

    /// M17: the least common ancestor of two versions of the same key.
    pub fn lca(&self, key: impl Into<Bytes>, a: Digest, b: Digest) -> Result<Option<Digest>> {
        let key = key.into();
        for uid in [a, b] {
            let obj = FObject::load(self.store(), uid)?;
            if obj.key != key {
                return Err(FbError::VersionNotFound(uid));
            }
        }
        history::lca(self.store(), a, b)
    }

    // ---- Checkpoint / restore (engine extension) --------------------------

    /// Capture every key's branch table as a canonical snapshot. Each
    /// slot is read consistently; under concurrent writers the snapshot
    /// as a whole is some interleaving of their per-key publishes (the
    /// same guarantee readers get).
    pub fn snapshot_branches(&self) -> BranchSnapshot {
        let mut entries: Vec<_> = Vec::new();
        self.branches.for_each(|key, table| {
            entries.push((key.clone(), table.tagged_branches(), table.untagged_heads()));
        });
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        BranchSnapshot { entries }
    }

    /// Persist the branch tables as a checkpoint chunk and return its cid
    /// — the one piece of state to keep outside the store (cf. git refs).
    pub fn checkpoint(&self) -> Digest {
        let chunk = self.snapshot_branches().to_chunk();
        let cid = chunk.cid();
        self.store.put(chunk);
        cid
    }

    /// Reopen an instance from a store plus the cid of a checkpoint taken
    /// with [`checkpoint`](Self::checkpoint). All branch heads, tagged and
    /// untagged, are restored; the data itself was already durable.
    pub fn restore(
        store: Arc<dyn ChunkStore>,
        cfg: ChunkerConfig,
        checkpoint: Digest,
    ) -> Result<Engine> {
        let chunk = store
            .get(&checkpoint)
            .ok_or(FbError::VersionNotFound(checkpoint))?;
        if chunk.ty() != forkbase_chunk::ChunkType::Checkpoint {
            return Err(FbError::Corrupt(format!(
                "cid {} is not a checkpoint chunk",
                checkpoint.short_hex()
            )));
        }
        let snap = BranchSnapshot::decode(chunk.payload())?;
        let branches = ShardedBranchMap::new();
        for (key, tagged, untagged) in snap.entries {
            let slot = branches.slot(&key);
            let mut table = slot.write();
            for (name, head) in tagged {
                table.set_head(&name, head);
            }
            for head in untagged {
                table.record_version(head, &[]);
            }
        }
        Ok(Engine {
            store,
            cfg,
            branches,
            durable: None,
            cache: None,
            ckpt_lock: Mutex::new(()),
        })
    }

    // ---- Merge (M5–M7) ----------------------------------------------------

    /// M5: merge another branch into `target`; only `target`'s head moves.
    pub fn merge_branches(
        &self,
        key: impl Into<Bytes>,
        target: &str,
        reference: &str,
        resolver: &Resolver,
    ) -> Result<Digest> {
        let key = key.into();
        let ref_head = self.head(key.clone(), Some(reference))?;
        self.merge_with_version(key, target, ref_head, resolver)
    }

    /// M6: merge a specific version into a tagged branch.
    pub fn merge_with_version(
        &self,
        key: impl Into<Bytes>,
        target: &str,
        ref_uid: Digest,
        resolver: &Resolver,
    ) -> Result<Digest> {
        let key = key.into();
        let tgt_head = self.head(key.clone(), Some(target))?;
        let uid = self.merge_pair(&key, tgt_head, ref_uid, resolver)?;
        self.branches.slot(&key).write().set_head(target, uid);
        Ok(uid)
    }

    /// M7: merge a collection of (typically untagged) heads into one new
    /// untagged head, logically replacing the inputs.
    pub fn merge_versions(
        &self,
        key: impl Into<Bytes>,
        uids: &[Digest],
        resolver: &Resolver,
    ) -> Result<Digest> {
        let key = key.into();
        let mut iter = uids.iter();
        let mut acc = *iter.next().ok_or(FbError::KeyNotFound)?;
        for &next in iter {
            acc = self.merge_pair(&key, acc, next, resolver)?;
        }
        Ok(acc)
    }

    /// Three-way merge of two versions; creates and records the merged
    /// FObject (bases = both parents).
    fn merge_pair(
        &self,
        key: &Bytes,
        ours: Digest,
        theirs: Digest,
        resolver: &Resolver,
    ) -> Result<Digest> {
        if ours == theirs {
            return Ok(ours);
        }
        let ours_obj = self.get_version(key.clone(), ours)?;
        let theirs_obj = self.get_version(key.clone(), theirs)?;
        let base_uid = history::lca(self.store(), ours, theirs)?;
        let base_obj = match base_uid {
            Some(uid) => Some(FObject::load(self.store(), uid)?),
            None => None,
        };

        // Merging a version that is an ancestor of the other is a
        // fast-forward.
        if base_uid == Some(theirs) {
            return Ok(ours);
        }
        if base_uid == Some(ours) {
            let merged = theirs_obj.value(self.store())?;
            return self.commit(key, &merged, vec![ours, theirs], Bytes::new());
        }

        let merged = self.merge_values(&ours_obj, &theirs_obj, base_obj.as_ref(), resolver)?;
        self.commit(key, &merged, vec![ours, theirs], Bytes::new())
    }

    /// Type-specific three-way value merge (§4.5.2).
    fn merge_values(
        &self,
        ours: &FObject,
        theirs: &FObject,
        base: Option<&FObject>,
        resolver: &Resolver,
    ) -> Result<Value> {
        if ours.vtype != theirs.vtype {
            return Err(FbError::TypeMismatch {
                found: theirs.vtype.name(),
                expected: ours.vtype.name(),
            });
        }
        let store = self.store();
        let ours_v = ours.value(store)?;
        let theirs_v = theirs.value(store)?;
        let base_v = match base {
            Some(b) if b.vtype == ours.vtype => Some(b.value(store)?),
            _ => None,
        };

        match ours.vtype {
            ValueType::Map | ValueType::Set => {
                let ty = if ours.vtype == ValueType::Map {
                    TreeType::Map
                } else {
                    TreeType::Set
                };
                let base_root = match &base_v {
                    Some(v) => v.tree_root().expect("chunkable").1,
                    None => builder::build_items(store, &self.cfg, ty, std::iter::empty()),
                };
                let ours_root = ours_v.tree_root().expect("chunkable").1;
                let theirs_root = theirs_v.tree_root().expect("chunkable").1;
                let out = merge3_sorted(
                    store,
                    &self.cfg,
                    ty,
                    base_root,
                    ours_root,
                    theirs_root,
                    resolver,
                )
                .map_err(|e| match e {
                    forkbase_pos::MergeError::Conflicts(c) => FbError::MergeConflict(c.len()),
                    forkbase_pos::MergeError::Corrupt(t) => FbError::from(t),
                })?;
                Ok(if ours.vtype == ValueType::Map {
                    Value::Map(Map::from_root(out.root))
                } else {
                    Value::Set(Set::from_root(out.root))
                })
            }
            ValueType::Blob => {
                let base_root = match &base_v {
                    Some(v) => v.tree_root().expect("chunkable").1,
                    None => builder::build_blob(store, &self.cfg, &[]),
                };
                let ours_root = ours_v.tree_root().expect("chunkable").1;
                let theirs_root = theirs_v.tree_root().expect("chunkable").1;
                let root = merge3_blob(store, &self.cfg, base_root, ours_root, theirs_root)
                    .map_err(|e| match e {
                        forkbase_pos::BlobMergeError::Conflict(_) => FbError::MergeConflict(1),
                        forkbase_pos::BlobMergeError::Corrupt(t) => FbError::from(t),
                    })?;
                Ok(Value::Blob(Blob::from_root(root)))
            }
            // Whole-value merge for primitives and List.
            _ => {
                if ours_v == theirs_v {
                    return Ok(ours_v);
                }
                if base_v.as_ref() == Some(&ours_v) {
                    return Ok(theirs_v);
                }
                if base_v.as_ref() == Some(&theirs_v) {
                    return Ok(ours_v);
                }
                match resolver {
                    Resolver::TakeOurs => Ok(ours_v),
                    Resolver::TakeTheirs => Ok(theirs_v),
                    Resolver::Append => match (&ours_v, &theirs_v) {
                        (Value::String(a), Value::String(b)) => {
                            Ok(Value::String(format!("{a}{b}")))
                        }
                        _ => Err(FbError::MergeConflict(1)),
                    },
                    Resolver::Aggregate => match (&base_v, &ours_v, &theirs_v) {
                        (Some(Value::Int(b)), Value::Int(o), Value::Int(t)) => {
                            Ok(Value::Int(b + (o - b) + (t - b)))
                        }
                        (None, Value::Int(o), Value::Int(t)) => Ok(Value::Int(o + t)),
                        _ => Err(FbError::MergeConflict(1)),
                    },
                    _ => Err(FbError::MergeConflict(1)),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The ForkBase handle: engine core + optional hot-state tier
// ---------------------------------------------------------------------------

/// An embedded ForkBase instance: one servlet plus one chunk storage
/// (§4.1: "when used as an embedded storage, only one servlet and one
/// chunk storage are instantiated"), fronted by an optional flat
/// hot-state tier (see [`crate::hot`]).
///
/// `ForkBase` derefs to [`Engine`], so the entire M1–M17 surface is
/// available on a handle. The handle additionally overlays hot-tier
/// coordination on the methods where the two tiers could disagree about
/// a key's **default branch**:
///
/// * tree **writes** (`put`, `put_many`, `commit_map_batch`, merges, …)
///   first publish the key's pending hot edits into the tree and
///   invalidate its hot entries, so the write's base head already
///   contains every earlier `hot_put`;
/// * tree **reads** (`get`, `get_value`, `head`, `track`, `fork`) first
///   publish pending hot edits, so a `get` observes every `hot_put`
///   that happened before it (read-your-writes across tiers).
///
/// Tagged non-default branches and version reads never touch the hot
/// tier — historical/cold reads always fall through to the POS-Tree.
pub struct ForkBase {
    inner: Arc<Engine>,
    hot: Option<HotTier>,
}

impl std::ops::Deref for ForkBase {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.inner
    }
}

impl ForkBase {
    /// In-memory instance with default chunking parameters and the hot
    /// tier off.
    pub fn in_memory() -> ForkBase {
        Self::from_engine(Engine::in_memory(), HotTierConfig::default())
    }

    /// In-memory instance with an explicit hot-tier configuration.
    pub fn in_memory_hot(hot: HotTierConfig) -> ForkBase {
        Self::from_engine(Engine::in_memory(), hot)
    }

    /// Instance over an arbitrary chunk store (persistent, partitioned,
    /// replicated, …), hot tier off.
    pub fn with_store(store: Arc<dyn ChunkStore>, cfg: ChunkerConfig) -> ForkBase {
        Self::from_engine(Engine::with_store(store, cfg), HotTierConfig::default())
    }

    /// [`with_store`](Self::with_store) with an explicit hot-tier
    /// configuration.
    pub fn with_store_hot(
        store: Arc<dyn ChunkStore>,
        cfg: ChunkerConfig,
        hot: HotTierConfig,
    ) -> ForkBase {
        Self::from_engine(Engine::with_store(store, cfg), hot)
    }

    /// Open (or create) a durable instance in directory `path` over a
    /// segmented [`LogStore`] with default chunking, sizing,
    /// [`Durability`], the default read-tier chunk cache
    /// ([`CacheConfig::default`] — on), and the hot tier off. If a
    /// previous session left a checkpoint ref (written by
    /// [`commit_checkpoint`](Engine::commit_checkpoint)), all branch
    /// heads are restored from it.
    pub fn open(path: impl AsRef<Path>) -> Result<ForkBase> {
        Ok(Self::from_engine(
            Engine::open(path)?,
            HotTierConfig::default(),
        ))
    }

    /// [`open`](Self::open) with explicit chunking configuration,
    /// durability policy, read-tier cache sizing (pass
    /// [`CacheConfig::disabled`] for raw `LogStore` reads), and
    /// hot-tier configuration (pass [`HotTierConfig::default`] for the
    /// tree-only engine).
    pub fn open_with(
        path: impl AsRef<Path>,
        cfg: ChunkerConfig,
        durability: Durability,
        cache: CacheConfig,
        hot: HotTierConfig,
    ) -> Result<ForkBase> {
        Ok(Self::from_engine(
            Engine::open_with(path, cfg, durability, cache)?,
            hot,
        ))
    }

    /// Reopen an instance from a store plus the cid of a checkpoint
    /// taken with [`checkpoint`](Engine::checkpoint), hot tier off.
    pub fn restore(
        store: Arc<dyn ChunkStore>,
        cfg: ChunkerConfig,
        checkpoint: Digest,
    ) -> Result<ForkBase> {
        Ok(Self::from_engine(
            Engine::restore(store, cfg, checkpoint)?,
            HotTierConfig::default(),
        ))
    }

    fn from_engine(engine: Engine, hot: HotTierConfig) -> ForkBase {
        let inner = Arc::new(engine);
        let hot = HotTier::spawn(Arc::clone(&inner), hot);
        ForkBase { inner, hot }
    }

    /// The shared engine core behind this handle.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner
    }

    /// Whether this handle fronts the engine with a hot tier.
    pub fn hot_enabled(&self) -> bool {
        self.hot.is_some()
    }

    // ---- Hot-tier surface --------------------------------------------------

    /// Latest value of `subkey` under `key`'s default branch: answered
    /// from the hot tier when it knows the subkey (including
    /// tombstones), falling through to the committed POS-Tree map for
    /// cold entries. With the tier off this *is* the tree read.
    pub fn hot_get(&self, key: impl Into<Bytes>, subkey: &[u8]) -> Result<Option<Bytes>> {
        let key = key.into();
        match &self.hot {
            Some(hot) => hot.get(&key, subkey),
            None => self.inner.map_get_latest(&key, subkey),
        }
    }

    /// Write `subkey = value` into `key`'s latest state. With the tier
    /// on, the write lands in the flat index immediately (visible to
    /// [`hot_get`](Self::hot_get) before any tree work) and is drained
    /// into the POS-Tree by the background publisher. With the tier off
    /// it is a synchronous one-edit [`commit_map_batch`](Engine::commit_map_batch).
    pub fn hot_put(
        &self,
        key: impl Into<Bytes>,
        subkey: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<()> {
        let key = key.into();
        match &self.hot {
            Some(hot) => hot.put_many(&key, vec![(subkey.into(), Some(value.into()))]),
            None => {
                let mut wb = forkbase_pos::WriteBatch::new();
                wb.put(subkey.into(), value.into());
                self.inner.commit_map_batch(key, None, wb).map(|_| ())
            }
        }
    }

    /// Batched [`hot_put`](Self::hot_put): `None` values are deletes.
    /// One enqueue (and, with the tier off, one tree splice) for the
    /// whole batch.
    pub fn hot_put_many(
        &self,
        key: impl Into<Bytes>,
        entries: impl IntoIterator<Item = (Bytes, Option<Bytes>)>,
    ) -> Result<()> {
        let key = key.into();
        let entries: Vec<(Bytes, Option<Bytes>)> = entries.into_iter().collect();
        if entries.is_empty() {
            return Ok(());
        }
        match &self.hot {
            Some(hot) => hot.put_many(&key, entries),
            None => {
                let mut wb = forkbase_pos::WriteBatch::new();
                for (sk, v) in entries {
                    match v {
                        Some(v) => {
                            wb.put(sk, v);
                        }
                        None => {
                            wb.delete(sk);
                        }
                    }
                }
                self.inner.commit_map_batch(key, None, wb).map(|_| ())
            }
        }
    }

    /// Delete `subkey` from `key`'s latest state (a tombstone in the hot
    /// tier until published).
    pub fn hot_delete(&self, key: impl Into<Bytes>, subkey: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        match &self.hot {
            Some(hot) => hot.put_many(&key, vec![(subkey.into(), None)]),
            None => {
                let mut wb = forkbase_pos::WriteBatch::new();
                wb.delete(subkey.into());
                self.inner.commit_map_batch(key, None, wb).map(|_| ())
            }
        }
    }

    /// Publish every pending hot edit into the POS-Tree and, on a
    /// durable instance, [`commit_checkpoint`](Engine::commit_checkpoint)
    /// the result. When this returns, every `hot_put` that happened
    /// before the call is committed (crash-recoverable on durable
    /// instances); per-key uids are readable via [`head`](Self::head).
    /// A no-op with the tier off (writes were synchronous).
    pub fn flush_hot(&self) -> Result<()> {
        match &self.hot {
            Some(hot) => hot.flush(),
            None => Ok(()),
        }
    }

    /// Hot-tier counters (hits/misses/writes/published/pending), or
    /// `None` with the tier off.
    pub fn hot_stats(&self) -> Option<HotTierStats> {
        self.hot.as_ref().map(|h| h.stats())
    }

    /// An O(1) snapshot of `key`'s hot-tier state (subkey → value,
    /// `None` = tombstone), or `None` when the tier is off or the key
    /// has no hot entries. The snapshot is immutable and fully isolated
    /// from later writes.
    pub fn hot_snapshot(&self, key: impl Into<Bytes>) -> Option<forkbase_pos::Hamt<Option<Bytes>>> {
        self.hot.as_ref().and_then(|h| h.snapshot(&key.into()))
    }

    // ---- Hot/tree coordination --------------------------------------------

    /// Before a tree write on `key`'s default branch: publish the key's
    /// pending hot edits (so the write's base contains them) and drop
    /// its hot entries (the write makes them stale).
    fn sync_tree_write(&self, key: &Bytes, branch: Option<&str>) -> Result<()> {
        if let Some(hot) = &self.hot {
            if branch.unwrap_or(DEFAULT_BRANCH) == DEFAULT_BRANCH {
                hot.drain_key(key)?;
                hot.invalidate(key);
            }
        }
        Ok(())
    }

    /// Before a tree read of `key`'s default branch: publish pending hot
    /// edits so the read observes earlier `hot_put`s.
    fn sync_tree_read(&self, key: &Bytes, branch: Option<&str>) -> Result<()> {
        if let Some(hot) = &self.hot {
            if branch.unwrap_or(DEFAULT_BRANCH) == DEFAULT_BRANCH {
                hot.drain_key(key)?;
            }
        }
        Ok(())
    }

    // ---- Coordinated overrides of the Engine surface ----------------------
    // (Inherent methods shadow the Deref'd Engine ones; everything not
    // listed here goes straight to the engine.)

    /// [`Engine::put`] with hot-tier coordination.
    pub fn put(&self, key: impl Into<Bytes>, branch: Option<&str>, value: Value) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_write(&key, branch)?;
        self.inner.put(key, branch, value)
    }

    /// [`Engine::put_with_context`] with hot-tier coordination.
    pub fn put_with_context(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        value: Value,
        context: impl Into<Bytes>,
    ) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_write(&key, branch)?;
        self.inner.put_with_context(key, branch, value, context)
    }

    /// [`Engine::put_many`] with hot-tier coordination.
    pub fn put_many<I, K>(&self, branch: Option<&str>, entries: I) -> Result<Vec<Digest>>
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<Bytes>,
    {
        let entries: Vec<(Bytes, Value)> =
            entries.into_iter().map(|(k, v)| (k.into(), v)).collect();
        for (key, _) in &entries {
            self.sync_tree_write(key, branch)?;
        }
        self.inner.put_many(branch, entries)
    }

    /// [`Engine::commit_map_batch`] with hot-tier coordination.
    pub fn commit_map_batch(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        batch: forkbase_pos::WriteBatch,
    ) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_write(&key, branch)?;
        self.inner.commit_map_batch(key, branch, batch)
    }

    /// [`Engine::put_guarded`] with hot-tier coordination.
    pub fn put_guarded(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        value: Value,
        guard: Digest,
    ) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_write(&key, branch)?;
        self.inner.put_guarded(key, branch, value, guard)
    }

    /// [`Engine::get`] with hot-tier coordination.
    pub fn get(&self, key: impl Into<Bytes>, branch: Option<&str>) -> Result<FObject> {
        let key = key.into();
        self.sync_tree_read(&key, branch)?;
        self.inner.get(key, branch)
    }

    /// [`Engine::get_value`] with hot-tier coordination.
    pub fn get_value(&self, key: impl Into<Bytes>, branch: Option<&str>) -> Result<Value> {
        let key = key.into();
        self.sync_tree_read(&key, branch)?;
        self.inner.get_value(key, branch)
    }

    /// [`Engine::head`] with hot-tier coordination.
    pub fn head(&self, key: impl Into<Bytes>, branch: Option<&str>) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_read(&key, branch)?;
        self.inner.head(key, branch)
    }

    /// [`Engine::fork`] with hot-tier coordination (forking *from* the
    /// default branch must capture pending hot edits).
    pub fn fork(&self, key: impl Into<Bytes>, from: &str, new_branch: &str) -> Result<()> {
        let key = key.into();
        self.sync_tree_read(&key, Some(from))?;
        self.inner.fork(key, from, new_branch)
    }

    /// [`Engine::track`] with hot-tier coordination.
    pub fn track(
        &self,
        key: impl Into<Bytes>,
        branch: Option<&str>,
        min_dist: u64,
        max_dist: u64,
    ) -> Result<Vec<history::TrackedVersion>> {
        let key = key.into();
        self.sync_tree_read(&key, branch)?;
        self.inner.track(key, branch, min_dist, max_dist)
    }

    /// [`Engine::merge_branches`] with hot-tier coordination.
    pub fn merge_branches(
        &self,
        key: impl Into<Bytes>,
        target: &str,
        reference: &str,
        resolver: &Resolver,
    ) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_write(&key, Some(target))?;
        self.sync_tree_read(&key, Some(reference))?;
        self.inner.merge_branches(key, target, reference, resolver)
    }

    /// [`Engine::merge_with_version`] with hot-tier coordination.
    pub fn merge_with_version(
        &self,
        key: impl Into<Bytes>,
        target: &str,
        ref_uid: Digest,
        resolver: &Resolver,
    ) -> Result<Digest> {
        let key = key.into();
        self.sync_tree_write(&key, Some(target))?;
        self.inner
            .merge_with_version(key, target, ref_uid, resolver)
    }

    /// [`Engine::commit_checkpoint`], publishing pending hot edits
    /// first so the recovery point contains them.
    pub fn commit_checkpoint(&self) -> Result<Digest> {
        self.flush_hot()?;
        self.inner.commit_checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_default_branch() {
        let db = ForkBase::in_memory();
        let uid = db.put("k", None, Value::String("v1".into())).expect("put");
        let obj = db.get("k", None).expect("get");
        assert_eq!(obj.uid(), uid);
        assert_eq!(
            obj.value(db.store()).expect("value"),
            Value::String("v1".into())
        );
        assert_eq!(obj.depth, 0);
        assert!(obj.bases.is_empty());
    }

    #[test]
    fn versions_chain_through_bases() {
        let db = ForkBase::in_memory();
        let v0 = db.put("k", None, Value::Int(0)).expect("put");
        let v1 = db.put("k", None, Value::Int(1)).expect("put");
        let obj1 = db.get("k", None).expect("get");
        assert_eq!(obj1.uid(), v1);
        assert_eq!(obj1.bases, vec![v0]);
        assert_eq!(obj1.depth, 1);
    }

    #[test]
    fn kv_compliance_when_only_default_branch() {
        // §3.1: "the data model is compliant to the basic key-value model
        // when only the default branch is used".
        let db = ForkBase::in_memory();
        for i in 0..20 {
            db.put("counter", None, Value::Int(i)).expect("put");
        }
        assert_eq!(db.get_value("counter", None).expect("get"), Value::Int(19));
    }

    #[test]
    fn missing_key_and_branch_errors() {
        let db = ForkBase::in_memory();
        assert_eq!(
            db.get("nope", None).expect_err("missing"),
            FbError::KeyNotFound
        );
        db.put("k", None, Value::Int(1)).expect("put");
        assert!(matches!(
            db.get("k", Some("feature")).expect_err("missing branch"),
            FbError::BranchNotFound(_)
        ));
        assert!(matches!(
            db.put("k", Some("feature"), Value::Int(2))
                .expect_err("missing branch"),
            FbError::BranchNotFound(_)
        ));
    }

    #[test]
    fn fork_on_demand_isolates_branches() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::String("base".into()))
            .expect("put");
        db.fork("k", DEFAULT_BRANCH, "feature").expect("fork");
        db.put("k", Some("feature"), Value::String("feature work".into()))
            .expect("put");

        assert_eq!(
            db.get_value("k", None).expect("get"),
            Value::String("base".into()),
            "master unaffected by feature work"
        );
        assert_eq!(
            db.get_value("k", Some("feature")).expect("get"),
            Value::String("feature work".into())
        );
        let branches = db.list_tagged_branches("k").expect("list");
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn fork_duplicate_name_rejected() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(1)).expect("put");
        db.fork("k", DEFAULT_BRANCH, "b").expect("fork");
        assert!(matches!(
            db.fork("k", DEFAULT_BRANCH, "b").expect_err("dup"),
            FbError::BranchExists(_)
        ));
    }

    #[test]
    fn fork_version_reopens_history() {
        let db = ForkBase::in_memory();
        let v0 = db.put("k", None, Value::Int(0)).expect("put");
        db.put("k", None, Value::Int(1)).expect("put");
        db.fork_version("k", v0, "old").expect("fork");
        assert_eq!(db.get_value("k", Some("old")).expect("get"), Value::Int(0));
        // The historical branch is modifiable.
        db.put("k", Some("old"), Value::Int(100)).expect("put");
        assert_eq!(
            db.get_value("k", Some("old")).expect("get"),
            Value::Int(100)
        );
        assert_eq!(db.get_value("k", None).expect("get"), Value::Int(1));
    }

    #[test]
    fn rename_and_remove_branch() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(1)).expect("put");
        db.fork("k", DEFAULT_BRANCH, "a").expect("fork");
        db.rename_branch("k", "a", "b").expect("rename");
        assert!(db.get("k", Some("a")).is_err());
        assert!(db.get("k", Some("b")).is_ok());
        db.remove_branch("k", "b").expect("remove");
        assert!(db.get("k", Some("b")).is_err());
        // Removing a branch never deletes versions.
        assert_eq!(db.get_value("k", None).expect("get"), Value::Int(1));
    }

    #[test]
    fn guarded_put_detects_races() {
        let db = ForkBase::in_memory();
        let v0 = db.put("k", None, Value::Int(0)).expect("put");
        // Someone else writes first.
        let v1 = db.put("k", None, Value::Int(1)).expect("put");
        let err = db
            .put_guarded("k", None, Value::Int(99), v0)
            .expect_err("stale guard");
        assert_eq!(
            err,
            FbError::GuardFailed {
                expected: v0,
                actual: v1
            }
        );
        // With the current head it succeeds.
        db.put_guarded("k", None, Value::Int(2), v1)
            .expect("guarded put");
        assert_eq!(db.get_value("k", None).expect("get"), Value::Int(2));
    }

    #[test]
    fn fork_on_conflict_creates_untagged_heads() {
        let db = ForkBase::in_memory();
        let v0 = db.put_conflict("k", None, Value::Int(0)).expect("genesis");
        assert_eq!(db.list_untagged_branches("k").expect("list"), vec![v0]);

        // Two concurrent updates against the same base (Figure 3b).
        let w1 = db.put_conflict("k", Some(v0), Value::Int(1)).expect("w1");
        let w2 = db.put_conflict("k", Some(v0), Value::Int(2)).expect("w2");
        let heads = db.list_untagged_branches("k").expect("list");
        assert_eq!(heads.len(), 2, "conflict detected");
        assert!(heads.contains(&w1) && heads.contains(&w2));

        // Merge resolves back to a single head.
        let merged = db
            .merge_versions("k", &heads, &Resolver::Aggregate)
            .expect("merge");
        assert_eq!(db.list_untagged_branches("k").expect("list"), vec![merged]);
        let obj = db.get_version("k", merged).expect("get");
        assert_eq!(
            obj.value(db.store()).expect("value"),
            Value::Int(3),
            "0+1+2 deltas"
        );
        assert_eq!(obj.bases.len(), 2);
    }

    #[test]
    fn map_branch_merge() {
        let db = ForkBase::in_memory();
        let m = db.new_map([("a", "1"), ("b", "2")]);
        db.put("cfg", None, Value::Map(m)).expect("put");
        db.fork("cfg", DEFAULT_BRANCH, "team-x").expect("fork");

        // master edits key a; team-x edits key b.
        let head = db.get("cfg", None).expect("get");
        let m1 = head.value(db.store()).expect("v").as_map().expect("map");
        let m1 = m1
            .put(db.store(), db.cfg(), "a", "master-edit")
            .expect("put");
        db.put("cfg", None, Value::Map(m1)).expect("put");

        let head = db.get("cfg", Some("team-x")).expect("get");
        let m2 = head.value(db.store()).expect("v").as_map().expect("map");
        let m2 = m2
            .put(db.store(), db.cfg(), "b", "teamx-edit")
            .expect("put");
        db.put("cfg", Some("team-x"), Value::Map(m2)).expect("put");

        let merged_uid = db
            .merge_branches("cfg", DEFAULT_BRANCH, "team-x", &Resolver::Fail)
            .expect("merge");
        let obj = db.get("cfg", None).expect("get");
        assert_eq!(obj.uid(), merged_uid);
        let map = obj.value(db.store()).expect("v").as_map().expect("map");
        assert_eq!(
            map.get(db.store(), b"a").expect("a").as_ref(),
            b"master-edit"
        );
        assert_eq!(
            map.get(db.store(), b"b").expect("b").as_ref(),
            b"teamx-edit"
        );
        // Reference branch head unchanged (M5: only the first branch's
        // head is updated).
        let ref_obj = db.get("cfg", Some("team-x")).expect("get");
        assert_ne!(ref_obj.uid(), merged_uid);
    }

    #[test]
    fn merge_conflict_surfaces() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::String("base".into()))
            .expect("put");
        db.fork("k", DEFAULT_BRANCH, "other").expect("fork");
        db.put("k", None, Value::String("ours".into()))
            .expect("put");
        db.put("k", Some("other"), Value::String("theirs".into()))
            .expect("put");
        let err = db
            .merge_branches("k", DEFAULT_BRANCH, "other", &Resolver::Fail)
            .expect_err("conflict");
        assert!(matches!(err, FbError::MergeConflict(_)));
        // choose-one resolves it.
        db.merge_branches("k", DEFAULT_BRANCH, "other", &Resolver::TakeTheirs)
            .expect("resolved");
        assert_eq!(
            db.get_value("k", None).expect("get"),
            Value::String("theirs".into())
        );
    }

    #[test]
    fn fast_forward_merge() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(0)).expect("put");
        db.fork("k", DEFAULT_BRANCH, "ahead").expect("fork");
        db.put("k", Some("ahead"), Value::Int(1)).expect("put");
        db.put("k", Some("ahead"), Value::Int(2)).expect("put");
        // master hasn't moved: merging "ahead" is a fast-forward commit.
        db.merge_branches("k", DEFAULT_BRANCH, "ahead", &Resolver::Fail)
            .expect("ff merge");
        assert_eq!(db.get_value("k", None).expect("get"), Value::Int(2));
    }

    #[test]
    fn track_walks_history() {
        let db = ForkBase::in_memory();
        let mut uids = Vec::new();
        for i in 0..5 {
            uids.push(db.put("k", None, Value::Int(i)).expect("put"));
        }
        let all = db.track("k", None, 0, 10).expect("track");
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].uid, uids[4], "distance 0 is the head");
        assert_eq!(all[4].uid, uids[0], "distance 4 is genesis");

        let window = db.track("k", None, 1, 2).expect("track");
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].uid, uids[3]);
        assert_eq!(window[1].uid, uids[2]);
    }

    #[test]
    fn lca_of_forked_branches() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(0)).expect("put");
        let fork_point = db.put("k", None, Value::Int(1)).expect("put");
        db.fork("k", DEFAULT_BRANCH, "b").expect("fork");
        let a_head = db.put("k", None, Value::Int(2)).expect("put");
        let b_head = db.put("k", Some("b"), Value::Int(3)).expect("put");
        assert_eq!(db.lca("k", a_head, b_head).expect("lca"), Some(fork_point));
    }

    #[test]
    fn list_keys_sorted() {
        let db = ForkBase::in_memory();
        db.put("zebra", None, Value::Int(1)).expect("put");
        db.put("apple", None, Value::Int(2)).expect("put");
        let keys = db.list_keys();
        assert_eq!(keys, vec![Bytes::from("apple"), Bytes::from("zebra")]);
    }

    #[test]
    fn get_version_checks_key() {
        let db = ForkBase::in_memory();
        let uid = db.put("k1", None, Value::Int(1)).expect("put");
        assert!(db.get_version("k2", uid).is_err());
        assert!(db.get_version("k1", uid).is_ok());
    }

    #[test]
    fn put_many_advances_all_heads_atomically() {
        let db = ForkBase::in_memory();
        let uids = db
            .put_many(None, (0..10).map(|i| (format!("key-{i}"), Value::Int(i))))
            .expect("put_many");
        assert_eq!(uids.len(), 10);
        for i in 0..10 {
            assert_eq!(
                db.get_value(format!("key-{i}"), None).expect("get"),
                Value::Int(i)
            );
        }
        // Duplicate keys in one batch chain versions.
        let uids = db
            .put_many(None, [("dup", Value::Int(1)), ("dup", Value::Int(2))])
            .expect("put_many");
        let obj = db.get("dup", None).expect("get");
        assert_eq!(obj.uid(), uids[1]);
        assert_eq!(obj.bases, vec![uids[0]]);
        assert_eq!(db.get_value("dup", None).expect("get"), Value::Int(2));
    }

    #[test]
    fn put_many_missing_branch_moves_no_heads() {
        let db = ForkBase::in_memory();
        db.put("a", None, Value::Int(0)).expect("put");
        let err = db
            .put_many(
                Some("nope"),
                [("a", Value::Int(1)), ("never-written", Value::Int(2))],
            )
            .expect_err("missing branch");
        assert!(matches!(err, FbError::BranchNotFound(_)));
        assert_eq!(db.get_value("a", None).expect("get"), Value::Int(0));
        assert_eq!(
            db.get("never-written", None).expect_err("untouched"),
            FbError::KeyNotFound
        );
    }

    #[test]
    fn commit_map_batch_single_splice_version() {
        let db = ForkBase::in_memory();
        let m = db.new_map([("a", "1"), ("b", "2")]);
        db.put("cfg", None, Value::Map(m)).expect("put");

        let mut wb = forkbase_pos::WriteBatch::new();
        wb.put("c", "3").delete("a").put("b", "2-edited");
        let uid = db.commit_map_batch("cfg", None, wb).expect("commit");

        let obj = db.get("cfg", None).expect("get");
        assert_eq!(obj.uid(), uid);
        assert_eq!(obj.depth, 1, "one committed version for the whole batch");
        let map = obj.value(db.store()).expect("v").as_map().expect("map");
        assert!(map.get(db.store(), b"a").is_none());
        assert_eq!(map.get(db.store(), b"b").expect("b").as_ref(), b"2-edited");
        assert_eq!(map.get(db.store(), b"c").expect("c").as_ref(), b"3");
    }

    #[test]
    fn commit_map_batch_creates_key_on_default_branch() {
        let db = ForkBase::in_memory();
        let mut wb = forkbase_pos::WriteBatch::new();
        wb.put("x", "1");
        db.commit_map_batch("fresh", None, wb).expect("commit");
        let map = db
            .get_value("fresh", None)
            .expect("get")
            .as_map()
            .expect("map");
        assert_eq!(map.get(db.store(), b"x").expect("x").as_ref(), b"1");

        let mut wb = forkbase_pos::WriteBatch::new();
        wb.put("y", "2");
        assert!(matches!(
            db.commit_map_batch("fresh", Some("ghost"), wb)
                .expect_err("branch"),
            FbError::BranchNotFound(_)
        ));
    }

    #[test]
    fn commit_map_batch_rejects_non_map() {
        let db = ForkBase::in_memory();
        db.put("s", None, Value::String("text".into()))
            .expect("put");
        let mut wb = forkbase_pos::WriteBatch::new();
        wb.put("k", "v");
        assert!(matches!(
            db.commit_map_batch("s", None, wb).expect_err("type"),
            FbError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn open_restores_checkpointed_branches() {
        let dir = std::env::temp_dir().join(format!(
            "forkbase-db-open-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        {
            let db = ForkBase::open_with(
                &dir,
                ChunkerConfig::default(),
                forkbase_chunk::Durability::Always,
                CacheConfig::default(),
                HotTierConfig::default(),
            )
            .expect("open");
            assert!(db.durable_store().is_some());
            assert!(db.chunk_cache().is_some(), "cache defaults on");
            db.put("k", None, Value::String("v1".into())).expect("put");
            db.fork("k", DEFAULT_BRANCH, "feature").expect("fork");
            db.put("k", Some("feature"), Value::Int(7)).expect("put");
            db.commit_checkpoint().expect("checkpoint");
        }
        let db = ForkBase::open(&dir).expect("reopen");
        assert_eq!(
            db.get_value("k", None).expect("get"),
            Value::String("v1".into())
        );
        assert_eq!(
            db.get_value("k", Some("feature")).expect("get"),
            Value::Int(7)
        );
        drop(db);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_without_checkpoint_starts_empty_but_keeps_chunks() {
        let dir = std::env::temp_dir().join(format!(
            "forkbase-db-nockpt-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let uid = {
            let db = ForkBase::open(&dir).expect("open");
            let uid = db.put("k", None, Value::Int(1)).expect("put");
            db.durable_store().expect("durable").sync().expect("sync");
            uid
        };
        // No commit_checkpoint: branch heads are gone, but versions are
        // still reachable by uid (chunk durability is independent).
        let db = ForkBase::open(&dir).expect("reopen");
        assert_eq!(
            db.get("k", None).expect_err("no heads"),
            FbError::KeyNotFound
        );
        assert_eq!(
            db.get_version("k", uid)
                .expect("version durable")
                .value(db.store())
                .expect("value"),
            Value::Int(1)
        );
        assert!(matches!(
            ForkBase::in_memory().commit_checkpoint().expect_err("mem"),
            FbError::Io(_)
        ));
        drop(db);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn batched_updates_retain_final_version_only() {
        // §3.5: "when multiple updates of the same object are batched,
        // ForkBase only retains the final version" — modelled by clients
        // chaining edits on the value before a single Put.
        let db = ForkBase::in_memory();
        let blob = db.new_blob(b"start");
        let blob = blob.append(db.store(), db.cfg(), b" middle").expect("edit");
        let blob = blob.append(db.store(), db.cfg(), b" end").expect("edit");
        db.put("doc", None, Value::Blob(blob)).expect("put");
        let obj = db.get("doc", None).expect("get");
        assert_eq!(obj.depth, 0, "one committed version");
        assert_eq!(
            obj.value(db.store())
                .expect("v")
                .as_blob()
                .expect("b")
                .read_all(db.store())
                .expect("read"),
            b"start middle end"
        );
    }
}
