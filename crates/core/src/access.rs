//! Branch-based access control — a "semantic view" layer feature
//! (Figure 1: "Access Control: branch-based").
//!
//! Rules bind a principal to (key pattern, branch pattern, permission).
//! Patterns are exact strings or the wildcard `*`. The most specific
//! matching rule wins (exact key+branch > exact key > exact branch >
//! wildcard); the default policy applies when nothing matches.

use forkbase_crypto::fx::FxHashMap;

/// What a rule grants or denies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Read objects (Get/Track/List).
    Read,
    /// Write objects (Put/Fork/Merge/Rename/Remove).
    Write,
}

#[derive(Clone, Debug)]
struct Rule {
    key: Option<String>,    // None = any key
    branch: Option<String>, // None = any branch
    perm: Permission,
    allow: bool,
}

impl Rule {
    fn matches(&self, key: &str, branch: &str, perm: Permission) -> bool {
        self.perm == perm
            && self.key.as_deref().map(|k| k == key).unwrap_or(true)
            && self.branch.as_deref().map(|b| b == branch).unwrap_or(true)
    }

    /// Higher is more specific.
    fn specificity(&self) -> u8 {
        u8::from(self.key.is_some()) * 2 + u8::from(self.branch.is_some())
    }
}

/// Per-principal rule sets with a configurable default policy.
#[derive(Clone, Debug)]
pub struct AccessControl {
    rules: FxHashMap<String, Vec<Rule>>,
    default_allow: bool,
}

impl AccessControl {
    /// Everything allowed unless denied (suitable for trusted teams).
    pub fn allow_by_default() -> Self {
        AccessControl {
            rules: FxHashMap::default(),
            default_allow: true,
        }
    }

    /// Everything denied unless allowed (suitable for multi-tenant use).
    pub fn deny_by_default() -> Self {
        AccessControl {
            rules: FxHashMap::default(),
            default_allow: false,
        }
    }

    /// Grant `perm` to `user` for the given key/branch patterns (`None` =
    /// any).
    pub fn allow(&mut self, user: &str, key: Option<&str>, branch: Option<&str>, perm: Permission) {
        self.rules.entry(user.to_string()).or_default().push(Rule {
            key: key.map(str::to_string),
            branch: branch.map(str::to_string),
            perm,
            allow: true,
        });
    }

    /// Deny `perm` to `user` for the given key/branch patterns.
    pub fn deny(&mut self, user: &str, key: Option<&str>, branch: Option<&str>, perm: Permission) {
        self.rules.entry(user.to_string()).or_default().push(Rule {
            key: key.map(str::to_string),
            branch: branch.map(str::to_string),
            perm,
            allow: false,
        });
    }

    /// Check whether `user` may perform `perm` on (`key`, `branch`).
    pub fn check(&self, user: &str, key: &str, branch: &str, perm: Permission) -> bool {
        let Some(rules) = self.rules.get(user) else {
            return self.default_allow;
        };
        rules
            .iter()
            .filter(|r| r.matches(key, branch, perm))
            .max_by_key(|r| r.specificity())
            .map(|r| r.allow)
            .unwrap_or(self.default_allow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies() {
        let acl = AccessControl::allow_by_default();
        assert!(acl.check("anyone", "k", "master", Permission::Write));
        let acl = AccessControl::deny_by_default();
        assert!(!acl.check("anyone", "k", "master", Permission::Read));
    }

    #[test]
    fn branch_scoped_write() {
        // Admin A owns master; admin B owns the experimental branch.
        let mut acl = AccessControl::deny_by_default();
        acl.allow("admin-a", None, Some("master"), Permission::Write);
        acl.allow("admin-b", None, Some("experimental"), Permission::Write);
        acl.allow("admin-a", None, None, Permission::Read);
        acl.allow("admin-b", None, None, Permission::Read);

        assert!(acl.check("admin-a", "k", "master", Permission::Write));
        assert!(!acl.check("admin-a", "k", "experimental", Permission::Write));
        assert!(acl.check("admin-b", "k", "experimental", Permission::Write));
        assert!(!acl.check("admin-b", "k", "master", Permission::Write));
        assert!(acl.check("admin-b", "k", "master", Permission::Read));
    }

    #[test]
    fn specific_rule_overrides_wildcard() {
        let mut acl = AccessControl::allow_by_default();
        acl.deny("user", None, None, Permission::Write);
        acl.allow("user", Some("own-doc"), None, Permission::Write);

        assert!(!acl.check("user", "other-doc", "master", Permission::Write));
        assert!(acl.check("user", "own-doc", "master", Permission::Write));
    }

    #[test]
    fn key_and_branch_most_specific() {
        let mut acl = AccessControl::deny_by_default();
        acl.allow("u", Some("k"), None, Permission::Write);
        acl.deny("u", Some("k"), Some("locked"), Permission::Write);
        assert!(acl.check("u", "k", "master", Permission::Write));
        assert!(!acl.check("u", "k", "locked", Permission::Write));
    }

    #[test]
    fn read_write_independent() {
        let mut acl = AccessControl::deny_by_default();
        acl.allow("u", None, None, Permission::Read);
        assert!(acl.check("u", "k", "master", Permission::Read));
        assert!(!acl.check("u", "k", "master", Permission::Write));
    }
}
