//! # ForkBase
//!
//! A Rust implementation of **ForkBase** (Wang et al., VLDB 2018): a
//! storage engine with three properties built in —
//!
//! * **data versioning** — every Put creates a new immutable version; the
//!   full derivation history of each key is queryable;
//! * **fork semantics** — both *fork-on-demand* (named branches, like git)
//!   and *fork-on-conflict* (implicit branches from concurrent writes,
//!   like blockchain forks), with three-way merge and pluggable conflict
//!   resolution;
//! * **tamper evidence** — a version number (`uid`) is a cryptographic
//!   hash that uniquely identifies the object's value *and* its entire
//!   history; an untrusted store cannot alter either without detection.
//!
//! ```
//! use forkbase_core::{ForkBase, Value};
//!
//! let db = ForkBase::in_memory();
//! // Put a blob to the default master branch (paper Figure 4).
//! let blob = db.new_blob(b"my value");
//! db.put("my key", None, Value::Blob(blob)).unwrap();
//! // Fork to a new branch.
//! db.fork("my key", "master", "new branch").unwrap();
//! // Get, modify, commit to that branch.
//! let obj = db.get("my key", Some("new branch")).unwrap();
//! let blob = obj.value(db.store()).unwrap().as_blob().unwrap();
//! let blob = blob.remove(db.store(), db.cfg(), 0, 3).unwrap();
//! let blob = blob.append(db.store(), db.cfg(), b" and some more").unwrap();
//! db.put("my key", Some("new branch"), Value::Blob(blob)).unwrap();
//!
//! let v = db.get("my key", Some("new branch")).unwrap();
//! assert_eq!(
//!     v.value(db.store()).unwrap().as_blob().unwrap()
//!         .read_all(db.store()).unwrap(),
//!     b"value and some more"
//! );
//! assert_eq!(v.depth, 1, "one step from the first version");
//! ```

pub mod access;
pub mod branch;
pub mod checkpoint;
pub mod db;
pub mod error;
pub mod fobject;
pub mod gc;
pub mod history;
pub mod hot;
pub mod value;
pub mod verify;

pub use access::{AccessControl, Permission};
pub use branch::BranchTable;
pub use checkpoint::BranchSnapshot;
pub use db::{Engine, ForkBase, DEFAULT_BRANCH};
pub use error::{FbError, Result};
pub use fobject::FObject;
pub use gc::{compact_into, GcReport};
pub use history::TrackedVersion;
pub use hot::{HotTierConfig, HotTierStats};
pub use value::{Value, ValueType};
pub use verify::{verify_history, verify_object, TamperEvidence};

pub use forkbase_chunk::{ChunkStore, MemStore};
pub use forkbase_crypto::{ChunkerConfig, Digest};
pub use forkbase_pos::{Blob, List, Map, Resolver, Set, TreeError, WriteBatch};
