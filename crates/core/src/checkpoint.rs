//! Branch-table checkpoints — durable refs for the engine.
//!
//! The chunk store persists every version, but the branch tables (TB/UB,
//! §4.5) live in servlet memory: after a restart the data is all there
//! and fully verifiable by uid, yet the *names* — which uid is the head
//! of `master` for key `k` — are gone. A checkpoint serializes every
//! branch table into a single content-addressed
//! [`Checkpoint`](forkbase_chunk::ChunkType::Checkpoint) chunk
//! (cf. git's packed-refs). The returned cid is the only piece of state
//! an operator must keep outside the store to reopen an instance with
//! [`ForkBase::restore`](crate::ForkBase::restore).
//!
//! Checkpoints are deterministic: the same branch state always encodes to
//! the same bytes, hence the same cid — taking a checkpoint twice costs
//! one deduplicated chunk.

use crate::error::{FbError, Result};
use bytes::Bytes;
use forkbase_chunk::codec::{get_bytes, get_varint, put_bytes, put_varint};
use forkbase_chunk::{Chunk, ChunkType};
use forkbase_crypto::Digest;

/// One key's branch table: (key, tagged branches sorted by name,
/// untagged heads sorted).
pub type BranchEntry = (Bytes, Vec<(String, Digest)>, Vec<Digest>);

/// Serializable image of every key's branch table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchSnapshot {
    /// Per key; keys sorted, so encoding is canonical.
    pub entries: Vec<BranchEntry>,
}

impl BranchSnapshot {
    /// Number of keys captured.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Every head (tagged and untagged) in the snapshot — the GC root
    /// set.
    pub fn heads(&self) -> impl Iterator<Item = Digest> + '_ {
        self.entries.iter().flat_map(|(_, tagged, untagged)| {
            tagged
                .iter()
                .map(|(_, h)| *h)
                .chain(untagged.iter().copied())
        })
    }

    /// Serialize into a [`ChunkType::Checkpoint`] chunk.
    pub fn to_chunk(&self) -> Chunk {
        let mut out = Vec::new();
        put_varint(&mut out, self.entries.len() as u64);
        for (key, tagged, untagged) in &self.entries {
            put_bytes(&mut out, key);
            put_varint(&mut out, tagged.len() as u64);
            for (name, head) in tagged {
                put_bytes(&mut out, name.as_bytes());
                out.extend_from_slice(head.as_bytes());
            }
            put_varint(&mut out, untagged.len() as u64);
            for head in untagged {
                out.extend_from_slice(head.as_bytes());
            }
        }
        Chunk::new(ChunkType::Checkpoint, out)
    }

    /// Decode a checkpoint chunk payload.
    pub fn decode(payload: &[u8]) -> Result<BranchSnapshot> {
        let corrupt = || FbError::Corrupt("bad checkpoint encoding".into());
        let read_digest = |payload: &[u8], pos: &mut usize| -> Result<Digest> {
            let end = pos.checked_add(32).ok_or_else(corrupt)?;
            if payload.len() < end {
                return Err(corrupt());
            }
            let d = Digest::from_slice(&payload[*pos..end]).ok_or_else(corrupt)?;
            *pos = end;
            Ok(d)
        };

        let mut pos = 0usize;
        let n_keys = get_varint(payload, &mut pos).ok_or_else(corrupt)? as usize;
        if n_keys > payload.len() {
            return Err(corrupt());
        }
        let mut entries = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            let key = Bytes::copy_from_slice(get_bytes(payload, &mut pos).ok_or_else(corrupt)?);
            let n_tagged = get_varint(payload, &mut pos).ok_or_else(corrupt)? as usize;
            if n_tagged > payload.len() {
                return Err(corrupt());
            }
            let mut tagged = Vec::with_capacity(n_tagged);
            for _ in 0..n_tagged {
                let name =
                    String::from_utf8(get_bytes(payload, &mut pos).ok_or_else(corrupt)?.to_vec())
                        .map_err(|_| corrupt())?;
                let head = read_digest(payload, &mut pos)?;
                tagged.push((name, head));
            }
            let n_untagged = get_varint(payload, &mut pos).ok_or_else(corrupt)? as usize;
            if n_untagged > payload.len() {
                return Err(corrupt());
            }
            let mut untagged = Vec::with_capacity(n_untagged);
            for _ in 0..n_untagged {
                untagged.push(read_digest(payload, &mut pos)?);
            }
            entries.push((key, tagged, untagged));
        }
        Ok(BranchSnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::hash_bytes;

    fn sample() -> BranchSnapshot {
        BranchSnapshot {
            entries: vec![
                (
                    Bytes::from("alpha"),
                    vec![
                        ("feature".to_string(), hash_bytes(b"f")),
                        ("master".to_string(), hash_bytes(b"m")),
                    ],
                    vec![hash_bytes(b"u1"), hash_bytes(b"u2")],
                ),
                (Bytes::from("beta"), vec![], vec![hash_bytes(b"u3")]),
                (Bytes::from("empty-key"), vec![], vec![]),
            ],
        }
    }

    #[test]
    fn round_trip() {
        let snap = sample();
        let chunk = snap.to_chunk();
        assert_eq!(chunk.ty(), ChunkType::Checkpoint);
        let back = BranchSnapshot::decode(chunk.payload()).expect("decode");
        assert_eq!(back, snap);
    }

    #[test]
    fn canonical_encoding_is_deterministic() {
        assert_eq!(sample().to_chunk().cid(), sample().to_chunk().cid());
        // A different head changes the cid.
        let mut other = sample();
        other.entries[0].1[0].1 = hash_bytes(b"different");
        assert_ne!(other.to_chunk().cid(), sample().to_chunk().cid());
    }

    #[test]
    fn heads_enumerates_gc_roots() {
        let snap = sample();
        let heads: Vec<_> = snap.heads().collect();
        assert_eq!(heads.len(), 5, "2 tagged + 3 untagged");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BranchSnapshot::decode(&[0xFF; 3]).is_err());
        let chunk = sample().to_chunk();
        let payload = chunk.payload();
        for cut in [1, 5, payload.len() - 1] {
            assert!(
                BranchSnapshot::decode(&payload[..cut]).is_err(),
                "truncated at {cut}"
            );
        }
    }

    #[test]
    fn empty_snapshot() {
        let snap = BranchSnapshot::default();
        let back = BranchSnapshot::decode(snap.to_chunk().payload()).expect("decode");
        assert_eq!(back.key_count(), 0);
    }
}
