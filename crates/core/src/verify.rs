//! Tamper evidence (§3.2): verifying that an untrusted store has not
//! altered an object's value or its derivation history.
//!
//! A uid is the hash of the meta chunk, which embeds the value (or the
//! value tree's root cid) and the uids of all base versions. Verification
//! therefore re-derives every hash from the returned bytes: if the store
//! substituted any chunk anywhere in the value tree or the history chain,
//! some recomputed hash fails to match the identifier it was fetched by.

use crate::error::{FbError, Result};
use crate::fobject::FObject;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::fx::FxHashSet;
use forkbase_crypto::Digest;
use forkbase_pos::entry::decode_index_payload;

/// Outcome of a verification pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TamperEvidence {
    /// Versions whose meta chunk and value tree verified.
    pub verified_versions: usize,
    /// Value-tree chunks verified.
    pub verified_chunks: usize,
}

/// Fetch a chunk and check its content hashes to the cid it was requested
/// by.
fn fetch_verified(store: &dyn ChunkStore, cid: Digest) -> Result<forkbase_chunk::Chunk> {
    let chunk = store.get(&cid).ok_or(FbError::VersionNotFound(cid))?;
    // `Chunk` recomputes its cid from content, so inequality here means
    // the store returned substituted bytes.
    if chunk.cid() != cid {
        return Err(FbError::Corrupt(format!(
            "chunk {} returned content hashing to {}",
            cid.short_hex(),
            chunk.cid().short_hex()
        )));
    }
    if !chunk.verify() {
        return Err(FbError::Corrupt(format!(
            "chunk {} fails self-verification",
            cid.short_hex()
        )));
    }
    Ok(chunk)
}

/// Verify one version: its meta chunk and (for chunkable types) every
/// chunk of its value tree. Returns the number of value chunks verified.
pub fn verify_object(store: &dyn ChunkStore, uid: Digest) -> Result<usize> {
    let meta = fetch_verified(store, uid)?;
    if meta.ty() != forkbase_chunk::ChunkType::Meta {
        return Err(FbError::Corrupt(format!(
            "uid {} is not a meta chunk",
            uid.short_hex()
        )));
    }
    let obj = FObject::decode(meta.payload())?;
    let value = obj.value(store)?;
    let Some((ty, root)) = value.tree_root() else {
        return Ok(0); // primitive: fully embedded in the (verified) meta chunk
    };

    // Walk the whole POS-Tree, verifying every chunk.
    let mut verified = 0usize;
    let mut stack = vec![root];
    while let Some(cid) = stack.pop() {
        let chunk = fetch_verified(store, cid)?;
        verified += 1;
        if chunk.ty().is_index() {
            let (_, entries) = decode_index_payload(chunk.payload(), ty.is_sorted())
                .ok_or_else(|| FbError::Corrupt("bad index chunk".into()))?;
            stack.extend(entries.iter().map(|e| e.cid));
        }
    }
    Ok(verified)
}

/// Verify a version and its entire derivation history down to the genesis
/// version(s). Proves the history claim of §3.2: the storage cannot
/// present a version `v' ∉ V` as part of the object's history, because
/// every legitimate ancestor is named by hash from the head.
pub fn verify_history(store: &dyn ChunkStore, head: Digest) -> Result<TamperEvidence> {
    let mut versions = 0usize;
    let mut chunks = 0usize;
    let mut seen: FxHashSet<Digest> = FxHashSet::default();
    let mut stack = vec![head];
    seen.insert(head);
    while let Some(uid) = stack.pop() {
        chunks += verify_object(store, uid)?;
        versions += 1;
        let obj = FObject::load(store, uid)?;
        for &base in &obj.bases {
            if seen.insert(base) {
                stack.push(base);
            }
        }
    }
    Ok(TamperEvidence {
        verified_versions: versions,
        verified_chunks: chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ForkBase;
    use crate::value::Value;
    use forkbase_chunk::{Chunk, ChunkType, MemStore, PutOutcome, StoreStats};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// A malicious store: serves substituted chunks for chosen cids.
    struct EvilStore {
        inner: Arc<MemStore>,
        overrides: Mutex<Vec<(Digest, Chunk)>>,
    }

    impl EvilStore {
        fn new(inner: Arc<MemStore>) -> Self {
            EvilStore {
                inner,
                overrides: Mutex::new(Vec::new()),
            }
        }

        fn tamper(&self, victim: Digest, replacement: Chunk) {
            self.overrides.lock().push((victim, replacement));
        }
    }

    impl ChunkStore for EvilStore {
        fn get(&self, cid: &Digest) -> Option<Chunk> {
            for (victim, replacement) in self.overrides.lock().iter() {
                if victim == cid {
                    return Some(replacement.clone());
                }
            }
            self.inner.get(cid)
        }

        fn put(&self, chunk: Chunk) -> PutOutcome {
            self.inner.put(chunk)
        }

        fn contains(&self, cid: &Digest) -> bool {
            self.inner.contains(cid)
        }

        fn stats(&self) -> StoreStats {
            self.inner.stats()
        }
    }

    fn blob_bytes(n: usize) -> Vec<u8> {
        let mut state = 7u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn honest_store_verifies() {
        let db = ForkBase::in_memory();
        let blob = db.new_blob(&blob_bytes(50_000));
        db.put("k", None, Value::Blob(blob)).expect("put");
        db.put("k", None, Value::String("v2".into())).expect("put");
        let head = db.head("k", None).expect("head");

        let report = verify_history(db.store(), head).expect("verify");
        assert_eq!(report.verified_versions, 2);
        assert!(report.verified_chunks > 5, "blob tree chunks verified");
    }

    #[test]
    fn substituted_value_chunk_detected() {
        let mem = Arc::new(MemStore::new());
        let evil = Arc::new(EvilStore::new(mem.clone()));
        let db = ForkBase::with_store(evil.clone() as Arc<dyn ChunkStore>, Default::default());

        let data = blob_bytes(50_000);
        let blob = db.new_blob(&data);
        let uid = db.put("k", None, Value::Blob(blob)).expect("put");
        assert!(verify_object(db.store(), uid).is_ok());

        // The store substitutes one leaf chunk of the value tree.
        let victim = mem
            .cids()
            .into_iter()
            .find(|cid| {
                mem.get(cid)
                    .map(|c| c.ty() == ChunkType::Blob && !c.is_empty())
                    .unwrap_or(false)
            })
            .expect("a blob leaf exists");
        evil.tamper(victim, Chunk::new(ChunkType::Blob, &b"EVIL DATA"[..]));

        let err = verify_object(db.store(), uid).expect_err("tampering detected");
        assert!(matches!(err, FbError::Corrupt(_)));
    }

    #[test]
    fn substituted_history_detected() {
        let mem = Arc::new(MemStore::new());
        let evil = Arc::new(EvilStore::new(mem.clone()));
        let db = ForkBase::with_store(evil.clone() as Arc<dyn ChunkStore>, Default::default());

        let v0 = db
            .put("k", None, Value::String("genesis".into()))
            .expect("put");
        let v1 = db
            .put("k", None, Value::String("second".into()))
            .expect("put");
        assert!(verify_history(db.store(), v1).is_ok());

        // The store rewrites history: serves a forged genesis version.
        let forged = crate::fobject::FObject::new(
            "k",
            &Value::String("FORGED HISTORY".into()),
            vec![],
            0,
            "",
        );
        evil.tamper(v0, forged.to_chunk());

        let err = verify_history(db.store(), v1).expect_err("tampering detected");
        assert!(matches!(err, FbError::Corrupt(_)));
    }

    #[test]
    fn missing_chunk_reported() {
        let db = ForkBase::in_memory();
        let uid = forkbase_crypto::hash_bytes(b"never stored");
        assert!(matches!(
            verify_object(db.store(), uid).expect_err("missing"),
            FbError::VersionNotFound(_)
        ));
    }

    #[test]
    fn verify_counts_whole_dag() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(0)).expect("put");
        db.fork("k", crate::db::DEFAULT_BRANCH, "b").expect("fork");
        db.put("k", None, Value::Int(1)).expect("put");
        db.put("k", Some("b"), Value::Int(2)).expect("put");
        let merged = db
            .merge_branches(
                "k",
                crate::db::DEFAULT_BRANCH,
                "b",
                &forkbase_pos::Resolver::TakeOurs,
            )
            .expect("merge");
        let report = verify_history(db.store(), merged).expect("verify");
        assert_eq!(report.verified_versions, 4, "genesis + 2 branches + merge");
    }
}
