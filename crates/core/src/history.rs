//! Derivation-graph traversal: Track (M15/M16) and LCA (M17).

use crate::error::Result;
use crate::fobject::FObject;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::fx::FxHashSet;
use forkbase_crypto::Digest;
use std::collections::{BinaryHeap, VecDeque};

/// A version reached while walking history.
#[derive(Clone, Debug)]
pub struct TrackedVersion {
    /// The version's uid.
    pub uid: Digest,
    /// Hops from the starting version.
    pub distance: u64,
    /// The decoded FObject.
    pub object: FObject,
}

/// Breadth-first walk of the derivation graph from `start`, following
/// `bases` links, returning versions whose distance lies in
/// `[min_dist, max_dist]`. Results are ordered by distance (then uid for
/// determinism).
///
/// The walk is level-batched: every version at distance *d* is fetched
/// with one [`get_many`](ChunkStore::get_many), so a cache/backing tier
/// with per-request overhead answers each BFS frontier in a single
/// round instead of one `get` per version.
pub fn track(
    store: &dyn ChunkStore,
    start: Digest,
    min_dist: u64,
    max_dist: u64,
) -> Result<Vec<TrackedVersion>> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<Digest> = FxHashSet::default();
    let mut frontier: Vec<Digest> = vec![start];
    seen.insert(start);
    let mut dist = 0u64;

    while !frontier.is_empty() && dist <= max_dist {
        let mut next: Vec<Digest> = Vec::new();
        for (uid, chunk) in frontier.iter().zip(store.get_many(&frontier)) {
            let obj = match chunk {
                Some(c) => FObject::decode_verified(&c, *uid)?,
                None => return Err(crate::error::FbError::VersionNotFound(*uid)),
            };
            if dist < max_dist {
                for &base in &obj.bases {
                    if seen.insert(base) {
                        next.push(base);
                    }
                }
            }
            if dist >= min_dist {
                out.push(TrackedVersion {
                    uid: *uid,
                    distance: dist,
                    object: obj,
                });
            }
        }
        frontier = next;
        dist += 1;
    }
    out.sort_by(|a, b| a.distance.cmp(&b.distance).then(a.uid.cmp(&b.uid)));
    Ok(out)
}

/// The least common ancestor of two versions: the *deepest* version
/// reachable from both via `bases` links (§3.2, §4.5.2 — "the most recent
/// version where they start to fork"). Returns `None` for disjoint
/// histories.
pub fn lca(store: &dyn ChunkStore, a: Digest, b: Digest) -> Result<Option<Digest>> {
    if a == b {
        return Ok(Some(a));
    }
    // All ancestors of `a` (including a itself).
    let mut a_anc: FxHashSet<Digest> = FxHashSet::default();
    let mut queue = VecDeque::new();
    queue.push_back(a);
    a_anc.insert(a);
    while let Some(uid) = queue.pop_front() {
        let obj = FObject::load(store, uid)?;
        for &base in &obj.bases {
            if a_anc.insert(base) {
                queue.push_back(base);
            }
        }
    }

    // Walk up from `b` in depth order (deepest first) so the first common
    // version found is the most recent fork point.
    let load_depth = |uid: Digest| -> Result<u64> { Ok(FObject::load(store, uid)?.depth) };
    let mut heap: BinaryHeap<(u64, Digest)> = BinaryHeap::new();
    let mut seen: FxHashSet<Digest> = FxHashSet::default();
    heap.push((load_depth(b)?, b));
    seen.insert(b);
    while let Some((_, uid)) = heap.pop() {
        if a_anc.contains(&uid) {
            return Ok(Some(uid));
        }
        let obj = FObject::load(store, uid)?;
        for &base in &obj.bases {
            if seen.insert(base) {
                heap.push((load_depth(base)?, base));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use forkbase_chunk::MemStore;
    use std::sync::Arc;

    /// Commit a chain of versions directly into a store.
    fn chain(store: &Arc<MemStore>, key: &str, n: u64) -> Vec<Digest> {
        let mut uids = Vec::new();
        let mut base: Option<Digest> = None;
        for i in 0..n {
            let obj = FObject::new(
                key.to_string(),
                &Value::Int(i as i64),
                base.into_iter().collect(),
                i,
                "",
            );
            let chunk = obj.to_chunk();
            let uid = chunk.cid();
            forkbase_chunk::ChunkStore::put(store.as_ref(), chunk);
            uids.push(uid);
            base = Some(uid);
        }
        uids
    }

    #[test]
    fn track_linear_chain() {
        let store = Arc::new(MemStore::new());
        let uids = chain(&store, "k", 10);
        let head = *uids.last().expect("non-empty");

        let all = track(store.as_ref(), head, 0, 100).expect("track");
        assert_eq!(all.len(), 10);
        for (i, tv) in all.iter().enumerate() {
            assert_eq!(tv.distance, i as u64);
            assert_eq!(tv.uid, uids[9 - i]);
        }

        let window = track(store.as_ref(), head, 2, 4).expect("track");
        assert_eq!(window.len(), 3);
        assert_eq!(window[0].distance, 2);
    }

    #[test]
    fn track_does_not_fetch_beyond_range() {
        let store = Arc::new(MemStore::new());
        let uids = chain(&store, "k", 50);
        let head = *uids.last().expect("non-empty");
        let gets_before = forkbase_chunk::ChunkStore::stats(store.as_ref()).gets;
        track(store.as_ref(), head, 0, 3).expect("track");
        let gets = forkbase_chunk::ChunkStore::stats(store.as_ref()).gets - gets_before;
        assert!(gets <= 5, "fetched {gets} objects for a range of 4");
    }

    #[test]
    fn lca_diamond() {
        let store = Arc::new(MemStore::new());
        let base_uids = chain(&store, "k", 3);
        let fork_point = base_uids[2];

        // Two branches off the fork point, then check their LCA.
        let mk = |val: i64, bases: Vec<Digest>, depth: u64| {
            let obj = FObject::new("k", &Value::Int(val), bases, depth, "");
            let chunk = obj.to_chunk();
            let uid = chunk.cid();
            forkbase_chunk::ChunkStore::put(store.as_ref(), chunk);
            uid
        };
        let left = mk(100, vec![fork_point], 3);
        let left2 = mk(101, vec![left], 4);
        let right = mk(200, vec![fork_point], 3);

        assert_eq!(
            lca(store.as_ref(), left2, right).expect("lca"),
            Some(fork_point)
        );
        assert_eq!(lca(store.as_ref(), left, left).expect("lca"), Some(left));
        // Ancestor relationship: LCA is the ancestor itself.
        assert_eq!(
            lca(store.as_ref(), left2, fork_point).expect("lca"),
            Some(fork_point)
        );
    }

    #[test]
    fn lca_disjoint_histories() {
        let store = Arc::new(MemStore::new());
        let a = chain(&store, "a", 2);
        let b = chain(&store, "b", 2);
        assert_eq!(lca(store.as_ref(), a[1], b[1]).expect("lca"), None);
    }

    #[test]
    fn lca_picks_deepest_common_ancestor() {
        let store = Arc::new(MemStore::new());
        let mk = |val: i64, bases: Vec<Digest>, depth: u64| {
            let obj = FObject::new("k", &Value::Int(val), bases, depth, "");
            let chunk = obj.to_chunk();
            let uid = chunk.cid();
            forkbase_chunk::ChunkStore::put(store.as_ref(), chunk);
            uid
        };
        // g0 <- g1 <- L, R ; both g0 and g1 are common, g1 is deeper.
        let g0 = mk(0, vec![], 0);
        let g1 = mk(1, vec![g0], 1);
        let l = mk(2, vec![g1], 2);
        let r = mk(3, vec![g1], 2);
        assert_eq!(lca(store.as_ref(), l, r).expect("lca"), Some(g1));
    }
}
