//! Garbage collection by copy-compaction.
//!
//! Chunks are immutable and content-addressed, so ForkBase never deletes
//! in place; like git's repack, space is reclaimed by copying the *live*
//! chunks into a fresh store and discarding the old one. A chunk is live
//! when it is reachable from any branch head (tagged or untagged) of any
//! key: meta chunks via the `bases` hash chain — removing a branch never
//! truncates the history of versions still reachable elsewhere — and, for
//! chunkable values, every node of the version's POS-Tree.
//!
//! Garbage arises from removed branches whose exclusive versions nothing
//! else references (M14 keeps the versions in the store, so until a
//! compaction they cost space), from superseded checkpoint chunks, and
//! from objects built but never committed (e.g. abandoned client edits).
//!
//! ```
//! use forkbase_core::{gc, ForkBase, Value};
//! use forkbase_chunk::MemStore;
//! use std::sync::Arc;
//!
//! let db = ForkBase::in_memory();
//! db.put("k", None, Value::String("v".into())).unwrap();
//! let target = Arc::new(MemStore::new());
//! let report = gc::compact_into(&db, target.as_ref()).unwrap();
//! assert_eq!(report.dropped_chunks, 0, "everything is reachable");
//! ```

use crate::error::{FbError, Result};
use crate::fobject::FObject;
use forkbase_chunk::ChunkStore;
use forkbase_crypto::fx::FxHashSet;
use forkbase_crypto::Digest;
use forkbase_pos::entry::decode_index_payload;

use crate::db::ForkBase;

/// What a compaction pass found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Distinct reachable versions (meta chunks) copied.
    pub live_versions: usize,
    /// Total chunks copied into the target store.
    pub live_chunks: u64,
    /// Bytes copied into the target store.
    pub live_bytes: u64,
    /// Chunks left behind in the source store.
    pub dropped_chunks: u64,
    /// Bytes left behind in the source store.
    pub dropped_bytes: u64,
}

/// Collect the cids of every chunk reachable from the given version:
/// the meta chunks of the version and its whole derivation history, plus
/// each version's value-tree chunks.
fn mark_version(
    store: &dyn ChunkStore,
    head: Digest,
    live: &mut FxHashSet<Digest>,
    versions: &mut usize,
) -> Result<()> {
    let mut stack = vec![head];
    while let Some(uid) = stack.pop() {
        if !live.insert(uid) {
            continue;
        }
        let obj = FObject::load(store, uid)?;
        *versions += 1;
        stack.extend(obj.bases.iter().copied());
        let value = obj.value(store)?;
        let Some((ty, root)) = value.tree_root() else {
            continue;
        };
        let mut tree = vec![root];
        while let Some(cid) = tree.pop() {
            if !live.insert(cid) {
                continue;
            }
            let chunk = store.get(&cid).ok_or(FbError::VersionNotFound(cid))?;
            if chunk.ty().is_index() {
                let (_, entries) = decode_index_payload(chunk.payload(), ty.is_sorted())
                    .ok_or_else(|| FbError::Corrupt("bad index chunk".into()))?;
                tree.extend(entries.iter().map(|e| e.cid));
            }
        }
    }
    Ok(())
}

/// The live set of an instance: every chunk reachable from any branch
/// head of any key. The count of distinct live versions is returned
/// alongside the cid set.
pub fn live_set(db: &ForkBase) -> Result<(FxHashSet<Digest>, usize)> {
    let snap = db.snapshot_branches();
    let mut live = FxHashSet::default();
    let mut versions = 0usize;
    for head in snap.heads() {
        // A head may appear in several branch tables; mark_version
        // deduplicates through the `live` set.
        if !live.contains(&head) {
            mark_version(db.store(), head, &mut live, &mut versions)?;
        }
    }
    Ok((live, versions))
}

/// Compact a durable instance **in place**: rewrite every live chunk
/// into fresh [`LogStore`](forkbase_chunk::LogStore) segments and delete
/// the old segment files, reclaiming the space of unreachable versions
/// without copying to a second store or reopening. The instance stays
/// fully usable afterwards; a fresh checkpoint is committed first so the
/// recovery point (and its chunk) survive the compaction.
///
/// **Quiesce writers first.** The live set is computed from the branch
/// heads *before* the rewrite; a put that commits between the walk and
/// the segment swap would store chunks the compaction then deletes —
/// unlike [`compact_into`], which only copies and can never destroy
/// data. Run this like any offline repack: no concurrent writers (a
/// read racing the swap can at worst observe a spurious, counted read
/// error).
///
/// Errors with [`FbError::Io`] when `db` was not opened durably
/// ([`ForkBase::open`]/[`ForkBase::open_with`]).
pub fn compact_in_place(db: &ForkBase) -> Result<GcReport> {
    let store = db
        .durable_store()
        .cloned()
        .ok_or_else(|| FbError::Io("not a durable instance (use ForkBase::open)".into()))?;
    // The checkpoint chunk is a GC root the branch walk cannot see (it
    // is referenced by the HEAD file, not by any version), so commit it
    // first and pin it explicitly. Going through the handle also
    // publishes any pending hot-tier edits first — compaction must not
    // race the publisher over chunks it is about to retire.
    let checkpoint = db.commit_checkpoint()?;
    let (mut live, live_versions) = live_set(db)?;
    live.insert(checkpoint);
    let stats = store.compact_retain(&live)?;
    // Reclaimed chunks must not linger in the read tier: a cached dead
    // chunk would keep serving (harmless for correctness — content is
    // immutable — but it would misreport reclamation and pin memory).
    if let Some(cache) = db.chunk_cache() {
        cache.clear();
    }
    Ok(GcReport {
        live_versions,
        live_chunks: stats.kept_chunks,
        live_bytes: stats.kept_bytes,
        dropped_chunks: stats.dropped_chunks,
        dropped_bytes: stats.dropped_bytes,
    })
}

/// Copy every live chunk of `db` into `target` and report what was kept
/// and what was left behind. The source store is not modified; adopt the
/// compacted store by reopening with [`ForkBase::restore`] after writing
/// a fresh checkpoint into it.
pub fn compact_into(db: &ForkBase, target: &dyn ChunkStore) -> Result<GcReport> {
    let (live, live_versions) = live_set(db)?;
    let mut report = GcReport {
        live_versions,
        ..Default::default()
    };
    for cid in &live {
        let chunk = db.store().get(cid).ok_or(FbError::VersionNotFound(*cid))?;
        report.live_chunks += 1;
        report.live_bytes += chunk.len() as u64;
        // Unshare payloads: a leaf built zero-copy is a slice of a larger
        // buffer (whole-blob input, old-version leaves), and carrying
        // that slice into the compacted store would pin the entire
        // backing allocation — the opposite of what compaction is for.
        target.put(chunk.unshared());
    }
    let src = db.store().stats();
    report.dropped_chunks = src.stored_chunks.saturating_sub(report.live_chunks);
    report.dropped_bytes = src.stored_bytes.saturating_sub(report.live_bytes);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DEFAULT_BRANCH;
    use crate::value::Value;
    use crate::verify::verify_history;
    use forkbase_chunk::{Chunk, ChunkType, MemStore};
    use std::sync::Arc;

    fn blob_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn everything_reachable_nothing_dropped() {
        let db = ForkBase::in_memory();
        for i in 0..10 {
            db.put("k", None, Value::Int(i)).expect("put");
        }
        db.put("k2", None, Value::Blob(db.new_blob(&blob_bytes(50_000, 1))))
            .expect("put");

        let target = MemStore::new();
        let report = compact_into(&db, &target).expect("gc");
        assert_eq!(report.live_versions, 11, "10 versions of k + 1 of k2");
        assert_eq!(report.dropped_chunks, 0);
        assert_eq!(report.dropped_bytes, 0);
        assert_eq!(target.stats().stored_chunks, report.live_chunks);
    }

    #[test]
    fn removed_branch_versions_are_garbage() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::String("base".into()))
            .expect("put");
        db.fork("k", DEFAULT_BRANCH, "scratch").expect("fork");
        // Exclusive work on the scratch branch: a large blob.
        let blob = db.new_blob(&blob_bytes(100_000, 2));
        db.put("k", Some("scratch"), Value::Blob(blob))
            .expect("put");
        db.remove_branch("k", "scratch").expect("remove");

        let target = MemStore::new();
        let report = compact_into(&db, &target).expect("gc");
        // The scratch blob (many chunks) is unreachable now.
        assert!(
            report.dropped_bytes > 50_000,
            "scratch branch data must be dropped, dropped {}B",
            report.dropped_bytes
        );
        // master's version survives and still verifies on the new store.
        let head = db.head("k", None).expect("head");
        verify_history(&target, head).expect("live history intact");
    }

    #[test]
    fn shared_history_survives_branch_removal() {
        let db = ForkBase::in_memory();
        let v0 = db.put("k", None, Value::Int(0)).expect("put");
        db.fork("k", DEFAULT_BRANCH, "b").expect("fork");
        db.put("k", Some("b"), Value::Int(1)).expect("put");
        db.remove_branch("k", DEFAULT_BRANCH)
            .expect("remove master");

        let target = MemStore::new();
        compact_into(&db, &target).expect("gc");
        // v0 is branch b's ancestor: reachable through bases even though
        // the branch that created it is gone.
        assert!(target.contains(&v0), "shared ancestor kept");
        let b_head = db.head("k", Some("b")).expect("head");
        verify_history(&target, b_head).expect("full chain intact");
    }

    #[test]
    fn unreferenced_chunks_dropped() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(1)).expect("put");
        // Abandoned client-side work: chunks never referenced by a commit.
        db.store()
            .put(Chunk::new(ChunkType::Blob, blob_bytes(5000, 3)));
        db.new_blob(&blob_bytes(20_000, 4)); // built, never committed

        let target = MemStore::new();
        let report = compact_into(&db, &target).expect("gc");
        assert!(report.dropped_chunks >= 2);
        assert!(report.dropped_bytes >= 25_000 - 100);
    }

    #[test]
    fn untagged_heads_and_ancestors_are_roots() {
        let db = ForkBase::in_memory();
        let base = db.put_conflict("k", None, Value::Int(0)).expect("genesis");
        db.put_conflict("k", Some(base), Value::Int(1)).expect("w1");
        db.put_conflict("k", Some(base), Value::Int(2)).expect("w2");

        let target = MemStore::new();
        let report = compact_into(&db, &target).expect("gc");
        assert_eq!(report.live_versions, 3, "base + both conflict heads");
        assert_eq!(report.dropped_chunks, 0);
    }

    #[test]
    fn in_place_compaction_reclaims_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "forkbase-gc-inplace-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let data = blob_bytes(60_000, 9);
        {
            let db = ForkBase::open(&dir).expect("open");
            db.put("doc", None, Value::Blob(db.new_blob(&data)))
                .expect("put");
            db.fork("doc", DEFAULT_BRANCH, "scratch").expect("fork");
            db.put(
                "doc",
                Some("scratch"),
                Value::Blob(db.new_blob(&blob_bytes(120_000, 10))),
            )
            .expect("put");
            db.remove_branch("doc", "scratch").expect("remove");

            let report = compact_in_place(&db).expect("gc");
            assert!(
                report.dropped_bytes > 60_000,
                "scratch blob reclaimed: {report:?}"
            );
            // Everything still serves from the compacted segments.
            let head = db.head("doc", None).expect("head");
            verify_history(db.store(), head).expect("intact after compaction");
            // And new writes land fine.
            db.put("doc", None, Value::String("post-gc".into()))
                .expect("put");
            db.commit_checkpoint().expect("checkpoint");
        }
        // Reopen: the compacted store + checkpoint restore the state.
        let db = ForkBase::open(&dir).expect("reopen");
        assert_eq!(
            db.get_value("doc", None).expect("get"),
            Value::String("post-gc".into())
        );
        let store = db.durable_store().expect("durable").clone();
        assert!(!store.poisoned());
        drop(db);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn in_place_compaction_requires_durable_instance() {
        let db = ForkBase::in_memory();
        db.put("k", None, Value::Int(1)).expect("put");
        assert!(matches!(
            compact_in_place(&db).expect_err("not durable"),
            FbError::Io(_)
        ));
    }

    #[test]
    fn compacted_store_round_trips_through_restore() {
        let db = ForkBase::in_memory();
        let data = blob_bytes(60_000, 5);
        db.put("doc", None, Value::Blob(db.new_blob(&data)))
            .expect("put");
        db.fork("doc", DEFAULT_BRANCH, "draft").expect("fork");
        db.put("doc", Some("draft"), Value::String("draft note".into()))
            .expect("put");
        db.remove_branch("doc", "draft").expect("remove");

        // Compact, then re-checkpoint into the compacted store and reopen.
        let target = Arc::new(MemStore::new());
        compact_into(&db, target.as_ref()).expect("gc");
        let db2 = ForkBase::restore(target.clone(), db.cfg().clone(), {
            // The checkpoint must live in the *target* store.
            let chunk = db.snapshot_branches().to_chunk();
            let cid = chunk.cid();
            target.put(chunk);
            cid
        })
        .expect("restore");

        let blob = db2
            .get_value("doc", None)
            .expect("get")
            .as_blob()
            .expect("blob");
        assert_eq!(blob.read_all(db2.store()).expect("read"), data);
    }
}
