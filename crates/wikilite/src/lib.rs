//! **wikilite** — the paper's wiki engine (§5.2), with two backends:
//!
//! * [`ForkBaseWiki`]: each page is a ForkBase key holding a `Blob`; every
//!   revision is one Put on the default branch, so the version chain *is*
//!   the page history. Edits splice the Blob (only changed chunks are
//!   stored — §6.3.1's 50% storage saving), diffs use the POS-Tree, and
//!   reads can go through a client-side chunk cache (Fig. 14).
//! * [`RedisWiki`]: the baseline — each page is a list, every revision is
//!   a full copy RPUSHed to it.
//!
//! Both implement [`WikiEngine`], and a differential test drives them with
//! the same edit stream to prove they agree on content while diverging on
//! storage exactly as the paper reports.

use fb_workload::EditKind;
use forkbase_chunk::{CacheConfig, ChunkStore, MemStore, ShardedCache};
use forkbase_core::{ForkBase, Value};
use forkbase_crypto::ChunkerConfig;
use forkbase_pos::{blob_diff_summary, RangeDiff};
use std::sync::Arc;

/// A multi-versioned wiki.
pub trait WikiEngine {
    /// Create a page with initial content (revision 0).
    fn create_page(&self, title: &str, content: &str);

    /// Apply one edit, producing a new revision.
    fn edit_page(&self, title: &str, edit: &EditKind);

    /// Latest revision content.
    fn read_latest(&self, title: &str) -> Option<String>;

    /// Content `back` revisions before the latest (0 = latest).
    fn read_version(&self, title: &str, back: usize) -> Option<String>;

    /// Number of revisions of a page.
    fn revision_count(&self, title: &str) -> usize;

    /// Bytes consumed by page storage.
    fn storage_bytes(&self) -> u64;

    /// Backend label for benchmark output.
    fn label(&self) -> String;
}

/// Wiki on ForkBase: pages are Blobs, history is the version chain.
pub struct ForkBaseWiki {
    db: ForkBase,
    cache: Option<Arc<ShardedCache>>,
}

impl Default for ForkBaseWiki {
    fn default() -> Self {
        Self::new()
    }
}

impl ForkBaseWiki {
    /// In-memory wiki without a client cache.
    pub fn new() -> ForkBaseWiki {
        ForkBaseWiki {
            db: ForkBase::in_memory(),
            cache: None,
        }
    }

    /// Wiki whose reads go through a client-side sharded chunk cache of
    /// `cache_bytes` (§6.3.1: "data chunks composing a Blob value can be
    /// cached at the clients").
    pub fn with_client_cache(cache_bytes: usize) -> ForkBaseWiki {
        let backing: Arc<dyn ChunkStore> = Arc::new(MemStore::new());
        let cache = Arc::new(ShardedCache::new(
            backing,
            CacheConfig::with_capacity(cache_bytes),
        ));
        ForkBaseWiki {
            db: ForkBase::with_store(
                cache.clone() as Arc<dyn ChunkStore>,
                ChunkerConfig::default(),
            ),
            cache: Some(cache),
        }
    }

    /// The underlying engine.
    pub fn db(&self) -> &ForkBase {
        &self.db
    }

    /// (hits, misses) of the client cache, if configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.hit_miss())
    }

    /// Drop the client cache contents (start of a cold read phase).
    pub fn clear_cache(&self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
    }

    /// Diff two revisions of a page via the POS-Tree (byte-precise
    /// changed region).
    pub fn diff(&self, title: &str, back_a: usize, back_b: usize) -> Option<Option<RangeDiff>> {
        let blob_at = |back: usize| {
            let versions = self
                .db
                .track(title.to_string(), None, back as u64, back as u64)
                .ok()?;
            let obj = &versions.first()?.object;
            obj.value(self.db.store()).ok()?.as_blob().ok()
        };
        let a = blob_at(back_a)?;
        let b = blob_at(back_b)?;
        blob_diff_summary(self.db.store(), a.root(), b.root())
    }
}

impl WikiEngine for ForkBaseWiki {
    fn create_page(&self, title: &str, content: &str) {
        let blob = self.db.new_blob(content.as_bytes());
        self.db
            .put(title.to_string(), None, Value::Blob(blob))
            .expect("create page");
    }

    fn edit_page(&self, title: &str, edit: &EditKind) {
        let obj = self.db.get(title.to_string(), None).expect("page exists");
        let blob = obj
            .value(self.db.store())
            .expect("decodes")
            .as_blob()
            .expect("blob page");
        let edited = match edit {
            EditKind::InPlace { at, text } => blob.splice(
                self.db.store(),
                self.db.cfg(),
                *at as u64,
                text.len() as u64,
                text.as_bytes(),
            ),
            EditKind::Insert { at, text } => {
                blob.insert(self.db.store(), self.db.cfg(), *at as u64, text.as_bytes())
            }
        }
        .expect("splice");
        self.db
            .put(title.to_string(), None, Value::Blob(edited))
            .expect("store revision");
    }

    fn read_latest(&self, title: &str) -> Option<String> {
        self.read_version(title, 0)
    }

    fn read_version(&self, title: &str, back: usize) -> Option<String> {
        let versions = self
            .db
            .track(title.to_string(), None, back as u64, back as u64)
            .ok()?;
        let obj = &versions.first()?.object;
        let blob = obj.value(self.db.store()).ok()?.as_blob().ok()?;
        let bytes = blob.read_all(self.db.store())?;
        String::from_utf8(bytes).ok()
    }

    fn revision_count(&self, title: &str) -> usize {
        self.db
            .track(title.to_string(), None, 0, u64::MAX)
            .map(|v| v.len())
            .unwrap_or(0)
    }

    fn storage_bytes(&self) -> u64 {
        self.db.store().stored_bytes()
    }

    fn label(&self) -> String {
        "ForkBase".to_string()
    }
}

/// Wiki on redislite: pages are lists, every revision a full copy.
#[derive(Default)]
pub struct RedisWiki {
    db: redislite::RedisLite,
}

impl RedisWiki {
    /// Empty wiki.
    pub fn new() -> RedisWiki {
        RedisWiki::default()
    }
}

impl WikiEngine for RedisWiki {
    fn create_page(&self, title: &str, content: &str) {
        self.db.rpush(title.to_string(), content.to_string());
    }

    fn edit_page(&self, title: &str, edit: &EditKind) {
        let latest = self.db.lindex(title.as_bytes(), -1).expect("page exists");
        let mut page = String::from_utf8(latest.to_vec()).expect("utf8 page");
        fb_workload::PageEditGen::apply(&mut page, edit);
        self.db.rpush(title.to_string(), page);
    }

    fn read_latest(&self, title: &str) -> Option<String> {
        self.read_version(title, 0)
    }

    fn read_version(&self, title: &str, back: usize) -> Option<String> {
        let content = self.db.lindex(title.as_bytes(), -1 - back as i64)?;
        String::from_utf8(content.to_vec()).ok()
    }

    fn revision_count(&self, title: &str) -> usize {
        self.db.llen(title.as_bytes())
    }

    fn storage_bytes(&self) -> u64 {
        self.db.memory_bytes()
    }

    fn label(&self) -> String {
        "Redis".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fb_workload::PageEditGen;

    fn engines() -> (ForkBaseWiki, RedisWiki) {
        (ForkBaseWiki::new(), RedisWiki::new())
    }

    #[test]
    fn create_and_read() {
        let (fb, redis) = engines();
        for engine in [&fb as &dyn WikiEngine, &redis] {
            engine.create_page("Home", "welcome to the wiki");
            assert_eq!(
                engine.read_latest("Home").expect("page"),
                "welcome to the wiki"
            );
            assert_eq!(engine.revision_count("Home"), 1);
        }
    }

    #[test]
    fn both_backends_agree_on_content() {
        // Differential test: identical edit streams must give identical
        // page content and history on both backends.
        let (fb, redis) = engines();
        let mut gen = PageEditGen::new(7, 0.8, 64);
        let initial = gen.initial_page(4096);
        fb.create_page("p", &initial);
        redis.create_page("p", &initial);

        let mut reference = initial;
        for _ in 0..30 {
            let edit = gen.next_edit(reference.len());
            fb.edit_page("p", &edit);
            redis.edit_page("p", &edit);
            PageEditGen::apply(&mut reference, &edit);
            assert_eq!(fb.read_latest("p").expect("fb"), reference);
            assert_eq!(redis.read_latest("p").expect("redis"), reference);
        }
        assert_eq!(fb.revision_count("p"), 31);
        assert_eq!(redis.revision_count("p"), 31);
        // Historical versions agree too.
        for back in [1usize, 5, 30] {
            assert_eq!(
                fb.read_version("p", back),
                redis.read_version("p", back),
                "version {back} back"
            );
        }
    }

    #[test]
    fn forkbase_deduplicates_versions() {
        let (fb, redis) = engines();
        let mut gen = PageEditGen::new(9, 1.0, 32);
        let initial = gen.initial_page(15 * 1024); // the paper's page size
        fb.create_page("p", &initial);
        redis.create_page("p", &initial);
        let mut page_len = initial.len();
        for _ in 0..50 {
            let edit = gen.next_edit(page_len);
            if let EditKind::Insert { text, .. } = &edit {
                page_len += text.len();
            }
            fb.edit_page("p", &edit);
            redis.edit_page("p", &edit);
        }
        let (fb_bytes, redis_bytes) = (fb.storage_bytes(), redis.storage_bytes());
        assert!(
            fb_bytes * 2 < redis_bytes,
            "dedup should save >50%: ForkBase {fb_bytes}B vs Redis {redis_bytes}B"
        );
    }

    #[test]
    fn client_cache_accelerates_version_reads() {
        let fb = ForkBaseWiki::with_client_cache(64 << 20);
        let mut gen = PageEditGen::new(11, 1.0, 64);
        fb.create_page("p", &gen.initial_page(15 * 1024));
        for _ in 0..5 {
            let edit = gen.next_edit(15 * 1024);
            fb.edit_page("p", &edit);
        }
        fb.clear_cache();
        // First read warms the cache; consecutive-version reads mostly
        // hit it because versions share chunks.
        fb.read_version("p", 0);
        let (_, cold_misses) = fb.cache_stats().expect("cache");
        for back in 1..=5 {
            fb.read_version("p", back);
        }
        let (hits, misses) = fb.cache_stats().expect("cache");
        let warm_misses = misses - cold_misses;
        assert!(
            hits > warm_misses,
            "old versions served mostly from cache: {hits} hits vs {warm_misses} new misses"
        );
    }

    #[test]
    fn diff_locates_edit_region() {
        let fb = ForkBaseWiki::new();
        fb.create_page("p", &"x".repeat(10_000));
        fb.edit_page(
            "p",
            &EditKind::InPlace {
                at: 5000,
                text: "EDITED".to_string(),
            },
        );
        let diff = fb.diff("p", 0, 1).expect("both versions").expect("differ");
        assert_eq!(diff.start, 5000);
        assert_eq!(diff.left_len, 6);
        assert_eq!(diff.right_len, 6);
        // Same revision: no difference.
        assert_eq!(fb.diff("p", 0, 0), Some(None));
    }

    #[test]
    fn missing_page_and_version() {
        let (fb, redis) = engines();
        assert_eq!(fb.read_latest("ghost"), None);
        assert_eq!(redis.read_latest("ghost"), None);
        fb.create_page("p", "v0");
        assert_eq!(fb.read_version("p", 5), None, "only one revision exists");
    }
}
