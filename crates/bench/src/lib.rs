//! Shared plumbing for the benchmark harness.
//!
//! Every `fig*`/`table*` bench target regenerates one table or figure of
//! the paper's evaluation (§6), printing the same rows/series the paper
//! reports. Absolute numbers differ from the paper (different hardware,
//! in-process instead of a networked cluster), but the *shape* — who
//! wins, by roughly what factor, where crossovers fall — is the claim
//! under reproduction. `EXPERIMENTS.md` records paper-vs-measured for
//! each one.
//!
//! ## The two bench families and the JSON files they feed
//!
//! **Micro/engine benches** (`crypto_micro`, `pos_micro`, `pos_build`,
//! `store`, `read`, `write_scaling`, `net`, `serve`, `hot`) run under the
//! vendored criterion shim and emit raw result lines to
//! `$CRITERION_JSON`; `scripts/bench.sh` (no flag) assembles them into
//! `BENCH_chunking/map_batch/build/store/read/write_scaling/net/serve/hot.json`.
//!
//! **Paper benches** (`fig8_scalability` … `table4_breakdown`, plus the
//! chainstore `chain_gc` scenario bench) print the paper's own
//! tables/series and, when `$FB_BENCH_JSON` is set, also [`record`] one
//! raw result line per cell in the same format; `scripts/bench.sh
//! --paper` assembles those into `BENCH_paper_fig8/fig14/fig15/fig17.json`,
//! `BENCH_paper_table3/table4.json` and `BENCH_paper_chain_gc.json`.
//! Per figure: fig8 = servlet scaling (ops/s vs nodes), fig14 = wiki
//! version-read latency (ForkBase vs RedisWiki vs chainstore
//! `follow_parents`), fig15 = two-level vs one-level partitioning skew,
//! fig17 = diff + aggregation analytics, table3 = per-op
//! throughput/latency, table4 = Put phase breakdown, chain_gc = block
//! append / long-history walk / prune-under-retention.
//!
//! Both files end up gated by `scripts/ci_bench_gate.sh`: CI re-runs
//! each tier at a smoke budget and checks every committed bench id is
//! still produced with sane units.
//!
//! Set `FB_SCALE` (default `1.0`) to shrink/grow workload sizes, e.g.
//! `FB_SCALE=0.1 cargo bench -p fb-bench --bench fig9_blockchain_ops`.

use std::io::Write;
use std::time::{Duration, Instant};

/// Global workload scale factor from `FB_SCALE`.
pub fn scale() -> f64 {
    std::env::var("FB_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// `n` scaled by [`scale`], at least 1.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(1)
}

/// Time a closure once.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Run `f` `n` times; returns (total, per-op average).
pub fn time_n<F: FnMut()>(n: usize, mut f: F) -> (Duration, Duration) {
    let t = Instant::now();
    for _ in 0..n {
        f();
    }
    let total = t.elapsed();
    (total, total / n.max(1) as u32)
}

/// Operations per second for `n` ops over `d`.
pub fn ops_per_sec(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64().max(1e-12)
}

/// Milliseconds as a float.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Microseconds as a float.
pub fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// The p-th percentile of nanosecond samples, as milliseconds.
pub fn percentile_ms(samples: &[u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
}

/// Print a benchmark banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
    println!(
        "    (FB_SCALE={}; shapes, not absolute numbers, are the target)",
        scale()
    );
}

/// Print a table header followed by a separator.
pub fn header(cols: &[&str]) {
    let row = cols
        .iter()
        .map(|c| format!("{c:>16}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Print one formatted row.
pub fn row(cells: &[String]) {
    println!(
        "{}",
        cells
            .iter()
            .map(|c| format!("{c:>16}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

/// Append one raw benchmark result line to the file named by
/// `$FB_BENCH_JSON` (no-op when unset). The line format matches the
/// vendored criterion shim's `$CRITERION_JSON` output, so
/// `scripts/bench.sh --paper` and `scripts/check_bench.sh` consume both
/// families with the same tooling:
///
/// ```json
/// {"bench":"<id>","median_ns_per_iter":N,"ops_per_sec":O}
/// ```
///
/// `per_op` is the median/representative wall time of one operation of
/// the cell (clamped to >= 1 ns: the gate rejects non-positive medians);
/// `ops_per_sec` the cell's aggregate throughput. Use a scale-stable
/// `id` (`fig8/forkbase_servlets4`, not one derived from `FB_SCALE`d
/// sizes) — CI re-runs the bench at a smoke scale and checks the
/// committed ids are all still produced.
pub fn record(id: &str, per_op: Duration, ops_per_sec: f64) {
    record_with(id, per_op, ops_per_sec, &[]);
}

/// [`record`] with extra numeric fields appended to the line (figure
/// context the gate ignores, e.g. `("max_over_avg_milli", 1042.0)`).
pub fn record_with(id: &str, per_op: Duration, ops_per_sec: f64, extras: &[(&str, f64)]) {
    let Ok(path) = std::env::var("FB_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let ns = (per_op.as_nanos() as f64).max(1.0);
    let mut line = format!(
        "{{\"bench\":\"{id}\",\"median_ns_per_iter\":{ns:.1},\"ops_per_sec\":{:.2}",
        ops_per_sec.max(1e-9)
    );
    for (k, v) in extras {
        line.push_str(&format!(",\"{k}\":{v:.3}"));
    }
    line.push('}');
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match file {
        Ok(mut f) => {
            let _ = writeln!(f, "{line}");
        }
        Err(e) => eprintln!("FB_BENCH_JSON: cannot open {path}: {e}"),
    }
}

/// Deterministic pseudo-random bytes (no rand dependency needed at call
/// sites).
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// A unique temp directory for disk-backed stores.
pub fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fb-bench-{tag}-{}-{}",
        std::process::id(),
        Instant::now().elapsed().as_nanos()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
