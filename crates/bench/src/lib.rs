//! Shared plumbing for the benchmark harness.
//!
//! Every `fig*`/`table*` bench target regenerates one table or figure of
//! the paper's evaluation (§6), printing the same rows/series the paper
//! reports. Absolute numbers differ from the paper (different hardware,
//! in-process instead of a networked cluster), but the *shape* — who
//! wins, by roughly what factor, where crossovers fall — is the claim
//! under reproduction. `EXPERIMENTS.md` records paper-vs-measured for
//! each one.
//!
//! Set `FB_SCALE` (default `1.0`) to shrink/grow workload sizes, e.g.
//! `FB_SCALE=0.1 cargo bench -p fb-bench --bench fig9_blockchain_ops`.

use std::time::{Duration, Instant};

/// Global workload scale factor from `FB_SCALE`.
pub fn scale() -> f64 {
    std::env::var("FB_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// `n` scaled by [`scale`], at least 1.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(1)
}

/// Time a closure once.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Run `f` `n` times; returns (total, per-op average).
pub fn time_n<F: FnMut()>(n: usize, mut f: F) -> (Duration, Duration) {
    let t = Instant::now();
    for _ in 0..n {
        f();
    }
    let total = t.elapsed();
    (total, total / n.max(1) as u32)
}

/// Operations per second for `n` ops over `d`.
pub fn ops_per_sec(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64().max(1e-12)
}

/// Milliseconds as a float.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Microseconds as a float.
pub fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// The p-th percentile of nanosecond samples, as milliseconds.
pub fn percentile_ms(samples: &[u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
}

/// Print a benchmark banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
    println!(
        "    (FB_SCALE={}; shapes, not absolute numbers, are the target)",
        scale()
    );
}

/// Print a table header followed by a separator.
pub fn header(cols: &[&str]) {
    let row = cols
        .iter()
        .map(|c| format!("{c:>16}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Print one formatted row.
pub fn row(cells: &[String]) {
    println!(
        "{}",
        cells
            .iter()
            .map(|c| format!("{c:>16}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

/// Deterministic pseudo-random bytes (no rand dependency needed at call
/// sites).
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// A unique temp directory for disk-backed stores.
pub fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fb-bench-{tag}-{}-{}",
        std::process::id(),
        Instant::now().elapsed().as_nanos()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
