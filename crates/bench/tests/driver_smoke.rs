//! Smoke tests for the closed-loop driver edges the benches rely on —
//! in particular more workers than keys, where naive per-worker key
//! partitioning produces empty slices (or, worse, a `YcsbGen` over zero
//! keys, which panics on its first draw).

use bytes::Bytes;
use fb_workload::{per_worker_slices, run_closed_loop_with, Op, YcsbConfig, YcsbGen};
use forkbase_core::{ForkBase, HotTierConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// 8 closed loops over a 3-key working set: workers with an empty key
/// slice must idle through their ops without panicking, and the report
/// must still count every operation.
#[test]
fn more_workers_than_keys_runs_clean() {
    const WORKERS: usize = 8;
    const N_KEYS: usize = 3;
    const OPS: usize = 40;

    let db = ForkBase::in_memory_hot(HotTierConfig::on());
    for i in 0..N_KEYS {
        db.hot_put("bench/state", format!("key{i}"), format!("v{i}"))
            .expect("preload");
    }
    db.flush_hot().expect("preload flush");

    let slices = per_worker_slices(N_KEYS, WORKERS);
    assert!(
        slices.iter().any(|r| r.is_empty()),
        "this test must exercise the empty-slice edge"
    );

    let keyed_ops = AtomicU64::new(0);
    let report = run_closed_loop_with(
        WORKERS,
        OPS,
        |w| slices[w].clone(),
        |slice, _w, i| {
            // An empty slice means this worker has no keys: the op
            // becomes a no-op, not an out-of-range index or a 0-modulo.
            // (Reborrow: on `&mut Range` the unstable
            // `ExactSizeIterator::is_empty` would shadow the inherent one.)
            if (*slice).is_empty() {
                return;
            }
            let key = format!("key{}", slice.start + i % slice.len());
            let got = db.hot_get("bench/state", key.as_bytes()).expect("read");
            assert!(got.is_some(), "preloaded key {key} readable");
            keyed_ops.fetch_add(1, Ordering::Relaxed);
        },
    );

    assert_eq!(report.threads, WORKERS);
    assert_eq!(report.total_ops, (WORKERS * OPS) as u64, "idle ops counted");
    assert_eq!(
        keyed_ops.load(Ordering::Relaxed),
        (N_KEYS * OPS) as u64,
        "exactly the workers with keys issued reads"
    );
}

/// The YCSB-generator flavor of the same edge: per-worker generators
/// are built only over non-empty slices; a `YcsbGen` over `n_keys = 0`
/// is the panic the slices guard against.
#[test]
fn ycsb_per_worker_generators_tolerate_empty_slices() {
    const WORKERS: usize = 6;
    const N_KEYS: usize = 2;
    const OPS: usize = 25;

    let db = ForkBase::in_memory_hot(HotTierConfig::on());
    let slices = per_worker_slices(N_KEYS, WORKERS);

    let report = run_closed_loop_with(
        WORKERS,
        OPS,
        |w| {
            let slice = slices[w].clone();
            let gen = (!slice.is_empty()).then(|| {
                YcsbGen::new(YcsbConfig {
                    n_keys: slice.len(),
                    read_ratio: 0.5,
                    value_size: 16,
                    zipf: 0.0,
                    seed: 7 + w as u64,
                })
            });
            (slice, gen)
        },
        |(slice, gen), _w, _i| {
            let Some(gen) = gen.as_mut() else {
                return; // keyless worker: closed loop still spins
            };
            // Offset generated keys into this worker's disjoint range.
            let op = gen.next_op();
            let key = Bytes::from(format!("{}/{:?}", slice.start, op.key()));
            match op {
                Op::Read(_) => {
                    let _ = db.hot_get("bench/ycsb", &key).expect("read");
                }
                Op::Write(_, v) => {
                    db.hot_put("bench/ycsb", key, v).expect("write");
                }
            }
        },
    );
    db.flush_hot().expect("drain");
    assert_eq!(report.total_ops, (WORKERS * OPS) as u64);
}
