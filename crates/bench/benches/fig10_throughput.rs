//! Figure 10 — client-perceived throughput (committed transactions per
//! second) vs. the number of updates (b = 50, r = w = 0.5).
//!
//! Paper shape: *no differences* between the three engines — storage
//! overheads are small relative to total transaction processing, so the
//! three curves coincide.

use fb_bench::*;
use fb_workload::{Op, YcsbConfig, YcsbGen};
use forkbase_core::ForkBase;
use ledgerlite::{
    BucketTree, ForkBaseBackend, ForkBaseKvAdapter, KvBackend, LedgerNode, StateBackend,
    Transaction,
};

const BLOCK_SIZE: usize = 50;

fn drive<B: StateBackend>(mut node: LedgerNode<B>, n_updates: usize) -> f64 {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys: n_updates.max(100),
        read_ratio: 0.5,
        value_size: 100,
        ..Default::default()
    });
    let ops = gen.batch(n_updates * 2);
    let t = std::time::Instant::now();
    for op in ops {
        match op {
            Op::Read(k) => {
                node.submit(Transaction::get("kv", k));
            }
            Op::Write(k, v) => {
                node.submit(Transaction::put("kv", k, v));
            }
        }
    }
    node.flush();
    ops_per_sec(node.txns_committed() as usize, t.elapsed())
}

fn main() {
    banner(
        "Figure 10",
        "client-perceived throughput (txns/s, b=50, r=w=0.5)",
    );
    let sizes: Vec<usize> = [1usize << 10, 1 << 12, 1 << 14, 1 << 16]
        .iter()
        .map(|&n| scaled(n))
        .collect();

    header(&["#updates", "Rocksdb", "ForkBase-KV", "ForkBase"]);
    for &n in &sizes {
        let dir = temp_dir("fig10");
        let rocks = rockslite::RocksLite::open(&dir).expect("open");
        let t_rocks = drive(
            LedgerNode::new(
                KvBackend::new(rocks, Box::new(BucketTree::new(1024))),
                BLOCK_SIZE,
            ),
            n,
        );
        std::fs::remove_dir_all(dir).ok();

        let fbkv = ForkBaseKvAdapter::new(ForkBase::in_memory());
        let t_fbkv = drive(
            LedgerNode::new(
                KvBackend::new(fbkv, Box::new(BucketTree::new(1024))),
                BLOCK_SIZE,
            ),
            n,
        );
        let t_fb = drive(LedgerNode::new(ForkBaseBackend::in_memory(), BLOCK_SIZE), n);

        row(&[
            n.to_string(),
            format!("{t_rocks:.0} tx/s"),
            format!("{t_fbkv:.0} tx/s"),
            format!("{t_fb:.0} tx/s"),
        ]);
    }
    println!("\npaper shape check: the three engines should be within a small factor of");
    println!("each other (the paper sees no differences at all under consensus costs).");
}
