//! Write scaling across cores: YCSB-A (50% reads / 50% updates,
//! zipfian key choice — the update-heavy workload of the YCSB suite)
//! driven by closed-loop client threads against **one shared ForkBase
//! instance**, sweeping 1 → 8 threads.
//!
//! This is the workload the concurrent commit pipeline exists for: every
//! update is an M3 put that snapshots the key's head, encodes the meta
//! chunk outside any lock, and publishes through the key's own branch
//! slot ([`ShardedBranchMap`]) — writers to disjoint keys never contend,
//! so aggregate commit throughput grows with the thread count on a
//! multi-core host. The per-iteration element count is the total op
//! count, so `ops_per_sec` in the JSON is aggregate throughput and the
//! thread-N / thread-1 ratio is the scaling factor `scripts/bench.sh`
//! reports. Per-op latency percentiles from the closed loops are printed
//! to stderr and recorded in EXPERIMENTS.md.
//!
//! NOTE: on a single-core host (like the CI container) the sweep
//! degenerates to ~1× — the committed `BENCH_write_scaling.json` records
//! `host_cores` so readers can tell which regime produced it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fb_workload::{run_closed_loop, Op, YcsbConfig, YcsbGen};
use forkbase_core::{ForkBase, Value};

/// YCSB-A shape: 4096 keys, 128 B values, zipf 0.99, 50/50 read/update.
const N_KEYS: usize = 4096;
const VALUE_SIZE: usize = 128;
const OPS_PER_THREAD: usize = 2048;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One deterministic op stream per client thread (distinct seeds so the
/// threads don't replay identical key sequences in lockstep).
fn schedules(threads: usize) -> Vec<Vec<Op>> {
    (0..threads)
        .map(|t| {
            YcsbGen::new(YcsbConfig {
                n_keys: N_KEYS,
                read_ratio: 0.5,
                value_size: VALUE_SIZE,
                zipf: 0.99,
                seed: 0xA5C3 + t as u64,
            })
            .batch(OPS_PER_THREAD)
        })
        .collect()
}

/// A fresh in-memory instance with every key pre-loaded, so reads always
/// hit and the sweep measures steady-state commit traffic.
fn loaded_db() -> ForkBase {
    let db = ForkBase::in_memory();
    db.put_many(
        None,
        (0..N_KEYS).map(|i| {
            (
                YcsbGen::key(i),
                Value::Tuple(vec![vec![0u8; VALUE_SIZE].into()]),
            )
        }),
    )
    .expect("load");
    db
}

/// One full closed-loop pass: every thread drains its schedule against
/// the shared instance.
fn run_pass(db: &ForkBase, scheds: &[Vec<Op>]) -> fb_workload::DriverReport {
    run_closed_loop(scheds.len(), OPS_PER_THREAD, |t, i| match &scheds[t][i] {
        Op::Read(key) => {
            let _ = db.get_value(key.clone(), None);
        }
        Op::Write(key, value) => {
            db.put(key.clone(), None, Value::Tuple(vec![value.clone()]))
                .expect("put");
        }
    })
}

fn ycsba_write_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ycsba_write_scaling");
    for &threads in &THREADS {
        let scheds = schedules(threads);
        let db = loaded_db();
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| run_pass(&db, &scheds))
        });
        // One extra pass for the latency report (criterion timings are
        // aggregate only).
        let r = run_pass(&db, &scheds);
        eprintln!(
            "write-scaling: threads={threads} {:.0} ops/s p50={}us p95={}us p99={}us max={}us",
            r.ops_per_sec,
            r.p50_ns / 1000,
            r.p95_ns / 1000,
            r.p99_ns / 1000,
            r.max_ns / 1000,
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ycsba_write_scaling
}
criterion_main!(benches);
