//! Figure 8 — scalability with multiple servlets: aggregate Put/Get
//! throughput as the cluster grows (1 → 16 servlets), for 256 B and
//! 2560 B values.
//!
//! The paper's claim: near-linear scaling "because there is no
//! communication between the servlets". This host has a single CPU, so
//! parallel speed-up cannot be observed as wall-clock time; instead the
//! harness measures what the claim actually rests on. Every request is
//! executed on its home servlet and its execution time is charged to
//! that servlet; the simulated cluster time for `n` servlets is the
//! maximum per-servlet busy time (all servlets run in parallel in a real
//! deployment, and nothing couples them). Near-linear scaling then falls
//! out exactly when (a) per-request cost does not grow with cluster size
//! and (b) the key hash spreads requests evenly — both of which this
//! harness verifies and reports.

use fb_bench::*;
use forkbase_cluster::{Cluster, Partitioning};
use std::time::{Duration, Instant};

struct Sim {
    put_tput: f64,
    get_tput: f64,
    /// max/mean requests per servlet (1.0 = perfectly even).
    put_skew: f64,
}

fn run(n_servlets: usize, value_size: usize, total_ops: usize) -> Sim {
    let cluster = Cluster::builder(n_servlets)
        .partitioning(Partitioning::TwoLayer)
        .build()
        .expect("cluster");
    let payload = random_bytes(value_size, 7);

    // Puts, each timed on its home servlet.
    let mut busy = vec![Duration::ZERO; n_servlets];
    let mut count = vec![0u64; n_servlets];
    let keys: Vec<String> = (0..total_ops).map(|i| format!("key-{i}")).collect();
    for key in &keys {
        let s = cluster.master().servlet_of(key.as_bytes());
        let t = Instant::now();
        cluster.put_blob(key.clone(), &payload).expect("put");
        busy[s] += t.elapsed();
        count[s] += 1;
    }
    let put_time = busy.iter().max().expect("non-empty");
    let put_tput = ops_per_sec(total_ops, *put_time);
    let max = *count.iter().max().expect("non-empty") as f64;
    let mean = total_ops as f64 / n_servlets as f64;
    let put_skew = max / mean;

    // Gets, likewise.
    let mut busy = vec![Duration::ZERO; n_servlets];
    for key in &keys {
        let s = cluster.master().servlet_of(key.as_bytes());
        let t = Instant::now();
        cluster.get_blob(key.clone()).expect("get");
        busy[s] += t.elapsed();
    }
    let get_time = busy.iter().max().expect("non-empty");
    let get_tput = ops_per_sec(total_ops, *get_time);

    Sim {
        put_tput,
        get_tput,
        put_skew,
    }
}

fn main() {
    banner("Figure 8", "scalability with multiple servlets (simulated parallel time = max per-servlet busy time; single-CPU host)");
    let ops_per_servlet = scaled(2000);
    header(&[
        "#servlets",
        "Put 256B",
        "Get 256B",
        "Put 2560B",
        "Get 2560B",
        "req skew",
    ]);
    let mut base: Option<(f64, f64)> = None;
    for &n in &[1usize, 2, 4, 8, 12, 16] {
        let a = run(n, 256, n * ops_per_servlet);
        let b = run(n, 2560, n * ops_per_servlet);
        if base.is_none() {
            base = Some((a.put_tput, a.get_tput));
        }
        for (series, tput, skew) in [
            ("put_256b", a.put_tput, a.put_skew),
            ("get_256b", a.get_tput, a.put_skew),
            ("put_2560b", b.put_tput, b.put_skew),
            ("get_2560b", b.get_tput, b.put_skew),
        ] {
            record_with(
                &format!("fig8/{series}_servlets{n}"),
                Duration::from_secs_f64(1.0 / tput.max(1e-9)),
                tput,
                &[("req_skew_milli", skew * 1e3)],
            );
        }
        row(&[
            n.to_string(),
            format!("{:.0}K/s", a.put_tput / 1e3),
            format!("{:.0}K/s", a.get_tput / 1e3),
            format!("{:.0}K/s", b.put_tput / 1e3),
            format!("{:.0}K/s", b.get_tput / 1e3),
            format!("{:.2}x", a.put_skew),
        ]);
    }
    if let Some((p, g)) = base {
        println!("\npaper shape check: throughput grows near-linearly with #servlets");
        println!(
            "(1-servlet baseline: Put {:.0}K/s, Get {:.0}K/s; skew near 1.0 means the key hash\n\
             spreads requests evenly, which is what makes the scaling linear)",
            p / 1e3,
            g / 1e3
        );
    }
}
