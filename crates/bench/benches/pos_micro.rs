//! Ablation micro-benches for the POS-Tree: build cost vs. rolling-hash
//! choice and chunk size, point-edit cost (copy-on-write splice vs. full
//! rebuild), and diff cost.
//!
//! These back the design choices DESIGN.md calls out: the cyclic
//! polynomial leaf pattern, the cheap cid-based index pattern P′ (index
//! levels rebuild at metadata cost), and the 4 KB default chunk size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fb_bench::random_bytes;
use forkbase_chunk::MemStore;
use forkbase_crypto::{ChunkerConfig, RollingKind};
use forkbase_pos::tree::{Blob, Map};
use forkbase_pos::WriteBatch;

fn build_blob(c: &mut Criterion) {
    let data = random_bytes(1024 * 1024, 3);
    let mut group = c.benchmark_group("pos_build_blob_1MB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for kind in [
        RollingKind::CyclicPoly,
        RollingKind::RabinKarp,
        RollingKind::MovingSum,
    ] {
        let cfg = ChunkerConfig {
            rolling: kind,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let store = MemStore::new();
                    Blob::build(&store, cfg, &data)
                });
            },
        );
    }
    group.finish();
}

fn chunk_size_sensitivity(c: &mut Criterion) {
    let data = random_bytes(1024 * 1024, 4);
    let mut group = c.benchmark_group("pos_chunk_size");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for bits in [10u32, 12, 14] {
        let cfg = ChunkerConfig::with_leaf_bits(bits);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}B", 1 << bits)),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let store = MemStore::new();
                    Blob::build(&store, cfg, &data)
                });
            },
        );
    }
    group.finish();
}

fn splice_vs_rebuild(c: &mut Criterion) {
    let data = random_bytes(4 * 1024 * 1024, 5);
    let cfg = ChunkerConfig::default();
    let store = MemStore::new();
    let blob = Blob::build(&store, &cfg, &data);

    let mut group = c.benchmark_group("pos_point_edit_4MB");
    group.bench_function("splice", |b| {
        b.iter(|| {
            blob.splice(&store, &cfg, 2_000_000, 16, b"copy on write!!!")
                .expect("splice")
        });
    });
    group.bench_function("full_rebuild", |b| {
        let mut edited = data.clone();
        edited[2_000_000..2_000_016].copy_from_slice(b"copy on write!!!");
        b.iter(|| Blob::build(&store, &cfg, &edited));
    });
    group.finish();
}

fn map_ops(c: &mut Criterion) {
    let cfg = ChunkerConfig::default();
    let store = MemStore::new();
    let map = Map::build(
        &store,
        &cfg,
        (0..100_000).map(|i| (format!("k{i:08}"), format!("value-{i}"))),
    );

    let mut group = c.benchmark_group("pos_map_100k");
    group.bench_function("get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            map.get(&store, format!("k{i:08}").as_bytes())
        });
    });
    // Write benches cycle their values so steady-state iterations
    // deduplicate against earlier rounds: chunking/hashing/splicing cost
    // is all still paid, but the store stops growing — measurements
    // reflect the write path, not allocator aging under unbounded
    // retained garbage.
    group.bench_function("put_one", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            map.put(
                &store,
                &cfg,
                format!("k{:08}", i % 100_000),
                format!("updated-{}", i % 512),
            )
            .expect("put")
        });
    });

    // Batched writes: the same per-edit work as `put_one`, amortized into
    // a single multi-range splice per batch. Keys stride through the map
    // so edits spread across many leaves (the worst case for reuse).
    for (label, batch) in [
        ("put_batch_10", 10usize),
        ("put_batch_1k", 1_000),
        ("put_batch_100k", 100_000),
    ] {
        group.bench_function(label, |b| {
            let stride = 100_000 / batch;
            let mut round = 0usize;
            b.iter(|| {
                round += 1;
                let mut wb = WriteBatch::with_capacity(batch);
                for j in 0..batch {
                    wb.put(
                        format!("k{:08}", (j * stride) % 100_000),
                        format!("updated-{}-{j}", round % 4),
                    );
                }
                map.apply(&store, &cfg, wb).expect("apply")
            });
        });
    }

    let edited = map.put(&store, &cfg, "k00050000", "EDITED").expect("put");
    group.bench_function("diff_one_change", |b| {
        b.iter(|| {
            forkbase_pos::sorted_diff(
                &store,
                forkbase_pos::TreeType::Map,
                map.root(),
                edited.root(),
            )
            .expect("diff")
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = build_blob, chunk_size_sensitivity, splice_vs_rebuild, map_ops
}
criterion_main!(benches);
