//! Figure 14 — throughput of reading consecutive versions of a wiki page.
//!
//! Paper shapes: Redis is fastest for reading only the latest version;
//! as an exploration tracks more versions, ForkBase overtakes it because
//! the client chunk cache already holds most chunks of neighbouring
//! versions (structural sharing), while Redis transfers each full copy.

use chainstore::ChainStore;
use fb_bench::*;
use fb_workload::PageEditGen;
use wikilite::{ForkBaseWiki, RedisWiki, WikiEngine};

const VERSIONS: usize = 8;

fn main() {
    banner(
        "Figure 14",
        "throughput of reading consecutive page versions",
    );
    let pages = scaled(64);
    let explorations = scaled(400);

    // Build identical version histories on both engines.
    let fb = ForkBaseWiki::with_client_cache(256 << 20);
    let redis = RedisWiki::new();
    let mut gen = PageEditGen::new(31, 1.0, 64);
    for p in 0..pages {
        let title = format!("page-{p:04}");
        let initial = gen.initial_page(15 * 1024);
        fb.create_page(&title, &initial);
        redis.create_page(&title, &initial);
        for _ in 0..VERSIONS - 1 {
            let edit = gen.next_edit(15 * 1024);
            fb.edit_page(&title, &edit);
            redis.edit_page(&title, &edit);
        }
    }

    // The same access pattern expressed as a block store: one chain of
    // page-sized blocks, each exploration walks `n` parents back from
    // the tip (the level-batched track path) and reads every body.
    let chain = ChainStore::in_memory();
    let chain_len = scaled(64);
    let tip = *chain
        .append_batch(
            None,
            (0..chain_len.max(VERSIONS)).map(|i| {
                (
                    random_bytes(15 * 1024, 0xC0DE + i as u64),
                    format!("height-{i}").into(),
                )
            }),
        )
        .expect("append chain")
        .last()
        .expect("non-empty");

    header(&["#versions", "ForkBase", "Redis", "chainstore"]);
    for n_versions in 1..=6usize {
        // Each exploration reads versions latest, latest-1, …
        fb.clear_cache();
        let t = std::time::Instant::now();
        for e in 0..explorations {
            let title = format!("page-{:04}", e % pages);
            for back in 0..n_versions {
                fb.read_version(&title, back).expect("version exists");
            }
        }
        let fb_tput = ops_per_sec(explorations * n_versions, t.elapsed());

        let t = std::time::Instant::now();
        for e in 0..explorations {
            let title = format!("page-{:04}", e % pages);
            for back in 0..n_versions {
                redis.read_version(&title, back).expect("version exists");
            }
        }
        let redis_tput = ops_per_sec(explorations * n_versions, t.elapsed());

        let t = std::time::Instant::now();
        for _ in 0..explorations {
            let headers = chain.follow_parents(tip, n_versions).expect("walk");
            for h in &headers {
                chain.body(h.id).expect("body");
            }
        }
        let chain_tput = ops_per_sec(explorations * n_versions, t.elapsed());

        for (series, tput) in [
            ("forkbase", fb_tput),
            ("redis", redis_tput),
            ("chainstore", chain_tput),
        ] {
            record(
                &format!("fig14/{series}_v{n_versions}"),
                std::time::Duration::from_secs_f64(1.0 / tput.max(1e-9)),
                tput,
            );
        }

        row(&[
            n_versions.to_string(),
            format!("{fb_tput:.0}/s"),
            format!("{redis_tput:.0}/s"),
            format!("{chain_tput:.0}/s"),
        ]);
    }
    let (hits, misses) = fb.cache_stats().expect("cache configured");
    println!("\nclient cache over the run: {hits} hits / {misses} misses");
    println!("paper shape check: the ForkBase/Redis throughput ratio improves as more");
    println!("consecutive versions are read per exploration (cached shared chunks).");
}
