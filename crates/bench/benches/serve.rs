//! RESP serving benchmark: YCSB closed loops against a live loopback
//! TCP server vs the same schedules dispatched in-process.
//!
//! A `RespServer` fronts one `RedisLite`; 64/256/512 client connections
//! (one closed loop each, dialed before the start barrier so connection
//! setup never pollutes the window) drive YCSB-A/B/C (50/95/100% reads,
//! zipf 0.99) through the wire. The in-process baseline runs the same
//! schedules straight into `RedisLite::execute` — the identical dispatch
//! path minus the socket — so the delta is the pure serving tax: RESP
//! framing, syscalls, and per-connection threads.
//!
//! Results append to `$CRITERION_JSON` with `p50_ns`/`p95_ns`/`p99_ns`
//! per-op latency fields so `scripts/bench.sh` can assemble
//! `BENCH_serve.json` with tail latencies included.

use bytes::Bytes;
use fb_bench::*;
use fb_workload::{run_closed_loop_with, Op, YcsbConfig, YcsbGen};
use redislite::{Cmd, RedisLite, RespClient, RespServer};
use std::io::Write;
use std::sync::Arc;

const N_KEYS: usize = 10_000;
const VALUE_SIZE: usize = 100;
const ZIPF: f64 = 0.99;
const CONNS: [usize; 3] = [64, 256, 512];
const WORKLOADS: [(&str, f64); 3] = [("a", 0.5), ("b", 0.95), ("c", 1.0)];

/// Pre-generate one closed loop's command schedule so RNG cost stays
/// out of the measured window. Seeds differ per worker, so connections
/// don't lockstep over the same keys.
fn schedule(read_ratio: f64, worker: usize, ops: usize) -> Vec<Cmd> {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys: N_KEYS,
        read_ratio,
        value_size: VALUE_SIZE,
        zipf: ZIPF,
        seed: 0x5e17e + worker as u64,
    });
    (0..ops)
        .map(|_| match gen.next_op() {
            Op::Read(k) => Cmd::Get(k),
            Op::Write(k, v) => Cmd::Set(k, v),
        })
        .collect()
}

/// Preload every key so YCSB-B/C reads hit instead of returning nil.
fn preload(db: &RedisLite) {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys: N_KEYS,
        value_size: VALUE_SIZE,
        ..YcsbConfig::default()
    });
    for chunk_start in (0..N_KEYS).step_by(1024) {
        let pairs: Vec<(Bytes, Bytes)> = (chunk_start..(chunk_start + 1024).min(N_KEYS))
            .map(|i| (YcsbGen::key(i), gen.value()))
            .collect();
        db.execute(Cmd::MSet(pairs));
    }
}

fn emit(id: &str, r: &fb_workload::DriverReport) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                concat!(
                    "{{\"bench\":\"{}\",\"median_ns_per_iter\":{:.1},",
                    "\"ops_per_sec\":{:.1},\"unit\":\"elements\",\"units_per_iter\":1,",
                    "\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}"
                ),
                id,
                r.ns_per_op(),
                r.ops_per_sec,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.max_ns,
            );
        }
    }
}

fn report_row(wl: &str, conns: usize, transport: &str, r: &fb_workload::DriverReport) {
    row(&[
        format!("ycsb-{}", wl.to_uppercase()),
        conns.to_string(),
        transport.to_string(),
        format!("{:.0}", r.ops_per_sec),
        format!("{}", r.p50_ns / 1000),
        format!("{}", r.p99_ns / 1000),
        format!("{}", r.max_ns / 1000),
    ]);
}

fn main() {
    banner(
        "resp serve",
        "YCSB-A/B/C closed loops over loopback RESP vs in-process dispatch",
    );
    let ops_per_conn = scaled(128);
    header(&[
        "workload",
        "conns",
        "transport",
        "ops/s",
        "p50 us",
        "p99 us",
        "max us",
    ]);
    for (wl, read_ratio) in WORKLOADS {
        let db = Arc::new(RedisLite::new());
        preload(&db);
        let server = RespServer::bind("127.0.0.1:0", Arc::clone(&db)).expect("bind");
        let addr = server.addr();

        // In-process baseline: the same schedules, the same execute()
        // entry point, no wire. 64 loops matches the smallest conn
        // sweep so the two 64-way cells are directly comparable.
        let inproc_workers = 64;
        let schedules: Vec<Vec<Cmd>> = (0..inproc_workers)
            .map(|t| schedule(read_ratio, t, ops_per_conn))
            .collect();
        let r = run_closed_loop_with(
            inproc_workers,
            ops_per_conn,
            |_| (),
            |(), t, i| {
                db.execute(schedules[t][i].clone());
            },
        );
        report_row(wl, inproc_workers, "inproc", &r);
        emit(&format!("resp_serve/{wl}_inproc_conns{inproc_workers}"), &r);

        for conns in CONNS {
            let schedules: Vec<Vec<Cmd>> = (0..conns)
                .map(|t| schedule(read_ratio, t, ops_per_conn))
                .collect();
            let r = run_closed_loop_with(
                conns,
                ops_per_conn,
                |_| {
                    let mut client = RespClient::connect(addr).expect("dial");
                    // One round trip warms the connection (and the
                    // server's handler thread) before the barrier.
                    client.execute(&Cmd::Ping).expect("ping");
                    client
                },
                |client, t, i| {
                    client.execute(&schedules[t][i]).expect("wire op");
                },
            );
            report_row(wl, conns, "tcp", &r);
            emit(&format!("resp_serve/{wl}_conns{conns}"), &r);
        }
        drop(server);
    }
    println!(
        "\npaper shape check: the wire tax (tcp vs inproc per-op median) is paid once per\n\
         round trip, so read-heavy YCSB-C shows the largest relative gap (its in-process\n\
         ops are cheapest); p99 grows with connection count as closed loops queue on the\n\
         shared store and the accept-side threads contend for cores."
    );
}
