//! Chunk-store micro benches: the durable write path (group commit vs
//! fsync-per-put vs MemStore), the group-commit batch sweep, durable
//! reads, and reopen cost with/without an index snapshot.
//! `scripts/bench.sh` assembles the results into `BENCH_store.json`.
//!
//! Chunks are pre-built (cids precomputed), so the numbers isolate store
//! cost from hashing. Every durable variant runs in a fresh directory
//! per iteration and ends with the store fully synced, so the policies
//! are compared at equal durability of the *final* state; what differs
//! is how many fsyncs the policy pays to get there.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use forkbase_chunk::{Chunk, ChunkStore, ChunkType, Durability, LogConfig, LogStore, MemStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const N_PUT: usize = 256;
const PAYLOAD: usize = 1024;
const N_REOPEN_CHUNKS: u32 = 4096;

fn bench_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("forkbase-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("bench root");
    root
}

fn fresh_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    bench_root().join(format!("run-{}", N.fetch_add(1, Ordering::Relaxed)))
}

fn chunks(n: usize) -> Vec<Chunk> {
    (0..n)
        .map(|i| {
            let mut payload = vec![0u8; PAYLOAD];
            let mut state = i as u64 + 1;
            for b in payload.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 33) as u8;
            }
            Chunk::new(ChunkType::Blob, payload)
        })
        .collect()
}

fn log_cfg() -> LogConfig {
    LogConfig {
        segment_bytes: 8 << 20,
        snapshot_bytes: u64::MAX, // keep snapshot cost out of the put path
    }
}

/// One durable run: open, put everything, drain + fsync, tear down.
fn durable_round(batch: &[Chunk], durability: Durability) {
    let dir = fresh_dir();
    let store = LogStore::open_with(&dir, log_cfg(), durability).expect("open");
    for c in batch {
        store.put(c.clone());
    }
    store.sync().expect("sync");
    drop(store);
    std::fs::remove_dir_all(dir).ok();
}

fn durable_put(c: &mut Criterion) {
    let batch = chunks(N_PUT);
    let mut group = c.benchmark_group(format!("store_put_{N_PUT}x1k"));
    group.throughput(Throughput::Elements(N_PUT as u64));
    group.bench_function("memstore", |b| {
        b.iter(|| {
            let store = MemStore::new();
            for chunk in &batch {
                store.put(chunk.clone());
            }
        });
    });
    group.bench_function("logstore_group_commit", |b| {
        b.iter(|| {
            durable_round(
                &batch,
                Durability::Batch {
                    max_records: 512,
                    interval: Duration::from_millis(10),
                },
            )
        });
    });
    // The pre-rewrite LogStore behavior: one fsync per acknowledged put.
    group.bench_function("logstore_fsync_each", |b| {
        b.iter(|| durable_round(&batch, Durability::Always));
    });
    group.bench_function("logstore_os", |b| {
        b.iter(|| durable_round(&batch, Durability::Os));
    });
    group.finish();
}

fn group_commit_sweep(c: &mut Criterion) {
    let batch = chunks(N_PUT);
    let mut group = c.benchmark_group("group_commit_sweep");
    group.throughput(Throughput::Elements(N_PUT as u64));
    for max_records in [8usize, 32, 128, 512] {
        group.bench_function(format!("batch_{max_records}"), |b| {
            b.iter(|| {
                durable_round(
                    &batch,
                    Durability::Batch {
                        max_records,
                        interval: Duration::from_secs(3600),
                    },
                )
            });
        });
    }
    group.finish();
}

fn durable_get(c: &mut Criterion) {
    let batch = chunks(1024);
    let mem = MemStore::new();
    for chunk in &batch {
        mem.put(chunk.clone());
    }
    let dir = fresh_dir();
    let log = LogStore::open_with(&dir, log_cfg(), Durability::default()).expect("open");
    for chunk in &batch {
        log.put(chunk.clone());
    }
    log.sync().expect("sync"); // reads go to the segment files, not the queue

    let mut group = c.benchmark_group("store_get_1k");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("memstore", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for chunk in &batch {
                hits += usize::from(mem.get(&chunk.cid()).is_some());
            }
            hits
        });
    });
    group.bench_function("logstore", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for chunk in &batch {
                hits += usize::from(log.get(&chunk.cid()).is_some());
            }
            hits
        });
    });
    group.finish();
    drop(log);
    std::fs::remove_dir_all(dir).ok();
}

/// Prepare a ~4 MB store; returns its directory. `with_snapshot` leaves
/// a snapshot covering everything (clean close), otherwise the snapshot
/// is deleted so reopen must scan the whole log.
fn reopen_fixture(with_snapshot: bool) -> PathBuf {
    let dir = fresh_dir();
    let cfg = LogConfig {
        segment_bytes: 1 << 20,
        snapshot_bytes: u64::MAX,
    };
    {
        let store = LogStore::open_with(&dir, cfg, Durability::Os).expect("open");
        for i in 0..N_REOPEN_CHUNKS {
            let mut payload = vec![0u8; PAYLOAD];
            payload[..4].copy_from_slice(&i.to_le_bytes());
            store.put(Chunk::new(ChunkType::Blob, payload));
        }
        store.sync().expect("sync");
    } // clean close writes the snapshot
    if !with_snapshot {
        std::fs::remove_file(dir.join("snapshot.idx")).expect("rm snapshot");
    }
    dir
}

fn reopen(c: &mut Criterion) {
    let full_dir = reopen_fixture(false);
    let snap_dir = reopen_fixture(true);
    let cfg = LogConfig {
        segment_bytes: 1 << 20,
        snapshot_bytes: u64::MAX,
    };
    let mut group = c.benchmark_group("store_reopen_4k_chunks");
    group.throughput(Throughput::Elements(N_REOPEN_CHUNKS as u64));
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            let store = LogStore::open_with(&full_dir, cfg, Durability::Os).expect("open");
            assert!(!store.reopen_stats().used_snapshot);
            store.chunk_count()
        });
    });
    group.bench_function("snapshot", |b| {
        b.iter(|| {
            let store = LogStore::open_with(&snap_dir, cfg, Durability::Os).expect("open");
            assert!(store.reopen_stats().used_snapshot);
            store.chunk_count()
        });
    });
    group.finish();
    std::fs::remove_dir_all(full_dir).ok();
    std::fs::remove_dir_all(snap_dir).ok();
}

fn teardown(_c: &mut Criterion) {
    std::fs::remove_dir_all(bench_root()).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = durable_put, group_commit_sweep, durable_get, reopen, teardown
}
criterion_main!(benches);
