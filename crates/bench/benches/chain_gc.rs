//! Chainstore scenario — block append, long-history reads, and GC under
//! retention on a durable store.
//!
//! Not a figure of the paper: this measures the claim the paper only
//! argues (§2, §6.1) — that a general versioned engine serves a real
//! chain-storage access pattern end to end. The harness drives the
//! `chainstore` crate (blocks = FObject versions, tips = fork-on-conflict
//! heads) over a durable LogStore:
//!
//! 1. bulk sync: `append_batch` of a long main chain (one group-commit
//!    round per batch),
//! 2. fork churn: short side chains appended off random ancestors,
//! 3. long-history reads: `follow_parents` header walks and full
//!    header+body range scans from the best tip,
//! 4. **GC under retention**: prune every side chain while retaining the
//!    best tip — `prune_side_chains` retires the losing heads and
//!    compacts the store in place — then prove the retained chain still
//!    reads at full speed.
//!
//! Feeds `BENCH_paper_chain_gc.json` via `scripts/bench.sh --paper`.

use chainstore::ChainStore;
use fb_bench::*;
use std::time::Instant;

const BODY_BYTES: usize = 1024;

fn body(lineage: u64, i: u64) -> Vec<u8> {
    // Unique, incompressible bodies: dedup must not erase the side
    // chains' storage, or the GC phase has nothing to reclaim.
    random_bytes(BODY_BYTES, lineage.wrapping_mul(0x51ab_5eed) ^ i)
}

fn main() {
    banner(
        "chain_gc",
        "chainstore: append / follow_parents / prune-under-retention (durable)",
    );
    let main_len = scaled(4000);
    let n_forks = scaled(32).min(main_len / 2);
    let fork_len = scaled(40);
    let walks = scaled(50);

    let dir = temp_dir("chain-gc");
    let chain = ChainStore::open(&dir).expect("open durable chain store");

    // ---- 1. bulk sync of the main chain ---------------------------------
    let t = Instant::now();
    let ids = chain
        .append_batch(
            None,
            (0..main_len as u64).map(|i| (body(0, i), format!("slot-{i}").into())),
        )
        .expect("append main chain");
    let append_time = t.elapsed();
    let main_tip = *ids.last().expect("non-empty");
    record(
        "chain_gc/append_batch_main",
        append_time / main_len.max(1) as u32,
        ops_per_sec(main_len, append_time),
    );
    println!(
        "append {} blocks ({} B bodies): {:.0} blocks/s",
        main_len,
        BODY_BYTES,
        ops_per_sec(main_len, append_time)
    );

    // ---- 2. fork churn: side chains off random ancestors -----------------
    let t = Instant::now();
    let mut side_tips = Vec::with_capacity(n_forks);
    for f in 0..n_forks as u64 {
        let base = ids[(f as usize * 2654435761) % (main_len / 2)];
        let side = chain
            .append_batch(
                Some(base),
                (0..fork_len as u64).map(|i| (body(f + 1, i), format!("side-{f}-{i}").into())),
            )
            .expect("append side chain");
        side_tips.push(*side.last().expect("non-empty"));
    }
    let fork_time = t.elapsed();
    let fork_blocks = n_forks * fork_len;
    record(
        "chain_gc/append_side_chains",
        fork_time / fork_blocks.max(1) as u32,
        ops_per_sec(fork_blocks, fork_time),
    );
    assert_eq!(chain.tips().len(), n_forks + 1, "one tip per fork + main");
    println!(
        "fork churn: {} side chains x {} blocks: {:.0} blocks/s ({} tips)",
        n_forks,
        fork_len,
        ops_per_sec(fork_blocks, fork_time),
        n_forks + 1
    );

    // ---- 3. long-history reads from the best tip -------------------------
    let best = chain.best_tip().expect("best").expect("non-empty");
    assert_eq!(best, main_tip, "main chain is longest");
    let depth = scaled(1000).min(main_len);
    let t = Instant::now();
    for _ in 0..walks {
        let headers = chain.follow_parents(best, depth).expect("walk");
        assert_eq!(headers.len(), depth);
    }
    let walk_time = t.elapsed();
    record(
        "chain_gc/follow_parents_headers",
        walk_time / (walks * depth).max(1) as u32,
        ops_per_sec(walks * depth, walk_time),
    );

    let span = scaled(200).min(main_len / 2);
    let hi = (main_len - 1) as u64;
    let t = Instant::now();
    for _ in 0..walks {
        let headers = chain
            .iter_range(best, hi - span as u64 + 1, hi)
            .expect("range");
        for h in &headers {
            chain.body(h.id).expect("body");
        }
    }
    let range_time = t.elapsed();
    record(
        "chain_gc/iter_range_bodies",
        range_time / (walks * span).max(1) as u32,
        ops_per_sec(walks * span, range_time),
    );
    println!(
        "history reads: {:.0} headers/s (walk depth {}), {:.0} full blocks/s (range {})",
        ops_per_sec(walks * depth, walk_time),
        depth,
        ops_per_sec(walks * span, range_time),
        span
    );

    // ---- 4. GC under retention: prune every side chain -------------------
    chain.checkpoint().expect("checkpoint");
    let t = Instant::now();
    let report = chain.prune_side_chains(&[main_tip]).expect("prune");
    let prune_time = t.elapsed();
    let gc = report.gc.expect("durable prune compacts");
    assert_eq!(report.tips_retired, n_forks);
    assert_eq!(chain.tips(), vec![main_tip]);
    record_with(
        "chain_gc/prune_compact",
        prune_time / fork_blocks.max(1) as u32,
        ops_per_sec(fork_blocks, prune_time),
        &[
            ("reclaimed_bytes", gc.dropped_bytes as f64),
            ("live_chunks", gc.live_chunks as f64),
        ],
    );
    println!(
        "prune {} side chains: {:.1} ms, reclaimed {:.1} MB ({} live chunks kept)",
        n_forks,
        ms(prune_time),
        gc.dropped_bytes as f64 / 1e6,
        gc.live_chunks
    );

    // ---- retained chain still reads at full speed ------------------------
    let t = Instant::now();
    for _ in 0..walks {
        let headers = chain.follow_parents(main_tip, depth).expect("walk");
        assert_eq!(headers.len(), depth);
    }
    let post_time = t.elapsed();
    record(
        "chain_gc/post_gc_walk_headers",
        post_time / (walks * depth).max(1) as u32,
        ops_per_sec(walks * depth, post_time),
    );
    println!(
        "post-GC walk: {:.0} headers/s (retained chain intact)",
        ops_per_sec(walks * depth, post_time)
    );
    println!("\nshape check: pruning reclaims side-chain bytes without touching the retained");
    println!("chain (shared ancestors survive via head-derived liveness).");

    std::fs::remove_dir_all(&dir).ok();
}
