//! Figure 9 — 95th-percentile latency of blockchain read / write / commit
//! operations vs. the number of updates, for the three storage engines
//! (b = 50, r = w = 0.5).
//!
//! Paper shapes to reproduce: reads and writes are orders of magnitude
//! cheaper than commits; ForkBase writes are the cheapest (buffer only);
//! ForkBase reads are somewhat slower than the pure-KV engines (multiple
//! objects fetched); ForkBase-KV commits are the slowest (hashing inside
//! *and* outside the storage layer).

use fb_bench::*;
use fb_workload::{Op, YcsbConfig, YcsbGen};
use forkbase_core::ForkBase;
use ledgerlite::{
    BucketTree, ForkBaseBackend, ForkBaseKvAdapter, KvBackend, LedgerNode, StateBackend,
    Transaction,
};

const BLOCK_SIZE: usize = 50;

fn drive<B: StateBackend>(mut node: LedgerNode<B>, n_updates: usize) -> (f64, f64, f64) {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys: n_updates,
        read_ratio: 0.5,
        value_size: 100,
        ..Default::default()
    });
    // r = w = 0.5 over 2×n_updates ops gives ~n_updates writes.
    for op in gen.batch(n_updates * 2) {
        match op {
            Op::Read(k) => {
                node.submit(Transaction::get("kv", k));
            }
            Op::Write(k, v) => {
                node.submit(Transaction::put("kv", k, v));
            }
        }
    }
    node.flush();
    let t = node.timings();
    (
        percentile_ms(&t.reads_ns, 95.0),
        percentile_ms(&t.writes_ns, 95.0),
        percentile_ms(&t.commits_ns, 95.0),
    )
}

fn main() {
    banner(
        "Figure 9",
        "p95 latency of blockchain operations (b=50, r=w=0.5)",
    );
    let sizes: Vec<usize> = [10_000usize, 50_000, 100_000]
        .iter()
        .map(|&n| scaled(n))
        .collect();

    header(&["engine", "#updates", "read p95", "write p95", "commit p95"]);
    for &n in &sizes {
        let dir = temp_dir("fig9");
        let rocks = rockslite::RocksLite::open(&dir).expect("open");
        let (r, w, c) = drive(
            LedgerNode::new(
                KvBackend::new(rocks, Box::new(BucketTree::new(1024))),
                BLOCK_SIZE,
            ),
            n,
        );
        row(&[
            "Rocksdb".into(),
            n.to_string(),
            format!("{r:.4} ms"),
            format!("{w:.4} ms"),
            format!("{c:.3} ms"),
        ]);
        std::fs::remove_dir_all(dir).ok();

        let fbkv = ForkBaseKvAdapter::new(ForkBase::in_memory());
        let (r, w, c) = drive(
            LedgerNode::new(
                KvBackend::new(fbkv, Box::new(BucketTree::new(1024))),
                BLOCK_SIZE,
            ),
            n,
        );
        row(&[
            "ForkBase-KV".into(),
            n.to_string(),
            format!("{r:.4} ms"),
            format!("{w:.4} ms"),
            format!("{c:.3} ms"),
        ]);

        let (r, w, c) = drive(LedgerNode::new(ForkBaseBackend::in_memory(), BLOCK_SIZE), n);
        row(&[
            "ForkBase".into(),
            n.to_string(),
            format!("{r:.4} ms"),
            format!("{w:.4} ms"),
            format!("{c:.3} ms"),
        ]);
        println!();
    }

    println!("paper shape check: write(ForkBase) < write(others); commit >> read/write;");
    println!("commit(ForkBase-KV) > commit(Rocksdb) ~ commit(ForkBase).");
}
