//! Figure 17 — (a) version-diff latency vs. the fraction of differing
//! records, and (b) aggregation-query latency vs. dataset size for
//! row-oriented ForkBase, column-oriented ForkBase and the
//! OrpheusDB-style baseline.
//!
//! Paper shapes: (a) the baseline's diff cost is flat (full-vector
//! comparison) while ForkBase's grows from near-zero with the difference
//! size (POS-Tree locates differing chunks); the curves cross.
//! (b) column-oriented ForkBase is ~10× faster than row-oriented, which
//! is comparable to the baseline.

use bytes::Bytes;
use fb_bench::*;
use fb_collab::{Dataset, Layout};
use fb_workload::DatasetGen;
use forkbase_core::ForkBase;
use orpheuslite::OrpheusLite;

fn main() {
    banner("Figure 17", "dataset diff and aggregation queries");

    // ---- (a) version diff vs. % difference ------------------------------
    let rows = scaled(100_000);
    let mut gen = DatasetGen::new(6);
    let records = gen.records(rows);

    let db = ForkBase::in_memory();
    let ds = Dataset::import(&db, "d", Layout::Row, &records).expect("import");
    let v0 = db.head("d", None).expect("head");

    let orpheus = OrpheusLite::new();
    let ov0 = orpheus.import(
        records
            .iter()
            .map(|r| (Bytes::from(r.pk.clone()), r.encode())),
    );

    println!("\n(a) version diff, {rows} records");
    header(&["% differing", "ForkBase", "OrpheusDB"]);
    for pct in [0usize, 1, 2, 4, 8] {
        let mods = gen.modifications(rows, rows * pct / 100);

        // Derive each comparison version directly from v0 so the pair
        // differs by exactly `pct`% of records.
        let map0 = db
            .get_version("d", v0)
            .expect("v0")
            .value(db.store())
            .expect("decode")
            .as_map()
            .expect("map");
        let map1 = map0
            .update(
                db.store(),
                db.cfg(),
                mods.iter()
                    .map(|(_, rec)| (Bytes::from(rec.pk.clone()), Some(rec.encode()))),
            )
            .expect("update");
        let v1 = db
            .put_conflict("d", Some(v0), forkbase_core::Value::Map(map1))
            .expect("put");
        let fb_time = time_once(|| {
            let n = ds.diff_versions(&db, v0, v1).expect("diff");
            assert_eq!(n, mods.len());
        });

        let mut copy = orpheus.checkout(ov0).expect("checkout");
        for (i, rec) in &mods {
            copy[*i].1 = rec.encode();
        }
        let ov1 = orpheus.commit(ov0, &copy).expect("commit");
        let o_time = time_once(|| {
            let d = orpheus.diff(ov0, ov1).expect("diff");
            assert_eq!(d.len(), mods.len());
        });

        record(
            &format!("fig17/diff_forkbase_pct{pct}"),
            fb_time,
            1.0 / fb_time.as_secs_f64().max(1e-12),
        );
        record(
            &format!("fig17/diff_orpheus_pct{pct}"),
            o_time,
            1.0 / o_time.as_secs_f64().max(1e-12),
        );
        row(&[
            format!("{pct}%"),
            format!("{:.2} ms", ms(fb_time)),
            format!("{:.2} ms", ms(o_time)),
        ]);
    }

    // ---- (b) aggregation vs. dataset size --------------------------------
    println!("\n(b) aggregation (sum of an integer column)");
    header(&["#records", "FB-COL", "FB-ROW", "OrpheusDB"]);
    for (label, n) in [
        ("25k", scaled(25_000)),
        ("50k", scaled(50_000)),
        ("100k", scaled(100_000)),
    ] {
        let mut gen = DatasetGen::new(60 + n as u64);
        let records = gen.records(n);
        let db = ForkBase::in_memory();
        let row_ds = Dataset::import(&db, "r", Layout::Row, &records).expect("import");
        let col_ds = Dataset::import(&db, "c", Layout::Column, &records).expect("import");
        let orpheus = OrpheusLite::new();
        let ov = orpheus.import(
            records
                .iter()
                .map(|r| (Bytes::from(r.pk.clone()), r.encode())),
        );

        let reference: i64 = records.iter().map(|r| r.price).sum();
        let col_time = time_once(|| {
            assert_eq!(col_ds.aggregate_sum(&db, "price").expect("sum"), reference);
        });
        let row_time = time_once(|| {
            assert_eq!(row_ds.aggregate_sum(&db, "price").expect("sum"), reference);
        });
        let parse_price = |rec: &[u8]| -> i64 {
            std::str::from_utf8(rec)
                .ok()
                .and_then(|s| s.split(',').nth(2))
                .and_then(|p| p.parse().ok())
                .unwrap_or(0)
        };
        let o_time = time_once(|| {
            assert_eq!(orpheus.aggregate(ov, parse_price).expect("sum"), reference);
        });

        for (series, dur) in [
            ("fb_col", col_time),
            ("fb_row", row_time),
            ("orpheus", o_time),
        ] {
            record(
                &format!("fig17/agg_{series}_{label}"),
                dur,
                ops_per_sec(n, dur),
            );
        }
        row(&[
            n.to_string(),
            format!("{:.2} ms", ms(col_time)),
            format!("{:.2} ms", ms(row_time)),
            format!("{:.2} ms", ms(o_time)),
        ]);
    }

    println!("\npaper shape check: (a) OrpheusDB diff flat, ForkBase grows with % difference");
    println!("from near-zero (crossing at larger diffs); (b) FB-COL ~10x faster than FB-ROW,");
    println!("FB-ROW comparable to OrpheusDB.");
}
