//! Loopback cluster wire benchmark: the in-process transport vs TCP.
//!
//! The same closed-loop blob workload (50% reads / 50% new versions,
//! driven by `fb_workload::run_closed_loop`) runs against clusters of
//! 1/2/4 nodes, once with in-process chunk routing and once with every
//! cross-node chunk crossing a real loopback TCP frame, at 8 and 64
//! concurrent client connections (one closed loop each). The delta is
//! the true cost of the wire — serialization, syscalls, and round trips
//! — which the remote-chunk cache (PR 5) and the batched `get_many`
//! opcode exist to hide.
//!
//! Results append to `$CRITERION_JSON` in the same line format as the
//! criterion-shim benches, extended with `p50_ns`/`p99_ns` per-op
//! latency fields, so `scripts/bench.sh` can assemble `BENCH_net.json`
//! with latency percentiles included (the criterion shim itself only
//! reports medians-of-iterations; a closed loop wants per-op tails).

use fb_bench::*;
use fb_workload::run_closed_loop;
use forkbase_cluster::{Cluster, Partitioning, TcpConfig, Transport};
use std::io::Write;

const NODES: [usize; 3] = [1, 2, 4];
const CONNS: [usize; 2] = [8, 64];
const KEYS: usize = 32;
const BLOB_LEN: usize = 4096;

fn build(nodes: usize, transport: Transport) -> Cluster {
    let cluster = Cluster::builder(nodes)
        .partitioning(Partitioning::TwoLayer)
        .transport(transport)
        .build()
        .expect("cluster");
    for k in 0..KEYS {
        cluster
            .put_blob(format!("key-{k:03}"), &random_bytes(BLOB_LEN, k as u64))
            .expect("preload");
    }
    cluster
}

/// One closed-loop pass: each connection alternates reads with new
/// blob versions over a shared key space.
fn run_pass(cluster: &Cluster, conns: usize, ops_per_conn: usize) -> fb_workload::DriverReport {
    run_closed_loop(conns, ops_per_conn, |t, i| {
        let k = (t * 31 + i * 7) % KEYS;
        let key = format!("key-{k:03}");
        if i % 2 == 0 {
            cluster.get_blob(key).expect("get");
        } else {
            let seed = (t * 1_000_003 + i) as u64;
            cluster
                .put_blob(key, &random_bytes(BLOB_LEN, seed))
                .expect("put");
        }
    })
}

fn emit(id: &str, r: &fb_workload::DriverReport) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                file,
                concat!(
                    "{{\"bench\":\"{}\",\"median_ns_per_iter\":{:.1},",
                    "\"ops_per_sec\":{:.1},\"unit\":\"elements\",\"units_per_iter\":1,",
                    "\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}"
                ),
                id,
                r.ns_per_op(),
                r.ops_per_sec,
                r.p50_ns,
                r.p99_ns,
                r.max_ns,
            );
        }
    }
}

fn main() {
    banner(
        "cluster net",
        "in-process vs loopback-TCP chunk routing (closed-loop blob workload)",
    );
    let ops_per_conn = scaled(48);
    header(&[
        "nodes",
        "conns",
        "transport",
        "ops/s",
        "p50 us",
        "p99 us",
        "max us",
    ]);
    for &nodes in &NODES {
        for &conns in &CONNS {
            for (label, transport) in [
                ("inproc", Transport::InProcess),
                ("tcp", Transport::Tcp(TcpConfig::default())),
            ] {
                let cluster = build(nodes, transport);
                // One warmup pass (fills remote caches, dials every
                // pooled socket), then the measured pass.
                run_pass(&cluster, conns, ops_per_conn.min(8));
                let r = run_pass(&cluster, conns, ops_per_conn);
                row(&[
                    nodes.to_string(),
                    conns.to_string(),
                    label.to_string(),
                    format!("{:.0}", r.ops_per_sec),
                    format!("{}", r.p50_ns / 1000),
                    format!("{}", r.p99_ns / 1000),
                    format!("{}", r.max_ns / 1000),
                ]);
                emit(
                    &format!("cluster_net/{label}_nodes{nodes}_conns{conns}"),
                    &r,
                );
            }
        }
    }
    println!(
        "\npaper shape check: TCP pays a per-op wire tax that shrinks as the remote-chunk\n\
         cache absorbs repeat reads; 1-node clusters route nothing remotely, so their\n\
         tcp/inproc gap isolates pure transport overhead from routing."
    );
}
