//! Figure 16 — dataset modification: latency and space increment when
//! 1–5% of records are updated, ForkBase vs. the OrpheusDB-style
//! baseline.
//!
//! Paper shapes: ForkBase is about two orders of magnitude faster
//! (checkout returns a handle and commits only changed chunks, while the
//! baseline materializes a full working copy and re-stores a complete
//! rlist); the baseline's space increment is ~3× ForkBase's.

use bytes::Bytes;
use fb_bench::*;
use fb_collab::{Dataset, Layout};
use fb_workload::DatasetGen;
use forkbase_core::ForkBase;
use orpheuslite::OrpheusLite;

fn main() {
    banner(
        "Figure 16",
        "dataset modification latency and space increment",
    );
    // Scaled from the paper's 5M-record dataset.
    let rows = scaled(100_000);
    let mut gen = DatasetGen::new(5);
    let records = gen.records(rows);
    println!("dataset: {rows} records (~{} MB)", rows * 180 / 1_000_000);

    // ForkBase import (row layout, as the modification experiment needs
    // pk-addressed updates).
    let db = ForkBase::in_memory();
    let ds = Dataset::import(&db, "d", Layout::Row, &records).expect("import");

    // OrpheusDB-style import.
    let orpheus = OrpheusLite::new();
    let mut o_version = orpheus.import(
        records
            .iter()
            .map(|r| (Bytes::from(r.pk.clone()), r.encode())),
    );
    println!(
        "initial space: ForkBase {:.1} MB, OrpheusDB {:.1} MB",
        db.store().stats().stored_bytes as f64 / 1e6,
        orpheus.storage_bytes() as f64 / 1e6
    );

    header(&[
        "% updated",
        "FB latency",
        "FB +MB",
        "Orph latency",
        "Orph +MB",
    ]);
    for pct in 1..=5usize {
        // Batch transformations touch contiguous ranges (a cleansing pass
        // over a region of the table), which is where chunk-level dedup
        // approaches the raw size of the changed records.
        let mods = gen.modifications_range(rows, rows * pct / 100);

        let fb_before = db.store().stats().stored_bytes;
        let fb_time = time_once(|| {
            ds.update(&db, &mods).expect("update");
        });
        let fb_inc = db.store().stats().stored_bytes - fb_before;

        let o_before = orpheus.storage_bytes();
        let mut next = o_version;
        let o_time = time_once(|| {
            // The baseline's full cycle: checkout materializes the whole
            // working copy, then commit re-stores modified rows + a full
            // rlist.
            let mut copy = orpheus.checkout(o_version).expect("checkout");
            for (i, rec) in &mods {
                copy[*i].1 = rec.encode();
            }
            next = orpheus.commit(o_version, &copy).expect("commit");
        });
        o_version = next;
        let o_inc = orpheus.storage_bytes() - o_before;

        row(&[
            format!("{pct}%"),
            format!("{:.1} ms", ms(fb_time)),
            format!("{:.2}", fb_inc as f64 / 1e6),
            format!("{:.1} ms", ms(o_time)),
            format!("{:.2}", o_inc as f64 / 1e6),
        ]);
    }

    println!("\npaper shape check: ForkBase latency 1-2 orders of magnitude lower;");
    println!("OrpheusDB space increment ~3x ForkBase's (full rlist per version).");
}
