//! Figure 11 — distribution (CDF) of commit latency with different Merkle
//! structures: ForkBase Map vs. bucket trees (nb = 10, 1K, 1M) vs. trie.
//!
//! Paper shapes: fewer buckets → higher latency and a wider distribution
//! (write amplification grows with state size); the trie has low
//! amplification but is slower than ForkBase due to unbalanced, longer
//! traversals; ForkBase Maps "scale gracefully by dynamically adjusting
//! the tree height and bounding node sizes".

use fb_bench::*;
use fb_workload::{YcsbConfig, YcsbGen};
use ledgerlite::{BucketTree, ForkBaseBackend, MerkleTree, MerkleTrie, StateBackend};

const BLOCK_SIZE: usize = 50;

/// Commit-latency samples (ns) for a Merkle structure fed `blocks`
/// batches of `BLOCK_SIZE` updates.
fn run_merkle(mut tree: Box<dyn MerkleTree>, blocks: usize) -> Vec<u64> {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys: blocks * BLOCK_SIZE / 2,
        read_ratio: 0.0,
        value_size: 100,
        ..Default::default()
    });
    let mut samples = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        let updates: Vec<(bytes::Bytes, bytes::Bytes)> = gen
            .batch(BLOCK_SIZE)
            .into_iter()
            .map(|op| match op {
                fb_workload::Op::Write(k, v) => (k, v),
                fb_workload::Op::Read(_) => unreachable!("write-only workload"),
            })
            .collect();
        let t = std::time::Instant::now();
        tree.update_batch(&updates);
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples
}

/// Commit-latency samples for the full ForkBase backend (Map objects).
fn run_forkbase(blocks: usize) -> Vec<u64> {
    let mut backend = ForkBaseBackend::in_memory();
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys: blocks * BLOCK_SIZE / 2,
        read_ratio: 0.0,
        value_size: 100,
        ..Default::default()
    });
    let mut samples = Vec::with_capacity(blocks);
    for h in 0..blocks {
        for op in gen.batch(BLOCK_SIZE) {
            if let fb_workload::Op::Write(k, v) = op {
                backend.stage("kv", &k, v);
            }
        }
        let t = std::time::Instant::now();
        backend.commit(h as u64);
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples
}

fn print_cdf(name: &str, samples: &[u64]) {
    let cells: Vec<String> = std::iter::once(name.to_string())
        .chain(
            [10.0, 25.0, 50.0, 75.0, 90.0, 99.0]
                .iter()
                .map(|&p| format!("{:.3}", percentile_ms(samples, p))),
        )
        .collect();
    row(&cells);
}

fn main() {
    banner(
        "Figure 11",
        "commit latency CDF with different Merkle trees (ms)",
    );
    let blocks = scaled(400);

    header(&["structure", "p10", "p25", "p50", "p75", "p90", "p99"]);
    print_cdf("ForkBase", &run_forkbase(blocks));
    // The paper's 1M-bucket case is scaled to 64K to fit laptop memory;
    // the comparison (more buckets → less amplification) is unchanged.
    print_cdf(
        "Rocksdb_10",
        &run_merkle(Box::new(BucketTree::new(10)), blocks),
    );
    print_cdf(
        "Rocksdb_1K",
        &run_merkle(Box::new(BucketTree::new(1_000)), blocks),
    );
    print_cdf(
        "Rocksdb_64K",
        &run_merkle(Box::new(BucketTree::new(65_536)), blocks),
    );
    print_cdf(
        "Rocksdb_trie",
        &run_merkle(Box::new(MerkleTrie::new()), blocks),
    );

    println!("\npaper shape check: latency(bucket-10) > latency(bucket-1K) > latency(bucket-64K);");
    println!("trie slower than ForkBase; ForkBase distribution tight.");
}
