//! Micro-benches for the LSM baseline: put/get latency across levels and
//! batched writes (the properties the blockchain comparison relies on).

use criterion::{criterion_group, criterion_main, Criterion};
use fb_bench::temp_dir;
use rockslite::{Options, RocksLite};

fn lsm_ops(c: &mut Criterion) {
    let dir = temp_dir("rl-micro");
    let db = RocksLite::open_with(
        &dir,
        Options {
            memtable_bytes: 256 * 1024,
            l0_compaction_trigger: 4,
            ..Options::default()
        },
    )
    .expect("open");

    // Preload so reads traverse multiple levels.
    for i in 0..50_000u32 {
        db.put(
            format!("key-{i:08}").as_bytes(),
            format!("value-{i}").as_bytes(),
        )
        .expect("put");
    }

    let mut group = c.benchmark_group("rockslite");
    group.bench_function("put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.put(format!("bench-{i:08}").as_bytes(), b"benchmark value")
                .expect("put")
        });
    });
    group.bench_function("get_hot", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            db.get(format!("key-{i:08}").as_bytes()).expect("io")
        });
    });
    group.bench_function("get_missing", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            db.get(format!("absent-{i:08}").as_bytes()).expect("io")
        });
    });
    group.bench_function("write_batch_50", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let batch: Vec<_> = (0..50)
                .map(|j| {
                    (
                        bytes::Bytes::from(format!("batch-{i}-{j}")),
                        Some(bytes::Bytes::from_static(b"v")),
                    )
                })
                .collect();
            db.write_batch(&batch).expect("batch")
        });
    });
    group.finish();
    std::fs::remove_dir_all(dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = lsm_ops
}
criterion_main!(benches);
