//! Table 3 — throughput and average latency of individual ForkBase
//! operations, for 1 KB and 20 KB values.
//!
//! Paper setup: one servlet, 32 remote clients; latencies there are
//! network-dominated. Here the servlet is embedded, so latencies are
//! compute-side; the comparisons that must hold are relative: primitive
//! types beat chunkable types on Put (no chunking/rolling hash),
//! Get-Meta/Track/Fork are nearly size-independent, Get-Full scales with
//! size.

use fb_bench::*;
use forkbase_core::{ForkBase, Value};

fn put_string(db: &ForkBase, n: usize, size: usize) -> (f64, f64) {
    let payload = String::from_utf8(vec![b'x'; size]).expect("ascii");
    let mut i = 0usize;
    let (total, avg) = time_n(n, || {
        db.put(
            format!("str-{size}-{i}"),
            None,
            Value::String(payload.clone()),
        )
        .expect("put");
        i += 1;
    });
    (ops_per_sec(n, total), us(avg))
}

fn put_blob(db: &ForkBase, n: usize, size: usize) -> (f64, f64) {
    let payload = random_bytes(size, 1);
    let mut i = 0usize;
    let (total, avg) = time_n(n, || {
        let blob = db.new_blob(&payload);
        db.put(format!("blob-{size}-{i}"), None, Value::Blob(blob))
            .expect("put");
        i += 1;
    });
    (ops_per_sec(n, total), us(avg))
}

fn put_map(db: &ForkBase, n: usize, size: usize) -> (f64, f64) {
    // A map whose entries sum to `size` bytes.
    let n_entries = (size / 100).max(1);
    let pairs: Vec<(String, String)> = (0..n_entries)
        .map(|e| (format!("field-{e:04}"), "v".repeat(100 - 11)))
        .collect();
    let mut i = 0usize;
    let (total, avg) = time_n(n, || {
        let map = db.new_map(pairs.iter().map(|(k, v)| (k.clone(), v.clone())));
        db.put(format!("map-{size}-{i}"), None, Value::Map(map))
            .expect("put");
        i += 1;
    });
    (ops_per_sec(n, total), us(avg))
}

fn main() {
    banner("Table 3", "performance of ForkBase operations");
    let n = scaled(2000);

    for &size in &[1024usize, 20 * 1024] {
        let label = if size == 1024 { "1KB" } else { "20KB" };
        let db = ForkBase::in_memory();
        println!("\n--- value size {label} ---");
        header(&["op", "throughput", "avg latency"]);
        let fmt = |name: &str, (tput, lat): (f64, f64)| {
            let slug = name.to_ascii_lowercase().replace('-', "_");
            record(
                &format!("table3/{slug}_{}", label.to_ascii_lowercase()),
                std::time::Duration::from_nanos((lat * 1e3) as u64),
                tput,
            );
            row(&[
                name.to_string(),
                format!("{:.1}K ops/s", tput / 1e3),
                format!("{lat:.2} us"),
            ]);
        };

        fmt("Put-String", put_string(&db, n, size));
        fmt("Put-Blob", put_blob(&db, n, size));
        fmt("Put-Map", put_map(&db, n, size));

        // Reads against the populated store.
        let mut i = 0usize;
        let (total, avg) = time_n(n, || {
            db.get_value(format!("str-{size}-{i}"), None).expect("get");
            i = (i + 1) % n;
        });
        fmt("Get-String", (ops_per_sec(n, total), us(avg)));

        let mut i = 0usize;
        let (total, avg) = time_n(n, || {
            // Meta only: returns the handler without fetching data chunks.
            db.get(format!("blob-{size}-{i}"), None).expect("get");
            i = (i + 1) % n;
        });
        fmt("Get-Blob-Meta", (ops_per_sec(n, total), us(avg)));

        let mut i = 0usize;
        let (total, avg) = time_n(n, || {
            let blob = db
                .get_value(format!("blob-{size}-{i}"), None)
                .expect("get")
                .as_blob()
                .expect("blob");
            blob.read_all(db.store()).expect("read");
            i = (i + 1) % n;
        });
        fmt("Get-Blob-Full", (ops_per_sec(n, total), us(avg)));

        let mut i = 0usize;
        let (total, avg) = time_n(n, || {
            let map = db
                .get_value(format!("map-{size}-{i}"), None)
                .expect("get")
                .as_map()
                .expect("map");
            let _: Vec<_> = map.iter(db.store()).collect();
            i = (i + 1) % n;
        });
        fmt("Get-Map-Full", (ops_per_sec(n, total), us(avg)));

        // Track over a 16-version history.
        for v in 0..16 {
            db.put(
                "tracked",
                None,
                Value::String(format!("v{v}-{}", "x".repeat(size))),
            )
            .expect("put");
        }
        let (total, avg) = time_n(n, || {
            db.track("tracked", None, 0, 4).expect("track");
        });
        fmt("Track", (ops_per_sec(n, total), us(avg)));

        let mut i = 0usize;
        let (total, avg) = time_n(n, || {
            db.fork("tracked", "master", &format!("branch-{size}-{i}"))
                .expect("fork");
            i += 1;
        });
        fmt("Fork", (ops_per_sec(n, total), us(avg)));
    }

    println!("\npaper shape check: Put(primitive) > Put(chunkable); Get-Meta/Track/Fork size-independent.");
}
