//! Ablation — the boundary-shifting problem (§4.3 motivation).
//!
//! The paper rejects fixed-size chunking because "an insertion occurs in
//! the middle of the structure" shifts every subsequent boundary,
//! destroying deduplication. This harness measures that directly: build a
//! version, apply a small edit (insert / delete / overwrite) at varying
//! positions, and report how many chunks of the new version a
//! content-addressed store must newly persist under
//!
//! * fixed-size splitting (the strawman),
//! * pattern-based splitting (POS, the paper's design),
//!
//! plus the chunk-size sensitivity of both (q = 10, 12, 14).

use fb_bench::*;
use forkbase_crypto::{dedup_fixed, dedup_pattern, ChunkerConfig};

enum Edit {
    Insert,
    Delete,
    Overwrite,
}

fn edited(old: &[u8], at: usize, edit: &Edit) -> Vec<u8> {
    let mut new = old.to_vec();
    match edit {
        Edit::Insert => {
            for (i, b) in b"0123456789".iter().enumerate() {
                new.insert(at + i, *b);
            }
        }
        Edit::Delete => {
            new.drain(at..at + 10);
        }
        Edit::Overwrite => {
            for b in &mut new[at..at + 10] {
                *b ^= 0x5A;
            }
        }
    }
    new
}

fn main() {
    banner(
        "Ablation",
        "boundary shifting: fixed-size vs pattern-based chunking",
    );
    let size = scaled(2_000_000);
    let old = random_bytes(size, 11);
    let cfg = ChunkerConfig::default(); // 4KB expected leaves

    header(&[
        "edit",
        "position",
        "fixed reuse",
        "POS reuse",
        "fixed new KB",
        "POS new KB",
    ]);
    for (name, edit) in [
        ("insert10B", Edit::Insert),
        ("delete10B", Edit::Delete),
        ("xor10B", Edit::Overwrite),
    ] {
        for frac in [0.05, 0.5, 0.95] {
            let at = (size as f64 * frac) as usize;
            let new = edited(&old, at, &edit);
            let fixed = dedup_fixed(&old, &new, 4096);
            let pos = dedup_pattern(&old, &new, &cfg);
            row(&[
                name.to_string(),
                format!("{:.0}%", frac * 100.0),
                format!("{:.1}%", fixed.reuse_ratio() * 100.0),
                format!("{:.1}%", pos.reuse_ratio() * 100.0),
                format!("{:.1}", fixed.new_bytes as f64 / 1e3),
                format!("{:.1}", pos.new_bytes as f64 / 1e3),
            ]);
        }
    }
    println!(
        "\npaper shape check: overwrites dedup under both; inserts/deletes collapse fixed-size\n\
         reuse to roughly the prefix before the edit, while POS stays near 100%."
    );

    // Chunk-size sensitivity: the same middle insert under different q.
    println!();
    header(&["q (leaf bits)", "avg chunk", "POS reuse", "POS new KB"]);
    let at = size / 2;
    let new = edited(&old, at, &Edit::Insert);
    for q in [10u32, 12, 14] {
        let cfg = ChunkerConfig::with_leaf_bits(q);
        let stats = dedup_pattern(&old, &new, &cfg);
        let cuts = forkbase_crypto::chunker::split_positions(&old, &cfg);
        row(&[
            q.to_string(),
            format!("{}B", size / cuts.len().max(1)),
            format!("{:.1}%", stats.reuse_ratio() * 100.0),
            format!("{:.1}", stats.new_bytes as f64 / 1e3),
        ]);
    }
    println!(
        "\nsmaller chunks localize edits better (less new data per edit) at the cost of\n\
         more index entries and more rolling-hash boundary checks."
    );
}
