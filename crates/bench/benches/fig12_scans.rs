//! Figure 12 — analytical queries on blockchain data: state-scan and
//! block-scan latency, ForkBase vs. Rocksdb, for small and large key
//! spaces.
//!
//! Paper shapes: for few scanned keys/early blocks the gap is up to 4
//! orders of magnitude, because the KV engine pays a full-chain
//! pre-processing pass that ForkBase never needs; the gap narrows as the
//! scan covers more of the store (the pre-processing cost amortizes);
//! ForkBase block-scan cost grows with the number of keys alive at the
//! scanned block.

use fb_bench::*;
use fb_workload::{YcsbConfig, YcsbGen};
use ledgerlite::{BucketTree, ForkBaseBackend, KvBackend, LedgerNode, StateBackend, Transaction};

const BLOCK_SIZE: usize = 50;

fn populate<B: StateBackend>(node: &mut LedgerNode<B>, n_keys: usize, n_updates: usize) {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys,
        read_ratio: 0.0,
        value_size: 100,
        ..Default::default()
    });
    for op in gen.batch(n_updates) {
        if let fb_workload::Op::Write(k, v) = op {
            node.submit(Transaction::put("kv", k, v));
        }
    }
    node.flush();
}

fn main() {
    banner("Figure 12", "state scan and block scan latency (ms)");
    // Scaled from the paper's 12000-block chain.
    let n_updates = scaled(60_000);

    for &n_keys in &[1usize << 10, 1 << 14] {
        println!(
            "\n--- {n_keys} keys, {n_updates} updates, {} blocks ---",
            n_updates / BLOCK_SIZE
        );

        let dir = temp_dir("fig12");
        let rocks = rockslite::RocksLite::open(&dir).expect("open");
        let mut rocks_node = LedgerNode::new(
            KvBackend::new(rocks, Box::new(BucketTree::new(4096))),
            BLOCK_SIZE,
        );
        populate(&mut rocks_node, n_keys, n_updates);

        let mut fb_node = LedgerNode::new(ForkBaseBackend::in_memory(), BLOCK_SIZE);
        populate(&mut fb_node, n_keys, n_updates);

        // ---- (a) state scan: x keys' histories per query ----------------
        println!("\n(a) state scan");
        header(&["#keys scanned", "ForkBase", "Rocksdb"]);
        for &x in &[1usize, 10, 100, 1000] {
            let x = x.min(n_keys);
            let fb = time_once(|| {
                for i in 0..x {
                    fb_node.backend_mut().state_scan("kv", &YcsbGen::key(i));
                }
            });
            // Fresh index per query batch, as the paper's pre-processing
            // implementation pays it on first use (commit invalidates it).
            let rocks = time_once(|| {
                for i in 0..x {
                    rocks_node.backend_mut().state_scan("kv", &YcsbGen::key(i));
                }
            });
            row(&[
                x.to_string(),
                format!("{:.3} ms", ms(fb)),
                format!("{:.3} ms", ms(rocks)),
            ]);
            // Invalidate the KV index so the next batch pays again (the
            // paper's per-query pre-processing).
            rocks_node.submit(Transaction::put("kv", "invalidate", "x"));
            rocks_node.commit_block();
        }

        // ---- (b) block scan ------------------------------------------------
        println!("\n(b) block scan");
        header(&["block #", "ForkBase", "Rocksdb"]);
        let top = fb_node.height();
        for &frac in &[0.0f64, 0.25, 0.5, 0.75, 0.999] {
            let h = ((top as f64 * frac) as u64).min(top - 1);
            let fb = time_once(|| {
                fb_node.backend_mut().block_scan("kv", h);
            });
            let rocks = time_once(|| {
                rocks_node.backend_mut().block_scan("kv", h);
            });
            row(&[
                h.to_string(),
                format!("{:.3} ms", ms(fb)),
                format!("{:.3} ms", ms(rocks)),
            ]);
            rocks_node.submit(Transaction::put("kv", "invalidate", "y"));
            rocks_node.commit_block();
        }
        std::fs::remove_dir_all(dir).ok();
    }

    println!("\npaper shape check: ForkBase scans are orders of magnitude faster for small x /");
    println!("early blocks; the gap narrows as scans cover more of the store.");
}
