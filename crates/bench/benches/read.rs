//! The concurrent read tier, measured: YCSB-C (100% reads) with zipfian
//! key choice — the workload §6.2 derives from Blockbench's YCSB driver
//! — against three chunk-store configurations:
//!
//! * `memstore` — the in-memory ceiling,
//! * `logstore` — bare durable reads (index lock + pread + cid verify
//!   per get; the 28× gap PR 4 documented),
//! * `logstore_cached` — the same store behind the default sharded
//!   clock cache ([`ShardedCache`]), plus a `get_many` batched variant.
//!
//! A capacity sweep (cache sized to 10% / 35% / 100% of the working
//! set) shows how the zipfian skew keeps the hit rate high well below
//! full residency; per-config hit rates are printed to stderr and
//! recorded in EXPERIMENTS.md. `scripts/bench.sh` assembles everything
//! into `BENCH_read.json`, which the CI bench gate enforces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fb_workload::zipf::Zipf;
use forkbase_chunk::{
    CacheConfig, Chunk, ChunkStore, ChunkType, Durability, LogConfig, LogStore, MemStore,
    ShardedCache,
};
use forkbase_crypto::Digest;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// YCSB-C shape: 10k keys, 1 KiB values, zipf 0.99 (the YCSB default
/// skew), 8192 reads per measured iteration.
const N_KEYS: usize = 10_000;
const PAYLOAD: usize = 1024;
const READS_PER_ITER: usize = 8192;
const ZIPF_S: f64 = 0.99;

fn bench_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("forkbase-bench-read-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("bench root");
    root
}

fn fresh_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    bench_root().join(format!("run-{}", N.fetch_add(1, Ordering::Relaxed)))
}

/// The stored chunk for YCSB key index `i` (key text embedded so the
/// working set matches what an engine-level load phase would write).
fn value_chunk(i: usize) -> Chunk {
    let key = fb_workload::YcsbGen::key(i);
    let mut payload = vec![0u8; PAYLOAD];
    payload[..key.len()].copy_from_slice(&key);
    let mut state = i as u64 + 1;
    for b in payload.iter_mut().skip(key.len()) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (state >> 33) as u8;
    }
    Chunk::new(ChunkType::Blob, payload)
}

/// The zipfian read schedule: one deterministic cid sequence shared by
/// every store variant, so they serve byte-identical request streams.
fn zipf_schedule(cids: &[Digest]) -> Vec<Digest> {
    let zipf = Zipf::new(N_KEYS, ZIPF_S);
    let mut rng = StdRng::seed_from_u64(42);
    (0..READS_PER_ITER)
        .map(|_| cids[zipf.sample(&mut rng)])
        .collect()
}

fn load<S: ChunkStore + ?Sized>(store: &S) -> Vec<Digest> {
    (0..N_KEYS)
        .map(|i| {
            let c = value_chunk(i);
            let cid = c.cid();
            store.put(c);
            cid
        })
        .collect()
}

fn open_log(dir: &PathBuf) -> LogStore {
    LogStore::open_with(
        dir,
        LogConfig {
            segment_bytes: 64 << 20,
            snapshot_bytes: u64::MAX,
        },
        Durability::Os,
    )
    .expect("open")
}

fn run_reads<S: ChunkStore + ?Sized>(store: &S, schedule: &[Digest]) -> usize {
    let mut hits = 0usize;
    for cid in schedule {
        hits += usize::from(store.get(cid).is_some());
    }
    hits
}

fn ycsbc_zipf(c: &mut Criterion) {
    let mem = MemStore::new();
    let cids = load(&mem);
    let schedule = zipf_schedule(&cids);

    let dir = fresh_dir();
    let log = open_log(&dir);
    load(&log);
    log.sync().expect("sync"); // reads come from segments, not the queue

    let cached_dir = fresh_dir();
    let cached = ShardedCache::new(
        Arc::new(open_log(&cached_dir)) as Arc<dyn ChunkStore>,
        CacheConfig::default(),
    );
    load(&cached);

    // Warm pass so the measured iterations see the steady-state cache
    // (one zipfian pass touches ~every hot key).
    run_reads(&cached, &schedule);

    let mut group = c.benchmark_group("ycsbc_zipf_10k");
    group.throughput(Throughput::Elements(READS_PER_ITER as u64));
    group.bench_function("memstore", |b| b.iter(|| run_reads(&mem, &schedule)));
    group.bench_function("logstore", |b| b.iter(|| run_reads(&log, &schedule)));
    group.bench_function("logstore_cached", |b| {
        b.iter(|| run_reads(&cached, &schedule))
    });
    group.bench_function("logstore_cached_get_many", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for batch in schedule.chunks(64) {
                hits += cached.get_many(batch).iter().flatten().count();
            }
            hits
        })
    });
    group.finish();

    let (hits, misses) = cached.hit_miss();
    eprintln!(
        "read-bench: full-size cache hit rate {:.2}% ({hits} hits / {misses} misses)",
        100.0 * hits as f64 / (hits + misses) as f64
    );

    drop(log);
    drop(cached);
    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_dir_all(cached_dir).ok();
}

/// Hit-rate sweep: the cache sized to a fraction of the ~10 MB working
/// set. Zipf 0.99 concentrates mass on the head of the key ranking, so
/// even a 10% cache absorbs most reads.
fn capacity_sweep(c: &mut Criterion) {
    let working_set = N_KEYS * PAYLOAD;
    let mut group = c.benchmark_group("read_cache_capacity_sweep");
    group.throughput(Throughput::Elements(READS_PER_ITER as u64));
    for pct in [10usize, 35, 100] {
        let dir = fresh_dir();
        let cached = ShardedCache::new(
            Arc::new(open_log(&dir)) as Arc<dyn ChunkStore>,
            CacheConfig::with_capacity(working_set * pct / 100),
        );
        let cids = load(&cached);
        let schedule = zipf_schedule(&cids);
        run_reads(&cached, &schedule); // warm
        let (h0, m0) = cached.hit_miss();
        group.bench_function(format!("capacity_{pct}pct"), |b| {
            b.iter(|| run_reads(&cached, &schedule))
        });
        let (h1, m1) = cached.hit_miss();
        eprintln!(
            "read-bench: {pct}% cache steady-state hit rate {:.2}%",
            100.0 * (h1 - h0) as f64 / ((h1 - h0) + (m1 - m0)) as f64
        );
        drop(cached);
        std::fs::remove_dir_all(dir).ok();
    }
    group.finish();
}

fn teardown(_c: &mut Criterion) {
    std::fs::remove_dir_all(bench_root()).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ycsbc_zipf, capacity_sweep, teardown
}
criterion_main!(benches);
