//! The flat hot-state tier, measured: YCSB-C (100% reads) and YCSB-A
//! (50/50 read/update), zipf 0.99, through the *same* `hot_get`/`hot_put`
//! engine surface with the tier on vs off:
//!
//! * `tree_cached` — tier off: every read is a committed POS-Tree map
//!   lookup over the PR-5 sharded chunk cache, every update a
//!   synchronous `commit_map_batch` (encode + hash + store round trip).
//!   This is the cached-tree path the repo has benched since PR 5, now
//!   at the engine surface.
//! * `hot` — tier on: reads are flat-HAMT hits, updates land in the
//!   tier and drain through the background publisher's group commits.
//!
//! Both variants run over a durable `LogStore` in a temp dir with the
//! default cache, preloaded with the same working set, serving the same
//! deterministic schedules — the delta is purely what the flat tier
//! buys over walking the authenticated tree for latest-state access.
//! `scripts/bench.sh` assembles `BENCH_hot.json` with the derived
//! hot-vs-tree speedups; CI gates YCSB-C ≥ 5× and YCSB-A ≥ 3×.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fb_workload::{Op, YcsbConfig, YcsbGen};
use forkbase_core::{ForkBase, HotTierConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One engine key holds the whole flat state; YCSB keys are subkeys.
const STATE_KEY: &str = "bench/state";
const N_KEYS: usize = 10_000;
const VALUE_SIZE: usize = 100;
const ZIPF_S: f64 = 0.99;

fn bench_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("forkbase-bench-hot-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("bench root");
    root
}

fn fresh_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    bench_root().join(format!("run-{}", N.fetch_add(1, Ordering::Relaxed)))
}

/// A durable engine with the default read cache; `hot` picks the tier.
fn open(dir: &PathBuf, hot: HotTierConfig) -> ForkBase {
    ForkBase::open_with(
        dir,
        forkbase_crypto::ChunkerConfig::default(),
        forkbase_chunk::Durability::Os,
        forkbase_chunk::CacheConfig::default(),
        hot,
    )
    .expect("open")
}

/// Preload every subkey, then force everything into the committed tree
/// (and, for the hot variant, leave the flat index warm — the workload
/// is *latest-state* access, which is exactly what the tier holds).
fn preload(db: &ForkBase, n_keys: usize) {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys,
        value_size: VALUE_SIZE,
        ..YcsbConfig::default()
    });
    for start in (0..n_keys).step_by(1024) {
        let entries: Vec<_> = (start..(start + 1024).min(n_keys))
            .map(|i| (YcsbGen::key(i), Some(gen.value())))
            .collect();
        db.hot_put_many(STATE_KEY, entries).expect("preload");
    }
    db.flush_hot().expect("preload flush");
}

/// Deterministic op schedule shared by both variants.
fn schedule(n_keys: usize, read_ratio: f64, ops: usize) -> Vec<Op> {
    let mut gen = YcsbGen::new(YcsbConfig {
        n_keys,
        read_ratio,
        value_size: VALUE_SIZE,
        zipf: ZIPF_S,
        seed: 0x407,
    });
    (0..ops).map(|_| gen.next_op()).collect()
}

fn run_ops(db: &ForkBase, schedule: &[Op]) -> usize {
    let mut hits = 0usize;
    for op in schedule {
        match op {
            Op::Read(k) => {
                hits += usize::from(db.hot_get(STATE_KEY, k).expect("read").is_some());
            }
            Op::Write(k, v) => {
                db.hot_put(STATE_KEY, k.clone(), v.clone()).expect("write");
            }
        }
    }
    hits
}

fn hot_tier(c: &mut Criterion) {
    let n_keys = fb_bench::scaled(N_KEYS);
    let ops_per_iter = fb_bench::scaled(4096);
    let read_sched = schedule(n_keys, 1.0, ops_per_iter);
    let mixed_sched = schedule(n_keys, 0.5, ops_per_iter);

    let tree_dir = fresh_dir();
    let tree = open(&tree_dir, HotTierConfig::disabled());
    preload(&tree, n_keys);

    let hot_dir = fresh_dir();
    let hot = open(&hot_dir, HotTierConfig::on());
    preload(&hot, n_keys);

    let mut group = c.benchmark_group("hot_tier");
    group.throughput(Throughput::Elements(ops_per_iter as u64));

    group.bench_function("ycsbc_tree_cached", |b| {
        b.iter(|| run_ops(&tree, &read_sched))
    });
    group.bench_function("ycsbc_hot", |b| b.iter(|| run_ops(&hot, &read_sched)));

    group.bench_function("ycsba_tree_cached", |b| {
        b.iter(|| run_ops(&tree, &mixed_sched))
    });
    group.bench_function("ycsba_hot", |b| {
        b.iter(|| run_ops(&hot, &mixed_sched));
        // Quiesce between samples so queue depth from one sample never
        // bleeds backpressure into the next — each sample pays for its
        // own publishing.
        hot.flush_hot().expect("inter-sample flush");
    });
    group.finish();

    if let Some(stats) = hot.hot_stats() {
        eprintln!(
            "hot-bench: hits {} misses {} writes {} published {} rounds {}",
            stats.hits, stats.misses, stats.writes, stats.published, stats.publish_rounds
        );
    }

    drop(tree);
    drop(hot);
    std::fs::remove_dir_all(tree_dir).ok();
    std::fs::remove_dir_all(hot_dir).ok();
}

fn teardown(_c: &mut Criterion) {
    std::fs::remove_dir_all(bench_root()).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = hot_tier, teardown
}
criterion_main!(benches);
