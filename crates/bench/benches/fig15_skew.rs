//! Figure 15 — per-node storage distribution under a skewed (zipf = 0.5)
//! wiki workload, one-layer vs. two-layer partitioning on a 16-node
//! cluster.
//!
//! Paper shape: with one-layer partitioning (page content stored at the
//! page's home servlet) hot pages pile storage onto a few nodes; the
//! two-layer scheme spreads chunks evenly by cid.

use fb_bench::*;
use fb_workload::{PageEditGen, Zipf};
use forkbase_cluster::{Cluster, Partitioning};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 16;

fn run(partitioning: Partitioning, pages: usize, edits: usize) -> Vec<u64> {
    let cluster = Cluster::builder(NODES)
        .partitioning(partitioning)
        .build()
        .expect("cluster");
    let mut gen = PageEditGen::new(15, 0.9, 64);
    let zipf = Zipf::new(pages, 0.5);
    let mut rng = StdRng::seed_from_u64(4);

    let mut contents: Vec<String> = (0..pages).map(|_| gen.initial_page(15 * 1024)).collect();
    for (i, c) in contents.iter().enumerate() {
        cluster
            .put_blob(format!("page-{i:05}"), c.as_bytes())
            .expect("put");
    }
    for _ in 0..edits {
        let p = zipf.sample(&mut rng);
        let edit = gen.next_edit(contents[p].len());
        PageEditGen::apply(&mut contents[p], &edit);
        cluster
            .put_blob(format!("page-{p:05}"), contents[p].as_bytes())
            .expect("put");
    }
    cluster.per_node_bytes()
}

fn main() {
    banner(
        "Figure 15",
        "storage distribution under skew (zipf=0.5, 16 nodes)",
    );
    let pages = scaled(160);
    let edits = scaled(1200);

    let t = std::time::Instant::now();
    let one = run(Partitioning::OneLayer, pages, edits);
    let one_ingest = t.elapsed();
    let t = std::time::Instant::now();
    let two = run(Partitioning::TwoLayer, pages, edits);
    let two_ingest = t.elapsed();

    header(&["node", "1LP (MB)", "2LP (MB)"]);
    for i in 0..NODES {
        row(&[
            i.to_string(),
            format!("{:.1}", one[i] as f64 / 1e6),
            format!("{:.1}", two[i] as f64 / 1e6),
        ]);
    }

    let imbalance = |v: &[u64]| {
        let max = *v.iter().max().expect("non-empty") as f64;
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        max / mean
    };
    println!(
        "\nimbalance (max/mean): 1LP {:.2}x, 2LP {:.2}x",
        imbalance(&one),
        imbalance(&two)
    );
    // The gated metric is per-put ingest cost; the figure's actual claim
    // (storage balance) rides along as max-over-mean imbalance, in
    // thousandths so it stays integral-friendly.
    let puts = pages + edits;
    for (series, dur, nodes) in [
        ("one_layer", one_ingest, &one),
        ("two_layer", two_ingest, &two),
    ] {
        record_with(
            &format!("fig15/{series}_16nodes"),
            dur / puts.max(1) as u32,
            ops_per_sec(puts, dur),
            &[("imbalance_max_over_mean_milli", imbalance(nodes) * 1e3)],
        );
    }
    println!("paper shape check: 1LP suffers from imbalance; 2LP distributes chunks evenly.");
}
