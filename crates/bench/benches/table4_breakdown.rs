//! Table 4 — cost breakdown of the Put operation (µs), excluding network:
//! serialization, deserialization, cryptographic hash, rolling hash, and
//! persistence, for String and Blob values of 1 KB and 20 KB.
//!
//! The paper's headline: the latency gap between primitive and chunkable
//! types is mostly the rolling hash (plus extra crypto hashing of
//! chunks); persistence and crypto-hash costs scale with size.

use fb_bench::*;
use forkbase_chunk::{Chunk, ChunkStore, ChunkType, LogStore};
use forkbase_core::{FObject, Value};
use forkbase_crypto::{hash_bytes, ChunkerConfig, LeafChunker};

fn main() {
    banner("Table 4", "breakdown of Put operation (us)");
    let n = scaled(3000);
    let cfg = ChunkerConfig::default();

    header(&[
        "phase",
        "String 1KB",
        "String 20KB",
        "Blob 1KB",
        "Blob 20KB",
    ]);

    let sizes = [1024usize, 20 * 1024];
    let payloads: Vec<Vec<u8>> = sizes.iter().map(|s| random_bytes(*s, 7)).collect();

    let cols = ["string_1kb", "string_20kb", "blob_1kb", "blob_20kb"];
    let rec = |phase: &str, col: usize, avg: std::time::Duration| {
        record(
            &format!("table4/{phase}_{}", cols[col]),
            avg,
            1e9 / (avg.as_nanos() as f64).max(1.0),
        );
    };

    // --- Serialization: value -> meta-chunk bytes -----------------------
    let mut cells = vec!["Serialization".to_string()];
    for (i, p) in payloads.iter().enumerate() {
        let value = Value::String(
            String::from_utf8(p.iter().map(|b| b % 26 + 97).collect()).expect("ascii"),
        );
        let (_, avg) = time_n(n, || {
            let obj = FObject::new("key", &value, vec![], 0, "");
            std::hint::black_box(obj.to_chunk());
        });
        rec("serialization", i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    for (i, p) in payloads.iter().enumerate() {
        // Blob: serialization = encoding leaf payloads into chunks (the
        // tree build minus hashing is approximated by buffer copies).
        let (_, avg) = time_n(n, || {
            let mut buf = Vec::with_capacity(p.len());
            buf.extend_from_slice(p);
            std::hint::black_box(&buf);
        });
        rec("serialization", 2 + i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    row(&cells);

    // --- Deserialization: chunk bytes -> FObject/value -------------------
    let mut cells = vec!["Deserialization".to_string()];
    for (i, p) in payloads.iter().enumerate() {
        let value = Value::String(
            String::from_utf8(p.iter().map(|b| b % 26 + 97).collect()).expect("ascii"),
        );
        let chunk = FObject::new("key", &value, vec![], 0, "").to_chunk();
        let (_, avg) = time_n(n, || {
            let obj = FObject::decode(chunk.payload()).expect("decode");
            std::hint::black_box(obj.value(&forkbase_chunk::MemStore::new()).expect("value"));
        });
        rec("deserialization", i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    for (i, p) in payloads.iter().enumerate() {
        let chunk = Chunk::new(ChunkType::Blob, p.clone());
        let (_, avg) = time_n(n, || {
            let decoded = Chunk::decode(&chunk.encode()).expect("decode");
            std::hint::black_box(decoded);
        });
        rec("deserialization", 2 + i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    row(&cells);

    // --- CryptoHash: SHA-256 over the content ----------------------------
    let mut cells = vec!["CryptoHash".to_string()];
    for (i, p) in payloads.iter().chain(payloads.iter()).enumerate() {
        let (_, avg) = time_n(n, || {
            std::hint::black_box(hash_bytes(p));
        });
        rec("cryptohash", i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    row(&cells);

    // --- RollingHash: chunk-boundary detection (chunkable types only) ----
    let mut cells = vec!["RollingHash".to_string()];
    cells.push("-".to_string());
    cells.push("-".to_string());
    for (i, p) in payloads.iter().enumerate() {
        let (_, avg) = time_n(n, || {
            let mut chunker = LeafChunker::new(&cfg);
            let mut off = 0usize;
            while off < p.len() {
                match chunker.feed_bytewise(&p[off..]) {
                    Some(cut) => {
                        off += cut;
                        chunker.cut();
                    }
                    None => break,
                }
            }
            std::hint::black_box(chunker.current_len());
        });
        rec("rollinghash", 2 + i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    row(&cells);

    // --- Persistence: append to the log-structured chunk store -----------
    let dir = temp_dir("t4");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let store = LogStore::open(dir.join("chunks.log")).expect("open");
    let mut cells = vec!["Persistence".to_string()];
    let mut salt = 0u64;
    for (i, p) in payloads.iter().chain(payloads.iter()).enumerate() {
        let (_, avg) = time_n(n, || {
            // Unique payloads so dedup doesn't short-circuit the write.
            let mut bytes = p.clone();
            bytes[..8].copy_from_slice(&salt.to_le_bytes());
            salt += 1;
            store.put(Chunk::new(ChunkType::Blob, bytes));
        });
        rec("persistence", i, avg);
        cells.push(format!("{:.2}", us(avg)));
    }
    row(&cells);
    std::fs::remove_dir_all(dir).ok();

    println!("\npaper shape check: rolling hash is the main extra cost of chunkable Puts;");
    println!("crypto hash and persistence scale ~linearly with value size.");
}
