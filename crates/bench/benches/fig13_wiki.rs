//! Figure 13 — wiki engine: edit throughput and storage consumption as
//! requests accumulate, for update ratios 100U / 90U / 80U
//! (xU = fraction of in-place updates vs. insertions).
//!
//! Paper shapes: Redis out-throughputs ForkBase on writes (no chunking /
//! hashing), but ForkBase consumes ~50% less storage thanks to
//! deduplication along the version history; lower U (more insertions →
//! growing pages) widens the storage gap.

use fb_bench::*;
use fb_workload::{EditKind, PageEditGen, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wikilite::{ForkBaseWiki, RedisWiki, WikiEngine};

fn run(
    engine: &dyn WikiEngine,
    update_ratio: f64,
    pages: usize,
    requests: usize,
    report_every: usize,
) -> Vec<(usize, f64, u64)> {
    let mut gen = PageEditGen::new(77, update_ratio, 64);
    let zipf = Zipf::new(pages, 0.0); // uniform page choice, as in Fig. 13
    let mut rng = StdRng::seed_from_u64(7);

    let mut lens = Vec::with_capacity(pages);
    for p in 0..pages {
        let initial = gen.initial_page(15 * 1024);
        engine.create_page(&format!("page-{p:05}"), &initial);
        lens.push(initial.len());
    }

    let mut out = Vec::new();
    let mut done = 0usize;
    while done < requests {
        let batch = report_every.min(requests - done);
        let t = std::time::Instant::now();
        for _ in 0..batch {
            let p = zipf.sample(&mut rng);
            let edit = gen.next_edit(lens[p]);
            if let EditKind::Insert { text, .. } = &edit {
                lens[p] += text.len();
            }
            engine.edit_page(&format!("page-{p:05}"), &edit);
        }
        done += batch;
        out.push((
            done,
            ops_per_sec(batch, t.elapsed()),
            engine.storage_bytes(),
        ));
    }
    out
}

fn main() {
    banner("Figure 13", "wiki page editing: throughput and storage");
    let pages = scaled(320); // scaled from the paper's 3200 pages
    let requests = scaled(4000);
    let report = requests / 5;

    for &(ratio, label) in &[(1.0, "100U"), (0.9, "90U"), (0.8, "80U")] {
        println!("\n--- workload {label} ({pages} pages, {requests} requests) ---");
        header(&["#requests", "FB tput", "FB MB", "Redis tput", "Redis MB"]);
        let fb = ForkBaseWiki::new();
        let redis = RedisWiki::new();
        let fb_series = run(&fb, ratio, pages, requests, report);
        let redis_series = run(&redis, ratio, pages, requests, report);
        for (f, r) in fb_series.iter().zip(&redis_series) {
            row(&[
                f.0.to_string(),
                format!("{:.0}/s", f.1),
                format!("{:.1}", f.2 as f64 / 1e6),
                format!("{:.0}/s", r.1),
                format!("{:.1}", r.2 as f64 / 1e6),
            ]);
        }
        let (fb_final, redis_final) = (
            fb_series.last().expect("ran").2,
            redis_series.last().expect("ran").2,
        );
        println!(
            "storage: ForkBase {:.1} MB vs Redis {:.1} MB ({:.0}% saved)",
            fb_final as f64 / 1e6,
            redis_final as f64 / 1e6,
            100.0 * (1.0 - fb_final as f64 / redis_final as f64)
        );
    }

    println!("\npaper shape check: Redis wins write throughput; ForkBase uses ~50% less storage.");
}
