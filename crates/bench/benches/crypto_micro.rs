//! Ablation micro-benches for the hash primitives: SHA-256 throughput and
//! the three rolling-hash candidates for the chunker (the paper reports
//! the rolling hash at ~20% of POS-Tree build cost, motivating the P′
//! cid-pattern for index nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fb_bench::random_bytes;
use forkbase_crypto::{blake2b_256, hash_bytes, CyclicPoly, MovingSum, RabinKarp, RollingHash};

fn sha256_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = random_bytes(size, 1);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hash_bytes(data));
        });
    }
    group.finish();
}

/// The paper's suggested faster cid hash (§4.2.1: "faster alternatives,
/// e.g., BLAKE2, can also be used to reduce computational overhead").
/// Compare against the `sha256` group to size the CryptoHash saving in
/// Table 4.
fn blake2b_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("blake2b_256");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = random_bytes(size, 1);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| blake2b_256(data));
        });
    }
    group.finish();
}

fn rolling_hashes(c: &mut Criterion) {
    let data = random_bytes(256 * 1024, 2);
    let mut group = c.benchmark_group("rolling_hash");
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_function("cyclic_poly", |b| {
        let mut h = CyclicPoly::new(48);
        b.iter(|| {
            h.reset();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        });
    });
    group.bench_function("rabin_karp", |b| {
        let mut h = RabinKarp::new(48);
        b.iter(|| {
            h.reset();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        });
    });
    group.bench_function("moving_sum", |b| {
        let mut h = MovingSum::new(48);
        b.iter(|| {
            h.reset();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sha256_throughput, blake2b_throughput, rolling_hashes
}
criterion_main!(benches);
