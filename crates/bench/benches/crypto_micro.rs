//! Ablation micro-benches for the hash primitives: SHA-256 throughput and
//! the three rolling-hash candidates for the chunker (the paper reports
//! the rolling hash at ~20% of POS-Tree build cost, motivating the P′
//! cid-pattern for index nodes).
//!
//! The `rolling_scan` and `chunker_split` groups compare the retained
//! naive baseline (per-byte calls through `Box<dyn RollingHash>`) against
//! the devirtualized block scanner — the ≥2× acceptance bar of the
//! hot-path optimization lives there. `sha256_compress` compares the
//! unrolled compression function against the retained straight-line one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fb_bench::random_bytes;
use forkbase_crypto::chunker::{split_positions, split_positions_reference};
use forkbase_crypto::{
    blake2b_256, hash_bytes, sha256_naive, ChunkerConfig, CyclicPoly, MovingSum, RabinKarp,
    RollingHash, RollingKind,
};

fn sha256_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = random_bytes(size, 1);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hash_bytes(data));
        });
    }
    group.finish();
}

/// Optimized (SHA-NI when available, else unrolled scalar) vs
/// retained-naive SHA-256 compression, same 64 KB input.
fn sha256_compress_ablation(c: &mut Criterion) {
    let data = random_bytes(64 * 1024, 1);
    let mut group = c.benchmark_group("sha256_compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("optimized", |b| b.iter(|| hash_bytes(&data)));
    group.bench_function("naive", |b| b.iter(|| sha256_naive(&data)));
    group.finish();
}

/// The paper's suggested faster cid hash (§4.2.1: "faster alternatives,
/// e.g., BLAKE2, can also be used to reduce computational overhead").
/// Compare against the `sha256` group to size the CryptoHash saving in
/// Table 4.
fn blake2b_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("blake2b_256");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let data = random_bytes(size, 1);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| blake2b_256(data));
        });
    }
    group.finish();
}

fn rolling_hashes(c: &mut Criterion) {
    let data = random_bytes(256 * 1024, 2);
    let mut group = c.benchmark_group("rolling_hash");
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_function("cyclic_poly", |b| {
        let mut h = CyclicPoly::new(48);
        b.iter(|| {
            h.reset();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        });
    });
    group.bench_function("rabin_karp", |b| {
        let mut h = RabinKarp::new(48);
        b.iter(|| {
            h.reset();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        });
    });
    group.bench_function("moving_sum", |b| {
        let mut h = MovingSum::new(48);
        b.iter(|| {
            h.reset();
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= h.roll(byte);
            }
            acc
        });
    });
    group.finish();
}

/// The acceptance-bar comparison: one full boundary scan over 256 KB with
/// the leaf pattern mask, through each execution tier.
fn rolling_scan_tiers(c: &mut Criterion) {
    let data = random_bytes(256 * 1024, 2);
    let mask = (1u64 << 12) - 1; // default leaf pattern
    let mut group = c.benchmark_group("rolling_scan");
    group.throughput(Throughput::Bytes(data.len() as u64));

    for kind in [
        RollingKind::CyclicPoly,
        RollingKind::RabinKarp,
        RollingKind::MovingSum,
    ] {
        // Tier 0 — the retained naive baseline: virtual call per byte.
        group.bench_function(BenchmarkId::new("dyn_per_byte", format!("{kind:?}")), |b| {
            let mut h = kind.build(48);
            b.iter(|| {
                h.reset();
                let mut hits = 0u32;
                for &byte in &data {
                    let v = h.roll(byte);
                    hits += (h.primed() && v & mask == 0) as u32;
                }
                hits
            });
        });
        // Tier 1 — devirtualized block scan through RollingScanner.
        group.bench_function(BenchmarkId::new("block", format!("{kind:?}")), |b| {
            let mut s = kind.scanner(48);
            b.iter(|| {
                s.reset();
                let mut hits = 0u32;
                let mut off = 0usize;
                while let Some(n) = s.scan_boundary(&data[off..], mask) {
                    hits += 1;
                    off += n;
                }
                hits
            });
        });
    }
    group.finish();
}

/// End-to-end chunking (boundary positions over 1 MB): optimized entry
/// point vs the retained reference pipeline.
fn chunker_split(c: &mut Criterion) {
    let data = random_bytes(1024 * 1024, 3);
    let cfg = ChunkerConfig::default();
    let mut group = c.benchmark_group("chunker_split");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("block", |b| b.iter(|| split_positions(&data, &cfg)));
    group.bench_function("naive_dyn", |b| {
        b.iter(|| split_positions_reference(&data, &cfg))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = sha256_throughput, sha256_compress_ablation, blake2b_throughput,
              rolling_hashes, rolling_scan_tiers, chunker_split
}
criterion_main!(benches);
