//! From-scratch build micro-benches: the run-scanning, copy-free build
//! path (`build_items`/`build_blob_bytes`) against the retained
//! element-at-a-time baseline (`build_items_itemwise`/
//! `build_blob_itemwise`) — the PR-2-era path that fed the chunker one
//! element at a time and copied every leaf payload through the builder's
//! buffer. `scripts/bench.sh` derives the speedups into
//! `BENCH_build.json`.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fb_bench::random_bytes;
use forkbase_chunk::MemStore;
use forkbase_crypto::ChunkerConfig;
use forkbase_pos::builder::{
    build_blob_bytes, build_blob_itemwise, build_items, build_items_itemwise,
};
use forkbase_pos::leaf::Item;
use forkbase_pos::tree::Blob;
use forkbase_pos::TreeType;

const BLOB_LEN: usize = 8 * 1024 * 1024;
const MAP_ENTRIES: usize = 100_000;

fn build_blob_scratch(c: &mut Criterion) {
    let data = random_bytes(BLOB_LEN, 11);
    let shared = Bytes::from(data.clone());
    let cfg = ChunkerConfig::default();
    let mut group = c.benchmark_group("pos_build_scratch_blob_8MB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("run_scan", |b| {
        b.iter(|| {
            let store = MemStore::new();
            build_blob_bytes(&store, &cfg, shared.clone())
        });
    });
    group.bench_function("itemwise", |b| {
        b.iter(|| {
            let store = MemStore::new();
            build_blob_itemwise(&store, &cfg, &data)
        });
    });
    // The public `&[u8]` entry point (one up-front copy, then zero-copy).
    group.bench_function("api_borrowed", |b| {
        b.iter(|| {
            let store = MemStore::new();
            Blob::build(&store, &cfg, &data)
        });
    });
    group.finish();
}

fn build_map_scratch(c: &mut Criterion) {
    let items: Vec<Item> = (0..MAP_ENTRIES)
        .map(|i| Item::map(format!("k{i:08}"), format!("value-{i:08}")))
        .collect();
    let encoded: usize = items.iter().map(|i| i.encoded_len(TreeType::Map)).sum();
    let cfg = ChunkerConfig::default();
    let mut group = c.benchmark_group("pos_build_scratch_map_100k");
    group.throughput(Throughput::Bytes(encoded as u64));
    group.bench_function("run_scan", |b| {
        b.iter(|| {
            let store = MemStore::new();
            build_items(&store, &cfg, TreeType::Map, items.iter().cloned())
        });
    });
    group.bench_function("itemwise", |b| {
        b.iter(|| {
            let store = MemStore::new();
            build_items_itemwise(&store, &cfg, TreeType::Map, items.iter().cloned())
        });
    });
    group.finish();
}

fn build_set_scratch(c: &mut Criterion) {
    let items: Vec<Item> = (0..MAP_ENTRIES)
        .map(|i| Item::set(format!("set-member-{i:08}")))
        .collect();
    let encoded: usize = items.iter().map(|i| i.encoded_len(TreeType::Set)).sum();
    let cfg = ChunkerConfig::default();
    let mut group = c.benchmark_group("pos_build_scratch_set_100k");
    group.throughput(Throughput::Bytes(encoded as u64));
    group.bench_function("run_scan", |b| {
        b.iter(|| {
            let store = MemStore::new();
            build_items(&store, &cfg, TreeType::Set, items.iter().cloned())
        });
    });
    group.bench_function("itemwise", |b| {
        b.iter(|| {
            let store = MemStore::new();
            build_items_itemwise(&store, &cfg, TreeType::Set, items.iter().cloned())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = build_blob_scratch, build_map_scratch, build_set_scratch
}
criterion_main!(benches);
