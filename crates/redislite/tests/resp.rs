//! RESP wire-level integration suite.
//!
//! Three pillars, matching what the server actually promises:
//!
//! 1. **Codec robustness** — the incremental decoder yields the same
//!    command sequence no matter how the byte stream is split (every
//!    offset is tried), a strict prefix of a valid encoding never
//!    produces a command, and arbitrary garbage never panics.
//! 2. **Wire equivalence** — the same `Cmd` schedule produces
//!    bit-identical `Reply` sequences whether dispatched in-process or
//!    over a live socket, including pipelined batches, so the TCP
//!    surface is provably the in-process API and not a reimplementation.
//! 3. **Durability** — with `AofFsync::Always`, killing the server
//!    (simulated by leaking the store so no drop-flush can cheat) loses
//!    nothing a client was told succeeded.

use bytes::Bytes;
use proptest::prelude::*;
use redislite::resp::{self, RespDecoder};
use redislite::{AofFsync, Cmd, RedisLite, Reply, RespClient, RespServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn temp_aof(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "redislite-resp-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .subsec_nanos()
    ))
}

/// A schedule that exercises every command variant and every reply
/// variant, including the two LSET error replies.
fn full_schedule() -> Vec<Cmd> {
    vec![
        Cmd::Ping,
        Cmd::Set(Bytes::from("k1"), Bytes::from("v1")),
        Cmd::Get(Bytes::from("k1")),
        Cmd::Get(Bytes::from("missing")),
        Cmd::MSet(vec![
            (Bytes::from("m1"), Bytes::from("a")),
            (Bytes::from("m2"), Bytes::from("b\r\nwith crlf")),
        ]),
        Cmd::Get(Bytes::from("m2")),
        Cmd::Rpush(Bytes::from("list"), Bytes::from("e0")),
        Cmd::Rpush(Bytes::from("list"), Bytes::from("e1")),
        Cmd::Rpush(Bytes::from("list"), Bytes::from("e2")),
        Cmd::Llen(Bytes::from("list")),
        Cmd::Lindex(Bytes::from("list"), 1),
        Cmd::Lindex(Bytes::from("list"), -1),
        Cmd::Lindex(Bytes::from("list"), 99),
        Cmd::Lset(Bytes::from("list"), -2, Bytes::from("e1'")),
        Cmd::Lset(Bytes::from("list"), 99, Bytes::from("x")),
        Cmd::Lset(Bytes::from("nolist"), 0, Bytes::from("x")),
        Cmd::Lrange(Bytes::from("list"), 0, -1),
        Cmd::Lrange(Bytes::from("list"), -2, 500),
        Cmd::Lrange(Bytes::from("list"), 5, 2),
        Cmd::Del(Bytes::from("k1")),
        Cmd::Del(Bytes::from("k1")),
        Cmd::Get(Bytes::from("k1")),
        Cmd::DbSize,
    ]
}

fn encode_schedule(cmds: &[Cmd]) -> Vec<u8> {
    let mut wire = Vec::new();
    for cmd in cmds {
        resp::encode_command(&resp::cmd_to_argv(cmd), &mut wire);
    }
    wire
}

/// Drain every complete command currently decodable.
fn drain(dec: &mut RespDecoder) -> Vec<Cmd> {
    let mut out = Vec::new();
    while let Some(argv) = dec.next_command().expect("valid stream") {
        out.push(resp::parse_command(&argv).expect("valid command"));
    }
    out
}

// ---------------------------------------------------------------------------
// 1. Codec robustness
// ---------------------------------------------------------------------------

#[test]
fn decode_is_split_invariant_at_every_byte_offset() {
    let cmds = full_schedule();
    let wire = encode_schedule(&cmds);
    for split in 0..=wire.len() {
        let mut dec = RespDecoder::new();
        let mut got = Vec::new();
        dec.feed(&wire[..split]);
        got.extend(drain(&mut dec));
        dec.feed(&wire[split..]);
        got.extend(drain(&mut dec));
        assert_eq!(got, cmds, "split at byte {split}");
        assert_eq!(dec.buffered(), 0, "split at byte {split} left residue");
    }
}

#[test]
fn byte_at_a_time_decode_matches() {
    let cmds = full_schedule();
    let wire = encode_schedule(&cmds);
    let mut dec = RespDecoder::new();
    let mut got = Vec::new();
    for &b in &wire {
        dec.feed(&[b]);
        got.extend(drain(&mut dec));
    }
    assert_eq!(got, cmds);
}

#[test]
fn strict_prefix_never_yields_a_command() {
    for cmd in full_schedule() {
        let wire = encode_schedule(std::slice::from_ref(&cmd));
        for cut in 0..wire.len() {
            let mut dec = RespDecoder::new();
            dec.feed(&wire[..cut]);
            assert_eq!(
                dec.next_command().expect("prefix is not an error"),
                None,
                "prefix of {cmd:?} cut at {cut} produced a command"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cmd_round_trips_through_the_wire(cmd in cmd_strategy()) {
        let wire = encode_schedule(std::slice::from_ref(&cmd));
        let mut dec = RespDecoder::new();
        dec.feed(&wire);
        let argv = dec.next_command().expect("valid").expect("complete");
        prop_assert_eq!(resp::parse_command(&argv), Ok(cmd));
        prop_assert_eq!(dec.next_command().expect("valid"), None);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn torn_schedule_decodes_identically(
        cmds in prop::collection::vec(cmd_strategy(), 1..8),
        cut_seed in any::<u64>(),
    ) {
        let wire = encode_schedule(&cmds);
        let cut = (cut_seed % (wire.len() as u64 + 1)) as usize;
        let mut dec = RespDecoder::new();
        let mut got = Vec::new();
        dec.feed(&wire[..cut]);
        got.extend(drain(&mut dec));
        dec.feed(&wire[cut..]);
        got.extend(drain(&mut dec));
        prop_assert_eq!(got, cmds);
    }

    #[test]
    fn garbage_never_panics_and_errors_stick(
        junk in prop::collection::vec(any::<u8>(), 0..256),
        chunk_seed in any::<u64>(),
    ) {
        let mut dec = RespDecoder::new();
        let chunk = 1 + (chunk_seed % 16) as usize;
        let mut fed = 0;
        let mut broke = false;
        for piece in junk.chunks(chunk) {
            dec.feed(piece);
            fed += piece.len();
            // Drain until quiescent; an error ends the connection in
            // real use, so stop decoding (but keep feeding to prove
            // feed itself never panics on a poisoned buffer).
            if !broke {
                loop {
                    match dec.next_command() {
                        Ok(Some(argv)) => {
                            // Whatever decoded must be re-encodable
                            // without panicking either.
                            let mut out = Vec::new();
                            resp::encode_command(&argv, &mut out);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            broke = true;
                            break;
                        }
                    }
                }
            }
        }
        prop_assert_eq!(fed, junk.len());
    }
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    // Keys and values are arbitrary bytes — multi-bulk framing is
    // length-prefixed, so embedded CR/LF/NUL must all survive.
    fn blob() -> impl Strategy<Value = Bytes> {
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Bytes::from)
    }
    prop_oneof![
        Just(Cmd::Ping),
        Just(Cmd::DbSize),
        (blob(), blob()).prop_map(|(k, v)| Cmd::Set(k, v)),
        blob().prop_map(Cmd::Get),
        prop::collection::vec((blob(), blob()), 1..4).prop_map(Cmd::MSet),
        (blob(), blob()).prop_map(|(k, v)| Cmd::Rpush(k, v)),
        (blob(), -100i64..100).prop_map(|(k, i)| Cmd::Lindex(k, i)),
        blob().prop_map(Cmd::Llen),
        (blob(), -100i64..100, blob()).prop_map(|(k, i, v)| Cmd::Lset(k, i, v)),
        (blob(), -100i64..100, -100i64..100).prop_map(|(k, s, e)| Cmd::Lrange(k, s, e)),
        blob().prop_map(Cmd::Del),
    ]
}

// ---------------------------------------------------------------------------
// 2. Wire equivalence
// ---------------------------------------------------------------------------

#[test]
fn socket_replies_equal_in_process_replies() {
    let served = Arc::new(RedisLite::new());
    let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&served)).expect("bind");
    let mut client = RespClient::connect(server.addr()).expect("connect");
    let local = RedisLite::new();

    for cmd in full_schedule() {
        let over_wire = client.execute(&cmd).expect("wire reply");
        let in_process = local.execute(cmd.clone());
        assert_eq!(over_wire, in_process, "{cmd:?} diverged across the wire");
    }
    server.stop();
}

#[test]
fn pipelined_batch_equals_in_process_pipeline() {
    let served = Arc::new(RedisLite::new());
    let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&served)).expect("bind");
    let mut client = RespClient::connect(server.addr()).expect("connect");
    let local = RedisLite::new();

    let cmds = full_schedule();
    let over_wire = client.pipeline(&cmds).expect("wire replies");
    let in_process = local.pipeline(cmds);
    assert_eq!(over_wire, in_process);
    // Both stores must have converged to the same observable state.
    assert_eq!(
        client
            .execute(&Cmd::Lrange(Bytes::from("list"), 0, -1))
            .expect("wire"),
        local.execute(Cmd::Lrange(Bytes::from("list"), 0, -1)),
    );
    assert_eq!(
        client.execute(&Cmd::DbSize).expect("wire"),
        local.execute(Cmd::DbSize),
    );
    server.stop();
}

#[test]
fn unknown_command_errs_but_connection_survives() {
    let db = Arc::new(RedisLite::new());
    let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&db)).expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    // EXPIRE is outside the served subset; INLINE nonsense likewise.
    stream
        .write_all(b"*3\r\n$6\r\nEXPIRE\r\n$1\r\nk\r\n$1\r\n5\r\nNOSUCH inline\r\nPING\r\n")
        .expect("write");
    let mut dec = RespDecoder::new();
    let mut rbuf = [0u8; 4096];
    let mut replies = Vec::new();
    while replies.len() < 3 {
        let n = stream.read(&mut rbuf).expect("read");
        assert!(n > 0, "server hung up on a mere command error");
        dec.feed(&rbuf[..n]);
        while let Some(v) = dec.next_value().expect("valid reply stream") {
            replies.push(resp::reply_from_value(v).expect("known reply shape"));
        }
    }
    assert!(matches!(&replies[0], Reply::Err(e) if e.contains("unknown command 'EXPIRE'")));
    assert!(matches!(&replies[1], Reply::Err(e) if e.contains("unknown command 'NOSUCH'")));
    assert_eq!(
        replies[2],
        Reply::Pong,
        "connection must outlive command errors"
    );
    server.stop();
}

#[test]
fn protocol_error_answers_then_hangs_up() {
    let db = Arc::new(RedisLite::new());
    let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&db)).expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");

    // A well-formed PING followed by a command array holding an integer
    // — malformed framing, fatal for the connection.
    stream
        .write_all(b"*1\r\n$4\r\nPING\r\n*1\r\n:5\r\n")
        .expect("write");
    let mut dec = RespDecoder::new();
    let mut rbuf = [0u8; 4096];
    let mut bytes = Vec::new();
    loop {
        let n = stream.read(&mut rbuf).expect("read");
        if n == 0 {
            break; // server closed — the required outcome
        }
        bytes.extend_from_slice(&rbuf[..n]);
    }
    dec.feed(&bytes);
    let first = dec.next_value().expect("valid").expect("PING answered");
    assert_eq!(resp::reply_from_value(first), Ok(Reply::Pong));
    let second = dec.next_value().expect("valid").expect("error delivered");
    assert!(
        matches!(&second, resp::RespValue::Error(e) if e.starts_with(b"ERR Protocol error")),
        "expected a protocol error reply, got {second:?}"
    );
    server.stop();
}

// ---------------------------------------------------------------------------
// 3. Durability across a server kill
// ---------------------------------------------------------------------------

#[test]
fn killed_durable_server_loses_nothing_acknowledged() {
    let path = temp_aof("serve-kill");
    {
        let db =
            Arc::new(RedisLite::open_durable_with(&path, AofFsync::Always).expect("open durable"));
        let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&db)).expect("bind");
        let mut client = RespClient::connect(server.addr()).expect("connect");

        // Every one of these replies is an acknowledgement: under
        // appendfsync-always it must already be on disk when it arrives.
        assert_eq!(
            client
                .execute(&Cmd::Set(Bytes::from("k"), Bytes::from("v1")))
                .expect("wire"),
            Reply::Ok
        );
        let batch = vec![
            Cmd::Rpush(Bytes::from("list"), Bytes::from("a")),
            Cmd::Rpush(Bytes::from("list"), Bytes::from("b")),
            Cmd::Lset(Bytes::from("list"), -1, Bytes::from("b'")),
            Cmd::Set(Bytes::from("k"), Bytes::from("v2")),
        ];
        let replies = client.pipeline(&batch).expect("wire");
        assert_eq!(
            replies,
            vec![Reply::Len(1), Reply::Len(2), Reply::Ok, Reply::Ok]
        );

        // Kill the process image: tear the socket down, then leak the
        // store so its Drop (which flushes buffered AOF bytes) never
        // runs. Whatever survives is what fsync already persisted.
        server.stop();
        drop(server);
        std::mem::forget(db);
    }
    let reborn = RedisLite::open_durable_with(&path, AofFsync::Always).expect("reopen");
    assert_eq!(reborn.get(b"k"), Some(Bytes::from("v2")));
    assert_eq!(
        reborn.lrange(b"list", 0, -1),
        vec![Bytes::from("a"), Bytes::from("b'")]
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restarted_server_serves_the_replayed_state() {
    let path = temp_aof("serve-restart");
    {
        let db = Arc::new(RedisLite::open_durable(&path).expect("open durable"));
        let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&db)).expect("bind");
        let mut client = RespClient::connect(server.addr()).expect("connect");
        client
            .pipeline(&[
                Cmd::Set(Bytes::from("a"), Bytes::from("1")),
                Cmd::Rpush(Bytes::from("l"), Bytes::from("x")),
            ])
            .expect("wire");
        server.stop();
        // Clean shutdown: flush the buffered AOF tail explicitly.
        // (Handler threads hold store refs and exit asynchronously, so
        // the drop-flush isn't guaranteed to run before the reopen.)
        db.sync().expect("flush aof");
    }
    let db = Arc::new(RedisLite::open_durable(&path).expect("reopen"));
    let mut server = RespServer::bind("127.0.0.1:0", Arc::clone(&db)).expect("rebind");
    let mut client = RespClient::connect(server.addr()).expect("reconnect");
    assert_eq!(
        client.execute(&Cmd::Get(Bytes::from("a"))).expect("wire"),
        Reply::Value(Bytes::from("1"))
    );
    assert_eq!(
        client
            .execute(&Cmd::Lrange(Bytes::from("l"), 0, -1))
            .expect("wire"),
        Reply::Multi(vec![Bytes::from("x")])
    );
    server.stop();
    let _ = std::fs::remove_file(&path);
}
