//! **redislite** — a Redis-style object store with `String` and `List`
//! types, the baseline the paper's wiki engine is compared against
//! (§5.2, §6.3) — servable in-process *or* over a real TCP wire speaking
//! the RESP2 protocol ([`RespServer`]/[`RespClient`], [`resp`]).
//!
//! The paper implements a multi-versioned wiki over Redis by storing each
//! page as a list and RPUSH-ing every new revision — full copies, no
//! structural sharing. The behaviours that matter for the comparison and
//! are preserved here:
//!
//! * very fast in-memory reads/writes (no chunking, no hashing), and
//! * memory consumption proportional to the sum of all version sizes
//!   (Fig. 13(b): ForkBase's deduplication halves storage relative to
//!   Redis).
//!
//! Memory accounting tracks the payload bytes of every stored object, the
//! metric plotted in Fig. 13(b) and Fig. 15.
//!
//! # One command surface
//!
//! Every operation is a [`Cmd`] executed by [`RedisLite::execute`], which
//! returns a [`Reply`]. The typed methods (`set`/`get`/`rpush`/…) are
//! thin wrappers, [`pipeline`](RedisLite::pipeline) is an execute loop
//! under one lock hold with one batched AOF append, AOF replay re-enters
//! through the same dispatch, and the RESP server exposes it verbatim —
//! wire semantics and in-process semantics are one code path.
//!
//! List indices follow Redis everywhere: they are `i64`, negative values
//! count from the tail (`-1` = last element), `LRANGE` clamps
//! out-of-range bounds to the list, `LINDEX` answers nil and `LSET`
//! errors when the index falls outside it.
//!
//! # Durable mode
//!
//! [`RedisLite::open_durable`] attaches a Redis-style **append-only
//! file** (AOF): every mutation (`SET`/`RPUSH`/`LSET`/`DEL`, including
//! batched/pipelined forms) is appended as a checksummed record and
//! replayed on open; a torn tail is truncated. With
//! [`AofFsync::Buffered`] (the `open_durable` default) appends sit in a
//! write buffer until [`sync`](RedisLite::sync) or drop, matching Redis's
//! `appendfsync everysec`-ish default; [`AofFsync::Always`]
//! (`open_durable_with`) flushes and fsyncs before the mutation is
//! acknowledged, so a reply that reached the client survives a kill.

use bytes::Bytes;
use forkbase_crypto::fx::FxHashMap;
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

mod client;
pub mod resp;
mod server;

pub use client::RespClient;
pub use server::RespServer;

/// A stored object: string or list.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RObject {
    Str(Bytes),
    List(Vec<Bytes>),
}

impl RObject {
    fn bytes(&self) -> u64 {
        match self {
            RObject::Str(s) => s.len() as u64,
            RObject::List(l) => l.iter().map(|e| e.len() as u64).sum(),
        }
    }
}

/// The canonical command algebra: everything the store can do, whether
/// called in-process, pipelined, replayed from the AOF, or received over
/// the RESP wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cmd {
    /// PING.
    Ping,
    /// SET key value.
    Set(Bytes, Bytes),
    /// GET key.
    Get(Bytes),
    /// MSET (key, value) pairs — applied atomically under one lock hold.
    MSet(Vec<(Bytes, Bytes)>),
    /// RPUSH key elem.
    Rpush(Bytes, Bytes),
    /// LINDEX key idx (negative = from the tail).
    Lindex(Bytes, i64),
    /// LLEN key.
    Llen(Bytes),
    /// LSET key idx elem (negative idx = from the tail).
    Lset(Bytes, i64, Bytes),
    /// LRANGE key start stop (inclusive; negatives from the tail,
    /// out-of-range bounds clamped).
    Lrange(Bytes, i64, i64),
    /// DEL key.
    Del(Bytes),
    /// DBSIZE.
    DbSize,
}

impl Cmd {
    /// Commands that never mutate run under the shared read lock.
    fn is_read(&self) -> bool {
        matches!(
            self,
            Cmd::Ping
                | Cmd::Get(_)
                | Cmd::Lindex(..)
                | Cmd::Llen(_)
                | Cmd::Lrange(..)
                | Cmd::DbSize
        )
    }

    /// Operations this command counts as (MSET = one per pair).
    fn weight(&self) -> u64 {
        match self {
            Cmd::MSet(pairs) => pairs.len() as u64,
            _ => 1,
        }
    }
}

/// Reply to one command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Write acknowledged.
    Ok,
    /// PING answered.
    Pong,
    /// Key missing or wrong type.
    Nil,
    /// A value.
    Value(Bytes),
    /// A length/count (RPUSH, DEL, LLEN, DBSIZE).
    Len(usize),
    /// A list of values (LRANGE).
    Multi(Vec<Bytes>),
    /// Command-level failure (wrong index, wrong type, …); the
    /// connection survives, only the command fails.
    Err(String),
}

/// When AOF appends reach disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AofFsync {
    /// Appends sit in a write buffer until [`sync`](RedisLite::sync) or
    /// drop — Redis's `appendfsync everysec`-ish default.
    #[default]
    Buffered,
    /// Flush + fsync after every logged batch, before the mutation is
    /// acknowledged — Redis's `appendfsync always`. An acknowledged
    /// write survives a kill.
    Always,
}

/// An in-memory multi-type key-value store, optionally backed by an
/// append-only file and servable over RESP2 ([`RespServer`]).
#[derive(Default)]
pub struct RedisLite {
    map: RwLock<FxHashMap<Bytes, RObject>>,
    mem_bytes: AtomicU64,
    ops: AtomicU64,
    /// Append-only persistence log (durable mode only).
    aof: Option<Mutex<BufWriter<File>>>,
    /// When appends reach disk (durable mode only).
    aof_fsync: AofFsync,
    /// AOF appends that failed (writes are not failable at the Redis API
    /// surface, so errors surface here instead of being swallowed).
    aof_errors: AtomicU64,
    /// Latched on the first failed append: a partial record may sit at
    /// the log tail, so appending past it would write records that
    /// replay can never reach. Once set, appends stop and
    /// [`sync`](RedisLite::sync) errors.
    aof_poisoned: std::sync::atomic::AtomicBool,
}

/// AOF record op tags.
const AOF_SET: u8 = 0;
const AOF_RPUSH: u8 = 1;
const AOF_DEL: u8 = 2;
const AOF_LSET: u8 = 3;

fn aof_checksum(body: &[u8]) -> u32 {
    let mut h = forkbase_crypto::fx::FxHasher::default();
    h.write(body);
    h.finish() as u32
}

/// `[check u32][op u8][klen u32][vlen u32][idx u64][key][value]`; the
/// check is an FxHash of everything after it, truncated to 32 bits —
/// enough to detect a torn tail.
fn encode_aof(out: &mut Vec<u8>, op: u8, key: &[u8], value: &[u8], idx: u64) {
    let body_start = out.len() + 4;
    out.extend_from_slice(&[0u8; 4]);
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(&idx.to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let check = aof_checksum(&out[body_start..]);
    out[body_start - 4..body_start].copy_from_slice(&check.to_le_bytes());
}

/// Resolve a Redis list index (negative = from the tail) against `len`
/// elements; `None` when it falls outside the list on either side.
fn resolve_index(idx: i64, len: usize) -> Option<usize> {
    let i = if idx < 0 {
        idx.checked_add(len as i64)?
    } else {
        idx
    };
    (0..len as i64).contains(&i).then_some(i as usize)
}

/// Resolve an LRANGE window: negatives count from the tail, then both
/// bounds clamp to the list; `None` = the range is empty.
fn resolve_range(start: i64, stop: i64, len: usize) -> Option<(usize, usize)> {
    if len == 0 {
        return None;
    }
    let norm = |i: i64| {
        if i < 0 {
            i.saturating_add(len as i64)
        } else {
            i
        }
    };
    let s = norm(start).max(0);
    let e = norm(stop).min(len as i64 - 1);
    (s <= e).then_some((s as usize, e as usize))
}

impl RedisLite {
    /// Empty store.
    pub fn new() -> RedisLite {
        RedisLite::default()
    }

    /// Open a durable store with buffered appends ([`AofFsync::Buffered`]).
    pub fn open_durable(path: impl AsRef<Path>) -> std::io::Result<RedisLite> {
        Self::open_durable_with(path, AofFsync::Buffered)
    }

    /// Open a durable store: replay the append-only file at `path`
    /// (creating it when missing, truncating a torn tail) and log every
    /// further mutation to it under the chosen fsync policy. The replay
    /// streams one record at a time through a reusable buffer — memory
    /// is bounded by the largest record, not the log size — and applies
    /// each record through the same [`Cmd`] dispatch every other entry
    /// point uses.
    pub fn open_durable_with(
        path: impl AsRef<Path>,
        fsync: AofFsync,
    ) -> std::io::Result<RedisLite> {
        let path = path.as_ref();
        let db = RedisLite::new();
        if path.exists() {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            let mut reader = std::io::BufReader::new(file);
            let mut header = [0u8; 21];
            let mut body = Vec::new();
            let mut pos = 0u64;
            let mut valid_end = 0u64;
            // Replay sink: `db.aof` is still `None`, so nothing encodes
            // or logs — the records only re-apply.
            let mut sink = Vec::new();
            let mut sunk = 0u64;
            while len - pos >= 21 {
                reader.read_exact(&mut header)?;
                let check = u32::from_le_bytes(header[0..4].try_into().expect("4"));
                let op = header[4];
                let klen = u32::from_le_bytes(header[5..9].try_into().expect("4")) as usize;
                let vlen = u32::from_le_bytes(header[9..13].try_into().expect("4")) as usize;
                let idx = u64::from_le_bytes(header[13..21].try_into().expect("8"));
                if len - pos < 21 + (klen + vlen) as u64 {
                    break; // torn tail
                }
                body.resize(klen + vlen, 0);
                reader.read_exact(&mut body)?;
                let mut checked = header[4..].to_vec();
                checked.extend_from_slice(&body);
                if aof_checksum(&checked) != check {
                    break;
                }
                let key = Bytes::copy_from_slice(&body[..klen]);
                let value = Bytes::copy_from_slice(&body[klen..]);
                // Logged LSET indices are already tail-resolved.
                let cmd = match op {
                    AOF_SET => Cmd::Set(key, value),
                    AOF_RPUSH => Cmd::Rpush(key, value),
                    AOF_DEL => Cmd::Del(key),
                    AOF_LSET => Cmd::Lset(key, idx as i64, value),
                    _ => break, // unknown op: stop at the intact prefix
                };
                let mut map = db.map.write();
                db.apply_locked(&mut map, cmd, &mut sink, &mut sunk);
                drop(map);
                pos += 21 + (klen + vlen) as u64;
                valid_end = pos;
            }
            if valid_end < len {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(valid_end)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RedisLite {
            aof: Some(Mutex::new(BufWriter::new(file))),
            aof_fsync: fsync,
            ..db
        })
    }

    /// Flush buffered AOF appends and fsync them. Errors if any earlier
    /// append failed — from that point the log tail is unreliable and
    /// pretending the store is durable would silently lose every later
    /// mutation at replay.
    pub fn sync(&self) -> std::io::Result<()> {
        if self.aof_poisoned.load(Ordering::Relaxed) {
            return Err(std::io::Error::other(
                "append-only file poisoned by an earlier write error",
            ));
        }
        if let Some(aof) = &self.aof {
            let mut w = aof.lock();
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// AOF appends that failed with an I/O error (0 when healthy or
    /// in-memory). Non-zero means the in-memory state is ahead of what a
    /// reopen will recover.
    pub fn aof_error_count(&self) -> u64 {
        self.aof_errors.load(Ordering::Relaxed)
    }

    /// Append a pre-encoded run of `records` AOF records in one lock
    /// hold and one `write_all` (plus one flush+fsync under
    /// [`AofFsync::Always`]). Called with the map lock held so the log
    /// order matches the apply order; batched entry points pay the log
    /// lock and write syscall once for the whole batch. After a failed
    /// append the log is poisoned: a partial record may sit at the tail,
    /// so later records would be unreachable at replay — stop appending
    /// and count instead.
    fn log_batch(&self, buf: &[u8], records: u64) {
        let Some(aof) = &self.aof else { return };
        if records == 0 {
            return;
        }
        if self.aof_poisoned.load(Ordering::Relaxed) {
            self.aof_errors.fetch_add(records, Ordering::Relaxed);
            return;
        }
        let mut w = aof.lock();
        let wrote = w.write_all(buf).and_then(|()| {
            if self.aof_fsync == AofFsync::Always {
                w.flush()?;
                w.get_ref().sync_data()?;
            }
            Ok(())
        });
        if let Err(e) = wrote {
            // A torn tail makes every record of the batch unreachable at
            // replay — count them all and poison.
            self.aof_errors.fetch_add(records, Ordering::Relaxed);
            if !self.aof_poisoned.swap(true, Ordering::Relaxed) {
                eprintln!("redislite: AOF batch append failed (log poisoned): {e}");
            }
        }
    }

    fn account(&self, old: Option<&RObject>, new: Option<&RObject>) {
        let old_b = old.map(|o| o.bytes()).unwrap_or(0);
        let new_b = new.map(|o| o.bytes()).unwrap_or(0);
        if new_b >= old_b {
            self.mem_bytes.fetch_add(new_b - old_b, Ordering::Relaxed);
        } else {
            self.mem_bytes.fetch_sub(old_b - new_b, Ordering::Relaxed);
        }
    }

    // Locked op bodies, shared between every dispatch path so the
    // accounting logic exists exactly once.

    fn set_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: Bytes, value: Bytes) {
        let new = RObject::Str(value);
        let old = map.get(&key).cloned();
        self.account(old.as_ref(), Some(&new));
        map.insert(key, new);
    }

    fn rpush_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: Bytes, elem: Bytes) -> usize {
        let entry = map.entry(key).or_insert_with(|| RObject::List(Vec::new()));
        match entry {
            RObject::List(l) => {
                self.mem_bytes
                    .fetch_add(elem.len() as u64, Ordering::Relaxed);
                l.push(elem);
                l.len()
            }
            RObject::Str(_) => {
                // WRONGTYPE in Redis; here we overwrite for simplicity.
                let old_bytes = entry.bytes();
                self.mem_bytes.fetch_sub(old_bytes, Ordering::Relaxed);
                self.mem_bytes
                    .fetch_add(elem.len() as u64, Ordering::Relaxed);
                *entry = RObject::List(vec![elem]);
                1
            }
        }
    }

    fn del_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: &[u8]) -> bool {
        match map.remove(key) {
            Some(obj) => {
                self.mem_bytes.fetch_sub(obj.bytes(), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Replace the element at the (already tail-resolved) `idx`.
    fn lset_locked(
        &self,
        map: &mut FxHashMap<Bytes, RObject>,
        key: &[u8],
        idx: usize,
        elem: Bytes,
    ) {
        let Some(RObject::List(l)) = map.get_mut(key) else {
            return;
        };
        if let Some(slot) = l.get_mut(idx) {
            let old_len = slot.len() as u64;
            if elem.len() as u64 >= old_len {
                self.mem_bytes
                    .fetch_add(elem.len() as u64 - old_len, Ordering::Relaxed);
            } else {
                self.mem_bytes
                    .fetch_sub(old_len - elem.len() as u64, Ordering::Relaxed);
            }
            *slot = elem;
        }
    }

    /// Serve a read-only command against the (read- or write-) locked map.
    fn read_locked(map: &FxHashMap<Bytes, RObject>, cmd: &Cmd) -> Reply {
        match cmd {
            Cmd::Ping => Reply::Pong,
            Cmd::DbSize => Reply::Len(map.len()),
            Cmd::Get(key) => match map.get(key) {
                Some(RObject::Str(s)) => Reply::Value(s.clone()),
                _ => Reply::Nil,
            },
            Cmd::Lindex(key, idx) => match map.get(key) {
                Some(RObject::List(l)) => match resolve_index(*idx, l.len()) {
                    Some(i) => Reply::Value(l[i].clone()),
                    None => Reply::Nil,
                },
                _ => Reply::Nil,
            },
            Cmd::Llen(key) => match map.get(key) {
                Some(RObject::List(l)) => Reply::Len(l.len()),
                _ => Reply::Len(0),
            },
            Cmd::Lrange(key, start, stop) => match map.get(key) {
                Some(RObject::List(l)) => match resolve_range(*start, *stop, l.len()) {
                    Some((s, e)) => Reply::Multi(l[s..=e].to_vec()),
                    None => Reply::Multi(Vec::new()),
                },
                _ => Reply::Multi(Vec::new()),
            },
            _ => unreachable!("write command dispatched to the read path"),
        }
    }

    /// Apply one command to the write-locked map, appending the AOF
    /// record of every mutation to `aof` (with list indices already
    /// tail-resolved, so replay is position-exact). The caller flushes
    /// `aof` with [`log_batch`](Self::log_batch) under the same lock
    /// hold, which keeps log order equal to apply order; records are
    /// only encoded when an AOF is attached.
    fn apply_locked(
        &self,
        map: &mut FxHashMap<Bytes, RObject>,
        cmd: Cmd,
        aof: &mut Vec<u8>,
        records: &mut u64,
    ) -> Reply {
        let log = self.aof.is_some();
        match cmd {
            Cmd::Set(key, value) => {
                if log {
                    encode_aof(aof, AOF_SET, &key, &value, 0);
                    *records += 1;
                }
                self.set_locked(map, key, value);
                Reply::Ok
            }
            Cmd::MSet(pairs) => {
                for (key, value) in pairs {
                    if log {
                        encode_aof(aof, AOF_SET, &key, &value, 0);
                        *records += 1;
                    }
                    self.set_locked(map, key, value);
                }
                Reply::Ok
            }
            Cmd::Rpush(key, elem) => {
                if log {
                    encode_aof(aof, AOF_RPUSH, &key, &elem, 0);
                    *records += 1;
                }
                Reply::Len(self.rpush_locked(map, key, elem))
            }
            Cmd::Del(key) => {
                if log {
                    encode_aof(aof, AOF_DEL, &key, &[], 0);
                    *records += 1;
                }
                Reply::Len(usize::from(self.del_locked(map, &key)))
            }
            Cmd::Lset(key, idx, elem) => {
                let resolved = match map.get(&key) {
                    Some(RObject::List(l)) => match resolve_index(idx, l.len()) {
                        Some(i) => i,
                        None => return Reply::Err("ERR index out of range".into()),
                    },
                    _ => return Reply::Err("ERR no such key".into()),
                };
                if log {
                    encode_aof(aof, AOF_LSET, &key, &elem, resolved as u64);
                    *records += 1;
                }
                self.lset_locked(map, &key, resolved, elem);
                Reply::Ok
            }
            read => Self::read_locked(map, &read),
        }
    }

    /// Execute one command — THE semantic entry point. Reads run under
    /// the shared lock; writes take the exclusive lock, apply, and land
    /// their AOF record in the same lock hold.
    pub fn execute(&self, cmd: Cmd) -> Reply {
        self.ops.fetch_add(cmd.weight(), Ordering::Relaxed);
        if cmd.is_read() {
            Self::read_locked(&self.map.read(), &cmd)
        } else {
            let mut buf = Vec::new();
            let mut records = 0u64;
            let mut map = self.map.write();
            let reply = self.apply_locked(&mut map, cmd, &mut buf, &mut records);
            self.log_batch(&buf, records);
            reply
        }
    }

    /// Execute a command pipeline: all commands run back-to-back under
    /// one lock hold (readers see none or all of it), the AOF sees one
    /// contiguous append for the whole batch, and the replies come back
    /// in order — the Redis pipelining model the paper's baselines rely
    /// on for write-heavy workloads.
    pub fn pipeline(&self, cmds: Vec<Cmd>) -> Vec<Reply> {
        let weight: u64 = cmds.iter().map(Cmd::weight).sum();
        self.ops.fetch_add(weight, Ordering::Relaxed);
        let mut buf = Vec::new();
        let mut records = 0u64;
        let mut map = self.map.write();
        let replies = cmds
            .into_iter()
            .map(|cmd| self.apply_locked(&mut map, cmd, &mut buf, &mut records))
            .collect();
        self.log_batch(&buf, records);
        replies
    }

    /// SET: store a string value.
    pub fn set(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.execute(Cmd::Set(key.into(), value.into()));
    }

    /// MSET: store many string values atomically — readers see either
    /// none or all of the batch, and per-op lock traffic is paid once.
    pub fn mset<I, K, V>(&self, pairs: I)
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<Bytes>,
        V: Into<Bytes>,
    {
        let pairs = pairs
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        self.execute(Cmd::MSet(pairs));
    }

    /// GET: read a string value. `None` if missing or of another type.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        match self.execute(Cmd::Get(Bytes::copy_from_slice(key))) {
            Reply::Value(v) => Some(v),
            _ => None,
        }
    }

    /// RPUSH: append an element to the list at `key` (creating it),
    /// returning the new length.
    pub fn rpush(&self, key: impl Into<Bytes>, elem: impl Into<Bytes>) -> usize {
        match self.execute(Cmd::Rpush(key.into(), elem.into())) {
            Reply::Len(n) => n,
            reply => unreachable!("RPUSH replies Len, got {reply:?}"),
        }
    }

    /// LINDEX: element at `idx` (negative = from the tail, like Redis).
    pub fn lindex(&self, key: &[u8], idx: i64) -> Option<Bytes> {
        match self.execute(Cmd::Lindex(Bytes::copy_from_slice(key), idx)) {
            Reply::Value(v) => Some(v),
            _ => None,
        }
    }

    /// LLEN: list length (0 for missing keys, like Redis).
    pub fn llen(&self, key: &[u8]) -> usize {
        match self.execute(Cmd::Llen(Bytes::copy_from_slice(key))) {
            Reply::Len(n) => n,
            reply => unreachable!("LLEN replies Len, got {reply:?}"),
        }
    }

    /// LSET: replace the element at `idx` (negative = from the tail).
    /// `false` when the key holds no list or the index is out of range.
    pub fn lset(&self, key: &[u8], idx: i64, elem: impl Into<Bytes>) -> bool {
        matches!(
            self.execute(Cmd::Lset(Bytes::copy_from_slice(key), idx, elem.into())),
            Reply::Ok
        )
    }

    /// LRANGE: elements in `[start, stop]` (inclusive; negatives count
    /// from the tail, out-of-range bounds clamp, like Redis).
    pub fn lrange(&self, key: &[u8], start: i64, stop: i64) -> Vec<Bytes> {
        match self.execute(Cmd::Lrange(Bytes::copy_from_slice(key), start, stop)) {
            Reply::Multi(v) => v,
            reply => unreachable!("LRANGE replies Multi, got {reply:?}"),
        }
    }

    /// DEL: remove a key; returns whether it existed.
    pub fn del(&self, key: &[u8]) -> bool {
        matches!(
            self.execute(Cmd::Del(Bytes::copy_from_slice(key))),
            Reply::Len(1)
        )
    }

    /// Number of keys.
    pub fn dbsize(&self) -> usize {
        self.map.read().len()
    }

    /// Total payload bytes held — the storage-consumption metric of
    /// Fig. 13(b).
    pub fn memory_bytes(&self) -> u64 {
        self.mem_bytes.load(Ordering::Relaxed)
    }

    /// Operations served.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_aof(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "redislite-aof-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ))
    }

    #[test]
    fn aof_replays_all_mutation_kinds() {
        let path = temp_aof("replay");
        {
            let db = RedisLite::open_durable(&path).expect("open");
            db.set("s", "v1");
            db.set("gone", "x");
            db.del(b"gone");
            for i in 0..3 {
                db.rpush("page", format!("rev {i}"));
            }
            db.lset(b"page", 1, "rev 1 edited");
            db.lset(b"page", -1, "rev 2 edited");
            db.pipeline(vec![
                Cmd::Set(Bytes::from("p"), Bytes::from("pipelined")),
                Cmd::Rpush(Bytes::from("page"), Bytes::from("rev 3")),
            ]);
            db.sync().expect("sync");
            assert_eq!(db.aof_error_count(), 0);
        }
        let db = RedisLite::open_durable(&path).expect("reopen");
        assert_eq!(db.get(b"s"), Some(Bytes::from("v1")));
        assert_eq!(db.get(b"gone"), None);
        assert_eq!(db.get(b"p"), Some(Bytes::from("pipelined")));
        assert_eq!(db.llen(b"page"), 4);
        assert_eq!(db.lindex(b"page", 1), Some(Bytes::from("rev 1 edited")));
        assert_eq!(db.lindex(b"page", 2), Some(Bytes::from("rev 2 edited")));
        assert_eq!(db.lindex(b"page", -1), Some(Bytes::from("rev 3")));
        // Memory accounting was rebuilt by the replay.
        assert!(db.memory_bytes() > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn aof_torn_tail_truncated() {
        let path = temp_aof("torn");
        {
            let db = RedisLite::open_durable(&path).expect("open");
            db.set("k", "v");
            db.sync().expect("sync");
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("raw");
            f.write_all(&[9, 9, 9, 9, 9]).expect("garbage");
        }
        let db = RedisLite::open_durable(&path).expect("recover");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v")));
        // Appendable after recovery.
        db.set("k2", "v2");
        db.sync().expect("sync");
        drop(db);
        let db = RedisLite::open_durable(&path).expect("reopen");
        assert_eq!(db.dbsize(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn aof_always_lands_without_sync() {
        // Under AofFsync::Always every acknowledged mutation is on disk
        // the moment execute returns: a reopen that never saw sync() or
        // a drop-flush must still recover everything.
        let path = temp_aof("always");
        let db = RedisLite::open_durable_with(&path, AofFsync::Always).expect("open");
        db.set("a", "1");
        db.pipeline(vec![
            Cmd::Set(Bytes::from("b"), Bytes::from("2")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("x")),
        ]);
        // Simulate a kill: leak the instance so nothing flushes.
        std::mem::forget(db);
        let db = RedisLite::open_durable(&path).expect("reopen");
        assert_eq!(db.get(b"a"), Some(Bytes::from("1")));
        assert_eq!(db.get(b"b"), Some(Bytes::from("2")));
        assert_eq!(db.llen(b"l"), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn string_ops() {
        let db = RedisLite::new();
        db.set("k", "v1");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v1")));
        db.set("k", "v2");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v2")));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn list_versioning_pattern() {
        // The wiki pattern: every revision RPUSHed, LINDEX -1 = latest.
        let db = RedisLite::new();
        for i in 0..5 {
            db.rpush("page", format!("revision {i}"));
        }
        assert_eq!(db.llen(b"page"), 5);
        assert_eq!(db.lindex(b"page", -1), Some(Bytes::from("revision 4")));
        assert_eq!(db.lindex(b"page", 0), Some(Bytes::from("revision 0")));
        assert_eq!(db.lindex(b"page", -2), Some(Bytes::from("revision 3")));
        assert_eq!(db.lindex(b"page", 99), None);
        assert_eq!(db.lindex(b"page", -6), None);
    }

    #[test]
    fn lrange_redis_index_semantics() {
        let db = RedisLite::new();
        for i in 0..4 {
            db.rpush("l", format!("{i}"));
        }
        assert_eq!(db.lrange(b"l", 1, 2).len(), 2);
        assert_eq!(db.lrange(b"l", 0, 100).len(), 4, "stop clamps");
        assert_eq!(db.lrange(b"l", 5, 10).len(), 0);
        // Negative indices count from the tail.
        assert_eq!(
            db.lrange(b"l", -2, -1),
            vec![Bytes::from("2"), Bytes::from("3")]
        );
        assert_eq!(db.lrange(b"l", 0, -1).len(), 4, "the canonical full range");
        assert_eq!(db.lrange(b"l", -100, 0).len(), 1, "start clamps to head");
        assert_eq!(db.lrange(b"l", -1, -2).len(), 0, "inverted after resolve");
        assert_eq!(db.lrange(b"missing", 0, -1).len(), 0);
    }

    #[test]
    fn memory_accounting_sums_all_versions() {
        let db = RedisLite::new();
        db.rpush("page", vec![0u8; 1000]);
        db.rpush("page", vec![0u8; 1000]);
        assert_eq!(db.memory_bytes(), 2000, "no dedup: every version counted");
        db.set("s", vec![0u8; 500]);
        assert_eq!(db.memory_bytes(), 2500);
        db.set("s", vec![0u8; 100]);
        assert_eq!(db.memory_bytes(), 2100, "overwrite reclaims");
        db.del(b"page");
        assert_eq!(db.memory_bytes(), 100);
    }

    #[test]
    fn lset_replaces_in_place() {
        let db = RedisLite::new();
        db.rpush("l", "aaa");
        db.rpush("l", "bbb");
        assert!(db.lset(b"l", 0, "XXXXX"));
        assert_eq!(db.lindex(b"l", 0), Some(Bytes::from("XXXXX")));
        assert!(db.lset(b"l", -1, "YY"), "negative index from the tail");
        assert_eq!(db.lindex(b"l", 1), Some(Bytes::from("YY")));
        assert!(!db.lset(b"l", 9, "nope"));
        assert!(!db.lset(b"l", -3, "nope"));
        assert_eq!(db.memory_bytes(), 7);
        // The Cmd form distinguishes the two failure modes.
        assert_eq!(
            db.execute(Cmd::Lset(Bytes::from("l"), 9, Bytes::from("x"))),
            Reply::Err("ERR index out of range".into())
        );
        assert_eq!(
            db.execute(Cmd::Lset(Bytes::from("ghost"), 0, Bytes::from("x"))),
            Reply::Err("ERR no such key".into())
        );
    }

    #[test]
    fn mset_matches_sequential_sets() {
        let db = RedisLite::new();
        db.set("a", "old");
        db.mset([("a", "1"), ("b", "2"), ("c", "3")]);
        assert_eq!(db.get(b"a"), Some(Bytes::from("1")));
        assert_eq!(db.get(b"c"), Some(Bytes::from("3")));
        assert_eq!(db.dbsize(), 3);
        assert_eq!(db.memory_bytes(), 3, "overwrite accounted like SET");
    }

    #[test]
    fn pipeline_replies_in_order() {
        let db = RedisLite::new();
        let replies = db.pipeline(vec![
            Cmd::Set(Bytes::from("k"), Bytes::from("v")),
            Cmd::Get(Bytes::from("k")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("e1")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("e2")),
            Cmd::Del(Bytes::from("k")),
            Cmd::Get(Bytes::from("k")),
            Cmd::Lrange(Bytes::from("l"), 0, -1),
        ]);
        assert_eq!(
            replies,
            vec![
                Reply::Ok,
                Reply::Value(Bytes::from("v")),
                Reply::Len(1),
                Reply::Len(2),
                Reply::Len(1),
                Reply::Nil,
                Reply::Multi(vec![Bytes::from("e1"), Bytes::from("e2")]),
            ]
        );
        assert_eq!(db.llen(b"l"), 2);
        assert_eq!(db.memory_bytes(), 4, "k reclaimed, e1+e2 counted");
    }

    #[test]
    fn execute_covers_the_read_algebra() {
        let db = RedisLite::new();
        assert_eq!(db.execute(Cmd::Ping), Reply::Pong);
        assert_eq!(db.execute(Cmd::DbSize), Reply::Len(0));
        db.set("k", "v");
        assert_eq!(db.execute(Cmd::DbSize), Reply::Len(1));
        assert_eq!(
            db.execute(Cmd::Get(Bytes::from("k"))),
            Reply::Value(Bytes::from("v"))
        );
        assert_eq!(db.execute(Cmd::Llen(Bytes::from("k"))), Reply::Len(0));
    }

    #[test]
    fn del_missing_returns_false() {
        let db = RedisLite::new();
        assert!(!db.del(b"ghost"));
        db.set("real", "x");
        assert!(db.del(b"real"));
        assert_eq!(db.dbsize(), 0);
    }
}
