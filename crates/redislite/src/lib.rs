//! **redislite** — an in-memory object store with Redis-style `String`
//! and `List` types, the baseline the paper's wiki engine is compared
//! against (§5.2, §6.3).
//!
//! The paper implements a multi-versioned wiki over Redis by storing each
//! page as a list and RPUSH-ing every new revision — full copies, no
//! structural sharing. The behaviours that matter for the comparison and
//! are preserved here:
//!
//! * very fast in-memory reads/writes (no chunking, no hashing), and
//! * memory consumption proportional to the sum of all version sizes
//!   (Fig. 13(b): ForkBase's deduplication halves storage relative to
//!   Redis).
//!
//! Memory accounting tracks the payload bytes of every stored object, the
//! metric plotted in Fig. 13(b) and Fig. 15.
//!
//! # Durable mode
//!
//! [`RedisLite::open_durable`] attaches a Redis-style **append-only
//! file** (AOF): every mutation (`SET`/`RPUSH`/`LSET`/`DEL`, including
//! batched/pipelined forms) is appended as a checksummed record and
//! replayed on open; a torn tail is truncated. Appends are buffered —
//! call [`sync`](RedisLite::sync) (or drop the store) to flush, matching
//! Redis's `appendfsync everysec`-ish default rather than `always`.

use bytes::Bytes;
use forkbase_crypto::fx::FxHashMap;
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored object: string or list.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RObject {
    Str(Bytes),
    List(Vec<Bytes>),
}

impl RObject {
    fn bytes(&self) -> u64 {
        match self {
            RObject::Str(s) => s.len() as u64,
            RObject::List(l) => l.iter().map(|e| e.len() as u64).sum(),
        }
    }
}

/// One pipelined command (the subset the workloads use).
#[derive(Clone, Debug)]
pub enum Cmd {
    /// SET key value.
    Set(Bytes, Bytes),
    /// GET key.
    Get(Bytes),
    /// RPUSH key elem.
    Rpush(Bytes, Bytes),
    /// DEL key.
    Del(Bytes),
}

/// Reply to one pipelined command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Write acknowledged.
    Ok,
    /// Key missing or wrong type.
    Nil,
    /// A value.
    Value(Bytes),
    /// A length/count (RPUSH, DEL).
    Len(usize),
}

/// An in-memory multi-type key-value store, optionally backed by an
/// append-only file.
#[derive(Default)]
pub struct RedisLite {
    map: RwLock<FxHashMap<Bytes, RObject>>,
    mem_bytes: AtomicU64,
    ops: AtomicU64,
    /// Append-only persistence log (durable mode only).
    aof: Option<Mutex<BufWriter<File>>>,
    /// AOF appends that failed (writes are not failable at the Redis API
    /// surface, so errors surface here instead of being swallowed).
    aof_errors: AtomicU64,
    /// Latched on the first failed append: a partial record may sit at
    /// the log tail, so appending past it would write records that
    /// replay can never reach. Once set, appends stop and
    /// [`sync`](RedisLite::sync) errors.
    aof_poisoned: std::sync::atomic::AtomicBool,
}

/// AOF record op tags.
const AOF_SET: u8 = 0;
const AOF_RPUSH: u8 = 1;
const AOF_DEL: u8 = 2;
const AOF_LSET: u8 = 3;

fn aof_checksum(body: &[u8]) -> u32 {
    let mut h = forkbase_crypto::fx::FxHasher::default();
    h.write(body);
    h.finish() as u32
}

/// `[check u32][op u8][klen u32][vlen u32][idx u64][key][value]`; the
/// check is an FxHash of everything after it, truncated to 32 bits —
/// enough to detect a torn tail.
fn encode_aof(out: &mut Vec<u8>, op: u8, key: &[u8], value: &[u8], idx: u64) {
    let body_start = out.len() + 4;
    out.extend_from_slice(&[0u8; 4]);
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(&idx.to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let check = aof_checksum(&out[body_start..]);
    out[body_start - 4..body_start].copy_from_slice(&check.to_le_bytes());
}

impl RedisLite {
    /// Empty store.
    pub fn new() -> RedisLite {
        RedisLite::default()
    }

    /// Open a durable store: replay the append-only file at `path`
    /// (creating it when missing, truncating a torn tail) and log every
    /// further mutation to it. The replay streams one record at a time
    /// through a reusable buffer — memory is bounded by the largest
    /// record, not the log size.
    pub fn open_durable(path: impl AsRef<Path>) -> std::io::Result<RedisLite> {
        let path = path.as_ref();
        let db = RedisLite::new();
        if path.exists() {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            let mut reader = std::io::BufReader::new(file);
            let mut header = [0u8; 21];
            let mut body = Vec::new();
            let mut pos = 0u64;
            let mut valid_end = 0u64;
            while len - pos >= 21 {
                reader.read_exact(&mut header)?;
                let check = u32::from_le_bytes(header[0..4].try_into().expect("4"));
                let op = header[4];
                let klen = u32::from_le_bytes(header[5..9].try_into().expect("4")) as usize;
                let vlen = u32::from_le_bytes(header[9..13].try_into().expect("4")) as usize;
                let idx = u64::from_le_bytes(header[13..21].try_into().expect("8"));
                if len - pos < 21 + (klen + vlen) as u64 {
                    break; // torn tail
                }
                body.resize(klen + vlen, 0);
                reader.read_exact(&mut body)?;
                let mut checked = header[4..].to_vec();
                checked.extend_from_slice(&body);
                if aof_checksum(&checked) != check {
                    break;
                }
                let key = Bytes::copy_from_slice(&body[..klen]);
                let value = Bytes::copy_from_slice(&body[klen..]);
                let mut map = db.map.write();
                match op {
                    AOF_SET => db.set_locked(&mut map, key, value),
                    AOF_RPUSH => {
                        db.rpush_locked(&mut map, key, value);
                    }
                    AOF_DEL => {
                        db.del_locked(&mut map, &key);
                    }
                    AOF_LSET => {
                        db.lset_locked(&mut map, &key, idx as usize, value);
                    }
                    _ => break, // unknown op: stop at the intact prefix
                }
                drop(map);
                pos += 21 + (klen + vlen) as u64;
                valid_end = pos;
            }
            if valid_end < len {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(valid_end)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RedisLite {
            aof: Some(Mutex::new(BufWriter::new(file))),
            ..db
        })
    }

    /// Flush buffered AOF appends and fsync them. Errors if any earlier
    /// append failed — from that point the log tail is unreliable and
    /// pretending the store is durable would silently lose every later
    /// mutation at replay.
    pub fn sync(&self) -> std::io::Result<()> {
        if self.aof_poisoned.load(Ordering::Relaxed) {
            return Err(std::io::Error::other(
                "append-only file poisoned by an earlier write error",
            ));
        }
        if let Some(aof) = &self.aof {
            let mut w = aof.lock();
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// AOF appends that failed with an I/O error (0 when healthy or
    /// in-memory). Non-zero means the in-memory state is ahead of what a
    /// reopen will recover.
    pub fn aof_error_count(&self) -> u64 {
        self.aof_errors.load(Ordering::Relaxed)
    }

    /// Append one mutation record; called with the map lock held so the
    /// log order matches the apply order. After a failed append the log
    /// is poisoned: a partial record may sit at the tail, so later
    /// records would be unreachable at replay — stop appending and count
    /// instead.
    fn log(&self, op: u8, key: &[u8], value: &[u8], idx: u64) {
        let Some(aof) = &self.aof else { return };
        if self.aof_poisoned.load(Ordering::Relaxed) {
            self.aof_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut rec = Vec::with_capacity(21 + key.len() + value.len());
        encode_aof(&mut rec, op, key, value, idx);
        if let Err(e) = aof.lock().write_all(&rec) {
            self.aof_errors.fetch_add(1, Ordering::Relaxed);
            if !self.aof_poisoned.swap(true, Ordering::Relaxed) {
                eprintln!("redislite: AOF append failed (log poisoned): {e}");
            }
        }
    }

    /// Append a pre-encoded run of `records` AOF records in one lock
    /// hold and one `write_all`. The batched entry points (MSET, the
    /// pipeline) encode their whole batch up front and pay the log lock
    /// and write syscall once instead of once per record.
    fn log_batch(&self, buf: &[u8], records: u64) {
        let Some(aof) = &self.aof else { return };
        if records == 0 {
            return;
        }
        if self.aof_poisoned.load(Ordering::Relaxed) {
            self.aof_errors.fetch_add(records, Ordering::Relaxed);
            return;
        }
        if let Err(e) = aof.lock().write_all(buf) {
            // A torn tail makes every record of the batch unreachable at
            // replay — count them all and poison.
            self.aof_errors.fetch_add(records, Ordering::Relaxed);
            if !self.aof_poisoned.swap(true, Ordering::Relaxed) {
                eprintln!("redislite: AOF batch append failed (log poisoned): {e}");
            }
        }
    }

    fn account(&self, old: Option<&RObject>, new: Option<&RObject>) {
        let old_b = old.map(|o| o.bytes()).unwrap_or(0);
        let new_b = new.map(|o| o.bytes()).unwrap_or(0);
        if new_b >= old_b {
            self.mem_bytes.fetch_add(new_b - old_b, Ordering::Relaxed);
        } else {
            self.mem_bytes.fetch_sub(old_b - new_b, Ordering::Relaxed);
        }
    }

    // Locked op bodies, shared between the single-op methods, MSET and
    // the pipeline so the accounting logic exists exactly once.

    fn set_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: Bytes, value: Bytes) {
        let new = RObject::Str(value);
        let old = map.get(&key).cloned();
        self.account(old.as_ref(), Some(&new));
        map.insert(key, new);
    }

    fn rpush_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: Bytes, elem: Bytes) -> usize {
        let entry = map.entry(key).or_insert_with(|| RObject::List(Vec::new()));
        match entry {
            RObject::List(l) => {
                self.mem_bytes
                    .fetch_add(elem.len() as u64, Ordering::Relaxed);
                l.push(elem);
                l.len()
            }
            RObject::Str(_) => {
                // WRONGTYPE in Redis; here we overwrite for simplicity.
                let old_bytes = entry.bytes();
                self.mem_bytes.fetch_sub(old_bytes, Ordering::Relaxed);
                self.mem_bytes
                    .fetch_add(elem.len() as u64, Ordering::Relaxed);
                *entry = RObject::List(vec![elem]);
                1
            }
        }
    }

    fn del_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: &[u8]) -> bool {
        match map.remove(key) {
            Some(obj) => {
                self.mem_bytes.fetch_sub(obj.bytes(), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn lset_locked(
        &self,
        map: &mut FxHashMap<Bytes, RObject>,
        key: &[u8],
        idx: usize,
        elem: Bytes,
    ) -> bool {
        match map.get_mut(key) {
            Some(RObject::List(l)) if idx < l.len() => {
                let old_len = l[idx].len() as u64;
                if elem.len() as u64 >= old_len {
                    self.mem_bytes
                        .fetch_add(elem.len() as u64 - old_len, Ordering::Relaxed);
                } else {
                    self.mem_bytes
                        .fetch_sub(old_len - elem.len() as u64, Ordering::Relaxed);
                }
                l[idx] = elem;
                true
            }
            _ => false,
        }
    }

    /// SET: store a string value.
    pub fn set(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let (key, value) = (key.into(), value.into());
        let mut map = self.map.write();
        self.log(AOF_SET, &key, &value, 0);
        self.set_locked(&mut map, key, value);
    }

    /// MSET: store many string values under one lock hold — readers see
    /// either none or all of the batch, and per-op lock traffic is paid
    /// once.
    pub fn mset<I, K, V>(&self, pairs: I)
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<Bytes>,
        V: Into<Bytes>,
    {
        let pairs: Vec<(Bytes, Bytes)> = pairs
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect();
        self.ops.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        // Encode the whole batch before taking any lock; the AOF sees
        // one contiguous append (log order still matches apply order —
        // the append happens under the map write lock).
        let mut buf = Vec::new();
        for (key, value) in &pairs {
            encode_aof(&mut buf, AOF_SET, key, value, 0);
        }
        let mut map = self.map.write();
        self.log_batch(&buf, pairs.len() as u64);
        for (key, value) in pairs {
            self.set_locked(&mut map, key, value);
        }
    }

    /// GET: read a string value. `None` if missing or of another type.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.map.read().get(key) {
            Some(RObject::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// RPUSH: append an element to the list at `key` (creating it),
    /// returning the new length.
    pub fn rpush(&self, key: impl Into<Bytes>, elem: impl Into<Bytes>) -> usize {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let (key, elem) = (key.into(), elem.into());
        let mut map = self.map.write();
        self.log(AOF_RPUSH, &key, &elem, 0);
        self.rpush_locked(&mut map, key, elem)
    }

    /// LINDEX: element at `idx` (negative = from the end, like Redis).
    pub fn lindex(&self, key: &[u8], idx: i64) -> Option<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.map.read().get(key) {
            Some(RObject::List(l)) => {
                let i = if idx < 0 {
                    l.len().checked_sub(idx.unsigned_abs() as usize)?
                } else {
                    idx as usize
                };
                l.get(i).cloned()
            }
            _ => None,
        }
    }

    /// LLEN: list length (0 for missing keys, like Redis).
    pub fn llen(&self, key: &[u8]) -> usize {
        match self.map.read().get(key) {
            Some(RObject::List(l)) => l.len(),
            _ => 0,
        }
    }

    /// LSET: replace the element at `idx`.
    pub fn lset(&self, key: &[u8], idx: usize, elem: impl Into<Bytes>) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let elem = elem.into();
        let mut map = self.map.write();
        let ok = self.lset_locked(&mut map, key, idx, elem.clone());
        if ok {
            self.log(AOF_LSET, key, &elem, idx as u64);
        }
        ok
    }

    /// LRANGE: elements in `[start, stop]` (inclusive, clamped).
    pub fn lrange(&self, key: &[u8], start: usize, stop: usize) -> Vec<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.map.read().get(key) {
            Some(RObject::List(l)) => {
                let stop = stop.min(l.len().saturating_sub(1));
                if start > stop {
                    return Vec::new();
                }
                l[start..=stop].to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// DEL: remove a key; returns whether it existed.
    pub fn del(&self, key: &[u8]) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        self.log(AOF_DEL, key, &[], 0);
        self.del_locked(&mut map, key)
    }

    /// Execute a command pipeline: all commands run back-to-back without
    /// per-command lock round-trips, and the replies come back in order —
    /// the Redis pipelining model the paper's baselines rely on for
    /// write-heavy workloads.
    pub fn pipeline(&self, cmds: Vec<Cmd>) -> Vec<Reply> {
        self.ops.fetch_add(cmds.len() as u64, Ordering::Relaxed);
        // Every mutating command's AOF record is state-independent, so
        // the whole batch encodes before the lock and lands as one
        // contiguous append instead of a write per command.
        let mut buf = Vec::new();
        let mut records = 0u64;
        for cmd in &cmds {
            match cmd {
                Cmd::Set(key, value) => {
                    encode_aof(&mut buf, AOF_SET, key, value, 0);
                    records += 1;
                }
                Cmd::Rpush(key, elem) => {
                    encode_aof(&mut buf, AOF_RPUSH, key, elem, 0);
                    records += 1;
                }
                Cmd::Del(key) => {
                    encode_aof(&mut buf, AOF_DEL, key, &[], 0);
                    records += 1;
                }
                Cmd::Get(_) => {}
            }
        }
        let mut map = self.map.write();
        self.log_batch(&buf, records);
        cmds.into_iter()
            .map(|cmd| match cmd {
                Cmd::Set(key, value) => {
                    self.set_locked(&mut map, key, value);
                    Reply::Ok
                }
                Cmd::Get(key) => match map.get(&key) {
                    Some(RObject::Str(s)) => Reply::Value(s.clone()),
                    _ => Reply::Nil,
                },
                Cmd::Rpush(key, elem) => Reply::Len(self.rpush_locked(&mut map, key, elem)),
                Cmd::Del(key) => Reply::Len(usize::from(self.del_locked(&mut map, &key))),
            })
            .collect()
    }

    /// Number of keys.
    pub fn dbsize(&self) -> usize {
        self.map.read().len()
    }

    /// Total payload bytes held — the storage-consumption metric of
    /// Fig. 13(b).
    pub fn memory_bytes(&self) -> u64 {
        self.mem_bytes.load(Ordering::Relaxed)
    }

    /// Operations served.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_aof(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "redislite-aof-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ))
    }

    #[test]
    fn aof_replays_all_mutation_kinds() {
        let path = temp_aof("replay");
        {
            let db = RedisLite::open_durable(&path).expect("open");
            db.set("s", "v1");
            db.set("gone", "x");
            db.del(b"gone");
            for i in 0..3 {
                db.rpush("page", format!("rev {i}"));
            }
            db.lset(b"page", 1, "rev 1 edited");
            db.pipeline(vec![
                Cmd::Set(Bytes::from("p"), Bytes::from("pipelined")),
                Cmd::Rpush(Bytes::from("page"), Bytes::from("rev 3")),
            ]);
            db.sync().expect("sync");
            assert_eq!(db.aof_error_count(), 0);
        }
        let db = RedisLite::open_durable(&path).expect("reopen");
        assert_eq!(db.get(b"s"), Some(Bytes::from("v1")));
        assert_eq!(db.get(b"gone"), None);
        assert_eq!(db.get(b"p"), Some(Bytes::from("pipelined")));
        assert_eq!(db.llen(b"page"), 4);
        assert_eq!(db.lindex(b"page", 1), Some(Bytes::from("rev 1 edited")));
        assert_eq!(db.lindex(b"page", -1), Some(Bytes::from("rev 3")));
        // Memory accounting was rebuilt by the replay.
        assert!(db.memory_bytes() > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn aof_torn_tail_truncated() {
        let path = temp_aof("torn");
        {
            let db = RedisLite::open_durable(&path).expect("open");
            db.set("k", "v");
            db.sync().expect("sync");
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("raw");
            f.write_all(&[9, 9, 9, 9, 9]).expect("garbage");
        }
        let db = RedisLite::open_durable(&path).expect("recover");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v")));
        // Appendable after recovery.
        db.set("k2", "v2");
        db.sync().expect("sync");
        drop(db);
        let db = RedisLite::open_durable(&path).expect("reopen");
        assert_eq!(db.dbsize(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn string_ops() {
        let db = RedisLite::new();
        db.set("k", "v1");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v1")));
        db.set("k", "v2");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v2")));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn list_versioning_pattern() {
        // The wiki pattern: every revision RPUSHed, LINDEX -1 = latest.
        let db = RedisLite::new();
        for i in 0..5 {
            db.rpush("page", format!("revision {i}"));
        }
        assert_eq!(db.llen(b"page"), 5);
        assert_eq!(db.lindex(b"page", -1), Some(Bytes::from("revision 4")));
        assert_eq!(db.lindex(b"page", 0), Some(Bytes::from("revision 0")));
        assert_eq!(db.lindex(b"page", -2), Some(Bytes::from("revision 3")));
        assert_eq!(db.lindex(b"page", 99), None);
    }

    #[test]
    fn lrange_clamps() {
        let db = RedisLite::new();
        for i in 0..4 {
            db.rpush("l", format!("{i}"));
        }
        assert_eq!(db.lrange(b"l", 1, 2).len(), 2);
        assert_eq!(db.lrange(b"l", 0, 100).len(), 4);
        assert_eq!(db.lrange(b"l", 5, 10).len(), 0);
    }

    #[test]
    fn memory_accounting_sums_all_versions() {
        let db = RedisLite::new();
        db.rpush("page", vec![0u8; 1000]);
        db.rpush("page", vec![0u8; 1000]);
        assert_eq!(db.memory_bytes(), 2000, "no dedup: every version counted");
        db.set("s", vec![0u8; 500]);
        assert_eq!(db.memory_bytes(), 2500);
        db.set("s", vec![0u8; 100]);
        assert_eq!(db.memory_bytes(), 2100, "overwrite reclaims");
        db.del(b"page");
        assert_eq!(db.memory_bytes(), 100);
    }

    #[test]
    fn lset_replaces_in_place() {
        let db = RedisLite::new();
        db.rpush("l", "aaa");
        db.rpush("l", "bbb");
        assert!(db.lset(b"l", 0, "XXXXX"));
        assert_eq!(db.lindex(b"l", 0), Some(Bytes::from("XXXXX")));
        assert!(!db.lset(b"l", 9, "nope"));
        assert_eq!(db.memory_bytes(), 8);
    }

    #[test]
    fn mset_matches_sequential_sets() {
        let db = RedisLite::new();
        db.set("a", "old");
        db.mset([("a", "1"), ("b", "2"), ("c", "3")]);
        assert_eq!(db.get(b"a"), Some(Bytes::from("1")));
        assert_eq!(db.get(b"c"), Some(Bytes::from("3")));
        assert_eq!(db.dbsize(), 3);
        assert_eq!(db.memory_bytes(), 3, "overwrite accounted like SET");
    }

    #[test]
    fn pipeline_replies_in_order() {
        let db = RedisLite::new();
        let replies = db.pipeline(vec![
            Cmd::Set(Bytes::from("k"), Bytes::from("v")),
            Cmd::Get(Bytes::from("k")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("e1")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("e2")),
            Cmd::Del(Bytes::from("k")),
            Cmd::Get(Bytes::from("k")),
        ]);
        assert_eq!(
            replies,
            vec![
                Reply::Ok,
                Reply::Value(Bytes::from("v")),
                Reply::Len(1),
                Reply::Len(2),
                Reply::Len(1),
                Reply::Nil,
            ]
        );
        assert_eq!(db.llen(b"l"), 2);
        assert_eq!(db.memory_bytes(), 4, "k reclaimed, e1+e2 counted");
    }

    #[test]
    fn del_missing_returns_false() {
        let db = RedisLite::new();
        assert!(!db.del(b"ghost"));
        db.set("real", "x");
        assert!(db.del(b"real"));
        assert_eq!(db.dbsize(), 0);
    }
}
