//! **redislite** — an in-memory object store with Redis-style `String`
//! and `List` types, the baseline the paper's wiki engine is compared
//! against (§5.2, §6.3).
//!
//! The paper implements a multi-versioned wiki over Redis by storing each
//! page as a list and RPUSH-ing every new revision — full copies, no
//! structural sharing. The behaviours that matter for the comparison and
//! are preserved here:
//!
//! * very fast in-memory reads/writes (no chunking, no hashing), and
//! * memory consumption proportional to the sum of all version sizes
//!   (Fig. 13(b): ForkBase's deduplication halves storage relative to
//!   Redis).
//!
//! Memory accounting tracks the payload bytes of every stored object, the
//! metric plotted in Fig. 13(b) and Fig. 15.

use bytes::Bytes;
use forkbase_crypto::fx::FxHashMap;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored object: string or list.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RObject {
    Str(Bytes),
    List(Vec<Bytes>),
}

impl RObject {
    fn bytes(&self) -> u64 {
        match self {
            RObject::Str(s) => s.len() as u64,
            RObject::List(l) => l.iter().map(|e| e.len() as u64).sum(),
        }
    }
}

/// One pipelined command (the subset the workloads use).
#[derive(Clone, Debug)]
pub enum Cmd {
    /// SET key value.
    Set(Bytes, Bytes),
    /// GET key.
    Get(Bytes),
    /// RPUSH key elem.
    Rpush(Bytes, Bytes),
    /// DEL key.
    Del(Bytes),
}

/// Reply to one pipelined command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Write acknowledged.
    Ok,
    /// Key missing or wrong type.
    Nil,
    /// A value.
    Value(Bytes),
    /// A length/count (RPUSH, DEL).
    Len(usize),
}

/// An in-memory multi-type key-value store.
#[derive(Default)]
pub struct RedisLite {
    map: RwLock<FxHashMap<Bytes, RObject>>,
    mem_bytes: AtomicU64,
    ops: AtomicU64,
}

impl RedisLite {
    /// Empty store.
    pub fn new() -> RedisLite {
        RedisLite::default()
    }

    fn account(&self, old: Option<&RObject>, new: Option<&RObject>) {
        let old_b = old.map(|o| o.bytes()).unwrap_or(0);
        let new_b = new.map(|o| o.bytes()).unwrap_or(0);
        if new_b >= old_b {
            self.mem_bytes.fetch_add(new_b - old_b, Ordering::Relaxed);
        } else {
            self.mem_bytes.fetch_sub(old_b - new_b, Ordering::Relaxed);
        }
    }

    // Locked op bodies, shared between the single-op methods, MSET and
    // the pipeline so the accounting logic exists exactly once.

    fn set_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: Bytes, value: Bytes) {
        let new = RObject::Str(value);
        let old = map.get(&key).cloned();
        self.account(old.as_ref(), Some(&new));
        map.insert(key, new);
    }

    fn rpush_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: Bytes, elem: Bytes) -> usize {
        let entry = map.entry(key).or_insert_with(|| RObject::List(Vec::new()));
        match entry {
            RObject::List(l) => {
                self.mem_bytes
                    .fetch_add(elem.len() as u64, Ordering::Relaxed);
                l.push(elem);
                l.len()
            }
            RObject::Str(_) => {
                // WRONGTYPE in Redis; here we overwrite for simplicity.
                let old_bytes = entry.bytes();
                self.mem_bytes.fetch_sub(old_bytes, Ordering::Relaxed);
                self.mem_bytes
                    .fetch_add(elem.len() as u64, Ordering::Relaxed);
                *entry = RObject::List(vec![elem]);
                1
            }
        }
    }

    fn del_locked(&self, map: &mut FxHashMap<Bytes, RObject>, key: &[u8]) -> bool {
        match map.remove(key) {
            Some(obj) => {
                self.mem_bytes.fetch_sub(obj.bytes(), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// SET: store a string value.
    pub fn set(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        self.set_locked(&mut map, key.into(), value.into());
    }

    /// MSET: store many string values under one lock hold — readers see
    /// either none or all of the batch, and per-op lock traffic is paid
    /// once.
    pub fn mset<I, K, V>(&self, pairs: I)
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<Bytes>,
        V: Into<Bytes>,
    {
        let mut map = self.map.write();
        for (key, value) in pairs {
            self.ops.fetch_add(1, Ordering::Relaxed);
            self.set_locked(&mut map, key.into(), value.into());
        }
    }

    /// GET: read a string value. `None` if missing or of another type.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.map.read().get(key) {
            Some(RObject::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// RPUSH: append an element to the list at `key` (creating it),
    /// returning the new length.
    pub fn rpush(&self, key: impl Into<Bytes>, elem: impl Into<Bytes>) -> usize {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        self.rpush_locked(&mut map, key.into(), elem.into())
    }

    /// LINDEX: element at `idx` (negative = from the end, like Redis).
    pub fn lindex(&self, key: &[u8], idx: i64) -> Option<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.map.read().get(key) {
            Some(RObject::List(l)) => {
                let i = if idx < 0 {
                    l.len().checked_sub(idx.unsigned_abs() as usize)?
                } else {
                    idx as usize
                };
                l.get(i).cloned()
            }
            _ => None,
        }
    }

    /// LLEN: list length (0 for missing keys, like Redis).
    pub fn llen(&self, key: &[u8]) -> usize {
        match self.map.read().get(key) {
            Some(RObject::List(l)) => l.len(),
            _ => 0,
        }
    }

    /// LSET: replace the element at `idx`.
    pub fn lset(&self, key: &[u8], idx: usize, elem: impl Into<Bytes>) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let elem = elem.into();
        let mut map = self.map.write();
        match map.get_mut(key) {
            Some(RObject::List(l)) if idx < l.len() => {
                let old_len = l[idx].len() as u64;
                if elem.len() as u64 >= old_len {
                    self.mem_bytes
                        .fetch_add(elem.len() as u64 - old_len, Ordering::Relaxed);
                } else {
                    self.mem_bytes
                        .fetch_sub(old_len - elem.len() as u64, Ordering::Relaxed);
                }
                l[idx] = elem;
                true
            }
            _ => false,
        }
    }

    /// LRANGE: elements in `[start, stop]` (inclusive, clamped).
    pub fn lrange(&self, key: &[u8], start: usize, stop: usize) -> Vec<Bytes> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        match self.map.read().get(key) {
            Some(RObject::List(l)) => {
                let stop = stop.min(l.len().saturating_sub(1));
                if start > stop {
                    return Vec::new();
                }
                l[start..=stop].to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// DEL: remove a key; returns whether it existed.
    pub fn del(&self, key: &[u8]) -> bool {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        self.del_locked(&mut map, key)
    }

    /// Execute a command pipeline: all commands run back-to-back without
    /// per-command lock round-trips, and the replies come back in order —
    /// the Redis pipelining model the paper's baselines rely on for
    /// write-heavy workloads.
    pub fn pipeline(&self, cmds: Vec<Cmd>) -> Vec<Reply> {
        let mut map = self.map.write();
        self.ops.fetch_add(cmds.len() as u64, Ordering::Relaxed);
        cmds.into_iter()
            .map(|cmd| match cmd {
                Cmd::Set(key, value) => {
                    self.set_locked(&mut map, key, value);
                    Reply::Ok
                }
                Cmd::Get(key) => match map.get(&key) {
                    Some(RObject::Str(s)) => Reply::Value(s.clone()),
                    _ => Reply::Nil,
                },
                Cmd::Rpush(key, elem) => Reply::Len(self.rpush_locked(&mut map, key, elem)),
                Cmd::Del(key) => Reply::Len(usize::from(self.del_locked(&mut map, &key))),
            })
            .collect()
    }

    /// Number of keys.
    pub fn dbsize(&self) -> usize {
        self.map.read().len()
    }

    /// Total payload bytes held — the storage-consumption metric of
    /// Fig. 13(b).
    pub fn memory_bytes(&self) -> u64 {
        self.mem_bytes.load(Ordering::Relaxed)
    }

    /// Operations served.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_ops() {
        let db = RedisLite::new();
        db.set("k", "v1");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v1")));
        db.set("k", "v2");
        assert_eq!(db.get(b"k"), Some(Bytes::from("v2")));
        assert_eq!(db.get(b"missing"), None);
    }

    #[test]
    fn list_versioning_pattern() {
        // The wiki pattern: every revision RPUSHed, LINDEX -1 = latest.
        let db = RedisLite::new();
        for i in 0..5 {
            db.rpush("page", format!("revision {i}"));
        }
        assert_eq!(db.llen(b"page"), 5);
        assert_eq!(db.lindex(b"page", -1), Some(Bytes::from("revision 4")));
        assert_eq!(db.lindex(b"page", 0), Some(Bytes::from("revision 0")));
        assert_eq!(db.lindex(b"page", -2), Some(Bytes::from("revision 3")));
        assert_eq!(db.lindex(b"page", 99), None);
    }

    #[test]
    fn lrange_clamps() {
        let db = RedisLite::new();
        for i in 0..4 {
            db.rpush("l", format!("{i}"));
        }
        assert_eq!(db.lrange(b"l", 1, 2).len(), 2);
        assert_eq!(db.lrange(b"l", 0, 100).len(), 4);
        assert_eq!(db.lrange(b"l", 5, 10).len(), 0);
    }

    #[test]
    fn memory_accounting_sums_all_versions() {
        let db = RedisLite::new();
        db.rpush("page", vec![0u8; 1000]);
        db.rpush("page", vec![0u8; 1000]);
        assert_eq!(db.memory_bytes(), 2000, "no dedup: every version counted");
        db.set("s", vec![0u8; 500]);
        assert_eq!(db.memory_bytes(), 2500);
        db.set("s", vec![0u8; 100]);
        assert_eq!(db.memory_bytes(), 2100, "overwrite reclaims");
        db.del(b"page");
        assert_eq!(db.memory_bytes(), 100);
    }

    #[test]
    fn lset_replaces_in_place() {
        let db = RedisLite::new();
        db.rpush("l", "aaa");
        db.rpush("l", "bbb");
        assert!(db.lset(b"l", 0, "XXXXX"));
        assert_eq!(db.lindex(b"l", 0), Some(Bytes::from("XXXXX")));
        assert!(!db.lset(b"l", 9, "nope"));
        assert_eq!(db.memory_bytes(), 8);
    }

    #[test]
    fn mset_matches_sequential_sets() {
        let db = RedisLite::new();
        db.set("a", "old");
        db.mset([("a", "1"), ("b", "2"), ("c", "3")]);
        assert_eq!(db.get(b"a"), Some(Bytes::from("1")));
        assert_eq!(db.get(b"c"), Some(Bytes::from("3")));
        assert_eq!(db.dbsize(), 3);
        assert_eq!(db.memory_bytes(), 3, "overwrite accounted like SET");
    }

    #[test]
    fn pipeline_replies_in_order() {
        let db = RedisLite::new();
        let replies = db.pipeline(vec![
            Cmd::Set(Bytes::from("k"), Bytes::from("v")),
            Cmd::Get(Bytes::from("k")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("e1")),
            Cmd::Rpush(Bytes::from("l"), Bytes::from("e2")),
            Cmd::Del(Bytes::from("k")),
            Cmd::Get(Bytes::from("k")),
        ]);
        assert_eq!(
            replies,
            vec![
                Reply::Ok,
                Reply::Value(Bytes::from("v")),
                Reply::Len(1),
                Reply::Len(2),
                Reply::Len(1),
                Reply::Nil,
            ]
        );
        assert_eq!(db.llen(b"l"), 2);
        assert_eq!(db.memory_bytes(), 4, "k reclaimed, e1+e2 counted");
    }

    #[test]
    fn del_missing_returns_false() {
        let db = RedisLite::new();
        assert!(!db.del(b"ghost"));
        db.set("real", "x");
        assert!(db.del(b"real"));
        assert_eq!(db.dbsize(), 0);
    }
}
